"""Scan-heavy and HTAP benchmarks for the vectorized execution layer.

The headline pairs race the page-at-a-time kernels (``vec_*``) against the
tuple-at-a-time path they replace (``vidmap_scan`` + per-row decode +
Python-side filter) on the same sealed VECTOR-page data — the acceptance
target is ≥5x on filtered count/aggregate.  The HTAP benches interleave
TPC-C transactions with analytical aggregates over the stock relation, so
the gate also holds the mixed-workload cost of a scan that runs while
OLTP writers keep appending versions.

Results feed ``compare.py``'s perf-regression gate (``--bench vecscan``).
"""

from __future__ import annotations

import pytest

from repro.common import units
from repro.common.config import BufferConfig, FlashConfig, SystemConfig
from repro.core.scan import vidmap_scan
from repro.core.vecscan import vec_aggregate, vec_count, vec_scan
from repro.db.catalog import IndexDef
from repro.db.database import Database, EngineKind
from repro.db.schema import ColType, Schema
from repro.workload.driver import DriverConfig, TpccDriver
from repro.workload.tpcc_data import TpccLoader
from repro.workload.tpcc_schema import STOCK, TpccScale, create_tpcc_tables

N_ROWS = 4000

#: Fixed-width columns first so predicate pushdown probes engage; the
#: trailing STR exercises the heap-payload extraction path.
SCHEMA = Schema.of(("id", ColType.INT), ("balance", ColType.FLOAT),
                   ("owner", ColType.STR))

#: rows with i % 1000 >= 500; the warm-up updates only add +1.0 to
#: multiples of 50, which never crosses the 500.0 boundary
FILTERED = N_ROWS // 2


def _scan_db() -> Database:
    config = SystemConfig(flash=FlashConfig(capacity_bytes=64 * units.MIB),
                          buffer=BufferConfig(pool_pages=1024),
                          extent_pages=16)
    db = Database.on_flash(EngineKind.SIASV, config)
    db.create_table("accounts", SCHEMA,
                    indexes=[IndexDef("pk", ("id",), unique=True)])
    txn = db.begin()
    db.bulk_insert(txn, "accounts",
                   [(i, float(i % 1000), f"owner{i % 40}")
                    for i in range(N_ROWS)])
    db.commit(txn)
    # an update round so some chains have depth > 0
    txn = db.begin()
    for i in range(0, N_ROWS, 50):
        (ref, row), = db.lookup(txn, "accounts", "pk", i)
        db.update(txn, "accounts", ref, (i, row[1] + 1.0, row[2]))
    db.commit(txn)
    db.table("accounts").engine.store.seal_working_page()
    return db


@pytest.fixture(scope="module")
def scan_db() -> Database:
    """A sealed VECTOR-page accounts table; read-only across benches."""
    return _scan_db()


def _parts(db: Database):
    relation = db.table("accounts")
    return relation.engine, relation.codec


# -- filtered count: kernels vs tuple-at-a-time ------------------------------------

def test_vec_count_filtered(benchmark, scan_db):
    engine, codec = _parts(scan_db)

    def run() -> int:
        txn = scan_db.begin()
        n = vec_count(engine, codec, txn, where=("balance", ">=", 500.0))
        scan_db.commit(txn)
        return n
    assert benchmark(run) == FILTERED


def test_tuple_count_filtered(benchmark, scan_db):
    """The pre-vectorization path: chain descent + full decode per row."""
    engine, codec = _parts(scan_db)

    def run() -> int:
        txn = scan_db.begin()
        n = sum(1 for _vid, record in vidmap_scan(engine, txn)
                if codec.decode(record.payload)[1] >= 500.0)
        scan_db.commit(txn)
        return n
    assert benchmark(run) == FILTERED


# -- filtered aggregate ------------------------------------------------------------

def test_vec_sum_filtered(benchmark, scan_db):
    engine, codec = _parts(scan_db)

    def run() -> float:
        txn = scan_db.begin()
        total = vec_aggregate(engine, codec, txn, "sum", "balance",
                              where=("id", "<", N_ROWS // 2))
        scan_db.commit(txn)
        return total
    assert benchmark(run) > 0


def test_tuple_sum_filtered(benchmark, scan_db):
    engine, codec = _parts(scan_db)

    def run() -> float:
        txn = scan_db.begin()
        total = 0.0
        for _vid, record in vidmap_scan(engine, txn):
            row = codec.decode(record.payload)
            if row[0] < N_ROWS // 2:
                total += row[1]
        scan_db.commit(txn)
        return total
    assert benchmark(run) > 0


# -- filtered projection scan ------------------------------------------------------

def test_vec_scan_projected(benchmark, scan_db):
    engine, codec = _parts(scan_db)

    def run() -> int:
        txn = scan_db.begin()
        rows = list(vec_scan(engine, codec, txn,
                             columns=["id", "balance"],
                             where=("balance", ">=", 900.0)))
        scan_db.commit(txn)
        return len(rows)
    assert benchmark(run) == N_ROWS // 10


def test_tuple_scan_projected(benchmark, scan_db):
    engine, codec = _parts(scan_db)

    def run() -> int:
        txn = scan_db.begin()
        rows = []
        for _vid, record in vidmap_scan(engine, txn):
            row = codec.decode(record.payload)
            if row[1] >= 900.0:
                rows.append((row[0], row[1]))
        scan_db.commit(txn)
        return len(rows)
    assert benchmark(run) == N_ROWS // 10


# -- HTAP: analytical aggregates against the TPC-C driver --------------------------

@pytest.fixture(scope="module")
def htap_db():
    """A loaded TPC-C database plus a live driver to interleave with."""
    config = SystemConfig(flash=FlashConfig(capacity_bytes=256 * units.MIB),
                          buffer=BufferConfig(pool_pages=2048),
                          extent_pages=16)
    db = Database.on_flash(EngineKind.SIASV, config)
    create_tpcc_tables(db)
    scale = TpccScale()
    TpccLoader(db, scale, seed=11).load(warehouses=1)
    driver = TpccDriver(db, warehouses=1, scale=scale,
                        config=DriverConfig(clients=4), seed=11)
    db.table(STOCK).engine.store.seal_working_page()
    return db, driver


def test_htap_vec_aggregate_under_tpcc(benchmark, htap_db):
    """Each round: a slice of TPC-C transactions, then the kernel-path
    low-stock aggregate over the freshly mutated stock relation."""
    db, driver = htap_db
    engine, codec = _parts_stock(db)

    def run() -> int:
        driver.run_transactions(5)
        txn = db.begin()
        n = vec_count(engine, codec, txn, where=("s_quantity", "<", 25))
        db.commit(txn)
        return n
    benchmark(run)


def test_htap_tuple_aggregate_under_tpcc(benchmark, htap_db):
    db, driver = htap_db
    engine, codec = _parts_stock(db)

    def run() -> int:
        driver.run_transactions(5)
        txn = db.begin()
        n = sum(1 for _vid, record in vidmap_scan(engine, txn)
                if codec.decode(record.payload)[2] < 25)
        db.commit(txn)
        return n
    benchmark(run)


def _parts_stock(db: Database):
    relation = db.table(STOCK)
    return relation.engine, relation.codec
