"""Exhibit F5: tolerable load — SI saturates earlier than SIAS-V.

Asserts the conclusion's "higher amount of tolerable load": as offered load
grows, SIAS-V keeps tracking it while SI's throughput stalls and its p90
response time balloons.
"""

from __future__ import annotations

from repro.common import units
from repro.experiments import tolerable_load

from conftest import BENCH_SCALE, run_once


def test_f5_tolerable_load(benchmark, out_dir):
    result = run_once(
        benchmark,
        lambda: tolerable_load.run(warehouses=4,
                                   client_counts=(4, 16),
                                   duration_usec=5 * units.SEC,
                                   pool_pages=64,
                                   scale=BENCH_SCALE))
    (out_dir / "f5_tolerable_load.txt").write_text(result.table())
    low, high = result.points[0], result.points[-1]
    # SIAS-V keeps scaling with offered load; SI stalls comparatively
    sias_growth = high.sias_notpm / max(1.0, low.sias_notpm)
    si_growth = high.si_notpm / max(1.0, low.si_notpm)
    assert sias_growth > si_growth
    # and SI's tail is visibly worse under the heavy level
    assert high.si_p90_sec > high.sias_p90_sec
