"""Ablation A5: FTL SSD vs NoFTL raw flash — write-latency predictability.

Asserts the paper's discussion claim: with the DBMS driving reclamation on
raw flash, host writes never stall behind device-internal GC, so the
latency tail stays flat at the program latency while the FTL's tail spikes.
"""

from __future__ import annotations

from repro.experiments import ablation_noftl

from conftest import run_once


def test_a5_noftl(benchmark, out_dir):
    result = run_once(
        benchmark,
        lambda: ablation_noftl.run(rows=200, updates=10_000,
                                   capacity_mib=6, gc_every=1000,
                                   cold_rows=100))
    (out_dir / "a5_noftl.txt").write_text(result.table())
    assert result.max_latency["noftl"] == 400
    assert result.max_latency["ftl"] > result.max_latency["noftl"]
    assert result.write_amp["noftl"] == 1.0
