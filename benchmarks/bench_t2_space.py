"""Exhibit T2: space consumption and fill degree — SI vs SIAS-t1/t2.

Asserts the paper's packing claims: t2 pages are packed near the fill
target while t1 pages go out sparse (lower average fill, more wasted
bytes), which is what drives t2's space reduction.
"""

from __future__ import annotations

from repro.common import units
from repro.experiments import space

from conftest import BENCH_SCALE, run_once


def test_t2_space(benchmark, out_dir):
    result = run_once(
        benchmark,
        lambda: space.run(warehouses=3, duration_usec=6 * units.SEC,
                          scale=BENCH_SCALE))
    (out_dir / "t2_space.txt").write_text(result.table())
    by_config = {row[0]: row for row in result.rows}
    t1_fill = by_config["SIAS-t1"][4]
    t2_fill = by_config["SIAS-t2"][4]
    assert t2_fill > t1_fill, "t2 must pack pages denser than t1"
    assert by_config["SIAS-t2"][1] <= by_config["SIAS-t1"][1], \
        "t2 must not occupy more space than t1"
