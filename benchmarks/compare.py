"""Perf-regression gate over the repository benchmarks.

Runs the benchmark suites under pytest-benchmark, compares every
benchmark's mean against a committed baseline (``BENCH_BASELINE.json`` at
the repository root) and **fails** — exit status 1 — when any benchmark
regressed by more than the threshold (default 25 %).  This is the perf
trajectory guard: the baseline is regenerated (``--save``) whenever a PR
intentionally shifts the profile, so an accidental O(n) creeping back into
a hot path turns CI red instead of silently rotting the exhibits.

Two suites are gated: ``micro`` (``bench_micro_ops.py``, the per-operation
engine costs) and ``vecscan`` (``bench_vecscan.py``, vectorized scan and
aggregate throughput against the tuple-at-a-time path, plus the HTAP mix).

Usage::

    python benchmarks/compare.py                     # all suites, gate 25 %
    python benchmarks/compare.py --bench vecscan     # one suite only
    python benchmarks/compare.py --quick             # CI smoke (fast rounds)
    python benchmarks/compare.py --threshold 0.5     # looser gate
    python benchmarks/compare.py --save              # regenerate baseline
    python benchmarks/compare.py --json results.json # compare a prior run

Only benchmarks present in *both* runs are compared (new benchmarks pass
by definition; removed ones are reported).  Means are wall-clock on the
current machine: across different machines the ratios stay meaningful even
though the absolute numbers do not, which is why the gate compares ratios.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import subprocess
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_DIR = pathlib.Path(__file__).parent
BENCH_FILES = {
    "micro": BENCH_DIR / "bench_micro_ops.py",
    "vecscan": BENCH_DIR / "bench_vecscan.py",
}
DEFAULT_BASELINE = REPO_ROOT / "BENCH_BASELINE.json"
DEFAULT_THRESHOLD = 0.25

#: Quick mode trims the measurement budget for CI smoke runs.
QUICK_ARGS = ["--benchmark-min-rounds=3", "--benchmark-max-time=0.2",
              "--benchmark-warmup=off"]


def engine_concurrency_info() -> dict:
    """Execution-context record stored alongside the benchmark numbers.

    The micro benches drive the engine embedded — exactly one thread, the
    configuration the single-worker regression gate protects.  The server
    default is recorded too so a baseline taken before/after a change to
    the worker-pool policy is self-describing.
    """
    return {
        "executor_workers": 1,
        "server_default_workers": min(4, os.cpu_count() or 1),
    }


def run_benchmarks(quick: bool, suites: list[str]) -> dict:
    """Execute the chosen suites; returns the pytest-benchmark JSON dict."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        out_path = pathlib.Path(handle.name)
    cmd = [sys.executable, "-m", "pytest",
           *(str(BENCH_FILES[suite]) for suite in suites), "-q",
           f"--benchmark-json={out_path}"]
    if quick:
        cmd.extend(QUICK_ARGS)
    env_path = str(REPO_ROOT / "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = env_path + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.run(cmd, cwd=REPO_ROOT, env=env)
    if proc.returncode != 0:
        raise SystemExit(f"benchmark run failed (exit {proc.returncode})")
    data = json.loads(out_path.read_text())
    out_path.unlink(missing_ok=True)
    data["engine_concurrency"] = engine_concurrency_info()
    return data


def extract_means(data: dict) -> dict[str, float]:
    """Map benchmark name → mean seconds."""
    return {bench["name"]: bench["stats"]["mean"]
            for bench in data.get("benchmarks", [])}


def compare(baseline: dict[str, float], current: dict[str, float],
            threshold: float) -> int:
    """Print the comparison table; returns the number of regressions."""
    regressions = 0
    common = sorted(set(baseline) & set(current))
    width = max((len(n) for n in common), default=20)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  "
          f"{'ratio':>7}  verdict")
    for name in common:
        old, new = baseline[name], current[name]
        ratio = new / old if old > 0 else float("inf")
        verdict = "ok"
        if ratio > 1.0 + threshold:
            verdict = "REGRESSED"
            regressions += 1
        elif ratio < 1.0 - threshold:
            verdict = "improved"
        print(f"{name:<{width}}  {old * 1e6:>10.1f}us  {new * 1e6:>10.1f}us"
              f"  {ratio:>6.2f}x  {verdict}")
    for name in sorted(set(current) - set(baseline)):
        print(f"{name:<{width}}  {'-':>12}  "
              f"{current[name] * 1e6:>10.1f}us  {'new':>7}")
    for name in sorted(set(baseline) - set(current)):
        print(f"{name:<{width}}  {baseline[name] * 1e6:>10.1f}us  "
              f"{'-':>12}  {'gone':>7}")
    return regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=pathlib.Path,
                        default=DEFAULT_BASELINE,
                        help="baseline JSON (default: BENCH_BASELINE.json)")
    parser.add_argument("--json", type=pathlib.Path, default=None,
                        help="compare this pytest-benchmark JSON instead of "
                             "running the benches")
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD,
                        help="relative regression gate (0.25 = +25%%)")
    parser.add_argument("--quick", action="store_true",
                        help="fast measurement budget (CI smoke)")
    parser.add_argument("--bench", choices=[*BENCH_FILES, "all"],
                        default="all",
                        help="benchmark suite to run (default: all)")
    parser.add_argument("--save", action="store_true",
                        help="write the fresh run over the baseline file")
    args = parser.parse_args(argv)
    suites = list(BENCH_FILES) if args.bench == "all" else [args.bench]

    if args.json is not None:
        data = json.loads(args.json.read_text())
    else:
        data = run_benchmarks(quick=args.quick, suites=suites)
    current = extract_means(data)
    workers = data.get("engine_concurrency", {}).get("executor_workers")
    if workers is not None:
        print(f"executor workers: {workers} (embedded engine; server "
              f"default would be "
              f"{data['engine_concurrency']['server_default_workers']})")

    if args.save:
        if args.bench != "all":
            print("--save requires --bench all (the baseline covers every "
                  "suite)", file=sys.stderr)
            return 2
        args.baseline.write_text(json.dumps(data, indent=1, sort_keys=True))
        print(f"baseline saved to {args.baseline} "
              f"({len(current)} benchmarks)")
        return 0

    if not args.baseline.exists():
        print(f"no baseline at {args.baseline}; run with --save first",
              file=sys.stderr)
        return 2
    baseline = extract_means(json.loads(args.baseline.read_text()))
    if args.bench != "all" and args.json is None:
        # a single-suite run is not evidence the other suite's benches
        # disappeared — gate only what actually ran
        baseline = {name: mean for name, mean in baseline.items()
                    if name in current}
    regressions = compare(baseline, current, args.threshold)
    if regressions:
        print(f"\n{regressions} benchmark(s) regressed more than "
              f"{args.threshold:.0%}")
        return 1
    print(f"\nno regressions beyond {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
