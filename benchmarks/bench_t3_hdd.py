"""Exhibit T3: TPC-C on HDD — throughput and response time per warehouse.

Asserts the paper's HDD story: SIAS-V keeps the system responsive and
out-throughputs SI, whose random in-place writes each pay a mechanical
seek.
"""

from __future__ import annotations

from repro.common import units
from repro.experiments import tpcc_hdd

from conftest import BENCH_SCALE, run_once


def test_t3_hdd(benchmark, out_dir):
    result = run_once(
        benchmark,
        lambda: tpcc_hdd.run(warehouse_counts=(2, 4),
                             duration_usec=5 * units.SEC,
                             scale=BENCH_SCALE))
    (out_dir / "t3_hdd.txt").write_text(result.table())
    for sias, si in zip(result.sias_notpm, result.si_notpm):
        assert sias > si
    for sias_rt, si_rt in zip(result.sias_rt, result.si_rt):
        assert sias_rt <= si_rt
