"""Shared benchmark scaffolding.

Every exhibit bench runs its experiment exactly once inside
``benchmark.pedantic`` (these are end-to-end simulations, not
microsecond-scale kernels), asserts the paper's qualitative shape, and
writes the regenerated table/figure to ``benchmarks/out/`` so the artefacts
survive pytest's output capture.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.workload.tpcc_schema import TpccScale

#: Small-but-meaningful workload scale for the bench suite.
BENCH_SCALE = TpccScale(districts_per_warehouse=4,
                        customers_per_district=10, items=50,
                        stock_per_warehouse=50,
                        initial_orders_per_district=5,
                        min_order_lines=3, max_order_lines=8)

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def out_dir() -> pathlib.Path:
    """Directory collecting the regenerated tables and figures."""
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
