"""Exhibit F3: TPC-C throughput on the two-SSD stripe (small buffer).

Sweeps warehouse counts from fully-cached into buffer-pressured territory
and asserts the paper's shape: once the working set exceeds the pool,
SIAS-V delivers clearly higher NOTPM and lower response time than SI.
"""

from __future__ import annotations

from repro.common import units
from repro.experiments import harness, tpcc_ssd

from conftest import BENCH_SCALE, run_once


def test_f3_ssd_raid2(benchmark, out_dir):
    result = run_once(
        benchmark,
        lambda: tpcc_ssd.run(setup=harness.ssd_raid2(pool_pages=64),
                             warehouse_counts=(2, 5),
                             duration_usec=5 * units.SEC,
                             scale=BENCH_SCALE))
    (out_dir / "f3_ssd_raid2.txt").write_text(result.table())
    pressured = result.points[-1]
    assert pressured.sias_notpm > pressured.si_notpm
    assert pressured.sias_rt_sec <= pressured.si_rt_sec
