"""Ablation A2: flush-threshold sweep (fill degree → writes and space).

Asserts the paper's monotone trade: higher fill targets pack pages denser
and cut both write volume and device footprint; t1 (eager) never beats the
dense t2 configurations.
"""

from __future__ import annotations

from repro.common import units
from repro.experiments import ablation_threshold

from conftest import BENCH_SCALE, run_once


def test_a2_threshold(benchmark, out_dir):
    result = run_once(
        benchmark,
        lambda: ablation_threshold.run(warehouses=3,
                                       duration_usec=6 * units.SEC,
                                       fill_targets=(0.25, 0.95),
                                       scale=BENCH_SCALE))
    (out_dir / "a2_threshold.txt").write_text(result.table())
    by_label = {p.label: p for p in result.points}
    sparse = by_label["t2 fill=0.25"]
    dense = by_label["t2 fill=0.95"]
    assert dense.avg_fill > sparse.avg_fill
    assert dense.sealed_pages <= sparse.sealed_pages
    assert dense.write_mib <= sparse.write_mib
