"""Exhibit F1/F2: blocktrace I/O-pattern figures (SIAS-V vs SI on SSD).

Regenerates the paper's pair of blocktrace figures and asserts their shape:
SIAS-V issues far fewer writes with near-perfect append (swimlane) locality;
SI mixes scattered reads and writes.
"""

from __future__ import annotations

from repro.common import units
from repro.experiments import blocktrace

from conftest import BENCH_SCALE, run_once


def test_f1_f2_blocktrace(benchmark, out_dir):
    result = run_once(
        benchmark,
        lambda: blocktrace.run(warehouses=3,
                               duration_usec=6 * units.SEC,
                               scale=BENCH_SCALE))
    (out_dir / "f1_f2_blocktrace.txt").write_text(result.render())
    by_engine = {row[0]: row for row in result.rows}
    sias, si = by_engine["sias-v"], by_engine["si"]
    assert sias[2] < si[2], "SIAS-V must issue fewer writes"
    assert sias[5] >= si[5], "SIAS-V writes must be more sequential"
