"""Ablation A6: recency (SIAS-V) vs transaction (SI-CV) co-location.

Asserts the placement trade: transaction co-location packs one
transaction's versions onto (near) one page per relation, while recency
placement smears them across concurrently-filling pages.
"""

from __future__ import annotations

from repro.common import units
from repro.experiments import ablation_colocation

from conftest import BENCH_SCALE, run_once


def test_a6_colocation(benchmark, out_dir):
    result = run_once(
        benchmark,
        lambda: ablation_colocation.run(warehouses=3,
                                        duration_usec=6 * units.SEC,
                                        scale=BENCH_SCALE))
    (out_dir / "a6_colocation.txt").write_text(result.table())
    assert result.pages_per_txn["transaction"] < \
        result.pages_per_txn["recency"]
    assert result.pages_per_txn["transaction"] < 1.5
