"""Exhibit T1: write amount (MiB) and reduction (%) — SI vs SIAS-t1/t2.

Regenerates the paper's Table 1 rows (at bench scale) and asserts the
ordering the paper reports: SIAS-t2 writes least, SIAS-t1 in between,
SI most — with a substantial reduction for t2.
"""

from __future__ import annotations

from repro.common import units
from repro.experiments import write_reduction

from conftest import BENCH_SCALE, run_once


def test_t1_write_reduction(benchmark, out_dir):
    result = run_once(
        benchmark,
        lambda: write_reduction.run(warehouses=3,
                                    durations_usec=(6 * units.SEC,),
                                    scale=BENCH_SCALE))
    (out_dir / "t1_write_reduction.txt").write_text(result.table())
    (_t, si_mib, t1_mib, t2_mib, red_t1, red_t2) = result.rows[0]
    assert t2_mib <= t1_mib < si_mib
    assert float(red_t2.rstrip("%")) >= 50.0, \
        f"expected a large t2 reduction, got {red_t2}"
