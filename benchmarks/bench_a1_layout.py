"""Ablation A1: NSM vs column-vector append-page layout (the "V").

Asserts the vector layout's visibility sweep touches a small fraction of
the bytes the row layout must read.
"""

from __future__ import annotations

from repro.common import units
from repro.experiments import ablation_layout

from conftest import BENCH_SCALE, run_once


def test_a1_layout(benchmark, out_dir):
    result = run_once(
        benchmark,
        lambda: ablation_layout.run(warehouses=3,
                                    duration_usec=6 * units.SEC,
                                    scale=BENCH_SCALE))
    (out_dir / "a1_layout.txt").write_text(result.table())
    assert result.vector_saving > 0.4, \
        f"vector sweep saving too small: {result.vector_saving:.2f}"
