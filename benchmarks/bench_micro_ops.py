"""Micro-benchmarks: per-operation costs of the core building blocks.

Unlike the exhibit benches (single end-to-end simulations), these measure
hot kernels with proper repetition: engine insert/update/read, VIDmap
access, B⁺-tree operations, page codecs and the FTL write path.  They give
the wall-clock profile of the library itself rather than of the simulated
hardware.
"""

from __future__ import annotations

import itertools

import pytest

from repro.common.config import PageLayout
from repro.db.database import EngineKind
from repro.core.vidmap import VidMap
from repro.index.btree import BPlusTree
from repro.pages.append_page import AppendPage
from repro.pages.base import Page
from repro.pages.layout import Tid, VersionRecord
from repro.storage.ftl import PageMappedFtl
from repro.common.config import FlashConfig
from repro.common import units

from repro.common.config import BufferConfig, SystemConfig
from repro.db.catalog import IndexDef
from repro.db.database import Database
from repro.db.schema import ColType, Schema


def _accounts_db(kind: EngineKind) -> Database:
    config = SystemConfig(flash=FlashConfig(capacity_bytes=64 * units.MIB),
                          buffer=BufferConfig(pool_pages=512),
                          extent_pages=16)
    db = Database.on_flash(kind, config)
    schema = Schema.of(("id", ColType.INT), ("owner", ColType.STR),
                       ("balance", ColType.FLOAT))
    db.create_table("accounts", schema, indexes=[
        IndexDef("pk", ("id",), unique=True),
        IndexDef("by_owner", ("owner",)),
    ])
    return db


@pytest.fixture(params=[EngineKind.SIASV, EngineKind.SI],
                ids=["sias-v", "si"])
def loaded_db(request):
    db = _accounts_db(request.param)
    txn = db.begin()
    for i in range(2000):
        db.insert(txn, "accounts", (i, f"owner{i % 40}", float(i)))
    db.commit(txn)
    return db


def test_engine_insert(benchmark, loaded_db):
    counter = itertools.count(10_000)

    def insert_one():
        txn = loaded_db.begin()
        i = next(counter)
        loaded_db.insert(txn, "accounts", (i, "fresh", 0.0))
        loaded_db.commit(txn)

    benchmark(insert_one)


def test_engine_point_lookup(benchmark, loaded_db):
    keys = itertools.cycle(range(2000))

    def lookup_one():
        txn = loaded_db.begin()
        hits = loaded_db.lookup(txn, "accounts", "pk", next(keys))
        loaded_db.commit(txn)
        return hits

    assert len(benchmark(lookup_one)) == 1


def test_engine_update(benchmark, loaded_db):
    keys = itertools.cycle(range(2000))

    def update_one():
        txn = loaded_db.begin()
        key = next(keys)
        ref, row = loaded_db.lookup(txn, "accounts", "pk", key)[0]
        loaded_db.update(txn, "accounts", ref, (key, row[1], row[2] + 1))
        loaded_db.commit(txn)

    benchmark(update_one)


def test_vidmap_get_set(benchmark):
    vidmap = VidMap()
    for vid in range(100_000):
        vidmap.set(vid, Tid(vid // 100, vid % 100))
    vids = itertools.cycle(range(100_000))

    def one_roundtrip():
        vid = next(vids)
        tid = vidmap.get(vid)
        vidmap.set(vid, tid)

    benchmark(one_roundtrip)


def test_btree_insert_search(benchmark):
    tree = BPlusTree(order=64)
    for i in range(50_000):
        tree.insert(i, i)
    probe = itertools.cycle(range(0, 50_000, 7))

    def search_one():
        return tree.search(next(probe))

    benchmark(search_one)


def _full_append_page(layout: PageLayout) -> AppendPage:
    page = AppendPage(0, layout)
    i = 0
    record = VersionRecord(1, 0, None, False, b"x" * 120)
    while page.fits(record):
        page.append(VersionRecord(i, i, None, False, b"x" * 120))
        i += 1
    return page


@pytest.mark.parametrize("layout", [PageLayout.NSM, PageLayout.VECTOR],
                         ids=["nsm", "vector"])
def test_append_page_serialise(benchmark, layout):
    page = _full_append_page(layout)
    raw = benchmark(page.to_bytes)
    assert Page.from_bytes(raw).record_count == page.record_count


@pytest.mark.parametrize("layout", [PageLayout.NSM, PageLayout.VECTOR],
                         ids=["nsm", "vector"])
def test_append_page_decode_meta(benchmark, layout):
    """Sealed-page decode + visibility-only scan (the chain-walk pattern).

    The zero-copy codec makes this lazy: no payload bytes materialise.
    """
    page = _full_append_page(layout)
    raw = page.to_bytes()
    count = page.record_count

    def decode_and_meta_scan():
        decoded = Page.from_bytes(raw)
        return sum(ts for ts, _vid, _pred, _tomb in
                   (decoded.read_meta(slot) for slot in range(count)))

    benchmark(decode_and_meta_scan)


@pytest.mark.parametrize("layout", [PageLayout.NSM, PageLayout.VECTOR],
                         ids=["nsm", "vector"])
def test_append_page_decode_one_record(benchmark, layout):
    """Sealed-page decode + single record read (the point-lookup pattern)."""
    page = _full_append_page(layout)
    raw = page.to_bytes()
    slot = page.record_count // 2

    def decode_and_read():
        return Page.from_bytes(raw).read(slot).payload

    assert benchmark(decode_and_read) == b"x" * 120


def test_buffer_clock_install_evict(benchmark):
    """Clock-sweep churn: every install evicts (O(1) bookkeeping path)."""
    from repro.buffer.manager import BufferManager
    from repro.common.clock import SimClock
    from repro.storage.flash import FlashDevice
    from repro.storage.tablespace import Tablespace

    device = FlashDevice(SimClock(),
                         FlashConfig(capacity_bytes=64 * units.MIB))
    tablespace = Tablespace(device, extent_pages=64)
    buffer = BufferManager(tablespace, pool_pages=256)
    f = tablespace.create_file("bench")
    page = _full_append_page(PageLayout.VECTOR)
    # cycle far beyond the pool so nearly every install must evict
    page_nos = itertools.cycle(range(4096))
    for _ in range(256):  # warm the pool to capacity
        buffer.put_clean(f, next(page_nos), page)

    def install_one():
        buffer.put_clean(f, next(page_nos), page)

    benchmark(install_one)


def test_buffer_dirty_bookkeeping(benchmark):
    """bgwriter-style sweep: dirty_keys() + flush on a mostly-clean pool."""
    from repro.buffer.manager import BufferManager
    from repro.common.clock import SimClock
    from repro.storage.flash import FlashDevice
    from repro.storage.tablespace import Tablespace

    device = FlashDevice(SimClock(),
                         FlashConfig(capacity_bytes=64 * units.MIB))
    tablespace = Tablespace(device, extent_pages=64)
    buffer = BufferManager(tablespace, pool_pages=1024)
    f = tablespace.create_file("bench")
    page = _full_append_page(PageLayout.VECTOR)
    for i in range(1024):
        buffer.put_clean(f, i, page)
    marks = itertools.cycle(range(8))

    def tick():
        buffer.mark_dirty(f, next(marks))
        return buffer.flush_batch(buffer.dirty_keys()[:8])

    benchmark(tick)


def test_vidmap_scan_batched(benchmark):
    """VIDmap scan over a relation with predecessor chains (cold cache)."""
    from repro.core.scan import vidmap_scan

    db = _accounts_db(EngineKind.SIASV)
    txn = db.begin()
    for i in range(1000):
        db.insert(txn, "accounts", (i, f"owner{i % 40}", float(i)))
    db.commit(txn)
    for _round in range(3):  # grow version chains
        txn = db.begin()
        for i in range(0, 1000, 2):
            ref, row = db.lookup(txn, "accounts", "pk", i)[0]
            db.update(txn, "accounts", ref, (i, row[1], row[2] + 1))
        db.commit(txn)
    db.checkpointer.run_now()
    engine = db.table("accounts").engine

    def scan_cold():
        db.buffer.invalidate_all()
        txn = db.begin()
        count = sum(1 for _ in vidmap_scan(engine, txn))
        db.commit(txn)
        return count

    assert benchmark(scan_cold) == 1000


def test_ftl_host_write(benchmark):
    ftl = PageMappedFtl(FlashConfig(capacity_bytes=64 * units.MIB))
    lpns = itertools.cycle(range(1024))

    def write_one():
        ftl.host_write(next(lpns))

    benchmark(write_one)
