"""Micro-benchmarks: per-operation costs of the core building blocks.

Unlike the exhibit benches (single end-to-end simulations), these measure
hot kernels with proper repetition: engine insert/update/read, VIDmap
access, B⁺-tree operations, page codecs and the FTL write path.  They give
the wall-clock profile of the library itself rather than of the simulated
hardware.
"""

from __future__ import annotations

import itertools

import pytest

from repro.common.config import PageLayout
from repro.db.database import EngineKind
from repro.core.vidmap import VidMap
from repro.index.btree import BPlusTree
from repro.pages.append_page import AppendPage
from repro.pages.base import Page
from repro.pages.layout import Tid, VersionRecord
from repro.storage.ftl import PageMappedFtl
from repro.common.config import FlashConfig
from repro.common import units

from repro.common.config import BufferConfig, SystemConfig
from repro.db.catalog import IndexDef
from repro.db.database import Database
from repro.db.schema import ColType, Schema


def _accounts_db(kind: EngineKind) -> Database:
    config = SystemConfig(flash=FlashConfig(capacity_bytes=64 * units.MIB),
                          buffer=BufferConfig(pool_pages=512),
                          extent_pages=16)
    db = Database.on_flash(kind, config)
    schema = Schema.of(("id", ColType.INT), ("owner", ColType.STR),
                       ("balance", ColType.FLOAT))
    db.create_table("accounts", schema, indexes=[
        IndexDef("pk", ("id",), unique=True),
        IndexDef("by_owner", ("owner",)),
    ])
    return db


@pytest.fixture(params=[EngineKind.SIASV, EngineKind.SI],
                ids=["sias-v", "si"])
def loaded_db(request):
    db = _accounts_db(request.param)
    txn = db.begin()
    for i in range(2000):
        db.insert(txn, "accounts", (i, f"owner{i % 40}", float(i)))
    db.commit(txn)
    return db


def test_engine_insert(benchmark, loaded_db):
    counter = itertools.count(10_000)

    def insert_one():
        txn = loaded_db.begin()
        i = next(counter)
        loaded_db.insert(txn, "accounts", (i, "fresh", 0.0))
        loaded_db.commit(txn)

    benchmark(insert_one)


def test_engine_point_lookup(benchmark, loaded_db):
    keys = itertools.cycle(range(2000))

    def lookup_one():
        txn = loaded_db.begin()
        hits = loaded_db.lookup(txn, "accounts", "pk", next(keys))
        loaded_db.commit(txn)
        return hits

    assert len(benchmark(lookup_one)) == 1


def test_engine_update(benchmark, loaded_db):
    keys = itertools.cycle(range(2000))

    def update_one():
        txn = loaded_db.begin()
        key = next(keys)
        ref, row = loaded_db.lookup(txn, "accounts", "pk", key)[0]
        loaded_db.update(txn, "accounts", ref, (key, row[1], row[2] + 1))
        loaded_db.commit(txn)

    benchmark(update_one)


def test_vidmap_get_set(benchmark):
    vidmap = VidMap()
    for vid in range(100_000):
        vidmap.set(vid, Tid(vid // 100, vid % 100))
    vids = itertools.cycle(range(100_000))

    def one_roundtrip():
        vid = next(vids)
        tid = vidmap.get(vid)
        vidmap.set(vid, tid)

    benchmark(one_roundtrip)


def test_btree_insert_search(benchmark):
    tree = BPlusTree(order=64)
    for i in range(50_000):
        tree.insert(i, i)
    probe = itertools.cycle(range(0, 50_000, 7))

    def search_one():
        return tree.search(next(probe))

    benchmark(search_one)


@pytest.mark.parametrize("layout", [PageLayout.NSM, PageLayout.VECTOR],
                         ids=["nsm", "vector"])
def test_append_page_serialise(benchmark, layout):
    page = AppendPage(0, layout)
    i = 0
    record = VersionRecord(1, 0, None, False, b"x" * 120)
    while page.fits(record):
        page.append(VersionRecord(i, i, None, False, b"x" * 120))
        i += 1
    raw = benchmark(page.to_bytes)
    assert Page.from_bytes(raw).record_count == page.record_count


def test_ftl_host_write(benchmark):
    ftl = PageMappedFtl(FlashConfig(capacity_bytes=64 * units.MIB))
    lpns = itertools.cycle(range(1024))

    def write_one():
        ftl.host_write(next(lpns))

    benchmark(write_one)
