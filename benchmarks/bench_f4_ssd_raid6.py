"""Exhibit F4: TPC-C throughput + response time on the six-SSD stripe.

The bigger box (more channels, larger pool) tolerates more load before
degrading; the bench asserts SIAS-V sustains at least SI's throughput at
every swept point and wins under pressure.
"""

from __future__ import annotations

from repro.common import units
from repro.experiments import harness, tpcc_ssd

from conftest import BENCH_SCALE, run_once


def test_f4_ssd_raid6(benchmark, out_dir):
    result = run_once(
        benchmark,
        lambda: tpcc_ssd.run(setup=harness.ssd_raid6(pool_pages=96),
                             warehouse_counts=(2, 6),
                             duration_usec=5 * units.SEC,
                             scale=BENCH_SCALE))
    (out_dir / "f4_ssd_raid6.txt").write_text(result.table())
    pressured = result.points[-1]
    assert pressured.sias_notpm > pressured.si_notpm
    # more members tolerate the same load with headroom: response times of
    # SIAS stay in the same band across the sweep
    assert result.points[0].sias_rt_sec < 0.1
    assert pressured.sias_rt_sec < 0.1
