"""Ablation A3: VIDmap-mediated scan vs. traditional full-relation scan.

Asserts the selective-I/O claim: the VIDmap scan must return exactly the
same rows while issuing no more device reads than the full scan.
"""

from __future__ import annotations

from repro.common import units
from repro.experiments import ablation_scan

from conftest import BENCH_SCALE, run_once


def test_a3_scan(benchmark, out_dir):
    result = run_once(
        benchmark,
        lambda: ablation_scan.run(warehouses=3,
                                  duration_usec=6 * units.SEC,
                                  scale=BENCH_SCALE))
    (out_dir / "a3_scan.txt").write_text(result.table())
    assert result.rows_equal, "both strategies must return identical rows"
    assert result.vidmap_reads < result.full_reads
