"""Ablation A4: flash endurance — erases and write amplification.

On a deliberately small SSD under fixed work, SIAS-V must cause no more
block erases and no more write amplification than SI.
"""

from __future__ import annotations

from repro.experiments import endurance

from conftest import BENCH_SCALE, run_once


def test_a4_endurance(benchmark, out_dir):
    result = run_once(
        benchmark,
        lambda: endurance.run(warehouses=1, capacity_mib=10,
                              num_transactions=3000, scale=BENCH_SCALE))
    (out_dir / "a4_endurance.txt").write_text(result.table())
    assert result.erases["sias-v"] <= result.erases["si"]
    assert result.write_amp["sias-v"] <= result.write_amp["si"] + 0.05
    by_engine = {row[0]: row for row in result.rows}
    assert by_engine["sias-v"][1] < by_engine["si"][1]  # host writes
