#!/usr/bin/env python3
"""Order-entry benchmark: SIAS-V vs classical SI on simulated flash.

Runs the TPC-C-style workload (the paper's DBT2 substitute) against both
storage engines on identical simulated SSD hardware and prints the headline
comparison the paper's demo made: throughput (NOTPM), response time, device
write volume, and the write-pattern quality.

Run:  python examples/order_entry_benchmark.py [warehouses] [seconds]
"""

from __future__ import annotations

import sys

from repro.common import units
from repro.db.database import EngineKind
from repro.experiments import harness
from repro.experiments.render import format_pct, format_table
from repro.storage.trace import TraceRecorder, swimlane_locality
from repro.workload.driver import DriverConfig


def main(warehouses: int = 6, seconds: int = 10) -> None:
    rows = []
    runs = {}
    for engine in (EngineKind.SIASV, EngineKind.SI):
        trace = TraceRecorder()
        run = harness.run_tpcc(
            engine, harness.ssd_single(), warehouses,
            seconds * units.SEC, trace=trace,
            driver_config=DriverConfig(
                clients=8, maintenance_interval_usec=5 * units.SEC))
        runs[engine] = run
        summary = run.metrics.summary()
        rows.append([
            engine.value,
            round(summary.notpm),
            round(summary.mean_response_sec * 1000, 1),
            round(summary.p90_response_sec * 1000, 1),
            summary.serialization_aborts,
            round(run.write_mib, 1),
            round(units.mib(run.device_delta.read_bytes), 1),
            round(swimlane_locality(trace), 2),
        ])
    print(format_table(
        f"TPC-C-style order entry: {warehouses} warehouses, "
        f"{seconds} simulated seconds, one SSD",
        ["engine", "NOTPM", "mean rt (ms)", "p90 rt (ms)", "conflicts",
         "write MiB", "read MiB", "write locality"],
        rows))
    sias, si = runs[EngineKind.SIASV], runs[EngineKind.SI]
    if si.write_mib:
        print(f"SIAS-V wrote {format_pct(1 - sias.write_mib / si.write_mib)}"
              " less data for MORE completed work "
              f"({sias.metrics.commits()} vs {si.metrics.commits()} "
              "commits).")


if __name__ == "__main__":
    wh = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    secs = int(sys.argv[2]) if len(sys.argv) > 2 else 10
    main(wh, secs)
