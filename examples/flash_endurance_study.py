#!/usr/bin/env python3
"""Flash endurance study: what the SSD experiences under each engine.

Runs the same update-heavy workload against SIAS-V and classical SI on a
deliberately small simulated SSD, then opens up the device: host writes vs
internal programs (write amplification), block erases, per-block wear
spread, and foreground-GC stalls.  Finishes with the two blocktrace ASCII
figures so the write-pattern difference is visible, not just counted.

Run:  python examples/flash_endurance_study.py
"""

from __future__ import annotations

from repro.common import units
from repro.experiments import blocktrace, endurance
from repro.workload.tpcc_schema import TpccScale

SCALE = TpccScale(districts_per_warehouse=5, customers_per_district=15,
                  items=100, stock_per_warehouse=100,
                  initial_orders_per_district=5)


def main() -> None:
    print("1/2  Device-internal view (small SSD, fixed work) ...\n")
    result = endurance.run(warehouses=2, capacity_mib=16,
                           num_transactions=8000, scale=SCALE)
    print(result.table())
    sias_erases = result.erases["sias-v"]
    si_erases = result.erases["si"]
    print(f"Block erases: SIAS-V {sias_erases} vs SI {si_erases} — every "
          "erase is wear, and the spec'd endurance budget is per block.\n")

    print("2/2  Blocktrace figures (what blktrace would show) ...\n")
    figures = blocktrace.run(warehouses=4, duration_usec=10 * units.SEC,
                             scale=SCALE)
    print(figures.figures["sias-v"])
    print(figures.figures["si"])
    print(figures.table())
    print("Reading the figures: SIAS-V's writes form per-relation append "
          "swimlanes over a read-mostly scatter;\nSI mixes reads with "
          "writes smeared across the whole address range (in-place "
          "invalidations + FSM placement).")


if __name__ == "__main__":
    main()
