#!/usr/bin/env python3
"""Regenerate every table and figure of the SIAS-V evaluation.

Runs all exhibits (F1/F2 blocktraces, T1 write reduction, T2 space, F3/F4
SSD-RAID throughput sweeps, T3 HDD table, A1–A4 ablations) at a moderate
scale and writes each rendered table/figure into ``RESULTS/``, plus a
combined ``RESULTS/summary.txt``.  EXPERIMENTS.md documents how each output
compares to the paper.

Run:  python examples/reproduce_paper.py [--quick]

``--quick`` uses bench-sized parameters (~2 minutes); the default moderate
scale takes on the order of 15–30 minutes of wall time.
"""

from __future__ import annotations

import pathlib
import sys
import time

from repro.common import units
from repro.experiments import (
    ablation_colocation,
    ablation_layout,
    ablation_noftl,
    ablation_scan,
    ablation_threshold,
    blocktrace,
    endurance,
    harness,
    space,
    tolerable_load,
    tpcc_hdd,
    tpcc_ssd,
    write_reduction,
)
from repro.workload.tpcc_schema import TpccScale

RESULTS = pathlib.Path(__file__).resolve().parents[1] / "RESULTS"

MODERATE = dict(
    scale=TpccScale(),       # 10 districts, 30 customers/district, 200 items
    blocktrace_wh=10, blocktrace_usec=30 * units.SEC,
    t1_wh=10, t1_durations=(30 * units.SEC, 45 * units.SEC,
                            90 * units.SEC),
    t2_wh=10, t2_usec=30 * units.SEC,
    sweep_wh=(4, 8, 16, 24), sweep_usec=15 * units.SEC,
    hdd_wh=(3, 6, 9, 12), hdd_usec=15 * units.SEC,
    ablation_wh=8, ablation_usec=15 * units.SEC,
    endurance_txns=12_000, endurance_mib=20,
    load_clients=(4, 8, 16, 24, 32),
)

QUICK = dict(
    scale=TpccScale(districts_per_warehouse=4, customers_per_district=10,
                    items=50, stock_per_warehouse=50,
                    initial_orders_per_district=5),
    blocktrace_wh=3, blocktrace_usec=6 * units.SEC,
    t1_wh=3, t1_durations=(6 * units.SEC,),
    t2_wh=3, t2_usec=6 * units.SEC,
    sweep_wh=(2, 5), sweep_usec=5 * units.SEC,
    hdd_wh=(2, 4), hdd_usec=5 * units.SEC,
    ablation_wh=3, ablation_usec=6 * units.SEC,
    endurance_txns=3000, endurance_mib=10,
    load_clients=(4, 16),
)


def main(quick: bool = False) -> None:
    p = QUICK if quick else MODERATE
    RESULTS.mkdir(exist_ok=True)
    summary: list[str] = []

    def emit(name: str, text: str) -> None:
        (RESULTS / f"{name}.txt").write_text(text)
        summary.append(text)
        print(text)

    t0 = time.time()
    print("== F1/F2: blocktrace figures ==")
    bt = blocktrace.run(warehouses=p["blocktrace_wh"],
                        duration_usec=p["blocktrace_usec"],
                        scale=p["scale"])
    emit("f1_f2_blocktrace", bt.render())

    print("== T1: write amount & reduction ==")
    wr = write_reduction.run(warehouses=p["t1_wh"],
                             durations_usec=p["t1_durations"],
                             scale=p["scale"])
    emit("t1_write_reduction", wr.table())

    print("== T2: space consumption ==")
    sp = space.run(warehouses=p["t2_wh"], duration_usec=p["t2_usec"],
                   scale=p["scale"])
    emit("t2_space", sp.table())

    print("== F3: throughput sweep, 2-SSD stripe ==")
    f3 = tpcc_ssd.run(setup=harness.ssd_raid2(),
                      warehouse_counts=p["sweep_wh"],
                      duration_usec=p["sweep_usec"], scale=p["scale"])
    emit("f3_ssd_raid2", f3.table())

    print("== F4: throughput sweep, 6-SSD stripe ==")
    f4 = tpcc_ssd.run(setup=harness.ssd_raid6(),
                      warehouse_counts=p["sweep_wh"],
                      duration_usec=p["sweep_usec"], scale=p["scale"])
    emit("f4_ssd_raid6", f4.table())

    print("== F5: tolerable load sweep ==")
    f5 = tolerable_load.run(warehouses=p["ablation_wh"],
                            client_counts=p["load_clients"],
                            duration_usec=p["sweep_usec"],
                            pool_pages=96, scale=p["scale"])
    emit("f5_tolerable_load", f5.table())

    print("== T3: TPC-C on HDD ==")
    t3 = tpcc_hdd.run(warehouse_counts=p["hdd_wh"],
                      duration_usec=p["hdd_usec"], scale=p["scale"])
    emit("t3_hdd", t3.table())

    print("== A1: page-layout ablation ==")
    a1 = ablation_layout.run(warehouses=p["ablation_wh"],
                             duration_usec=p["ablation_usec"],
                             scale=p["scale"])
    emit("a1_layout", a1.table())

    print("== A2: flush-threshold ablation ==")
    a2 = ablation_threshold.run(warehouses=p["ablation_wh"],
                                duration_usec=p["ablation_usec"],
                                scale=p["scale"])
    emit("a2_threshold", a2.table())

    print("== A3: scan-strategy ablation ==")
    a3 = ablation_scan.run(warehouses=p["ablation_wh"],
                           duration_usec=p["ablation_usec"],
                           scale=p["scale"])
    emit("a3_scan", a3.table())

    print("== A4: flash endurance ==")
    a4 = endurance.run(warehouses=2, capacity_mib=p["endurance_mib"],
                       num_transactions=p["endurance_txns"],
                       scale=p["scale"])
    emit("a4_endurance", a4.table())

    print("== A5: FTL vs NoFTL raw flash ==")
    a5 = ablation_noftl.run()
    emit("a5_noftl", a5.table())

    print("== A6: co-location policy ==")
    a6 = ablation_colocation.run(warehouses=p["ablation_wh"],
                                 duration_usec=p["ablation_usec"],
                                 scale=p["scale"])
    emit("a6_colocation", a6.table())

    (RESULTS / "summary.txt").write_text("\n".join(summary))
    print(f"\nAll exhibits written to {RESULTS}/ "
          f"({time.time() - t0:.0f}s wall)")


if __name__ == "__main__":
    main(quick="--quick" in sys.argv[1:])
