#!/usr/bin/env python3
"""TPC-C over the wire: the workload driver against a live ``repro`` server.

Boots a :class:`~repro.server.DatabaseServer` (SIAS-V on simulated flash)
on a background thread, then runs the *unchanged*
:class:`~repro.workload.driver.TpccDriver` — loader, transaction profiles,
simulated clock and all — through a :class:`~repro.client.RemoteDatabase`
over a real TCP socket.  At the end the client-side
:class:`~repro.workload.metrics.Metrics` are reconciled against the
server's own transaction counters: every commit and abort the driver saw
must exist server-side too, and no transaction may be left in flight.

Run:  PYTHONPATH=src python examples/networked_tpcc.py
"""

from __future__ import annotations

from repro.client import RemoteDatabase
from repro.common import units
from repro.db.database import Database, EngineKind
from repro.server import DatabaseServer, ServerConfig
from repro.workload.driver import DriverConfig, TpccDriver
from repro.workload.tpcc_data import TpccLoader
from repro.workload.tpcc_schema import TpccScale, create_tpcc_tables

#: Tiny scale so the demo finishes in seconds over loopback RPC.
DEMO_SCALE = TpccScale(districts_per_warehouse=2, customers_per_district=4,
                       items=10, stock_per_warehouse=10,
                       initial_orders_per_district=2)


def main(port: int = 0, transactions: int = 30, clients: int = 4,
         quiet: bool = False) -> dict:
    """Serve, load, drive, reconcile.  Returns the reconciled numbers."""
    def say(text: str) -> None:
        if not quiet:
            print(text, flush=True)

    db = Database.on_flash(EngineKind.SIASV)
    server = DatabaseServer(db, ServerConfig(
        port=port, max_in_flight=4, max_queue_depth=32,
        idle_timeout_sec=60.0))
    host, bound_port = server.start_in_background()
    say(f"server listening on {host}:{bound_port}")
    try:
        remote = RemoteDatabase.connect(host, bound_port, pool_size=clients)
        try:
            create_tpcc_tables(remote)
            load = TpccLoader(remote, scale=DEMO_SCALE).load(warehouses=1)
            say(f"loaded {load.rows} rows in {load.transactions} "
                f"transactions over the wire")

            before = remote.monitor_snapshot()
            driver = TpccDriver(
                remote, warehouses=1, scale=DEMO_SCALE,
                config=DriverConfig(
                    clients=clients,
                    maintenance_interval_usec=3600 * units.SEC))
            metrics = driver.run_transactions(transactions)
            summary = metrics.summary()
            say(f"driver: {summary.commits} commits, {summary.aborts} "
                f"aborts, {summary.notpm:.0f} NOTPM over "
                f"{summary.span_sec:.2f} sim-s")

            after = remote.monitor_snapshot()
            server_commits = after["txn_commits"] - before["txn_commits"]
            server_aborts = after["txn_aborts"] - before["txn_aborts"]
            say(f"server: {server_commits} commits, {server_aborts} aborts "
                f"in the same window; {after['txn_active']} still active")
            assert server_commits == summary.commits, \
                f"commit mismatch: server {server_commits} vs " \
                f"driver {summary.commits}"
            assert server_aborts == summary.aborts, \
                f"abort mismatch: server {server_aborts} vs " \
                f"driver {summary.aborts}"
            assert after["txn_active"] == 0, "driver left txns in flight"

            stats = remote.server_stats()
            say(f"service layer: {stats['admitted']} commands admitted, "
                f"{stats['shed_total']} shed, "
                f"{stats['sessions']['opened']} sessions")
            return {"summary": summary, "server_commits": server_commits,
                    "server_aborts": server_aborts, "stats": stats}
        finally:
            remote.close()
    finally:
        server.stop_in_background()
        say("server stopped cleanly")


if __name__ == "__main__":
    main()
