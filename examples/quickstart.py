#!/usr/bin/env python3
"""Quickstart: a SIAS-V database in ten minutes.

Creates a SIAS-V database on a simulated flash SSD, walks through inserts,
snapshot-isolated reads, updates with implicit invalidation, a
first-updater-wins conflict, deletion via tombstones and garbage
collection — printing what the storage engine does underneath at each step.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import ColType, Database, EngineKind, IndexDef, Schema
from repro.common.errors import SerializationError


def main() -> None:
    db = Database.on_flash(EngineKind.SIASV)
    schema = Schema.of(("sku", ColType.INT), ("name", ColType.STR),
                       ("price", ColType.FLOAT))
    db.create_table("products", schema, indexes=[
        IndexDef("pk", ("sku",), unique=True),
        IndexDef("by_name", ("name",)),
    ])
    engine = db.table("products").engine

    # --- insert -------------------------------------------------------------
    txn = db.begin()
    for sku, name, price in [(1, "keyboard", 49.0), (2, "mouse", 19.0),
                             (3, "monitor", 249.0)]:
        vid = db.insert(txn, "products", (sku, name, price))
        print(f"inserted sku={sku} -> VID {vid} "
              f"(entrypoint {engine.vidmap.get(vid)})")
    db.commit(txn)

    # --- snapshot isolation ---------------------------------------------------
    reader = db.begin()          # snapshot taken now
    writer = db.begin()
    (ref, row), = db.lookup(writer, "products", "pk", 2)
    db.update(writer, "products", ref, (2, "mouse", 24.0))
    db.commit(writer)
    (_, old_row), = db.lookup(reader, "products", "pk", 2)
    print(f"\nreader's snapshot still sees price {old_row[2]} "
          "(the update appended a new version; nothing was overwritten)")
    db.commit(reader)
    fresh = db.begin()
    (_, new_row), = db.lookup(fresh, "products", "pk", 2)
    print(f"a fresh transaction sees price {new_row[2]}")
    db.commit(fresh)

    # --- implicit invalidation: the version chain ------------------------------
    record, tid = engine.resolve_visible(fresh, ref)
    print(f"\nnewest version of VID {ref} lives at {tid}, "
          f"pred -> {record.pred} (the old version, untouched on its page)")

    # --- first-updater-wins ------------------------------------------------------
    t1, t2 = db.begin(), db.begin()
    (r1, row1), = db.lookup(t1, "products", "pk", 3)
    (r2, row2), = db.lookup(t2, "products", "pk", 3)
    db.update(t1, "products", r1, (3, "monitor", 229.0))
    try:
        db.update(t2, "products", r2, (3, "monitor", 199.0))
    except SerializationError as exc:
        print(f"\nsecond concurrent updater lost the race: {exc}")
        db.abort(t2)
    db.commit(t1)

    # --- delete + garbage collection ------------------------------------------------
    txn = db.begin()
    (ref, _), = db.lookup(txn, "products", "pk", 1)
    db.delete(txn, "products", ref)   # appends a tombstone version
    db.commit(txn)
    engine.store.seal_working_page()
    reports = db.maintenance()
    gc = reports["products"]
    print(f"\nGC: examined {gc.pages_examined} pages, discarded "
          f"{gc.records_discarded} dead versions, removed "
          f"{gc.items_removed} deleted item(s), reclaimed "
          f"{gc.pages_reclaimed} page(s)")

    # --- what reached the device ------------------------------------------------------
    db.shutdown()
    stats = db.data_device.stats
    print(f"\ndevice I/O for this whole session: {stats.writes} page "
          f"writes, {stats.reads} page reads "
          f"(simulated time {db.clock.now_sec * 1000:.2f} ms)")


if __name__ == "__main__":
    main()
