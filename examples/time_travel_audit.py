#!/usr/bin/env python3
"""Time-travel audit: reading history from SIAS-V version chains.

The paper notes that chronological version chains were pioneered by
Postgres' TimeTravel.  Because SIAS-V never destroys a superseded version
until GC reclaims it, an auditor holding an old snapshot can reconstruct
the exact state any concurrent reader saw — this example builds a small
banking ledger, mutates it under several transactions, and shows three
snapshots observing three consistent-but-different worlds, then walks a raw
version chain to print an item's full history.

Run:  python examples/time_travel_audit.py
"""

from __future__ import annotations

from repro import ColType, Database, EngineKind, IndexDef, Schema


def total(db: Database, txn) -> float:
    return sum(row[2] for _ref, row in db.scan(txn, "ledger"))


def main() -> None:
    db = Database.on_flash(EngineKind.SIASV)
    schema = Schema.of(("acct", ColType.INT), ("owner", ColType.STR),
                       ("balance", ColType.FLOAT))
    db.create_table("ledger", schema,
                    indexes=[IndexDef("pk", ("acct",), unique=True)])

    txn = db.begin()
    refs = {acct: db.insert(txn, "ledger", (acct, owner, 1000.0))
            for acct, owner in [(1, "alice"), (2, "bob"), (3, "carol")]}
    db.commit(txn)

    snapshots = []
    snapshots.append(("t0: after funding", db.begin()))

    # transfer 1: alice -> bob 250
    txn = db.begin()
    a = db.read(txn, "ledger", refs[1])
    b = db.read(txn, "ledger", refs[2])
    db.update(txn, "ledger", refs[1], (1, "alice", a[2] - 250))
    db.update(txn, "ledger", refs[2], (2, "bob", b[2] + 250))
    db.commit(txn)
    snapshots.append(("t1: after alice->bob 250", db.begin()))

    # transfer 2: bob -> carol 500
    txn = db.begin()
    b = db.read(txn, "ledger", refs[2])
    c = db.read(txn, "ledger", refs[3])
    db.update(txn, "ledger", refs[2], (2, "bob", b[2] - 500))
    db.update(txn, "ledger", refs[3], (3, "carol", c[2] + 500))
    db.commit(txn)
    snapshots.append(("t2: after bob->carol 500", db.begin()))

    print("Three auditors, three snapshots, one database:\n")
    for label, snap in snapshots:
        rows = sorted(row for _ref, row in db.scan(snap, "ledger"))
        balances = ", ".join(f"{r[1]}={r[2]:.0f}" for r in rows)
        print(f"  {label:28s} {balances}   "
              f"(invariant: total={total(db, snap):.0f})")
        assert total(db, snap) == 3000.0  # conservation under every snapshot

    # walk bob's raw version chain, newest to oldest
    engine = db.table("ledger").engine
    codec = db.table("ledger").codec
    print("\nBob's version chain (newest first):")
    tid = engine.vidmap.get(refs[2])
    while tid is not None:
        record = engine.store.read(tid)
        row = codec.decode(record.payload)
        print(f"  {tid} created by txn {record.create_ts}: "
              f"balance={row[2]:.0f}")
        tid = record.pred

    for _label, snap in snapshots:
        db.commit(snap)

    # a last transfer after the auditors left, then GC reclaims history
    txn = db.begin()
    a = db.read(txn, "ledger", refs[1])
    c = db.read(txn, "ledger", refs[3])
    db.update(txn, "ledger", refs[1], (1, "alice", a[2] - 100))
    db.update(txn, "ledger", refs[3], (3, "carol", c[2] + 100))
    db.commit(txn)

    print("\nAfter the auditors finish, GC reclaims history:")
    engine.store.seal_working_page()
    report = db.maintenance()["ledger"]
    print(f"  discarded {report.records_discarded} superseded versions, "
          f"relocated {report.records_relocated} live ones, reclaimed "
          f"{report.pages_reclaimed} page(s) (horizon txid "
          f"{report.horizon})")


if __name__ == "__main__":
    main()
