"""SIAS-V engine semantics: versioning, visibility, conflicts, recovery."""

from __future__ import annotations

import pytest

from repro.common.errors import (
    NoSuchItemError,
    SerializationError,
    TombstoneError,
)
from repro.core.scan import full_relation_scan, vidmap_scan


def _commit(txn_mgr, txn):
    txn_mgr.commit(txn)


class TestInsertRead:
    def test_insert_assigns_sequential_vids(self, sias_engine, txn_mgr):
        txn = txn_mgr.begin()
        vids = [sias_engine.insert(txn, b"r%d" % i) for i in range(3)]
        assert vids == [0, 1, 2]
        _commit(txn_mgr, txn)

    def test_own_insert_visible_before_commit(self, sias_engine, txn_mgr):
        txn = txn_mgr.begin()
        vid = sias_engine.insert(txn, b"mine")
        assert sias_engine.read(txn, vid) == b"mine"
        _commit(txn_mgr, txn)

    def test_uncommitted_invisible_to_others(self, sias_engine, txn_mgr):
        writer = txn_mgr.begin()
        vid = sias_engine.insert(writer, b"secret")
        reader = txn_mgr.begin()
        assert sias_engine.read(reader, vid) is None
        _commit(txn_mgr, writer)
        _commit(txn_mgr, reader)

    def test_committed_visible_to_later_txns(self, sias_engine, txn_mgr):
        writer = txn_mgr.begin()
        vid = sias_engine.insert(writer, b"row")
        _commit(txn_mgr, writer)
        reader = txn_mgr.begin()
        assert sias_engine.read(reader, vid) == b"row"
        _commit(txn_mgr, reader)

    def test_concurrent_snapshot_never_sees(self, sias_engine, txn_mgr):
        reader = txn_mgr.begin()
        writer = txn_mgr.begin()
        vid = sias_engine.insert(writer, b"row")
        _commit(txn_mgr, writer)
        # writer was concurrent with reader's snapshot: stays invisible
        assert sias_engine.read(reader, vid) is None
        _commit(txn_mgr, reader)

    def test_unknown_vid_reads_none(self, sias_engine, txn_mgr):
        txn = txn_mgr.begin()
        assert sias_engine.read(txn, 999) is None
        _commit(txn_mgr, txn)


class TestUpdate:
    def _seed(self, engine, txn_mgr, payload=b"v0"):
        txn = txn_mgr.begin()
        vid = engine.insert(txn, payload)
        txn_mgr.commit(txn)
        return vid

    def test_update_chains_version(self, sias_engine, txn_mgr):
        vid = self._seed(sias_engine, txn_mgr)
        txn = txn_mgr.begin()
        sias_engine.update(txn, vid, b"v1")
        _commit(txn_mgr, txn)
        reader = txn_mgr.begin()
        record, _tid = sias_engine.resolve_visible(reader, vid)
        assert record.payload == b"v1"
        assert record.pred is not None  # chained to the old version
        _commit(txn_mgr, reader)

    def test_old_version_untouched(self, sias_engine, txn_mgr):
        """The heart of SIAS: invalidation writes nothing to the old version."""
        vid = self._seed(sias_engine, txn_mgr, b"old")
        old_tid = sias_engine.vidmap.get(vid)
        old_before = sias_engine.store.read(old_tid)
        txn = txn_mgr.begin()
        sias_engine.update(txn, vid, b"new")
        _commit(txn_mgr, txn)
        old_after = sias_engine.store.read(old_tid)
        assert old_after == old_before  # bit-identical, no xmax stamp

    def test_snapshot_reads_old_version_through_chain(self, sias_engine,
                                                      txn_mgr):
        vid = self._seed(sias_engine, txn_mgr, b"old")
        reader = txn_mgr.begin()
        writer = txn_mgr.begin()
        sias_engine.update(writer, vid, b"new")
        _commit(txn_mgr, writer)
        assert sias_engine.read(reader, vid) == b"old"
        _commit(txn_mgr, reader)
        late = txn_mgr.begin()
        assert sias_engine.read(late, vid) == b"new"
        _commit(txn_mgr, late)

    def test_first_updater_wins(self, sias_engine, txn_mgr):
        vid = self._seed(sias_engine, txn_mgr)
        t1 = txn_mgr.begin()
        t2 = txn_mgr.begin()
        sias_engine.update(t1, vid, b"t1")
        with pytest.raises(SerializationError):
            sias_engine.update(t2, vid, b"t2")
        _commit(txn_mgr, t1)
        txn_mgr.abort(t2)

    def test_loser_after_winner_commit_also_aborts(self, sias_engine,
                                                   txn_mgr):
        vid = self._seed(sias_engine, txn_mgr)
        t2 = txn_mgr.begin()   # snapshot taken before t1 commits
        t1 = txn_mgr.begin()
        sias_engine.update(t1, vid, b"t1")
        _commit(txn_mgr, t1)
        with pytest.raises(SerializationError):
            sias_engine.update(t2, vid, b"t2")
        txn_mgr.abort(t2)

    def test_sequential_updates_ok(self, sias_engine, txn_mgr):
        vid = self._seed(sias_engine, txn_mgr)
        for i in range(5):
            txn = txn_mgr.begin()
            sias_engine.update(txn, vid, b"v%d" % i)
            _commit(txn_mgr, txn)
        reader = txn_mgr.begin()
        assert sias_engine.read(reader, vid) == b"v4"
        _commit(txn_mgr, reader)

    def test_own_double_update_chains_on_own_version(self, sias_engine,
                                                     txn_mgr):
        vid = self._seed(sias_engine, txn_mgr)
        txn = txn_mgr.begin()
        sias_engine.update(txn, vid, b"a")
        sias_engine.update(txn, vid, b"b")
        assert sias_engine.read(txn, vid) == b"b"
        _commit(txn_mgr, txn)

    def test_update_unknown_vid(self, sias_engine, txn_mgr):
        txn = txn_mgr.begin()
        with pytest.raises(NoSuchItemError):
            sias_engine.update(txn, 42, b"x")
        txn_mgr.abort(txn)

    def test_abort_restores_entrypoint(self, sias_engine, txn_mgr):
        vid = self._seed(sias_engine, txn_mgr, b"keep")
        before = sias_engine.vidmap.get(vid)
        txn = txn_mgr.begin()
        sias_engine.update(txn, vid, b"discard")
        txn_mgr.abort(txn)
        assert sias_engine.vidmap.get(vid) == before
        reader = txn_mgr.begin()
        assert sias_engine.read(reader, vid) == b"keep"
        _commit(txn_mgr, reader)

    def test_aborted_insert_unreachable(self, sias_engine, txn_mgr):
        txn = txn_mgr.begin()
        vid = sias_engine.insert(txn, b"phantom")
        txn_mgr.abort(txn)
        assert sias_engine.vidmap.get(vid) is None
        reader = txn_mgr.begin()
        assert sias_engine.read(reader, vid) is None
        _commit(txn_mgr, reader)

    def test_update_after_winner_abort_succeeds(self, sias_engine, txn_mgr):
        vid = self._seed(sias_engine, txn_mgr, b"base")
        t1 = txn_mgr.begin()
        sias_engine.update(t1, vid, b"t1")
        txn_mgr.abort(t1)
        t2 = txn_mgr.begin()
        sias_engine.update(t2, vid, b"t2")  # no raise: lock was released
        _commit(txn_mgr, t2)
        reader = txn_mgr.begin()
        assert sias_engine.read(reader, vid) == b"t2"
        _commit(txn_mgr, reader)


class TestDelete:
    def _seed(self, engine, txn_mgr):
        txn = txn_mgr.begin()
        vid = engine.insert(txn, b"doomed")
        txn_mgr.commit(txn)
        return vid

    def test_delete_hides_item(self, sias_engine, txn_mgr):
        vid = self._seed(sias_engine, txn_mgr)
        txn = txn_mgr.begin()
        sias_engine.delete(txn, vid)
        _commit(txn_mgr, txn)
        reader = txn_mgr.begin()
        assert sias_engine.read(reader, vid) is None
        assert not sias_engine.exists(reader, vid)
        _commit(txn_mgr, reader)

    def test_tombstone_preserves_old_snapshot_reads(self, sias_engine,
                                                    txn_mgr):
        """The paper's reason for tombstones: older snapshots still read."""
        vid = self._seed(sias_engine, txn_mgr)
        old_reader = txn_mgr.begin()
        deleter = txn_mgr.begin()
        sias_engine.delete(deleter, vid)
        _commit(txn_mgr, deleter)
        assert sias_engine.read(old_reader, vid) == b"doomed"
        _commit(txn_mgr, old_reader)

    def test_update_after_delete_raises(self, sias_engine, txn_mgr):
        vid = self._seed(sias_engine, txn_mgr)
        txn = txn_mgr.begin()
        sias_engine.delete(txn, vid)
        _commit(txn_mgr, txn)
        late = txn_mgr.begin()
        with pytest.raises(TombstoneError):
            sias_engine.update(late, vid, b"zombie")
        txn_mgr.abort(late)

    def test_delete_conflict(self, sias_engine, txn_mgr):
        vid = self._seed(sias_engine, txn_mgr)
        t1 = txn_mgr.begin()
        t2 = txn_mgr.begin()
        sias_engine.delete(t1, vid)
        with pytest.raises(SerializationError):
            sias_engine.delete(t2, vid)
        _commit(txn_mgr, t1)
        txn_mgr.abort(t2)


class TestScan:
    def _populate(self, engine, txn_mgr, count=50):
        txn = txn_mgr.begin()
        vids = [engine.insert(txn, b"row%03d" % i) for i in range(count)]
        txn_mgr.commit(txn)
        return vids

    def test_vidmap_scan_returns_all_visible(self, sias_engine, txn_mgr):
        self._populate(sias_engine, txn_mgr)
        txn = txn_mgr.begin()
        rows = list(vidmap_scan(sias_engine, txn))
        assert len(rows) == 50
        assert [vid for vid, _ in rows] == sorted(vid for vid, _ in rows)
        _commit(txn_mgr, txn)

    def test_scan_sees_one_version_per_item(self, sias_engine, txn_mgr):
        vids = self._populate(sias_engine, txn_mgr, 10)
        for vid in vids[:5]:
            txn = txn_mgr.begin()
            sias_engine.update(txn, vid, b"updated")
            _commit(txn_mgr, txn)
        txn = txn_mgr.begin()
        rows = dict(vidmap_scan(sias_engine, txn))
        assert len(rows) == 10
        assert rows[vids[0]].payload == b"updated"
        assert rows[vids[9]].payload == b"row009"
        _commit(txn_mgr, txn)

    def test_scan_skips_tombstones(self, sias_engine, txn_mgr):
        vids = self._populate(sias_engine, txn_mgr, 10)
        txn = txn_mgr.begin()
        sias_engine.delete(txn, vids[3])
        _commit(txn_mgr, txn)
        txn = txn_mgr.begin()
        rows = dict(vidmap_scan(sias_engine, txn))
        assert vids[3] not in rows and len(rows) == 9
        _commit(txn_mgr, txn)

    def test_full_scan_equals_vidmap_scan(self, sias_engine, txn_mgr):
        vids = self._populate(sias_engine, txn_mgr, 30)
        for vid in vids[::3]:
            txn = txn_mgr.begin()
            sias_engine.update(txn, vid, b"u%d" % vid)
            _commit(txn_mgr, txn)
        sias_engine.store.seal_working_page()
        txn = txn_mgr.begin()
        via_vidmap = {(v, r.payload) for v, r in vidmap_scan(sias_engine,
                                                             txn)}
        via_full = {(v, r.payload)
                    for v, r in full_relation_scan(sias_engine, txn)}
        assert via_vidmap == via_full
        _commit(txn_mgr, txn)

    def test_scan_respects_snapshot(self, sias_engine, txn_mgr):
        vids = self._populate(sias_engine, txn_mgr, 5)
        reader = txn_mgr.begin()
        writer = txn_mgr.begin()
        sias_engine.update(writer, vids[0], b"newer")
        sias_engine.insert(writer, b"extra")
        _commit(txn_mgr, writer)
        rows = dict(vidmap_scan(sias_engine, reader))
        assert len(rows) == 5  # the extra item is invisible
        assert rows[vids[0]].payload == b"row000"
        _commit(txn_mgr, reader)


class TestChainStats:
    def test_chain_hops_counted(self, sias_engine, txn_mgr):
        txn = txn_mgr.begin()
        vid = sias_engine.insert(txn, b"v0")
        txn_mgr.commit(txn)
        old_reader = txn_mgr.begin()
        for i in range(4):
            txn = txn_mgr.begin()
            sias_engine.update(txn, vid, b"v%d" % (i + 1))
            txn_mgr.commit(txn)
        assert sias_engine.read(old_reader, vid) == b"v0"
        assert sias_engine.stats.max_chain_hops >= 4
        txn_mgr.commit(old_reader)


class TestRecovery:
    def test_reconstruct_matches_live_vidmap(self, sias_engine, txn_mgr):
        txn = txn_mgr.begin()
        vids = [sias_engine.insert(txn, b"r%d" % i) for i in range(40)]
        txn_mgr.commit(txn)
        for vid in vids[::2]:
            txn = txn_mgr.begin()
            sias_engine.update(txn, vid, b"u%d" % vid)
            txn_mgr.commit(txn)
        # in-flight txn at "crash" time must not leak into the rebuild
        pending = txn_mgr.begin()
        sias_engine.update(pending, vids[1], b"uncommitted")
        rebuilt = sias_engine.reconstruct_vidmap()
        live = dict(sias_engine.vidmap.entries())
        # the pending update is in the live map (as uncommitted entrypoint)
        # but reconstruct must resolve vids[1] to its committed version
        assert rebuilt.get(vids[1]) != live[vids[1]]
        for vid in vids:
            if vid == vids[1]:
                continue
            assert rebuilt.get(vid) == live[vid]
        txn_mgr.abort(pending)
        # after the abort the live map agrees with the rebuild completely
        assert dict(sias_engine.vidmap.entries()) == \
            dict(rebuilt.entries())
