"""Sealed-page byte-cache tests: seeding, invalidation, never-stale reads.

Clean frames remember their encoded page image (``BufferManager.cached_bytes``)
so sealed append pages never re-encode on writeback.  These tests pin the
invalidation contract: the cache must vanish the moment a frame is dirtied,
dropped (GC reclaim) or the pool is invalidated — a stale image must never
reach the device or a reader.
"""

from __future__ import annotations

from repro.buffer.manager import BufferManager
from repro.core.gc import GarbageCollector
from repro.pages.base import Page
from repro.pages.layout import HeapTuple, XMAX_INFINITY
from repro.pages.slotted import SlottedHeapPage


def _heap_page(page_no: int, tag: int = 0) -> SlottedHeapPage:
    page = SlottedHeapPage(page_no)
    page.insert(HeapTuple(tag, XMAX_INFINITY, False, b"x" * 16))
    return page


class TestByteCacheSeeding:
    def test_device_read_seeds_cache(self, buffer, tablespace):
        f = tablespace.create_file("f")
        buffer.put_dirty(f, 0, _heap_page(0, 5))
        buffer.flush_all()
        buffer.invalidate_all()
        page = buffer.get_page(f, 0)
        raw = buffer.cached_bytes(f, 0)
        assert raw is not None
        assert raw == page.to_bytes()

    def test_batched_read_seeds_cache(self, buffer, tablespace):
        f = tablespace.create_file("f")
        for i in range(4):
            buffer.put_dirty(f, i, _heap_page(i, i))
        buffer.flush_all()
        buffer.invalidate_all()
        buffer.get_pages(f, [0, 1, 2, 3])
        for i in range(4):
            assert buffer.cached_bytes(f, i) is not None

    def test_put_clean_with_raw_seeds_cache(self, buffer, tablespace):
        f = tablespace.create_file("f")
        page = _heap_page(0, 9)
        encoded = page.to_bytes()
        buffer.put_clean(f, 0, page, raw=encoded)
        assert buffer.cached_bytes(f, 0) == encoded

    def test_flush_populates_cache(self, buffer, tablespace):
        f = tablespace.create_file("f")
        page = _heap_page(0, 3)
        buffer.put_dirty(f, 0, page)
        assert buffer.cached_bytes(f, 0) is None  # dirty ⇒ no image
        buffer.flush_page(f, 0)
        assert buffer.cached_bytes(f, 0) == page.to_bytes()

    def test_seal_seeds_cache_with_written_image(self, sias_engine, txn_mgr):
        txn = txn_mgr.begin()
        for i in range(20):
            sias_engine.insert(txn, bytes([i]) * 400)
        txn_mgr.commit(txn)
        sias_engine.store.seal_working_page()
        store = sias_engine.store
        for page_no in store.sealed_page_nos():
            raw = store.buffer.cached_bytes(store.file_id, page_no)
            if raw is None:  # frame may have been evicted since sealing
                continue
            assert Page.from_bytes(raw).record_count == \
                store.buffer.get_page(store.file_id, page_no).record_count


class TestByteCacheInvalidation:
    def test_mark_dirty_drops_cached_image(self, buffer, tablespace):
        f = tablespace.create_file("f")
        page = _heap_page(0, 1)
        buffer.put_clean(f, 0, page, raw=page.to_bytes())
        buffer.mark_dirty(f, 0)
        assert buffer.cached_bytes(f, 0) is None

    def test_dirtied_page_writes_new_content(self, buffer, tablespace):
        """After mark_dirty the writeback must re-encode, not replay raw."""
        f = tablespace.create_file("f")
        page = _heap_page(0, 1)
        buffer.put_clean(f, 0, page, raw=page.to_bytes())
        page.insert(HeapTuple(2, XMAX_INFINITY, False, b"y" * 16))
        buffer.mark_dirty(f, 0)
        buffer.flush_all()
        buffer.invalidate_all()
        reread = buffer.get_page(f, 0)
        assert reread.read(0).xmin == 1
        assert reread.read(1).xmin == 2
        assert reread.read(1).payload == b"y" * 16

    def test_drop_then_reread_serves_device_content(self, buffer, tablespace):
        """drop() forgets the image; a re-read must decode device bytes."""
        f = tablespace.create_file("f")
        page_v1 = _heap_page(0, 1)
        buffer.put_clean(f, 0, page_v1, raw=page_v1.to_bytes())
        buffer.drop(f, 0)
        assert buffer.cached_bytes(f, 0) is None
        # the device now holds different content at the same slot
        page_v2 = _heap_page(0, 77)
        lba = tablespace.ensure_page(f, 0)
        tablespace.device.write_page(lba, page_v2.to_bytes())
        assert buffer.get_page(f, 0).read(0).xmin == 77

    def test_invalidate_all_never_serves_stale_bytes(self, buffer,
                                                     tablespace):
        f = tablespace.create_file("f")
        page_v1 = _heap_page(0, 1)
        buffer.put_clean(f, 0, page_v1, raw=page_v1.to_bytes())
        buffer.invalidate_all()
        assert buffer.cached_bytes(f, 0) is None
        page_v2 = _heap_page(0, 42)
        lba = tablespace.ensure_page(f, 0)
        tablespace.device.write_page(lba, page_v2.to_bytes())
        reread = buffer.get_page(f, 0)
        assert reread.read(0).xmin == 42
        assert buffer.cached_bytes(f, 0) == page_v2.to_bytes()

    def test_gc_reclaim_drops_frames_and_scan_survives(self, sias_engine,
                                                       txn_mgr):
        """GC drop + re-read: reclaimed pages leave the pool entirely and
        relocated survivors are re-read correctly afterwards."""
        txn = txn_mgr.begin()
        vids = [sias_engine.insert(txn, bytes([i]) * 1000) for i in range(5)]
        txn_mgr.commit(txn)
        for _ in range(4):
            txn = txn_mgr.begin()
            for vid in vids:
                sias_engine.update(txn, vid, b"x" * 1000)
            txn_mgr.commit(txn)
        sias_engine.store.seal_working_page()
        before = set(sias_engine.store.sealed_page_nos())
        report = GarbageCollector(sias_engine).collect()
        assert report.pages_reclaimed > 0
        reclaimed = before - set(sias_engine.store.sealed_page_nos())
        buffer = sias_engine.store.buffer
        for page_no in reclaimed:
            assert not buffer.is_cached(sias_engine.store.file_id, page_no)
            assert buffer.cached_bytes(sias_engine.store.file_id,
                                       page_no) is None
        # every item still resolves to its latest payload via fresh reads
        reader = txn_mgr.begin()
        for vid in vids:
            assert sias_engine.read(reader, vid) == b"x" * 1000
        txn_mgr.commit(reader)


class TestByteCacheInvariant:
    def test_dirty_frame_never_carries_image(self, buffer, tablespace):
        f = tablespace.create_file("f")
        buffer.put_dirty(f, 0, _heap_page(0))
        assert buffer.is_dirty(f, 0)
        assert buffer.cached_bytes(f, 0) is None

    def test_eviction_writeback_uses_cached_image(self, tablespace):
        """A clean frame's eviction must not change what is on the device."""
        buffer = BufferManager(tablespace, pool_pages=2)
        f = tablespace.create_file("f")
        page = _heap_page(0, 11)
        encoded = page.to_bytes()
        tablespace.device.write_page(tablespace.ensure_page(f, 0), encoded)
        buffer.put_clean(f, 0, page, raw=encoded)
        wb = buffer.stats.writebacks
        buffer.put_clean(f, 1, _heap_page(1))
        buffer.put_clean(f, 2, _heap_page(2))  # evicts page 0 eventually
        buffer.put_clean(f, 3, _heap_page(3))
        assert not buffer.is_cached(f, 0)
        assert buffer.stats.writebacks == wb  # clean victims: no writes
        assert buffer.get_page(f, 0).read(0).xmin == 11
