"""Experiment-runner tests: micro-sized runs asserting the paper's *shapes*.

Each exhibit runner executes with deliberately tiny parameters (seconds of
simulated time, a couple of warehouses) and the tests assert the qualitative
claims — who wins, in which direction — rather than absolute numbers.
"""

from __future__ import annotations

import pytest

from repro.common import units
from repro.db.database import EngineKind
from repro.experiments import (
    ablation_colocation,
    ablation_layout,
    ablation_scan,
    ablation_threshold,
    blocktrace,
    endurance,
    harness,
    space,
    tolerable_load,
    tpcc_hdd,
    tpcc_ssd,
    write_reduction,
)
from repro.experiments.render import format_table, to_csv
from repro.workload.driver import DriverConfig
from repro.workload.tpcc_schema import TpccScale

TINY = TpccScale(districts_per_warehouse=3, customers_per_district=8,
                 items=40, stock_per_warehouse=40,
                 initial_orders_per_district=4,
                 min_order_lines=2, max_order_lines=5)
SHORT = 4 * units.SEC


class TestRender:
    def test_format_table(self):
        out = format_table("title", ["a", "bb"], [[1, 2.5], ["x", 10_000.0]])
        assert "title" in out and "| a" in out.replace("|  a", "| a")
        assert "10,000" in out

    def test_to_csv(self):
        out = to_csv(["a", "b"], [[1, "x"]])
        assert out == "a,b\n1,x\n"


class TestHarness:
    def test_setups_have_expected_shapes(self):
        assert harness.ssd_raid2().members == 2
        assert harness.ssd_raid6().members == 6
        assert harness.hdd_single().kind == "hdd"

    def test_run_tpcc_excludes_load_io(self):
        run = harness.run_tpcc(EngineKind.SIASV, harness.ssd_single(),
                               warehouses=1, duration_usec=units.SEC,
                               scale=TINY)
        total = run.db.data_device.stats
        assert run.device_delta.writes <= total.writes
        assert run.metrics.commits() > 0
        assert run.space_bytes > 0

    def test_fixed_work_mode(self):
        run = harness.run_tpcc(EngineKind.SIASV, harness.ssd_single(),
                               warehouses=1, duration_usec=units.SEC,
                               scale=TINY, num_transactions=25)
        assert len(run.metrics.outcomes) >= 25


class TestBlocktrace:
    def test_shapes(self):
        result = blocktrace.run(warehouses=2, duration_usec=SHORT,
                                scale=TINY)
        by_engine = {row[0]: row for row in result.rows}
        sias, si = by_engine["sias-v"], by_engine["si"]
        # SIAS-V writes less and its writes are (much) more sequential
        assert sias[2] < si[2]
        assert sias[5] >= si[5]
        assert "Blocktrace" in result.figures["sias-v"]
        assert result.table().startswith("F1/F2")
        assert result.render()


class TestWriteReduction:
    def test_shape(self):
        result = write_reduction.run(warehouses=2,
                                     durations_usec=(SHORT,), scale=TINY)
        assert len(result.rows) == 1
        row = result.rows[0]
        si_mib, t1_mib, t2_mib = row[1], row[2], row[3]
        assert t2_mib <= t1_mib < si_mib  # the paper's ordering
        assert result.table().startswith("T1")


class TestSpace:
    def test_shape(self):
        result = space.run(warehouses=2, duration_usec=SHORT, scale=TINY)
        assert len(result.rows) == 3
        assert result.si_space_mib > 0
        assert result.t2_space_mib > 0
        assert "T2" in result.table()


class TestThroughputSweeps:
    def test_f3_sias_wins_under_buffer_pressure(self):
        # The SIAS-V advantage materialises when the working set exceeds
        # the pool (the paper's regime); fully cached runs are a tie.
        result = tpcc_ssd.run(setup=harness.ssd_raid2(pool_pages=48),
                              warehouse_counts=(4,),
                              duration_usec=5 * units.SEC, scale=TINY)
        point = result.points[0]
        assert point.sias_notpm > 1.1 * point.si_notpm
        assert point.sias_rt_sec <= point.si_rt_sec
        assert result.peak("sias").warehouses == 4
        assert "ssd-raid2" in result.table()

    def test_f4_uses_big_setup(self):
        result = tpcc_ssd.run_f4(warehouse_counts=(2,),
                                 duration_usec=SHORT, scale=TINY)
        assert result.setup_name == "ssd-raid6"
        assert result.points[0].sias_notpm > 0

    def test_f5_si_saturates_earlier(self):
        result = tolerable_load.run(warehouses=3, client_counts=(4, 16),
                                    duration_usec=SHORT, pool_pages=64,
                                    scale=TINY)
        low, high = result.points[0], result.points[-1]
        sias_growth = high.sias_notpm / max(1.0, low.sias_notpm)
        si_growth = high.si_notpm / max(1.0, low.si_notpm)
        assert sias_growth > si_growth
        assert high.si_p90_sec > high.sias_p90_sec
        assert result.tolerable("sias") >= result.tolerable("si")
        assert "F5" in result.table()

    def test_t3_hdd_sias_wins_hard(self):
        result = tpcc_hdd.run(warehouse_counts=(2,), duration_usec=SHORT,
                              scale=TINY)
        assert result.sias_notpm[0] > result.si_notpm[0]
        assert result.sias_rt[0] < result.si_rt[0]
        assert "T3" in result.table()


class TestAblations:
    def test_a1_vector_layout_saves_sweep_bytes(self):
        result = ablation_layout.run(warehouses=2, duration_usec=SHORT,
                                     scale=TINY)
        assert result.vector_saving > 0.3
        assert len(result.rows) == 2

    def test_a2_higher_fill_target_fewer_writes(self):
        result = ablation_threshold.run(warehouses=2, duration_usec=SHORT,
                                        fill_targets=(0.25, 0.95),
                                        scale=TINY)
        labels = [p.label for p in result.points]
        assert labels[0].startswith("t1")
        low = next(p for p in result.points if "0.25" in p.label)
        high = next(p for p in result.points if "0.95" in p.label)
        assert high.avg_fill > low.avg_fill
        assert high.write_mib <= low.write_mib
        assert high.sealed_pages <= low.sealed_pages

    def test_a3_vidmap_scan_more_selective(self):
        result = ablation_scan.run(warehouses=2, duration_usec=SHORT,
                                   scale=TINY)
        assert result.rows_equal
        assert result.vidmap_reads <= result.full_reads

    def test_a6_transaction_colocation_tighter(self):
        result = ablation_colocation.run(warehouses=2,
                                         duration_usec=SHORT,
                                         scale=TINY, clients=12)
        assert result.pages_per_txn["transaction"] <= \
            result.pages_per_txn["recency"]
        assert "A6" in result.table()

    def test_a4_sias_fewer_erases(self):
        result = endurance.run(warehouses=1, duration_usec=SHORT,
                               capacity_mib=10, num_transactions=2500,
                               scale=TINY)
        assert result.erases["sias-v"] <= result.erases["si"]
        assert result.write_amp["sias-v"] <= result.write_amp["si"] + 0.05
        by_engine = {row[0]: row for row in result.rows}
        assert by_engine["sias-v"][1] < by_engine["si"][1]  # host writes
