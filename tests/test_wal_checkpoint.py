"""Checkpoint-anchored WAL truncation: bounded redo, bounded history.

A completed checkpoint makes every pre-checkpoint commit durable on the
data device (working pages sealed, dirty pages flushed), so the WAL
records behind the redo anchor are dead weight for crash recovery.  The
checkpointer writes a CHECKPOINT record and truncates the history behind
the anchor — recovery work is then proportional to activity since the
last checkpoint, not to the database's lifetime.
"""

from __future__ import annotations

import struct

from repro.common import units
from repro.common.config import BufferConfig, FlashConfig, SystemConfig
from repro.db.catalog import IndexDef
from repro.db.database import Database, EngineKind
from repro.db.recovery import crash, recover
from repro.wal.records import WalRecordType
from tests.conftest import ACCOUNTS, SMALL_FLASH, make_accounts_db


def _small_wal_db(kind: EngineKind) -> Database:
    """An accounts database whose WAL ceiling is one device page."""
    config = SystemConfig(
        flash=SMALL_FLASH,
        buffer=BufferConfig(pool_pages=128, max_wal_bytes=8 * units.KIB),
        extent_pages=16,
    )
    db = Database.on_flash(kind, config)
    db.create_table("accounts", ACCOUNTS, indexes=[
        IndexDef("pk", ("id",), unique=True),
    ])
    return db


def _commit_rows(db, start: int, count: int) -> None:
    for i in range(start, start + count):
        txn = db.begin()
        db.insert(txn, "accounts", (i, f"u{i}", float(i)))
        db.commit(txn)


def _rows(db) -> dict[int, tuple]:
    txn = db.begin()
    state = {row[0]: row for _ref, row in db.scan(txn, "accounts")}
    db.commit(txn)
    return state


class TestCheckpointRecord:
    def test_checkpoint_appends_durable_record(self, sias_db):
        _commit_rows(sias_db, 0, 5)
        sias_db.checkpointer.run_now()
        ckpts = [r for r in sias_db.wal.durable_records()
                 if r.type is WalRecordType.CHECKPOINT]
        assert len(ckpts) == 1
        # the record carries the durable-horizon LSN in its payload
        (horizon,) = struct.unpack("<q", ckpts[0].payload)
        assert horizon > 0

    def test_checkpoint_truncates_history(self, sias_db):
        _commit_rows(sias_db, 0, 10)
        before = len(sias_db.wal.replay())
        sias_db.checkpointer.run_now()
        after = len(sias_db.wal.replay())
        # only the CHECKPOINT record itself remains (no txn was active)
        assert after < before
        assert all(r.type is WalRecordType.CHECKPOINT
                   for r in sias_db.wal.replay())

    def test_active_txn_anchors_the_checkpoint(self, sias_db):
        long_txn = sias_db.begin()
        sias_db.insert(long_txn, "accounts", (999, "long", 0.0))
        _commit_rows(sias_db, 0, 5)
        sias_db.checkpointer.run_now()
        # the active transaction's records must survive the truncation:
        # its versions may still sit in a volatile working page
        assert any(r.txid == long_txn.txid for r in sias_db.wal.replay())
        sias_db.commit(long_txn)
        crash(sias_db)
        recover(sias_db)
        assert 999 in _rows(sias_db)


class TestBoundedRedo:
    def test_history_bounded_as_workload_grows(self):
        db = _small_wal_db(EngineKind.SIASV)
        sizes = []
        for round_no in range(4):
            _commit_rows(db, round_no * 40, 40)
            db.tick()  # fires the size-triggered checkpoint
            sizes.append(len(db.wal.replay()))
        # 160 committed txns produced >320 records; the retained history
        # must not accumulate them all
        assert max(sizes) < 200
        assert db.checkpointer.checkpoints >= 1

    def test_redo_starts_at_last_checkpoint(self, sias_db):
        _commit_rows(sias_db, 0, 12)
        sias_db.checkpointer.run_now()
        _commit_rows(sias_db, 100, 3)
        before = _rows(sias_db)
        crash(sias_db)
        report = recover(sias_db)
        assert _rows(sias_db) == before
        # pre-checkpoint rows came back from sealed pages, not redo:
        # redo touched at most the post-checkpoint transactions
        assert report.engine_reports["accounts"].redo_applied <= 3

    def test_recovery_after_multiple_checkpoints(self):
        db = _small_wal_db(EngineKind.SIASV)
        for round_no in range(3):
            _commit_rows(db, round_no * 50, 50)
            db.tick()
        before = _rows(db)
        crash(db)
        recover(db)
        assert _rows(db) == before
        assert len(before) == 150

    def test_si_recovery_after_checkpoint_truncation(self):
        db = _small_wal_db(EngineKind.SI)
        _commit_rows(db, 0, 30)
        db.checkpointer.run_now()
        before = _rows(db)
        crash(db)
        recover(db)
        # the checkpoint flushed the heap, so nothing is lost
        assert _rows(db) == before
