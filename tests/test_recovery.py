"""Crash-recovery tests: durability semantics after simulated power loss.

The contract: everything a *committed* transaction wrote survives a crash
(commit forces the WAL); uncommitted work disappears; the SIAS-V in-memory
structures (VIDmap, working page, index trees) are fully rebuilt from the
immutable sealed pages plus WAL redo.
"""

from __future__ import annotations

import pytest

from repro.db.database import EngineKind
from repro.db.recovery import crash, recover
from repro.wal.records import WalRecordType
from tests.conftest import make_accounts_db


def _rows(db) -> dict[int, tuple]:
    txn = db.begin()
    state = {row[0]: row for _ref, row in db.scan(txn, "accounts")}
    db.commit(txn)
    return state


class TestWalDurability:
    def test_commit_makes_records_durable(self, sias_db):
        txn = sias_db.begin()
        sias_db.insert(txn, "accounts", (1, "a", 1.0))
        assert all(r.type is not WalRecordType.INSERT
                   for r in sias_db.wal.durable_records())
        sias_db.commit(txn)
        durable = sias_db.wal.durable_records()
        assert any(r.type is WalRecordType.INSERT for r in durable)
        assert any(r.type is WalRecordType.COMMIT for r in durable)

    def test_uncommitted_tail_not_durable(self, sias_db):
        txn = sias_db.begin()
        sias_db.insert(txn, "accounts", (1, "a", 1.0))
        # no commit: the INSERT sits in the volatile tail
        tail = [r for r in sias_db.wal.replay()
                if r.type is WalRecordType.INSERT]
        assert tail and tail[0] not in sias_db.wal.durable_records()

    def test_records_carry_relation_id(self, sias_db):
        txn = sias_db.begin()
        sias_db.insert(txn, "accounts", (1, "a", 1.0))
        sias_db.commit(txn)
        inserts = [r for r in sias_db.wal.durable_records()
                   if r.type is WalRecordType.INSERT]
        assert inserts[0].relation_id == \
            sias_db.table("accounts").relation_id


class TestSiasRecovery:
    def test_committed_data_survives(self, sias_db):
        txn = sias_db.begin()
        for i in range(30):
            sias_db.insert(txn, "accounts", (i, f"u{i}", float(i)))
        sias_db.commit(txn)
        before = _rows(sias_db)
        crash(sias_db)
        report = recover(sias_db)
        assert _rows(sias_db) == before
        assert report.index_entries_rebuilt > 0

    def test_working_page_versions_redone_from_wal(self, sias_db):
        """Versions that never reached a sealed page come back via redo."""
        txn = sias_db.begin()
        refs = [sias_db.insert(txn, "accounts", (i, "u", float(i)))
                for i in range(5)]
        sias_db.commit(txn)
        engine = sias_db.table("accounts").engine
        assert engine.store.stats.sealed_pages == 0  # all in working page
        before = _rows(sias_db)
        crash(sias_db)
        report = recover(sias_db)
        assert _rows(sias_db) == before
        assert report.engine_reports["accounts"].redo_applied >= 5

    def test_uncommitted_work_disappears(self, sias_db):
        txn = sias_db.begin()
        sias_db.insert(txn, "accounts", (1, "committed", 1.0))
        sias_db.commit(txn)
        doomed = sias_db.begin()
        sias_db.insert(doomed, "accounts", (2, "phantom", 2.0))
        hits = sias_db.lookup(doomed, "accounts", "pk", 1)
        sias_db.update(doomed, "accounts", hits[0][0],
                       (1, "mutated", 9.0))
        crash(sias_db)  # doomed never committed
        recover(sias_db)
        state = _rows(sias_db)
        assert state == {1: (1, "committed", 1.0)}

    def test_updates_recover_to_newest_committed(self, sias_db):
        txn = sias_db.begin()
        ref = sias_db.insert(txn, "accounts", (1, "v0", 0.0))
        sias_db.commit(txn)
        for i in range(1, 6):
            txn = sias_db.begin()
            sias_db.update(txn, "accounts", ref, (1, f"v{i}", float(i)))
            sias_db.commit(txn)
        crash(sias_db)
        recover(sias_db)
        assert _rows(sias_db)[1] == (1, "v5", 5.0)

    def test_deletes_survive(self, sias_db):
        txn = sias_db.begin()
        keep = sias_db.insert(txn, "accounts", (1, "keep", 0.0))
        gone = sias_db.insert(txn, "accounts", (2, "gone", 0.0))
        sias_db.commit(txn)
        txn = sias_db.begin()
        sias_db.delete(txn, "accounts", gone)
        sias_db.commit(txn)
        crash(sias_db)
        recover(sias_db)
        assert set(_rows(sias_db)) == {1}

    def test_recovery_after_gc_and_page_recycling(self, sias_db):
        txn = sias_db.begin()
        refs = [sias_db.insert(txn, "accounts", (i, "x" * 60, 0.0))
                for i in range(10)]
        sias_db.commit(txn)
        for round_ in range(15):
            txn = sias_db.begin()
            for ref in refs:
                row = sias_db.read(txn, "accounts", ref)
                sias_db.update(txn, "accounts", ref,
                               (row[0], "x" * 60, row[2] + 1))
            sias_db.commit(txn)
            if round_ % 4 == 3:
                sias_db.maintenance()
        before = _rows(sias_db)
        crash(sias_db)
        report = recover(sias_db)
        assert _rows(sias_db) == before
        assert report.engine_reports["accounts"].pages_reusable >= 0

    def test_new_inserts_work_after_recovery(self, sias_db):
        txn = sias_db.begin()
        sias_db.insert(txn, "accounts", (1, "old", 0.0))
        sias_db.commit(txn)
        crash(sias_db)
        recover(sias_db)
        txn = sias_db.begin()
        ref = sias_db.insert(txn, "accounts", (2, "new", 1.0))
        sias_db.commit(txn)
        txn = sias_db.begin()
        # VID allocation resumed above recovered items: no collision
        assert len(sias_db.lookup(txn, "accounts", "pk", 1)) == 1
        assert len(sias_db.lookup(txn, "accounts", "pk", 2)) == 1
        sias_db.commit(txn)

    def test_index_lookups_after_recovery(self, sias_db):
        txn = sias_db.begin()
        for i in range(20):
            sias_db.insert(txn, "accounts", (i, f"grp{i % 4}", float(i)))
        sias_db.commit(txn)
        crash(sias_db)
        recover(sias_db)
        txn = sias_db.begin()
        hits = sias_db.lookup(txn, "accounts", "by_owner", "grp2")
        assert sorted(r[0] for _x, r in hits) == [2, 6, 10, 14, 18]
        sias_db.commit(txn)

    def test_double_crash_recover(self, sias_db):
        txn = sias_db.begin()
        sias_db.insert(txn, "accounts", (1, "a", 1.0))
        sias_db.commit(txn)
        crash(sias_db)
        recover(sias_db)
        txn = sias_db.begin()
        sias_db.insert(txn, "accounts", (2, "b", 2.0))
        sias_db.commit(txn)
        crash(sias_db)
        recover(sias_db)
        assert set(_rows(sias_db)) == {1, 2}


class TestSiRecovery:
    def test_checkpoint_consistent_recovery(self, si_db):
        txn = si_db.begin()
        for i in range(15):
            si_db.insert(txn, "accounts", (i, "u", float(i)))
        si_db.commit(txn)
        si_db.checkpointer.run_now()  # make the heap durable
        before = _rows(si_db)
        crash(si_db)
        report = recover(si_db)
        assert _rows(si_db) == before
        assert report.heap_pages_recovered["accounts"] >= 1

    def test_unflushed_heap_mutations_lost_without_checkpoint(self, si_db):
        txn = si_db.begin()
        si_db.insert(txn, "accounts", (1, "a", 1.0))
        si_db.commit(txn)
        # no checkpoint: dirty heap pages die with the buffer pool
        crash(si_db)
        recover(si_db)
        assert _rows(si_db) == {}

    def test_post_checkpoint_updates_lost_but_consistent(self, si_db):
        txn = si_db.begin()
        ref = si_db.insert(txn, "accounts", (1, "v0", 0.0))
        si_db.commit(txn)
        si_db.checkpointer.run_now()
        txn = si_db.begin()
        si_db.update(txn, "accounts", ref, (1, "v1", 1.0))
        si_db.commit(txn)
        crash(si_db)  # the update only lived in the buffer pool
        recover(si_db)
        assert _rows(si_db)[1] == (1, "v0", 0.0)  # checkpoint-consistent

class TestCrashDiscards:
    def test_lock_config_survives_crash(self, any_db):
        any_db.txn_mgr.locks.wait_timeout_sec = 0.25
        txn = any_db.begin()
        any_db.insert(txn, "accounts", (1, "a", 1.0))
        any_db.commit(txn)
        crash(any_db)
        recover(any_db)
        assert any_db.txn_mgr.locks.wait_timeout_sec == 0.25
        assert any_db.txn_mgr.locks.held_count() == 0

    def test_unforced_records_die_with_wal_tail(self, sias_db):
        txn = sias_db.begin()
        sias_db.insert(txn, "accounts", (1, "a", 1.0))
        # no commit: the INSERT was appended but never forced
        crash(sias_db)
        assert all(r.txid != txn.txid for r in sias_db.wal.replay())

    def test_fate_split_aborted_vs_rolled_back(self, any_db):
        # B settles (aborts) before the crash; A commits; C is in flight
        b = any_db.begin()
        any_db.insert(b, "accounts", (2, "b", 2.0))
        any_db.abort(b)
        a = any_db.begin()
        any_db.insert(a, "accounts", (1, "a", 1.0))
        any_db.commit(a)  # forces the WAL, making B's trail durable too
        c = any_db.begin()
        any_db.insert(c, "accounts", (3, "c", 3.0))
        crash(any_db)
        report = recover(any_db)
        assert report.committed_txns == 1
        assert report.aborted_txns == 1
        assert report.rolled_back_txns == 1


class TestHeapOutOfOrderFlush:
    def _fill_pages(self, si_db, pages: int) -> None:
        """Commit rows until the heap spans at least ``pages`` pages."""
        engine = si_db.table("accounts").engine
        i = 0
        while engine.heap.fsm.page_count < pages:
            txn = si_db.begin()
            for _ in range(20):
                si_db.insert(txn, "accounts", (i, "u" * 40, float(i)))
                i += 1
            si_db.commit(txn)

    def test_gap_pages_recovered_not_truncated(self, si_db):
        """Out-of-order flushing must not hide later-flushed pages.

        The bgwriter flushes whatever the clock sweep hands it, so page 7
        can reach the device while page 3 is still dirty.  Recovery used
        to stop at the first unwritten page, silently dropping every
        flushed page after the gap.
        """
        self._fill_pages(si_db, 10)
        engine = si_db.table("accounts").engine
        heap_file = engine.heap.file_id
        # flush only the upper half: pages 0..4 stay dirty (the gap)
        flushed = si_db.buffer.flush_batch(
            [(heap_file, page_no) for page_no in range(5, 10)])
        assert flushed == 5
        crash(si_db)
        report = recover(si_db)
        assert report.heap_pages_recovered["accounts"] == 5
        assert report.heap_pages_lost["accounts"] == 5
        assert engine.heap.fsm.page_count == 10
        rows = _rows(si_db)
        assert rows  # the flushed pages' rows survived the gap
        # the re-registered gap pages accept new inserts
        txn = si_db.begin()
        si_db.insert(txn, "accounts", (100000, "fresh", 1.0))
        si_db.commit(txn)
        assert 100000 in _rows(si_db)
