"""Serializable Snapshot Isolation tests.

The canonical anomaly matrix: plain SI permits write skew, SSI must reject
it; SSI must not reject schedules that are in fact serializable (read-only
snapshots, disjoint write sets, sequential execution).
"""

from __future__ import annotations

import pytest

from repro.common.errors import SerializationError
from repro.db.database import EngineKind
from tests.conftest import make_accounts_db


@pytest.fixture(params=[EngineKind.SIASV, EngineKind.SI],
                ids=["sias-v", "si"])
def bank(request):
    """Two accounts with 50 each; the write-skew invariant is sum ≥ 0."""
    db = make_accounts_db(request.param)
    txn = db.begin()
    refs = (db.insert(txn, "accounts", (1, "a", 50.0)),
            db.insert(txn, "accounts", (2, "b", 50.0)))
    db.commit(txn)
    return db, refs


def _write_skew(db, refs, serializable: bool):
    """Two txns each read both accounts then debit a different one."""
    ra, rb = refs
    t1 = db.begin(serializable=serializable)
    t2 = db.begin(serializable=serializable)
    a1 = db.read(t1, "accounts", ra)
    b1 = db.read(t1, "accounts", rb)
    a2 = db.read(t2, "accounts", ra)
    b2 = db.read(t2, "accounts", rb)
    assert a1[2] + b1[2] >= 0 and a2[2] + b2[2] >= 0
    outcomes = []
    for txn, ref, row in ((t1, ra, a1), (t2, rb, b2)):
        try:
            db.update(txn, "accounts", ref, (row[0], row[1], row[2] - 90))
            db.commit(txn)
            outcomes.append("committed")
        except SerializationError:
            db.abort(txn)
            outcomes.append("aborted")
    return outcomes


class TestWriteSkew:
    def test_plain_si_permits_write_skew(self, bank):
        db, refs = bank
        assert _write_skew(db, refs, serializable=False) == \
            ["committed", "committed"]
        txn = db.begin()
        total = sum(r[2] for _x, r in db.scan(txn, "accounts"))
        db.commit(txn)
        assert total < 0  # the anomaly: invariant broken

    def test_ssi_prevents_write_skew(self, bank):
        db, refs = bank
        outcomes = _write_skew(db, refs, serializable=True)
        assert "aborted" in outcomes
        txn = db.begin()
        total = sum(r[2] for _x, r in db.scan(txn, "accounts"))
        db.commit(txn)
        assert total >= 0  # invariant preserved
        assert db.txn_mgr.ssi.aborts_prevented_anomalies >= 1

    def test_ssi_write_skew_exactly_one_abort(self, bank):
        """The classic bank pair: exactly one dies, the other commits."""
        db, refs = bank
        outcomes = _write_skew(db, refs, serializable=True)
        assert sorted(outcomes) == ["aborted", "committed"]


class TestNoFalsePositives:
    def test_sequential_serializable_txns_commit(self, bank):
        db, _refs = bank
        for i in range(5):
            txn = db.begin(serializable=True)
            ref, row = db.lookup(txn, "accounts", "pk", 1)[0]
            db.update(txn, "accounts", ref, (row[0], row[1], row[2] + 1))
            db.commit(txn)
        txn = db.begin()
        assert db.lookup(txn, "accounts", "pk", 1)[0][1][2] == 55.0
        db.commit(txn)

    def test_disjoint_items_commit(self, bank):
        db, refs = bank
        t1 = db.begin(serializable=True)
        t2 = db.begin(serializable=True)
        a = db.read(t1, "accounts", refs[0])
        b = db.read(t2, "accounts", refs[1])
        db.update(t1, "accounts", refs[0], (a[0], a[1], a[2] + 1))
        db.update(t2, "accounts", refs[1], (b[0], b[1], b[2] + 1))
        db.commit(t1)
        db.commit(t2)

    def test_concurrent_readers_commit(self, bank):
        db, refs = bank
        txns = [db.begin(serializable=True) for _ in range(4)]
        for txn in txns:
            assert db.read(txn, "accounts", refs[0])[2] == 50.0
        for txn in txns:
            db.commit(txn)

    def test_single_rw_edge_is_fine(self, bank):
        """One antidependency alone is not a dangerous structure."""
        db, refs = bank
        reader = db.begin(serializable=True)
        db.read(reader, "accounts", refs[0])
        writer = db.begin(serializable=True)
        row = db.read(writer, "accounts", refs[1])  # disjoint read
        db.update(writer, "accounts", refs[0], (1, "a", 99.0))
        db.commit(writer)
        db.commit(reader)


class TestCommittedPivot:
    def test_committed_pivot_kills_active_neighbour(self, bank):
        """Cahill's subtle case: the pivot commits before the third edge.

        T_pivot reads x (edge out will appear later) and writes y;
        T_reader reads y (reader --rw--> pivot, pivot.in).  Then after
        the pivot *committed*, T_writer overwrites x, creating
        pivot --rw--> writer (pivot.out).  The pivot is gone; the tracker
        must abort the active participant instead.
        """
        db, refs = bank
        rx, ry = refs
        reader = db.begin(serializable=True)
        pivot = db.begin(serializable=True)
        db.read(pivot, "accounts", rx)
        y = db.read(pivot, "accounts", ry)
        db.update(pivot, "accounts", ry, (y[0], y[1], y[2] + 5))
        db.read(reader, "accounts", ry)  # reader --rw--> pivot
        db.commit(pivot)
        writer = db.begin(serializable=False)
        # plain-SI writer is invisible to the tracker; use a serializable
        # writer concurrent with the committed pivot:
        db.abort(writer)
        writer = db.begin(serializable=True)
        # writer began after pivot committed: not concurrent, no edge, OK
        x = db.read(writer, "accounts", rx)
        db.update(writer, "accounts", rx, (x[0], x[1], x[2] + 1))
        db.commit(writer)
        db.commit(reader)

    def test_pivot_aborts_before_commit_when_both_edges_form(self, bank):
        """The still-active pivot is the victim — not the transaction
        whose operation happened to close the structure."""
        db, refs = bank
        rx, ry = refs
        t_in = db.begin(serializable=True)   # will read what pivot writes
        pivot = db.begin(serializable=True)
        t_out = db.begin(serializable=True)  # will write what pivot reads
        db.read(pivot, "accounts", rx)                       # pivot reads x
        y = db.read(pivot, "accounts", ry)
        db.update(pivot, "accounts", ry, (2, "b", y[2] - 1))  # pivot writes y
        db.read(t_in, "accounts", ry)        # t_in --rw--> pivot
        x = db.read(t_out, "accounts", rx)
        # pivot --rw--> t_out completes the dangerous structure; the
        # innocent closer sails through, the pivot is doomed
        db.update(t_out, "accounts", rx, (1, "a", x[2] - 1))
        db.commit(t_out)
        db.commit(t_in)
        with pytest.raises(SerializationError):
            db.commit(pivot)
        db.abort(pivot)
        assert db.txn_mgr.ssi.aborts_prevented_anomalies >= 1


class TestVictimSelection:
    """Regressions for the historical wrong-victim bug: the tracker used
    to raise in whichever thread added the closing edge, leaving the real
    victim running, and never withdrew an aborted neighbour's edges."""

    def _three(self, db):
        setup = db.begin()
        rc = db.insert(setup, "accounts", (3, "c", 50.0))
        db.commit(setup)
        return rc

    def test_wrong_victim_regression(self, bank):
        """The acting transaction survives; the active pivot dies."""
        db, refs = bank
        ra, rb = refs
        rc = self._three(db)
        t1 = db.begin(serializable=True)
        t2 = db.begin(serializable=True)
        t3 = db.begin(serializable=True)
        b = db.read(t1, "accounts", rb)
        db.update(t1, "accounts", rb, (2, "b", b[2] + 1))  # t1 writes b
        db.read(t2, "accounts", rb)          # t2 --rw--> t1 (t1 gains in)
        c = db.read(t1, "accounts", rc)      # t1 reads c
        # t1 --rw--> t3 closes the structure with t1 as the active pivot;
        # before the fix this update raised in t3's thread instead
        db.update(t3, "accounts", rc, (3, "c", c[2] + 1))
        db.commit(t3)
        db.commit(t2)
        with pytest.raises(SerializationError):
            db.commit(t1)
        db.abort(t1)
        assert db.txn_mgr.ssi.aborts_prevented_anomalies >= 1

    def test_doomed_victim_dies_on_next_operation(self, bank):
        """A doomed victim need not reach commit: its next data operation
        executes the sentence."""
        db, refs = bank
        ra, rb = refs
        rc = self._three(db)
        t1 = db.begin(serializable=True)
        t2 = db.begin(serializable=True)
        t3 = db.begin(serializable=True)
        b = db.read(t1, "accounts", rb)
        db.update(t1, "accounts", rb, (2, "b", b[2] + 1))
        db.read(t2, "accounts", rb)                        # t2 --rw--> t1
        c = db.read(t1, "accounts", rc)
        db.update(t3, "accounts", rc, (3, "c", c[2] + 1))  # t1 doomed
        with pytest.raises(SerializationError):
            db.read(t1, "accounts", ra)
        db.abort(t1)
        db.commit(t2)
        db.commit(t3)

    def test_aborted_neighbour_edges_withdrawn(self, bank):
        """Edges from an aborted transaction are dropped, so a stale
        half-structure cannot spuriously doom a later innocent pair."""
        db, refs = bank
        ra, rb = refs
        t1 = db.begin(serializable=True)
        t2 = db.begin(serializable=True)
        t3 = db.begin(serializable=True)
        db.read(t1, "accounts", ra)
        a = db.read(t2, "accounts", ra)
        db.update(t2, "accounts", ra, (1, "a", a[2] + 1))  # t1 --rw--> t2
        db.abort(t1)                     # withdraws t1's edge into t2
        b = db.read(t2, "accounts", rb)
        # before the fix t2 still carried in_conflict from the aborted
        # t1, so this edge (t2 --rw--> t3) killed an innocent party
        db.update(t3, "accounts", rb, (2, "b", b[2] + 1))
        db.commit(t2)
        db.commit(t3)
        assert db.txn_mgr.ssi.aborts_prevented_anomalies == 0


class TestMixedModes:
    def test_plain_si_unaffected_by_tracker(self, bank):
        db, refs = bank
        t1 = db.begin()  # plain SI
        t2 = db.begin(serializable=True)
        a = db.read(t1, "accounts", refs[0])
        db.read(t2, "accounts", refs[0])
        db.update(t1, "accounts", refs[0], (a[0], a[1], a[2] + 1))
        db.commit(t1)
        db.commit(t2)  # no dangerous structure among serializable txns

    def test_tracker_state_garbage_collected(self, bank):
        db, refs = bank
        for _ in range(20):
            txn = db.begin(serializable=True)
            db.read(txn, "accounts", refs[0])
            db.commit(txn)
        # no overlapping actives remain: the tracker holds at most the
        # last transaction's state
        assert len(db.txn_mgr.ssi._states) <= 1
