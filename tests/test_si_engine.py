"""Baseline SI engine semantics: in-place invalidation, FSM, VACUUM."""

from __future__ import annotations

import pytest

from repro.baseline.fsm import FreeSpaceMap
from repro.baseline.vacuum import Vacuum
from repro.common.errors import SerializationError
from repro.pages.layout import XMAX_INFINITY


def _seed(engine, txn_mgr, payload=b"v0"):
    txn = txn_mgr.begin()
    tid = engine.insert(txn, payload)
    txn_mgr.commit(txn)
    return tid


class TestFsm:
    def test_register_sequentially(self):
        fsm = FreeSpaceMap()
        fsm.register_page(0, 100)
        with pytest.raises(ValueError):
            fsm.register_page(5, 100)

    def test_find_page_first_fit(self):
        fsm = FreeSpaceMap()
        fsm.register_page(0, 10)
        fsm.register_page(1, 500)
        assert fsm.find_page(100) == 1
        assert fsm.find_page(1000) is None

    def test_cursor_rotates(self):
        fsm = FreeSpaceMap()
        for i in range(4):
            fsm.register_page(i, 500)
        hits = [fsm.find_page(100) for _ in range(4)]
        assert sorted(hits) == [0, 1, 2, 3]  # spread over all pages

    def test_update_and_total(self):
        fsm = FreeSpaceMap()
        fsm.register_page(0, 100)
        fsm.update(0, 40)
        assert fsm.free_bytes(0) == 40
        assert fsm.total_free() == 40


class TestVisibility:
    def test_basic_insert_visibility(self, si_engine, txn_mgr):
        writer = txn_mgr.begin()
        tid = si_engine.insert(writer, b"row")
        assert si_engine.read(writer, tid) == b"row"
        reader = txn_mgr.begin()
        assert si_engine.read(reader, tid) is None
        txn_mgr.commit(writer)
        txn_mgr.commit(reader)
        late = txn_mgr.begin()
        assert si_engine.read(late, tid) == b"row"
        txn_mgr.commit(late)

    def test_update_stamps_xmax_in_place(self, si_engine, txn_mgr):
        """The exact physical behaviour SIAS-V eliminates."""
        tid = _seed(si_engine, txn_mgr)
        assert si_engine.heap.read(tid).xmax == XMAX_INFINITY
        txn = txn_mgr.begin()
        new_tid = si_engine.update(txn, tid, b"v1")
        # old version's page was modified in place
        assert si_engine.heap.read(tid).xmax == txn.txid
        assert new_tid != tid
        assert si_engine.heap.stats.in_place_invalidations == 1
        txn_mgr.commit(txn)

    def test_old_version_visible_to_old_snapshot(self, si_engine, txn_mgr):
        tid = _seed(si_engine, txn_mgr, b"old")
        reader = txn_mgr.begin()
        writer = txn_mgr.begin()
        new_tid = si_engine.update(writer, tid, b"new")
        txn_mgr.commit(writer)
        assert si_engine.read(reader, tid) == b"old"
        assert si_engine.read(reader, new_tid) is None
        txn_mgr.commit(reader)
        late = txn_mgr.begin()
        assert si_engine.read(late, tid) is None
        assert si_engine.read(late, new_tid) == b"new"
        txn_mgr.commit(late)

    def test_aborted_xmax_ignored(self, si_engine, txn_mgr):
        tid = _seed(si_engine, txn_mgr, b"keep")
        txn = txn_mgr.begin()
        si_engine.update(txn, tid, b"discard")
        txn_mgr.abort(txn)
        reader = txn_mgr.begin()
        assert si_engine.read(reader, tid) == b"keep"  # xmax from aborted txn
        txn_mgr.commit(reader)

    def test_aborted_insert_invisible(self, si_engine, txn_mgr):
        txn = txn_mgr.begin()
        tid = si_engine.insert(txn, b"phantom")
        txn_mgr.abort(txn)
        reader = txn_mgr.begin()
        assert si_engine.read(reader, tid) is None
        txn_mgr.commit(reader)

    def test_delete_sets_xmax_only(self, si_engine, txn_mgr):
        tid = _seed(si_engine, txn_mgr)
        inserts_before = si_engine.heap.stats.tuple_inserts
        txn = txn_mgr.begin()
        si_engine.delete(txn, tid)
        txn_mgr.commit(txn)
        assert si_engine.heap.stats.tuple_inserts == inserts_before
        late = txn_mgr.begin()
        assert si_engine.read(late, tid) is None
        txn_mgr.commit(late)


class TestConflicts:
    def test_first_updater_wins(self, si_engine, txn_mgr):
        tid = _seed(si_engine, txn_mgr)
        t1 = txn_mgr.begin()
        t2 = txn_mgr.begin()
        si_engine.update(t1, tid, b"t1")
        with pytest.raises(SerializationError):
            si_engine.update(t2, tid, b"t2")
        txn_mgr.commit(t1)
        txn_mgr.abort(t2)

    def test_loser_after_commit_aborts(self, si_engine, txn_mgr):
        tid = _seed(si_engine, txn_mgr)
        t2 = txn_mgr.begin()
        t1 = txn_mgr.begin()
        si_engine.update(t1, tid, b"t1")
        txn_mgr.commit(t1)
        with pytest.raises(SerializationError):
            si_engine.update(t2, tid, b"t2")
        txn_mgr.abort(t2)

    def test_update_after_abort_succeeds(self, si_engine, txn_mgr):
        tid = _seed(si_engine, txn_mgr)
        t1 = txn_mgr.begin()
        si_engine.update(t1, tid, b"t1")
        txn_mgr.abort(t1)
        t2 = txn_mgr.begin()
        si_engine.update(t2, tid, b"t2")
        txn_mgr.commit(t2)


class TestScan:
    def test_scan_visible_versions_only(self, si_engine, txn_mgr):
        tids = []
        txn = txn_mgr.begin()
        for i in range(20):
            tids.append(si_engine.insert(txn, b"row%02d" % i))
        txn_mgr.commit(txn)
        txn = txn_mgr.begin()
        si_engine.update(txn, tids[0], b"updated")
        txn_mgr.commit(txn)
        reader = txn_mgr.begin()
        rows = {payload for _tid, payload in si_engine.scan(reader)}
        assert len(rows) == 20
        assert b"updated" in rows and b"row00" not in rows
        txn_mgr.commit(reader)

    def test_scan_reads_all_pages(self, si_engine, txn_mgr, flash, buffer):
        txn = txn_mgr.begin()
        for i in range(200):
            si_engine.insert(txn, bytes(300))
        txn_mgr.commit(txn)
        buffer.flush_all()
        buffer.invalidate_all()
        reads_before = flash.stats.reads
        reader = txn_mgr.begin()
        list(si_engine.scan(reader))
        txn_mgr.commit(reader)
        assert flash.stats.reads - reads_before == si_engine.heap.page_count


class TestVacuum:
    def test_vacuum_removes_dead_versions(self, si_engine, txn_mgr):
        tid = _seed(si_engine, txn_mgr, b"gen0")
        txn = txn_mgr.begin()
        si_engine.update(txn, tid, b"gen1")
        txn_mgr.commit(txn)
        report = Vacuum(si_engine).run()
        assert report.tuples_killed == 1
        assert report.killed[0][0] == tid
        assert report.killed[0][1] == b"gen0"

    def test_vacuum_respects_snapshots(self, si_engine, txn_mgr):
        tid = _seed(si_engine, txn_mgr, b"gen0")
        old_reader = txn_mgr.begin()
        txn = txn_mgr.begin()
        si_engine.update(txn, tid, b"gen1")
        txn_mgr.commit(txn)
        report = Vacuum(si_engine).run()
        assert report.tuples_killed == 0  # old_reader still needs gen0
        assert si_engine.read(old_reader, tid) == b"gen0"
        txn_mgr.commit(old_reader)
        report = Vacuum(si_engine).run()
        assert report.tuples_killed == 1

    def test_vacuum_removes_aborted_inserts(self, si_engine, txn_mgr):
        txn = txn_mgr.begin()
        si_engine.insert(txn, b"phantom")
        txn_mgr.abort(txn)
        report = Vacuum(si_engine).run()
        assert report.tuples_killed == 1

    def test_vacuumed_space_reused(self, si_engine, txn_mgr):
        """FSM reuse keeps the heap from growing without bound."""
        tid = _seed(si_engine, txn_mgr, b"x" * 1000)
        for i in range(50):
            txn = txn_mgr.begin()
            tid = si_engine.update(txn, tid, b"y" * 1000)
            txn_mgr.commit(txn)
            if i % 10 == 9:
                Vacuum(si_engine).run()
        # 51 versions of ~1 KB with vacuum every 10: far less than 51 pages
        assert si_engine.heap.page_count < 15

    def test_vacuum_idempotent(self, si_engine, txn_mgr):
        tid = _seed(si_engine, txn_mgr)
        txn = txn_mgr.begin()
        si_engine.update(txn, tid, b"v1")
        txn_mgr.commit(txn)
        Vacuum(si_engine).run()
        second = Vacuum(si_engine).run()
        assert second.tuples_killed == 0
