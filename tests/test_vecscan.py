"""Vectorized execution tests: visibility kernels, predicate pushdown,
never-materialize operators, and the wire-level batch scan.

The load-bearing guarantee is bit-identity: on any workload — inserts,
updates, deletes, open and sealed pages, both append-page layouts,
concurrent snapshots — ``vec_scan`` must return exactly what the
tuple-at-a-time ``vidmap_scan`` and ``full_relation_scan`` return.  The
hypothesis schedules drive that; the unit tests pin the kernels
(:meth:`Snapshot.visibility_bitmap`, :meth:`AppendPage.meta_columns`,
the payload probes) against their per-slot counterparts.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import units
from repro.common.config import (
    BufferConfig,
    EngineConfig,
    FlashConfig,
    PageLayout,
    SystemConfig,
)
from repro.common.errors import SchemaError
from repro.core.scan import full_relation_scan, vidmap_scan
from repro.core.vecscan import (
    Predicate,
    vec_aggregate,
    vec_count,
    vec_scan,
    vec_scan_batch,
)
from repro.db.catalog import IndexDef
from repro.db.database import Database, EngineKind
from repro.db.row import RowCodec
from repro.db.schema import ColType, Schema
from repro.pages.append_page import AppendPage
from repro.pages.layout import Tid, VersionRecord
from repro.txn.commitlog import CommitLog
from repro.txn.snapshot import Snapshot
from tests.conftest import ACCOUNTS, make_accounts_db

#: Fixed-width columns first (probe-able), STR last (heap payload).
FIXED_FIRST = Schema.of(("id", ColType.INT), ("balance", ColType.FLOAT),
                        ("owner", ColType.STR))


def make_layout_db(layout: PageLayout,
                   schema: Schema = FIXED_FIRST) -> Database:
    """A SIAS-V database with an explicit append-page layout."""
    config = SystemConfig(
        flash=FlashConfig(capacity_bytes=64 * units.MIB),
        buffer=BufferConfig(pool_pages=128),
        engine=EngineConfig(layout=layout),
        extent_pages=16,
    )
    db = Database.on_flash(EngineKind.SIASV, config)
    db.create_table("accounts", schema,
                    indexes=[IndexDef("pk", ("id",), unique=True)])
    return db


# -- the visibility kernel ----------------------------------------------------------


class TestVisibilityBitmap:
    def _fixture(self):
        clog = CommitLog()
        for txid in (2, 3, 4, 5, 6, 7):
            clog.register(txid)
        for txid in (2, 4, 6):
            clog.set_committed(txid)
        clog.set_aborted(3)
        # 5 stays in progress (concurrent), 7 in progress (future-ish)
        snapshot = Snapshot(txid=6, concurrent=frozenset({5}))
        return snapshot, clog

    @given(st.lists(st.sampled_from([2, 3, 4, 5, 6, 7]), max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_matches_sees_ts(self, ts_vector):
        snapshot, clog = self._fixture()
        bitmap = snapshot.visibility_bitmap(ts_vector, clog)
        for slot, ts in enumerate(ts_vector):
            assert bool((bitmap >> slot) & 1) == snapshot.sees_ts(ts, clog)

    def test_all_and_none_visible_extremes(self):
        snapshot, clog = self._fixture()
        n = 20
        assert snapshot.visibility_bitmap([2] * n, clog) == (1 << n) - 1
        assert snapshot.visibility_bitmap([3] * n, clog) == 0
        assert snapshot.visibility_bitmap([], clog) == 0

    def test_memo_is_shared_across_calls(self):
        snapshot, clog = self._fixture()
        memo: dict[int, bool] = {}
        snapshot.visibility_bitmap([2, 3, 5], clog, memo)
        assert memo == {2: True, 3: False, 5: False}
        # a poisoned memo is trusted — proves the second call reused it
        memo[3] = True
        assert snapshot.visibility_bitmap([3], clog, memo) == 1


# -- page kernels: metadata vectors and payload probes ------------------------------


def _vector_page(rows, codec, tombstones=()):
    """An open VECTOR page holding ``rows``; slot i created by txid 10+i."""
    page = AppendPage(0, PageLayout.VECTOR)
    for i, row in enumerate(rows):
        page.append(VersionRecord(
            create_ts=10 + i, vid=100 + i,
            pred=Tid(7, i) if i % 2 else None,
            tombstone=(i in tombstones), payload=codec.encode(row)))
    return page


def _sealed_view(page):
    """The same page re-decoded from its on-disk image (view mode)."""
    return AppendPage.from_payload_kind(page.page_no, page.payload_bytes(),
                                        page.page_size, page.kind)


class TestPageKernels:
    ROWS = [(1, 10.5, "ann"), (2, -3.0, "bob"), (3, 99.25, "c" * 40)]

    def _codec(self):
        return RowCodec(FIXED_FIRST)

    @pytest.mark.parametrize("mode", ["record", "view"])
    def test_meta_columns_match_read_meta(self, mode):
        codec = self._codec()
        page = _vector_page(self.ROWS, codec, tombstones={1})
        if mode == "view":
            page = _sealed_view(page)
        ts_vec, vid_vec, pred_vec, flag_vec = page.meta_columns()
        for slot in range(page.record_count):
            create_ts, vid, pred, tombstone = page.read_meta(slot)
            assert ts_vec[slot] == create_ts
            assert vid_vec[slot] == vid
            assert Tid.unpack(pred_vec[slot]) == pred
            assert bool(flag_vec[slot] & 1) == tombstone

    def test_meta_columns_none_for_nsm(self):
        page = AppendPage(0, PageLayout.NSM)
        page.append(VersionRecord(1, 1, None, False, b"x"))
        assert page.meta_columns() is None

    @pytest.mark.parametrize("mode", ["record", "view"])
    def test_tombstone_bitmap(self, mode):
        codec = self._codec()
        page = _vector_page(self.ROWS, codec, tombstones={0, 2})
        if mode == "view":
            page = _sealed_view(page)
        assert page.tombstone_bitmap() == 0b101

    @pytest.mark.parametrize("mode", ["record", "view"])
    def test_probe_matches_decode(self, mode):
        codec = self._codec()
        page = _vector_page(self.ROWS, codec)
        if mode == "view":
            page = _sealed_view(page)
        for name, position in (("id", 0), ("balance", 1)):
            offset, fmt = codec.fixed_field(name)
            column = page.probe_column(offset, fmt)
            for slot, row in enumerate(self.ROWS):
                assert page.probe_payload(slot, offset, fmt) == row[position]
                assert column[slot] == row[position]
                assert codec.decode(page.payload_slice(slot)) == row

    def test_probe_short_payload_is_none(self):
        codec = self._codec()
        page = _vector_page(self.ROWS, codec)
        offset, fmt = codec.fixed_field("balance")
        short = AppendPage(1, PageLayout.VECTOR)
        short.append(VersionRecord(1, 1, None, False, b"\x01"))
        assert short.probe_payload(0, offset, fmt) is None
        assert short.probe_column(offset, fmt) == [None]
        assert page.probe_column(offset, fmt)[0] is not None

    def test_probe_column_none_for_nsm(self):
        page = AppendPage(0, PageLayout.NSM)
        page.append(VersionRecord(1, 1, None, False, b"\x00" * 16))
        assert page.probe_column(0, RowCodec(FIXED_FIRST
                                             ).fixed_field("id")[1]) is None

    def test_caches_invalidated_by_append(self):
        codec = self._codec()
        page = _vector_page(self.ROWS[:2], codec)
        offset, fmt = codec.fixed_field("id")
        assert len(page.meta_columns()[0]) == 2
        assert len(page.probe_column(offset, fmt)) == 2
        page.append(VersionRecord(99, 999, None, False,
                                  codec.encode(self.ROWS[2])))
        assert len(page.meta_columns()[0]) == 3
        assert page.probe_column(offset, fmt)[2] == self.ROWS[2][0]

    def test_fixed_field_blocked_past_str(self):
        codec = RowCodec(ACCOUNTS)  # (id INT, owner STR, balance FLOAT)
        assert codec.fixed_field("id") == (0, codec.fixed_field("id")[1])
        assert codec.fixed_field("owner") is None
        assert codec.fixed_field("balance") is None  # STR before it


# -- equivalence: kernels vs tuple-at-a-time ----------------------------------------


LAYOUTS = pytest.mark.parametrize(
    "layout", [PageLayout.VECTOR, PageLayout.NSM], ids=["vector", "nsm"])

op_step = st.tuples(
    st.sampled_from(["insert", "update", "delete", "commit", "seal"]),
    st.integers(0, 11),
)


def _apply_schedule(db, schedule):
    """Apply a single-session schedule of mutations with periodic commits."""
    counter = 0
    txn = db.begin()
    for op, key in schedule:
        counter += 1
        if op == "insert":
            if not db.lookup(txn, "accounts", "pk", key):
                db.insert(txn, "accounts",
                          (key, float(counter), f"owner{key % 4}"))
        elif op == "update":
            hits = db.lookup(txn, "accounts", "pk", key)
            if hits:
                ref, row = hits[0]
                db.update(txn, "accounts", ref,
                          (key, row[1] + 1.0, row[2]))
        elif op == "delete":
            hits = db.lookup(txn, "accounts", "pk", key)
            if hits:
                db.delete(txn, "accounts", hits[0][0])
        elif op == "commit":
            db.commit(txn)
            txn = db.begin()
        elif op == "seal":
            db.table("accounts").engine.store.seal_working_page()
    db.commit(txn)


class TestScanEquivalence:
    @LAYOUTS
    @given(schedule=st.lists(op_step, max_size=60))
    @settings(max_examples=25, deadline=None)
    def test_vec_scan_bit_identical(self, layout, schedule):
        db = make_layout_db(layout)
        _apply_schedule(db, schedule)
        relation = db.table("accounts")
        engine, codec = relation.engine, relation.codec
        txn = db.begin()
        via_vidmap = sorted((vid, codec.decode(record.payload))
                            for vid, record in vidmap_scan(engine, txn))
        via_full = sorted((vid, codec.decode(record.payload))
                          for vid, record in full_relation_scan(engine, txn))
        via_vec = sorted(vec_scan(engine, codec, txn))
        assert via_vec == via_vidmap == via_full
        # the filtered/projected/aggregated forms agree with Python-side
        # filtering of the unfiltered result
        pred = ("balance", ">=", 3.0)
        kept = [(vid, row) for vid, row in via_vidmap if row[1] >= 3.0]
        assert sorted(vec_scan(engine, codec, txn, where=pred)) == kept
        assert vec_count(engine, codec, txn, where=pred) == len(kept)
        assert vec_aggregate(engine, codec, txn, "max", "balance") == (
            max((row[1] for _vid, row in via_vidmap), default=None))
        db.commit(txn)

    @LAYOUTS
    def test_uncommitted_and_concurrent_snapshots(self, layout):
        db = make_layout_db(layout)
        txn = db.begin()
        db.bulk_insert(txn, "accounts",
                       [(i, float(i), f"owner{i % 4}") for i in range(40)])
        db.commit(txn)
        db.table("accounts").engine.store.seal_working_page()
        relation = db.table("accounts")
        engine, codec = relation.engine, relation.codec
        writer = db.begin()
        db.insert(writer, "accounts", (900, 1.0, "w"))
        (ref, row), = db.lookup(writer, "accounts", "pk", 3)
        db.update(writer, "accounts", ref, (3, 555.0, row[2]))
        reader = db.begin()  # concurrent with the uncommitted writer
        assert vec_count(engine, codec, reader) == 40
        assert vec_aggregate(engine, codec, reader, "max", "balance") == 39.0
        # the writer sees its own uncommitted writes through the kernels
        assert vec_count(engine, codec, writer) == 41
        assert vec_aggregate(engine, codec, writer, "max", "balance") == 555.0
        db.commit(writer)
        # the reader's snapshot predates the commit: still the old state
        assert vec_count(engine, codec, reader) == 40
        db.commit(reader)

    def test_str_predicate_has_no_pushdown_but_same_result(self):
        db = make_layout_db(PageLayout.VECTOR)
        txn = db.begin()
        db.bulk_insert(txn, "accounts",
                       [(i, float(i), f"owner{i % 4}") for i in range(30)])
        db.commit(txn)
        db.table("accounts").engine.store.seal_working_page()
        relation = db.table("accounts")
        engine, codec = relation.engine, relation.codec
        txn = db.begin()
        got = sorted(vec_scan(engine, codec, txn,
                              where=("owner", "==", "owner2")))
        want = sorted((vid, codec.decode(r.payload))
                      for vid, r in vidmap_scan(engine, txn)
                      if codec.decode(r.payload)[2] == "owner2")
        assert got == want and got
        db.commit(txn)


# -- operators ----------------------------------------------------------------------


class TestOperators:
    def _loaded(self, n=50):
        db = make_layout_db(PageLayout.VECTOR)
        txn = db.begin()
        db.bulk_insert(txn, "accounts",
                       [(i, float(i % 10), f"owner{i % 4}")
                        for i in range(n)])
        db.commit(txn)
        db.table("accounts").engine.store.seal_working_page()
        relation = db.table("accounts")
        return db, relation.engine, relation.codec

    def test_aggregates(self):
        db, engine, codec = self._loaded()
        txn = db.begin()
        assert vec_count(engine, codec, txn) == 50
        assert vec_aggregate(engine, codec, txn, "count") == 50
        assert vec_aggregate(engine, codec, txn, "sum", "balance") == (
            sum(float(i % 10) for i in range(50)))
        assert vec_aggregate(engine, codec, txn, "min", "id") == 0
        assert vec_aggregate(engine, codec, txn, "max", "id") == 49
        assert vec_aggregate(engine, codec, txn, "sum", "id",
                             where=("id", "<", 10)) == 45
        db.commit(txn)

    def test_empty_aggregates(self):
        db = make_layout_db(PageLayout.VECTOR)
        relation = db.table("accounts")
        engine, codec = relation.engine, relation.codec
        txn = db.begin()
        assert vec_count(engine, codec, txn) == 0
        assert vec_aggregate(engine, codec, txn, "sum", "balance") == 0
        assert vec_aggregate(engine, codec, txn, "min", "balance") is None
        assert vec_aggregate(engine, codec, txn, "max", "balance") is None
        db.commit(txn)

    def test_operator_errors(self):
        db, engine, codec = self._loaded(4)
        txn = db.begin()
        with pytest.raises(SchemaError):
            vec_aggregate(engine, codec, txn, "median", "balance")
        with pytest.raises(SchemaError):
            vec_aggregate(engine, codec, txn, "sum")  # needs a column
        with pytest.raises(SchemaError):
            vec_count(engine, codec, txn, where=("balance", "~", 1.0))
        with pytest.raises(SchemaError):
            vec_count(engine, codec, txn, where="balance > 1")
        with pytest.raises(SchemaError):
            vec_scan_batch(engine, codec, txn, limit=0)
        db.commit(txn)

    def test_predicate_normalize(self):
        pred = Predicate("id", "<", 5)
        assert Predicate.normalize(pred) is pred
        assert Predicate.normalize(("id", "<", 5)) == pred
        assert Predicate.normalize(None) is None

    def test_scan_batch_pagination(self):
        db, engine, codec = self._loaded()
        txn = db.begin()
        everything = list(vec_scan(engine, codec, txn))
        paged, cursor, pages = [], None, 0
        while True:
            rows, cursor = vec_scan_batch(engine, codec, txn,
                                          after_vid=cursor, limit=7)
            paged.extend(rows)
            pages += 1
            assert len(rows) <= 7
            if cursor is None:
                break
        assert paged == everything
        assert pages >= len(everything) // 7
        db.commit(txn)


# -- the Database facade across both engines ----------------------------------------


class TestFacadeParity:
    def _fill(self, db):
        txn = db.begin()
        for i in range(25):
            db.insert(txn, "accounts", (i, f"owner{i % 3}", float(i)))
        db.commit(txn)
        txn = db.begin()
        for i in range(0, 25, 5):
            ref, row = db.lookup(txn, "accounts", "pk", i)[0]
            db.update(txn, "accounts", ref, (i, row[1], row[2] + 100.0))
        db.delete(txn, "accounts", db.lookup(txn, "accounts", "pk", 7)[0][0])
        db.commit(txn)

    def test_scan_filter_and_projection_agree(self):
        results = {}
        for kind in (EngineKind.SIASV, EngineKind.SI):
            db = make_accounts_db(kind)
            self._fill(db)
            txn = db.begin()
            results[kind] = {
                "rows": sorted(row for _ref, row in db.scan(txn, "accounts")),
                "filtered": sorted(
                    row for _ref, row in
                    db.scan(txn, "accounts", where=("balance", ">=", 100.0))),
                "projected": sorted(
                    row for _ref, row in
                    db.scan(txn, "accounts", columns=["balance", "id"])),
                "count": db.aggregate(txn, "accounts", "count"),
                "sum": db.aggregate(txn, "accounts", "sum", "balance",
                                    where=("id", "<", 10)),
                "min": db.aggregate(txn, "accounts", "min", "balance"),
            }
            db.commit(txn)
        assert results[EngineKind.SIASV] == results[EngineKind.SI]

    @pytest.mark.parametrize("kind", [EngineKind.SIASV, EngineKind.SI],
                             ids=["sias-v", "si"])
    def test_scan_batch_pages_through_everything(self, kind):
        db = make_accounts_db(kind)
        self._fill(db)
        txn = db.begin()
        everything = [row for _ref, row in db.scan(txn, "accounts")]
        paged, cursor = [], None
        while True:
            rows, cursor = db.scan_batch(txn, "accounts", after=cursor,
                                         limit=6)
            paged.extend(row for _ref, row in rows)
            if cursor is None:
                break
        assert paged == everything
        db.commit(txn)


# -- the wire layer -----------------------------------------------------------------


class TestRemoteScan:
    @pytest.fixture
    def served(self):
        from repro.server import DatabaseServer, ServerConfig
        db = make_accounts_db(EngineKind.SIASV)
        server = DatabaseServer(db, ServerConfig(port=0,
                                                 idle_timeout_sec=30.0))
        host, port = server.start_in_background()
        yield db, host, port
        server.stop_in_background()

    def test_remote_scan_and_aggregate(self, served):
        from repro.client import RemoteDatabase
        db, host, port = served
        txn = db.begin()
        for i in range(40):
            db.insert(txn, "accounts", (i, f"owner{i % 3}", float(i)))
        db.commit(txn)
        db.table("accounts").engine.store.seal_working_page()
        remote = RemoteDatabase(host, port)
        try:
            txn = remote.begin()
            rows = sorted(row for _ref, row in
                          remote.scan(txn, "accounts", batch_size=7))
            assert rows == sorted((i, f"owner{i % 3}", float(i))
                                  for i in range(40))
            filtered = list(remote.scan(txn, "accounts",
                                        columns=["id"],
                                        where=("id", ">=", 30),
                                        batch_size=4))
            assert sorted(row for _ref, row in filtered) == [
                (i,) for i in range(30, 40)]
            assert remote.aggregate(txn, "accounts", "count") == 40
            assert remote.aggregate(txn, "accounts", "sum", "balance",
                                    where=("id", "<", 10)) == 45.0
            assert remote.aggregate(txn, "accounts", "min", "id") == 0
            remote.commit(txn)
        finally:
            remote.close()


# -- stats: atomic counters and saved descents --------------------------------------


class TestStats:
    def test_counter_updates_are_atomic(self):
        db = make_accounts_db(EngineKind.SIASV)
        stats = db.table("accounts").engine.stats
        threads, per_thread = 8, 2000

        def bump():
            for _ in range(per_thread):
                stats.add(chain_hops=1, resolves=1)

        workers = [threading.Thread(target=bump) for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert stats.chain_hops == threads * per_thread
        assert stats.resolves == threads * per_thread

    def test_full_scan_counts_saved_descents(self):
        db = make_accounts_db(EngineKind.SIASV)
        txn = db.begin()
        for i in range(20):
            db.insert(txn, "accounts", (i, f"owner{i % 3}", float(i)))
        db.commit(txn)
        txn = db.begin()
        for i in range(0, 20, 2):
            ref, row = db.lookup(txn, "accounts", "pk", i)[0]
            db.update(txn, "accounts", ref, (i, row[1], row[2] + 1.0))
        db.commit(txn)
        engine = db.table("accounts").engine
        codec = db.table("accounts").codec
        before = engine.stats.scan_descents_saved
        txn = db.begin()
        via_full = sorted((vid, codec.decode(r.payload))
                          for vid, r in full_relation_scan(engine, txn))
        via_vidmap = sorted((vid, codec.decode(r.payload))
                            for vid, r in vidmap_scan(engine, txn))
        db.commit(txn)
        assert via_full == via_vidmap
        # every superseded version the scan skipped without a re-descent
        assert engine.stats.scan_descents_saved > before
