"""Cluster tests: shard map properties, 2PC recovery edges, router e2e.

Covers the acceptance contract for the VID-range sharded cluster:

* hypothesis properties on :class:`ShardMap` — every global VID has
  exactly one owner, ``(shard_of, to_local)`` / ``to_global`` is a
  bijection, per-shard local order is global order, and ``split_range``
  covers ``[lo, hi)`` exactly (no gap, no overlap, nothing outside);
* a participant crashing *after* PREPARE: the in-doubt transaction is
  reinstated from the WAL, presumed abort restores the old version and
  its index entry, a commit decision finalises the new one;
* a coordinator crashing *after* logging its commit decision: a
  successor router with the same durable log re-pushes the decision on
  start, and its gtxid allocator stays above the logged watermark —
  with no logged decision the prepared leftover is presumed aborted;
* unmodified ``RemoteDatabase`` / ``TpccDriver`` against the router on a
  2-shard cluster, cross-shard transfers going through real 2PC;
* a multi-endpoint :class:`ConnectionPool` keeping one dead endpoint's
  breaker from opening the circuit for its healthy peer;
* one shard-fault chaos point per fault mode as a smoke test (the full
  sweep is ``repro.experiments.chaos_sweep --cluster``).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.client import RemoteDatabase
from repro.client.pool import CircuitBreaker, ConnectionPool, RetryPolicy
from repro.cluster import (
    ClusterRouter,
    CoordinatorLog,
    RouterConfig,
    ShardMap,
    ShardSupervisor,
    SupervisorConfig,
)
from repro.common import units
from repro.common.errors import CircuitOpenError
from repro.db.database import EngineKind
from repro.db.recovery import crash, recover
from repro.server.chaos import NetFaultKind
from repro.server.protocol import Command
from tests.conftest import make_accounts_db

# --- strategies ---------------------------------------------------------------

shard_counts = st.integers(1, 7)
range_sizes = st.sampled_from([1, 2, 3, 64, 1024])
gvids = st.integers(0, 2**40)


# --- shard map properties -----------------------------------------------------

class TestShardMapProperties:
    @given(shard_counts, range_sizes, gvids)
    @settings(max_examples=200, deadline=None)
    def test_global_local_bijection(self, shards, range_size, gvid):
        """(shard_of, to_local) and to_global invert each other."""
        smap = ShardMap(shards, range_size=range_size)
        shard, local = smap.shard_of(gvid), smap.to_local(gvid)
        assert 0 <= shard < shards
        assert local >= 0
        assert smap.to_global(shard, local) == gvid

    @given(shard_counts, range_sizes, st.integers(0, 6),
           st.integers(0, 2**30))
    @settings(max_examples=200, deadline=None)
    def test_local_global_bijection(self, shards, range_size, shard, lvid):
        """to_global lands back on the shard and local VID it came from."""
        shard = shard % shards
        smap = ShardMap(shards, range_size=range_size)
        gvid = smap.to_global(shard, lvid)
        assert smap.shard_of(gvid) == shard
        assert smap.to_local(gvid) == lvid

    @given(shard_counts, range_sizes, st.integers(0, 2**30),
           st.integers(1, 2**12))
    @settings(max_examples=100, deadline=None)
    def test_to_global_monotonic_per_shard(self, shards, range_size,
                                           lvid, step):
        """A shard's local VID order is global VID order on that shard."""
        smap = ShardMap(shards, range_size=range_size)
        for shard in range(shards):
            assert (smap.to_global(shard, lvid)
                    < smap.to_global(shard, lvid + step))

    @given(shard_counts, st.sampled_from([1, 2, 3, 8]),
           st.integers(0, 200), st.integers(0, 80))
    @settings(max_examples=150, deadline=None)
    def test_split_range_covers_exactly(self, shards, range_size, lo, span):
        """split_range partitions [lo, hi): every VID in exactly one
        triple's local range, and nothing outside [lo, hi) covered."""
        smap = ShardMap(shards, range_size=range_size)
        hi = lo + span
        covered: list[int] = []
        for shard, local_lo, local_hi in smap.split_range(lo, hi):
            assert local_lo < local_hi
            for lvid in range(local_lo, local_hi):
                covered.append(smap.to_global(shard, lvid))
        assert sorted(covered) == list(range(lo, hi))

    def test_place_round_robin(self):
        smap = ShardMap(3)
        assert [smap.place() for _ in range(7)] == [0, 1, 2, 0, 1, 2, 0]

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            ShardMap(0)
        smap = ShardMap(2)
        with pytest.raises(ValueError):
            smap.shard_of(-1)
        with pytest.raises(ValueError):
            smap.to_global(2, 0)
        with pytest.raises(ValueError):
            smap.split_range(5, 4)


# --- participant crash after PREPARE (engine-level) ---------------------------

def _pk_lookup(db, key: int) -> list[tuple]:
    txn = db.begin()
    rows = [row for _ref, row in db.lookup(txn, "accounts", "pk", key)]
    db.commit(txn)
    return rows


class TestParticipantCrashAfterPrepare:
    def test_prepared_insert_survives_crash_and_commits(self):
        db = make_accounts_db(EngineKind.SIASV)
        txn = db.begin()
        db.insert(txn, "accounts", (1, "alice", 10.0))
        db.prepare(txn, gtxid=41)
        crash(db)
        report = recover(db)
        assert report.in_doubt_txns == 1
        (ltxid, gtxid), = db.txn_mgr.in_doubt()
        assert gtxid == 41
        assert db.commit_prepared(ltxid)
        assert _pk_lookup(db, 1) == [(1, "alice", 10.0)]

    def test_prepared_update_presumed_abort_keeps_old_version(self):
        """Regression: an in-doubt UPDATE that keeps its key must not
        claim the committed version's index entry during recovery — its
        abort-undo would otherwise strip the committed row."""
        db = make_accounts_db(EngineKind.SIASV)
        txn = db.begin()
        ref = db.insert(txn, "accounts", (0, "acct-0", 100.0))
        db.commit(txn)
        txn = db.begin()
        db.update(txn, "accounts", ref, (0, "acct-0", 95.0))
        db.prepare(txn, gtxid=77)
        crash(db)
        report = recover(db)
        assert report.in_doubt_txns == 1
        (ltxid, gtxid), = db.txn_mgr.in_doubt()
        assert gtxid == 77
        assert db.abort_prepared(ltxid)
        assert _pk_lookup(db, 0) == [(0, "acct-0", 100.0)]

    def test_prepared_update_commit_decision_after_recovery(self):
        db = make_accounts_db(EngineKind.SIASV)
        txn = db.begin()
        ref = db.insert(txn, "accounts", (0, "acct-0", 100.0))
        db.commit(txn)
        txn = db.begin()
        db.update(txn, "accounts", ref, (0, "acct-0", 95.0))
        db.prepare(txn, gtxid=78)
        crash(db)
        recover(db)
        (ltxid, _gtxid), = db.txn_mgr.in_doubt()
        assert db.commit_prepared(ltxid)
        assert _pk_lookup(db, 0) == [(0, "acct-0", 95.0)]
        assert len(db.txn_mgr.prepared) == 0

    def test_unprepared_txn_is_rolled_back_not_reinstated(self):
        db = make_accounts_db(EngineKind.SIASV)
        txn = db.begin()
        db.insert(txn, "accounts", (9, "bob", 1.0))
        # no prepare, no commit: just power loss
        crash(db)
        report = recover(db)
        assert report.in_doubt_txns == 0
        assert _pk_lookup(db, 9) == []


# --- coordinator crash after decision (cluster-level) -------------------------

@pytest.fixture
def two_shards():
    """Two thread-mode shards, no router (tests bring their own)."""
    sup = ShardSupervisor(SupervisorConfig(
        shards=2, idle_timeout_sec=30.0, drain_timeout_sec=2.0))
    sup.start()
    yield sup
    sup.stop()


def _seed_shard_account(db) -> object:
    """One committed accounts row directly on a shard's database."""
    from repro.db.catalog import IndexDef
    from tests.conftest import ACCOUNTS

    db.create_table("accounts", ACCOUNTS,
                    indexes=[IndexDef("pk", ("id",), unique=True)])
    txn = db.begin()
    ref = db.insert(txn, "accounts", (0, "acct-0", 100.0))
    db.commit(txn)
    return ref


class TestCoordinatorCrashAfterDecision:
    def test_successor_pushes_logged_decision(self, two_shards):
        """Decision durably logged, coordinator dies before phase 2: a
        successor router with the same log commits the participant."""
        db0 = two_shards.database(0)
        ref = _seed_shard_account(db0)
        txn = db0.begin()
        db0.update(txn, "accounts", ref, (0, "acct-0", 55.0))
        db0.prepare(txn, gtxid=6)
        log = CoordinatorLog()
        log.log_commit(6, [(0, txn.txid)])
        assert log.pending_decisions() == {6: [(0, txn.txid)]}

        router = ClusterRouter(two_shards.addresses,
                               RouterConfig(port=0), coordinator_log=log)
        try:
            host, port = router.start_in_background()
            assert log.pending_decisions() == {}
            assert len(db0.txn_mgr.prepared) == 0
            assert _pk_lookup(db0, 0) == [(0, "acct-0", 55.0)]
            assert router.stats.in_doubt_resolved >= 1
            # the allocator must stay above the logged watermark
            with RemoteDatabase(host, port, pool_size=1) as remote:
                txn = remote.begin()
                assert txn.txid > 6
                remote.commit(txn)
        finally:
            router.stop_in_background()

    def test_no_logged_decision_is_presumed_abort(self, two_shards):
        db0 = two_shards.database(0)
        ref = _seed_shard_account(db0)
        txn = db0.begin()
        db0.update(txn, "accounts", ref, (0, "acct-0", 55.0))
        db0.prepare(txn, gtxid=9)

        router = ClusterRouter(two_shards.addresses, RouterConfig(port=0),
                               coordinator_log=CoordinatorLog())
        try:
            router.start_in_background()
            assert len(db0.txn_mgr.prepared) == 0
            assert _pk_lookup(db0, 0) == [(0, "acct-0", 100.0)]
            assert router.stats.presumed_aborts >= 1
        finally:
            router.stop_in_background()


# --- router end to end --------------------------------------------------------

@pytest.fixture
def cluster(two_shards):
    """Two shards behind a background router."""
    router = ClusterRouter(two_shards.addresses, RouterConfig(
        port=0, idle_timeout_sec=30.0, drain_timeout_sec=2.0))
    host, port = router.start_in_background()
    yield two_shards, router, host, port
    router.stop_in_background()


class TestRouterEndToEnd:
    def test_cross_shard_transfer_uses_two_phase_commit(self, cluster):
        sup, router, host, port = cluster
        from repro.db.catalog import IndexDef
        from tests.conftest import ACCOUNTS

        with RemoteDatabase(host, port, pool_size=2) as remote:
            remote.create_table("accounts", ACCOUNTS, indexes=[
                IndexDef("pk", ("id",), unique=True)])
            txn = remote.begin()
            # one row per INSERT: round-robin placement stripes the
            # accounts across both shards
            refs = [remote.insert(txn, "accounts", (i, f"a{i}", 100.0))
                    for i in range(4)]
            remote.commit(txn)
            assert {router.shard_map.shard_of(r) for r in refs} == {0, 1}

            txn = remote.begin()
            remote.update(txn, "accounts", refs[0], (0, "a0", 75.0))
            remote.update(txn, "accounts", refs[1], (1, "a1", 125.0))
            remote.commit(txn)
            assert router.stats.commits_2pc >= 1

            txn = remote.begin()
            balances = {row[0]: row[2]
                        for _ref, row in remote.scan(txn, "accounts")}
            remote.commit(txn)
            assert balances == {0: 75.0, 1: 125.0, 2: 100.0, 3: 100.0}
            assert sum(balances.values()) == 400.0
            assert router.stats.commits_readonly >= 1

    def test_abort_leaves_both_shards_untouched(self, cluster):
        _sup, router, host, port = cluster
        from repro.db.catalog import IndexDef
        from tests.conftest import ACCOUNTS

        with RemoteDatabase(host, port, pool_size=2) as remote:
            remote.create_table("accounts", ACCOUNTS, indexes=[
                IndexDef("pk", ("id",), unique=True)])
            txn = remote.begin()
            refs = [remote.insert(txn, "accounts", (i, f"a{i}", 100.0))
                    for i in range(2)]
            remote.commit(txn)

            txn = remote.begin()
            remote.update(txn, "accounts", refs[0], (0, "a0", 0.0))
            remote.update(txn, "accounts", refs[1], (1, "a1", 200.0))
            remote.abort(txn)

            txn = remote.begin()
            balances = sorted(row[2] for _ref, row
                              in remote.scan(txn, "accounts"))
            remote.commit(txn)
            assert balances == [100.0, 100.0]
            assert router.stats.aborts >= 1

    def test_unmodified_tpcc_driver_through_router(self, cluster):
        from repro.workload.driver import DriverConfig, TpccDriver
        from repro.workload.tpcc_data import TpccLoader
        from repro.workload.tpcc_schema import TpccScale, create_tpcc_tables

        _sup, router, host, port = cluster
        scale = TpccScale(districts_per_warehouse=2,
                          customers_per_district=4, items=10,
                          stock_per_warehouse=10,
                          initial_orders_per_district=2)
        with RemoteDatabase(host, port, pool_size=4) as remote:
            create_tpcc_tables(remote)
            TpccLoader(remote, scale=scale).load(warehouses=1)
            driver = TpccDriver(
                remote, warehouses=1, scale=scale,
                config=DriverConfig(
                    clients=2,
                    maintenance_interval_usec=3600 * units.SEC))
            summary = driver.run_transactions(20).summary()
        assert summary.commits > 0
        assert router.sessions.in_flight_txns() == 0
        assert (router.stats.commits_1pc + router.stats.commits_2pc
                + router.stats.commits_readonly) >= summary.commits


# --- cluster-wide consistent snapshots ----------------------------------------

def _striped_accounts(remote, router, count: int = 2) -> list:
    """``count`` committed accounts, one per shard (round-robin)."""
    from repro.db.catalog import IndexDef
    from tests.conftest import ACCOUNTS

    remote.create_table("accounts", ACCOUNTS, indexes=[
        IndexDef("pk", ("id",), unique=True)])
    txn = remote.begin()
    refs = [remote.insert(txn, "accounts", (i, f"a{i}", 100.0))
            for i in range(count)]
    remote.commit(txn)
    assert {router.shard_map.shard_of(r) for r in refs} == {0, 1}
    return refs


def _fractured_read_probe(remote, refs) -> float:
    """The deterministic anomaly shape: a scanner reads account 0, a
    cross-shard transfer commits, the scanner reads account 1.  Returns
    the sum the scanner observed (200.0 = consistent cut)."""
    scan = remote.begin()
    row0 = remote.read(scan, "accounts", refs[0])
    txn = remote.begin()
    remote.update(txn, "accounts", refs[0], (0, "a0", 75.0))
    remote.update(txn, "accounts", refs[1], (1, "a1", 125.0))
    remote.commit(txn)
    row1 = remote.read(scan, "accounts", refs[1])
    remote.commit(scan)
    return row0[2] + row1[2]


class TestClusterWideSnapshots:
    def test_legacy_per_shard_snapshots_fracture(self, two_shards):
        """Reproducer: with per-shard first-touch snapshots the scanner
        sees the credit but not the debit of one committed transfer."""
        router = ClusterRouter(two_shards.addresses, RouterConfig(
            port=0, idle_timeout_sec=30.0, drain_timeout_sec=2.0,
            per_shard_snapshots=True))
        host, port = router.start_in_background()
        try:
            with RemoteDatabase(host, port, pool_size=2) as remote:
                refs = _striped_accounts(remote, router)
                # shard 0 snapshots at the first read (pre-transfer),
                # shard 1 at the second (post-transfer): money appears
                assert _fractured_read_probe(remote, refs) == 225.0
        finally:
            router.stop_in_background()

    def test_global_read_timestamp_closes_the_fracture(self, cluster):
        """Same interleaving, default mode: every shard is pinned to the
        BEGIN-time global timestamp, so the cut stays consistent."""
        _sup, router, host, port = cluster
        with RemoteDatabase(host, port, pool_size=2) as remote:
            refs = _striped_accounts(remote, router)
            assert _fractured_read_probe(remote, refs) == 200.0
            # read-your-writes: a begin after the commit ack must see
            # the transfer (the router's commit floor forces a refresh)
            txn = remote.begin()
            balances = sorted(row[2] for _ref, row
                              in remote.scan(txn, "accounts"))
            remote.commit(txn)
            assert balances == [75.0, 125.0]
            assert router.stats.begins_at_ts >= 3

    def test_serializable_rejected_at_begin(self, cluster):
        """Satellite: SSI is per-engine; the router refuses rather than
        silently downgrading to snapshot isolation."""
        from repro.common.errors import ProtocolError

        _sup, _router, host, port = cluster
        with RemoteDatabase(host, port, pool_size=1) as remote:
            with pytest.raises(ProtocolError, match="serializable"):
                remote.begin(serializable=True)

    def test_stats_expose_cluster_snapshot_fields(self, cluster):
        _sup, router, host, port = cluster
        with RemoteDatabase(host, port, pool_size=2) as remote:
            refs = _striped_accounts(remote, router)
            txn = remote.begin()
            remote.scan(txn, "accounts")
            remote.commit(txn)
            stats = remote.server_stats()
        section = stats["cluster"]
        assert section["per_shard_snapshots"] is False
        for key in ("snapshot_ts", "commit_floor", "straddle_windows",
                    "in_doubt_1pc", "pending_decisions"):
            assert isinstance(section[key], int), key
        assert section["commit_floor"] > 0  # the seeding commit raised it
        for shard in section["shards"]:
            assert shard["alive"]
            assert shard["closed_ts"] >= 0
            # pinned BEGINs reached both shards (scan fans out)
            assert shard["txns"]["begin_at"] >= 1

    def test_wire_begin_at_ts_pins_single_shard_snapshot(self, two_shards):
        """The at_ts operand end to end against one shard server."""
        from repro.db.catalog import IndexDef
        from tests.conftest import ACCOUNTS

        host, port = two_shards.addresses[0]
        with RemoteDatabase(host, port, pool_size=2) as remote:
            remote.create_table("accounts", ACCOUNTS, indexes=[
                IndexDef("pk", ("id",), unique=True)])
            txn = remote.begin()
            ref = remote.insert(txn, "accounts", (0, "acct-0", 100.0))
            remote.commit(txn)
            ts = remote.closed_ts()
            pinned = remote.begin(at_ts=ts)
            writer = remote.begin()
            remote.update(writer, "accounts", ref, (0, "acct-0", 42.0))
            remote.commit(writer)
            # frozen verdicts: the commit after pinning stays invisible
            assert remote.read(pinned, "accounts", ref) == (
                0, "acct-0", 100.0)
            remote.commit(pinned)
            fresh = remote.begin()
            assert remote.read(fresh, "accounts", ref) == (
                0, "acct-0", 42.0)
            remote.commit(fresh)


# --- multi-endpoint pool ------------------------------------------------------

class TestMultiEndpointPool:
    def test_dead_endpoint_breaker_is_isolated(self, two_shards):
        import socket

        # a port that is certainly not listening
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            dead = probe.getsockname()
        pool = ConnectionPool(
            endpoints=[two_shards.addresses[0], dead],
            size=2,
            retry=RetryPolicy(max_attempts=2, base_delay_sec=0.001,
                              max_delay_sec=0.01, jitter=False),
            breaker=CircuitBreaker(failure_threshold=2,
                                   reset_timeout_sec=60.0))
        try:
            assert pool.call(Command.PING, endpoint=0) == "pong"
            # two failed dials (retry budget) trip endpoint 1's breaker;
            # the next attempt fails fast without touching the network
            with pytest.raises(ConnectionError):
                pool.call(Command.PING, endpoint=1)
            with pytest.raises(CircuitOpenError):
                pool.call(Command.PING, endpoint=1)
            health = pool.endpoints_health()
            assert len(health) == 2
            assert health[1]["state"] == "open"
            assert health[0]["state"] == "closed"
            # the healthy endpoint still serves, pinned or unpinned
            assert pool.call(Command.PING, endpoint=0) == "pong"
            assert pool.call(Command.PING) == "pong"
        finally:
            pool.close()


# --- shard-fault chaos smoke --------------------------------------------------

class TestClusterChaosSmoke:
    @pytest.mark.parametrize("fault_mode", ["link", "crash"])
    def test_one_fault_point_holds_invariants(self, fault_mode):
        from repro.experiments.chaos_sweep import (
            ClusterChaosConfig,
            run_cluster_one,
        )

        cfg = ClusterChaosConfig(shards=2, fault_mode=fault_mode,
                                 accounts=6, transfers=8, seed=3)
        outcome = run_cluster_one(cfg, at_frame=9,
                                  kind=NetFaultKind.RESET_AFTER)
        assert outcome.tripped
        assert outcome.confirmed + outcome.failed <= cfg.transfers
        if fault_mode == "crash":
            assert outcome.killed_shard == 9 % cfg.shards
