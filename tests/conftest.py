"""Shared fixtures: tiny devices, substrates and databases for fast tests."""

from __future__ import annotations

import pytest

from repro.buffer.manager import BufferManager
from repro.common import units
from repro.common.clock import SimClock
from repro.common.config import (
    BufferConfig,
    EngineConfig,
    FlashConfig,
    SystemConfig,
)
from repro.core.engine import SiasVEngine
from repro.baseline.engine import SiEngine
from repro.db.catalog import IndexDef
from repro.db.database import Database, EngineKind
from repro.db.schema import ColType, Schema
from repro.storage.flash import FlashDevice
from repro.storage.tablespace import Tablespace
from repro.storage.trace import TraceRecorder
from repro.txn.manager import TransactionManager
from repro.wal.log import WriteAheadLog

SMALL_FLASH = FlashConfig(capacity_bytes=64 * units.MIB)


@pytest.fixture
def clock() -> SimClock:
    """A fresh simulated clock."""
    return SimClock()


@pytest.fixture
def trace() -> TraceRecorder:
    """A fresh trace recorder."""
    return TraceRecorder()


@pytest.fixture
def flash(clock: SimClock, trace: TraceRecorder) -> FlashDevice:
    """A small flash device with tracing."""
    return FlashDevice(clock, SMALL_FLASH, trace=trace)


@pytest.fixture
def tablespace(flash: FlashDevice) -> Tablespace:
    """A tablespace with small extents over the flash fixture."""
    return Tablespace(flash, extent_pages=16)


@pytest.fixture
def buffer(tablespace: Tablespace) -> BufferManager:
    """A 64-frame buffer pool."""
    return BufferManager(tablespace, pool_pages=64)


@pytest.fixture
def txn_mgr(clock: SimClock) -> TransactionManager:
    """A transaction manager with a WAL on its own flash device."""
    wal_device = FlashDevice(clock, SMALL_FLASH, name="wal")
    return TransactionManager(wal=WriteAheadLog(wal_device))


@pytest.fixture
def sias_engine(buffer: BufferManager, tablespace: Tablespace,
                txn_mgr: TransactionManager) -> SiasVEngine:
    """A SIAS-V engine over one fresh relation file."""
    file_id = tablespace.create_file("rel.test")
    return SiasVEngine(relation_id=0, buffer=buffer, file_id=file_id,
                       config=EngineConfig(), txn_mgr=txn_mgr)


@pytest.fixture
def si_engine(buffer: BufferManager, tablespace: Tablespace,
              txn_mgr: TransactionManager) -> SiEngine:
    """A baseline SI engine over one fresh relation file."""
    file_id = tablespace.create_file("rel.test")
    return SiEngine(relation_id=0, buffer=buffer, file_id=file_id,
                    config=EngineConfig(), txn_mgr=txn_mgr)


def small_system_config(**buffer_kwargs) -> SystemConfig:
    """A SystemConfig sized for unit tests."""
    return SystemConfig(
        flash=SMALL_FLASH,
        buffer=BufferConfig(pool_pages=buffer_kwargs.pop("pool_pages", 128)),
        extent_pages=16,
    )


ACCOUNTS = Schema.of(("id", ColType.INT), ("owner", ColType.STR),
                     ("balance", ColType.FLOAT))


def make_accounts_db(kind: EngineKind, **kwargs) -> Database:
    """A flash database with one indexed 'accounts' table."""
    db = Database.on_flash(kind, small_system_config(**kwargs))
    db.create_table("accounts", ACCOUNTS, indexes=[
        IndexDef("pk", ("id",), unique=True),
        IndexDef("by_owner", ("owner",)),
    ])
    return db


@pytest.fixture(params=[EngineKind.SIASV, EngineKind.SI],
                ids=["sias-v", "si"])
def any_db(request) -> Database:
    """Parametrised database fixture: every test runs on both engines."""
    return make_accounts_db(request.param)


@pytest.fixture
def sias_db() -> Database:
    """A SIAS-V accounts database."""
    return make_accounts_db(EngineKind.SIASV)


@pytest.fixture
def si_db() -> Database:
    """A baseline SI accounts database."""
    return make_accounts_db(EngineKind.SI)
