"""Unit tests for the buffer manager, background writer and checkpointer."""

from __future__ import annotations

import pytest

from repro.buffer.background_writer import BackgroundWriter
from repro.buffer.checkpointer import Checkpointer
from repro.buffer.manager import BufferManager
from repro.common import units
from repro.common.config import PageLayout
from repro.common.errors import NoFreeFrameError, PinError
from repro.pages.append_page import AppendPage
from repro.pages.layout import HeapTuple, XMAX_INFINITY
from repro.pages.slotted import SlottedHeapPage


def _heap_page(page_no: int, tag: int = 0) -> SlottedHeapPage:
    page = SlottedHeapPage(page_no)
    page.insert(HeapTuple(tag, XMAX_INFINITY, False, b"x" * 16))
    return page


def _fill(buffer: BufferManager, file_id: int, count: int) -> None:
    for i in range(count):
        buffer.put_dirty(file_id, i, _heap_page(i, i))


class TestBufferManager:
    def test_miss_then_hit(self, buffer, tablespace):
        f = tablespace.create_file("f")
        buffer.put_dirty(f, 0, _heap_page(0))
        buffer.flush_all()
        buffer.invalidate_all()
        buffer.get_page(f, 0)
        assert buffer.stats.misses == 1
        buffer.get_page(f, 0)
        assert buffer.stats.hits == 1

    def test_read_returns_equal_content(self, buffer, tablespace):
        f = tablespace.create_file("f")
        buffer.put_dirty(f, 0, _heap_page(0, 42))
        buffer.flush_all()
        buffer.invalidate_all()
        page = buffer.get_page(f, 0)
        assert page.read(0).xmin == 42

    def test_eviction_writes_dirty_page_back(self, buffer, tablespace):
        f = tablespace.create_file("f")
        _fill(buffer, f, buffer.pool_pages + 10)
        assert buffer.stats.evictions >= 10
        assert buffer.stats.writebacks >= 10
        # every page's content must still be readable
        for i in range(buffer.pool_pages + 10):
            assert buffer.get_page(f, i).read(0).xmin == i

    def test_clean_eviction_no_writeback(self, buffer, tablespace):
        f = tablespace.create_file("f")
        _fill(buffer, f, buffer.pool_pages)
        buffer.flush_all()
        wb = buffer.stats.writebacks
        buffer.get_pages(f, list(range(buffer.pool_pages)))  # re-reference
        buffer.put_clean(f, buffer.pool_pages,
                         _heap_page(buffer.pool_pages))  # forces eviction
        assert buffer.stats.writebacks == wb  # victim was clean

    def test_pinned_pages_survive_eviction(self, buffer, tablespace):
        f = tablespace.create_file("f")
        pinned = buffer.pool_pages + 30
        buffer.put_dirty(f, pinned, _heap_page(pinned, 7))
        buffer.pin(f, pinned)
        _fill(buffer, f, buffer.pool_pages + 20)
        assert buffer.is_cached(f, pinned)
        buffer.unpin(f, pinned)

    def test_replacing_pinned_frame_raises(self, buffer, tablespace):
        f = tablespace.create_file("f")
        buffer.put_dirty(f, 0, _heap_page(0))
        buffer.pin(f, 0)
        with pytest.raises(PinError):
            buffer.put_dirty(f, 0, _heap_page(0, 9))
        buffer.unpin(f, 0)

    def test_all_pinned_raises(self, tablespace):
        buffer = BufferManager(tablespace, pool_pages=4)
        f = tablespace.create_file("f")
        for i in range(4):
            buffer.put_dirty(f, i, _heap_page(i))
            buffer.pin(f, i)
        with pytest.raises(NoFreeFrameError):
            buffer.put_dirty(f, 4, _heap_page(4))

    def test_unpin_without_pin_raises(self, buffer, tablespace):
        f = tablespace.create_file("f")
        buffer.put_dirty(f, 0, _heap_page(0))
        with pytest.raises(PinError):
            buffer.unpin(f, 0)

    def test_mark_dirty_noresident_raises(self, buffer, tablespace):
        f = tablespace.create_file("f")
        with pytest.raises(PinError):
            buffer.mark_dirty(f, 0)

    def test_flush_page_only_when_dirty(self, buffer, tablespace):
        f = tablespace.create_file("f")
        buffer.put_dirty(f, 0, _heap_page(0))
        assert buffer.flush_page(f, 0) is True
        assert buffer.flush_page(f, 0) is False

    def test_flush_all_clears_dirty_set(self, buffer, tablespace):
        f = tablespace.create_file("f")
        _fill(buffer, f, 10)
        assert len(buffer.dirty_keys()) == 10
        assert buffer.flush_all() == 10
        assert buffer.dirty_keys() == []

    def test_get_pages_batches_misses(self, buffer, tablespace, flash):
        f = tablespace.create_file("f")
        _fill(buffer, f, 32)
        buffer.flush_all()
        buffer.invalidate_all()
        # let the asynchronous flush drain so the channels are idle and
        # the timing below measures the reads alone
        flash.clock.advance(32 * 400)
        reads_before = flash.stats.reads
        t0 = flash.clock.now
        pages = buffer.get_pages(f, list(range(32)))
        elapsed = flash.clock.now - t0
        assert len(pages) == 32
        assert flash.stats.reads - reads_before == 32
        # parallel channels: far cheaper than 32 serial reads
        assert elapsed < 32 * 50

    def test_get_pages_dedupes(self, buffer, tablespace, flash):
        f = tablespace.create_file("f")
        _fill(buffer, f, 2)
        buffer.flush_all()
        buffer.invalidate_all()
        pages = buffer.get_pages(f, [0, 1, 0, 1, 0])
        assert len(pages) == 5
        assert flash.stats.reads == 2
        assert pages[0] is pages[2] is pages[4]

    def test_drop_discards_without_write(self, buffer, tablespace):
        f = tablespace.create_file("f")
        buffer.put_dirty(f, 0, _heap_page(0))
        wb = buffer.stats.writebacks
        buffer.drop(f, 0)
        assert not buffer.is_cached(f, 0)
        assert buffer.stats.writebacks == wb

    def test_get_page_pinned_faults_on_miss(self, buffer, tablespace):
        f = tablespace.create_file("f")
        buffer.put_dirty(f, 0, _heap_page(0, 7))
        buffer.flush_all()
        buffer.invalidate_all()
        page = buffer.get_page_pinned(f, 0)
        assert page.read(0).xmin == 7
        buffer.unpin(f, 0)

    def test_get_page_pinned_survives_eviction_pressure(self, tablespace):
        buffer = BufferManager(tablespace, pool_pages=4)
        f = tablespace.create_file("f")
        buffer.put_dirty(f, 0, _heap_page(0, 7))
        buffer.flush_all()  # clean frames are the sweep's preferred victims
        page = buffer.get_page_pinned(f, 0)
        for i in range(1, 12):
            buffer.put_dirty(f, i, _heap_page(i, i))
        assert buffer.is_cached(f, 0)
        assert buffer.get_page(f, 0) is page  # same object, not a re-fault
        buffer.unpin(f, 0)

    def test_put_dirty_pinned_installs_with_pin_held(self, tablespace):
        buffer = BufferManager(tablespace, pool_pages=4)
        f = tablespace.create_file("f")
        buffer.put_dirty(f, 0, _heap_page(0, 7), pinned=True)
        for i in range(1, 12):
            buffer.put_dirty(f, i, _heap_page(i, i))
        assert buffer.is_cached(f, 0)
        buffer.unpin(f, 0)
        for i in range(12, 24):
            buffer.put_dirty(f, i, _heap_page(i, i))
        assert not buffer.is_cached(f, 0)  # unpinned frames evict normally

    def test_hit_ratio(self, buffer, tablespace):
        f = tablespace.create_file("f")
        buffer.put_dirty(f, 0, _heap_page(0))
        buffer.flush_all()
        buffer.invalidate_all()
        buffer.get_page(f, 0)
        buffer.get_page(f, 0)
        buffer.get_page(f, 0)
        assert buffer.stats.hit_ratio == pytest.approx(2 / 3)


class TestBackgroundWriter:
    def test_runs_on_interval(self, buffer, tablespace, clock):
        writer = BackgroundWriter(buffer, clock, interval_usec=1000,
                                  batch_pages=100)
        f = tablespace.create_file("f")
        _fill(buffer, f, 5)
        assert writer.maybe_run() == 0  # not due yet
        clock.advance(1000)
        assert writer.maybe_run() == 1
        assert buffer.dirty_keys() == []
        assert writer.pages_written == 5

    def test_catches_up_multiple_ticks(self, buffer, tablespace, clock):
        writer = BackgroundWriter(buffer, clock, interval_usec=100,
                                  batch_pages=10)
        clock.advance(550)
        assert writer.maybe_run() == 5

    def test_batch_limit(self, buffer, tablespace, clock):
        # the interval is large relative to device time so the flush's own
        # clock advancement cannot trigger a second (catch-up) tick
        writer = BackgroundWriter(buffer, clock, interval_usec=units.SEC,
                                  batch_pages=3)
        f = tablespace.create_file("f")
        _fill(buffer, f, 10)
        clock.advance(units.SEC)
        writer.maybe_run()
        assert len(buffer.dirty_keys()) == 7

    def test_subscribers_called_per_tick(self, buffer, clock):
        writer = BackgroundWriter(buffer, clock, interval_usec=100,
                                  batch_pages=10)
        calls = []
        writer.subscribe(lambda: calls.append(1))
        clock.advance(300)
        writer.maybe_run()
        assert len(calls) == 3

    def test_force_tick(self, buffer, tablespace, clock):
        writer = BackgroundWriter(buffer, clock, interval_usec=10_000,
                                  batch_pages=10)
        f = tablespace.create_file("f")
        _fill(buffer, f, 2)
        writer.force_tick()
        assert buffer.dirty_keys() == []


class TestCheckpointer:
    def test_flushes_everything(self, buffer, tablespace, clock):
        cp = Checkpointer(buffer, clock, interval_usec=units.SEC)
        f = tablespace.create_file("f")
        _fill(buffer, f, 12)
        clock.advance(units.SEC)
        assert cp.maybe_run() == 1
        assert buffer.dirty_keys() == []
        assert cp.pages_written == 12

    def test_not_due(self, buffer, clock):
        cp = Checkpointer(buffer, clock, interval_usec=units.SEC)
        assert cp.maybe_run() == 0

    def test_subscribers_before_flush(self, buffer, tablespace, clock):
        cp = Checkpointer(buffer, clock, interval_usec=units.SEC)
        f = tablespace.create_file("f")
        order = []
        cp.subscribe(lambda: (order.append("seal"),
                              buffer.put_dirty(f, 0, _heap_page(0))))
        cp.run_now()
        assert order == ["seal"]
        assert buffer.dirty_keys() == []  # the sealed page was flushed too

    def test_appendpage_roundtrips_through_writeback(self, buffer,
                                                     tablespace):
        from repro.pages.layout import VersionRecord
        f = tablespace.create_file("f")
        page = AppendPage(0, PageLayout.VECTOR)
        page.append(VersionRecord(1, 2, None, False, b"abc"))
        buffer.put_dirty(f, 0, page)
        buffer.flush_all()
        buffer.invalidate_all()
        back = buffer.get_page(f, 0)
        assert isinstance(back, AppendPage)
        assert back.read(0).payload == b"abc"
