"""Cross-cutting hypothesis property tests on core data structures.

Complements the per-module unit tests with randomised invariants: binary
round-trips for every page format, FTL bookkeeping under arbitrary
write/trim interleavings, VIDmap-vs-dict equivalence, and row-codec
round-trips over randomly generated schemas.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import units
from repro.common.config import FlashConfig, PageLayout
from repro.common.rng import make_rng
from repro.core.vidmap import VidMap
from repro.db.row import RowCodec
from repro.db.schema import ColType, Schema
from repro.pages.append_page import AppendPage
from repro.pages.base import Page
from repro.pages.layout import XMAX_INFINITY, HeapTuple, Tid, VersionRecord
from repro.pages.slotted import SlottedHeapPage
from repro.storage.ftl import PageMappedFtl

# --- strategies ---------------------------------------------------------------

tids = st.one_of(
    st.none(),
    st.builds(Tid, st.integers(0, 2**31 - 1), st.integers(0, 2**15 - 1)))

version_records = st.builds(
    VersionRecord,
    create_ts=st.integers(0, 2**40),
    vid=st.integers(0, 2**40),
    pred=tids,
    tombstone=st.booleans(),
    payload=st.binary(max_size=300),
)

heap_tuples = st.builds(
    HeapTuple,
    xmin=st.integers(0, 2**40),
    xmax=st.one_of(st.just(XMAX_INFINITY), st.integers(0, 2**40)),
    tombstone=st.booleans(),
    payload=st.binary(max_size=300),
)


class TestPageRoundtrips:
    @given(st.lists(version_records, max_size=20),
           st.sampled_from([PageLayout.NSM, PageLayout.VECTOR]))
    @settings(max_examples=80, deadline=None)
    def test_append_page(self, records, layout):
        page = AppendPage(7, layout)
        stored = []
        for record in records:
            if page.fits(record):
                page.append(record)
                stored.append(record)
        back = Page.from_bytes(page.to_bytes())
        assert isinstance(back, AppendPage)
        assert back.record_count == len(stored)
        for slot, record in enumerate(stored):
            assert back.read(slot) == record

    @given(st.lists(heap_tuples, max_size=20),
           st.lists(st.integers(0, 19), max_size=6))
    @settings(max_examples=80, deadline=None)
    def test_slotted_page_with_kills(self, tuples, kills):
        page = SlottedHeapPage(3)
        stored: dict[int, HeapTuple] = {}
        for tuple_ in tuples:
            if page.fits(tuple_):
                stored[page.insert(tuple_)] = tuple_
        for slot in kills:
            if slot in stored:
                page.kill(slot)
                del stored[slot]
        back = Page.from_bytes(page.to_bytes())
        assert isinstance(back, SlottedHeapPage)
        assert set(back.live_slots()) == set(stored)
        for slot, tuple_ in stored.items():
            assert back.read(slot) == tuple_

    @given(st.lists(version_records, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_layouts_hold_identical_content(self, records):
        nsm = AppendPage(0, PageLayout.NSM)
        vec = AppendPage(0, PageLayout.VECTOR)
        for record in records:
            if nsm.fits(record) and vec.fits(record):
                nsm.append(record)
                vec.append(record)
        assert nsm.record_count == vec.record_count
        for slot in range(nsm.record_count):
            assert nsm.read(slot) == vec.read(slot)
            assert nsm.read_meta(slot) == vec.read_meta(slot)


class TestFtlProperties:
    @given(st.lists(st.tuples(st.sampled_from(["write", "trim"]),
                              st.integers(0, 63)),
                    max_size=400))
    @settings(max_examples=40, deadline=None)
    def test_valid_count_matches_mapping(self, ops):
        ftl = PageMappedFtl(FlashConfig(capacity_bytes=4 * units.MIB))
        live: set[int] = set()
        for op, lpn in ops:
            if op == "write":
                ftl.host_write(lpn)
                live.add(lpn)
            else:
                ftl.host_trim(lpn)
                live.discard(lpn)
        total_valid = sum(ftl.valid_pages_in(b) for b in range(ftl.n_blocks))
        assert total_valid == len(live)
        for lpn in live:
            assert ftl.physical_of(lpn) is not None
        assert ftl.stats.write_amplification >= 1.0 or not live

    @given(st.lists(st.integers(0, 31), min_size=1, max_size=600))
    @settings(max_examples=30, deadline=None)
    def test_mapping_always_unique(self, lpns):
        ftl = PageMappedFtl(FlashConfig(capacity_bytes=4 * units.MIB))
        for lpn in lpns:
            ftl.host_write(lpn)
        physical = [ftl.physical_of(lpn) for lpn in set(lpns)]
        assert len(physical) == len(set(physical))  # no aliased pages


class TestVidMapProperties:
    @given(st.lists(st.tuples(st.integers(0, 200),
                              st.one_of(st.none(),
                                        st.integers(0, 1000))),
                    max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_matches_dict_model(self, ops):
        vidmap = VidMap(slots_per_bucket=16)
        model: dict[int, Tid] = {}
        for vid, page_no in ops:
            if page_no is None:
                vidmap.set(vid, None)
                model.pop(vid, None)
            else:
                tid = Tid(page_no, 0)
                vidmap.set(vid, tid)
                model[vid] = tid
        for vid in range(201):
            assert vidmap.get(vid) == model.get(vid)
        assert dict(vidmap.entries()) == model
        assert vidmap.item_count() == len(model)


names = st.lists(
    st.text(alphabet="abcdefgh", min_size=1, max_size=6),
    min_size=1, max_size=6, unique=True)
types = st.sampled_from([ColType.INT, ColType.FLOAT, ColType.STR])


class TestRowCodecProperties:
    @given(names, st.data())
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_over_random_schemas(self, columns, data):
        col_types = [data.draw(types) for _ in columns]
        schema = Schema.of(*zip(columns, col_types))
        row = []
        for col_type in col_types:
            if col_type is ColType.INT:
                row.append(data.draw(st.integers(-2**60, 2**60)))
            elif col_type is ColType.FLOAT:
                row.append(data.draw(st.floats(allow_nan=False,
                                               allow_infinity=False,
                                               width=32)))
            else:
                row.append(data.draw(st.text(max_size=40)))
        codec = RowCodec(schema)
        decoded = codec.decode(codec.encode(tuple(row)))
        for original, got, col_type in zip(row, decoded, col_types):
            if col_type is ColType.FLOAT:
                assert got == pytest.approx(original)
            else:
                assert got == original


class TestMetamorphic:
    """Relations between whole simulation runs."""

    def _run(self, think_ms: int, seed: int = 9):
        from repro.common.config import BufferConfig, SystemConfig
        from repro.db.database import Database, EngineKind
        from repro.workload.driver import DriverConfig, TpccDriver
        from repro.workload.mixes import TxnType
        from repro.workload.tpcc_data import TpccLoader
        from repro.workload.tpcc_schema import TpccScale, create_tpcc_tables
        from tests.conftest import SMALL_FLASH

        scale = TpccScale(districts_per_warehouse=3,
                          customers_per_district=6, items=20,
                          stock_per_warehouse=20,
                          initial_orders_per_district=3)
        db = Database.on_flash(
            EngineKind.SIASV,
            SystemConfig(flash=SMALL_FLASH,
                         buffer=BufferConfig(pool_pages=256),
                         extent_pages=16))
        create_tpcc_tables(db)
        TpccLoader(db, scale, seed=seed).load(2)
        driver = TpccDriver(db, 2, scale, config=DriverConfig(
            clients=2, think_time_usec=think_ms * units.MSEC,
            mix={TxnType.ORDER_STATUS: 1.0}), seed=seed)
        return driver.run_for(3 * units.SEC)

    def test_doubling_think_time_halves_read_only_throughput(self):
        fast = self._run(think_ms=10)
        slow = self._run(think_ms=20)
        ratio = len(fast.outcomes) / max(1, len(slow.outcomes))
        assert 1.6 < ratio < 2.4  # rate-limited regime scales inversely
