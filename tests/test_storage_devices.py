"""Unit tests for the device simulators: flash, FTL, HDD, RAID-0."""

from __future__ import annotations

import pytest

from repro.common import units
from repro.common.clock import SimClock
from repro.common.config import FlashConfig, HddConfig
from repro.common.errors import (
    ConfigError,
    InvalidAddressError,
    OutOfSpaceError,
    ReadUnwrittenError,
    WornOutError,
)
from repro.storage.flash import FlashDevice
from repro.storage.ftl import PageMappedFtl
from repro.storage.hdd import HddDevice
from repro.storage.raid import Raid0Device
from repro.storage.trace import TraceOp, TraceRecorder

PAGE = units.DB_PAGE_SIZE
TINY = FlashConfig(capacity_bytes=4 * units.MIB)  # 512 pages, 8 blocks


def _payload(tag: int) -> bytes:
    return bytes([tag % 256]) * PAGE


class TestFlashDevice:
    def test_write_read_roundtrip(self, clock):
        ssd = FlashDevice(clock, TINY)
        ssd.write_page(3, _payload(7))
        assert ssd.read_page(3) == _payload(7)

    def test_read_unwritten_raises(self, clock):
        ssd = FlashDevice(clock, TINY)
        with pytest.raises(ReadUnwrittenError):
            ssd.read_page(0)

    def test_lba_bounds_checked(self, clock):
        ssd = FlashDevice(clock, TINY)
        with pytest.raises(InvalidAddressError):
            ssd.read_page(ssd.total_pages)
        with pytest.raises(InvalidAddressError):
            ssd.write_page(-1, _payload(0))

    def test_wrong_payload_size_rejected(self, clock):
        ssd = FlashDevice(clock, TINY)
        with pytest.raises(InvalidAddressError):
            ssd.write_page(0, b"short")

    def test_asymmetric_latency(self, clock):
        ssd = FlashDevice(clock, TINY)
        t0 = clock.now
        ssd.write_page(0, _payload(1))
        write_cost = clock.now - t0
        t0 = clock.now
        ssd.read_page(0)
        read_cost = clock.now - t0
        assert write_cost > read_cost  # flash asymmetry
        assert read_cost == TINY.read_latency_usec
        assert write_cost == TINY.program_latency_usec

    def test_batch_reads_exploit_channels(self, clock):
        ssd = FlashDevice(clock, TINY)
        for lba in range(16):
            ssd.write_page(lba, _payload(lba))
        serial_clock = SimClock()
        serial = FlashDevice(serial_clock, TINY)
        for lba in range(16):
            serial.write_page(lba, _payload(lba))
        t0 = clock.now
        batch = ssd.read_pages(list(range(16)))
        batch_cost = clock.now - t0
        t0 = serial_clock.now
        singles = [serial.read_page(lba) for lba in range(16)]
        serial_cost = serial_clock.now - t0
        assert batch == singles
        # 16 reads over 8 channels should take ~2 service times, not 16
        assert batch_cost < serial_cost / 4

    def test_batch_write_roundtrip(self, clock):
        ssd = FlashDevice(clock, TINY)
        ssd.write_pages([(lba, _payload(lba)) for lba in range(8)])
        assert all(ssd.read_page(lba) == _payload(lba) for lba in range(8))

    def test_stats_accumulate(self, clock):
        ssd = FlashDevice(clock, TINY)
        ssd.write_page(0, _payload(0))
        ssd.write_page(1, _payload(1))
        ssd.read_page(0)
        assert ssd.stats.writes == 2
        assert ssd.stats.reads == 1
        assert ssd.stats.write_bytes == 2 * PAGE
        assert ssd.stats.read_bytes == PAGE

    def test_stats_diff(self, clock):
        ssd = FlashDevice(clock, TINY)
        ssd.write_page(0, _payload(0))
        snap = ssd.stats.snapshot()
        ssd.write_page(1, _payload(1))
        delta = ssd.stats.diff(snap)
        assert delta.writes == 1

    def test_trace_records_ops(self, clock, trace):
        ssd = FlashDevice(clock, TINY, trace=trace)
        ssd.write_page(5, _payload(5))
        ssd.read_page(5)
        ssd.trim(5)
        ops = [e.op for e in trace.events]
        assert ops == [TraceOp.WRITE, TraceOp.READ, TraceOp.TRIM]
        assert all(e.lba == 5 for e in trace.events)

    def test_trim_forgets_data(self, clock):
        ssd = FlashDevice(clock, TINY)
        ssd.write_page(0, _payload(0))
        ssd.trim(0)
        with pytest.raises(ReadUnwrittenError):
            ssd.read_page(0)

    def test_overwrite_returns_new_data(self, clock):
        ssd = FlashDevice(clock, TINY)
        ssd.write_page(0, _payload(1))
        ssd.write_page(0, _payload(2))
        assert ssd.read_page(0) == _payload(2)


class TestFtl:
    def test_mapping_moves_on_overwrite(self):
        ftl = PageMappedFtl(TINY)
        ftl.host_write(0)
        first = ftl.physical_of(0)
        ftl.host_write(0)
        assert ftl.physical_of(0) != first  # out-of-place

    def test_write_amp_starts_at_one(self):
        ftl = PageMappedFtl(TINY)
        for lpn in range(10):
            ftl.host_write(lpn)
        assert ftl.stats.write_amplification == 1.0

    def test_gc_triggers_under_pressure(self):
        ftl = PageMappedFtl(TINY)
        # hammer a small logical range so blocks fill with invalid pages
        for i in range(TINY.total_pages * 2):
            ftl.host_write(i % 32)
        assert ftl.stats.erases > 0
        assert ftl.stats.gc_runs > 0

    def test_gc_cost_charged(self):
        ftl = PageMappedFtl(TINY)
        costs = [ftl.host_write(i % 32)
                 for i in range(TINY.total_pages * 2)]
        # some write paid more than a bare program (GC stall)
        assert max(costs) > TINY.program_latency_usec

    def test_trim_reduces_gc_work(self):
        with_trim = PageMappedFtl(TINY)
        without = PageMappedFtl(TINY)
        for i in range(TINY.total_pages):
            with_trim.host_write(i % 64)
            with_trim.host_trim(i % 64)
            without.host_write(i % 64)
        assert with_trim.stats.gc_relocated <= without.stats.gc_relocated

    def test_valid_count_consistency(self):
        ftl = PageMappedFtl(TINY)
        for i in range(100):
            ftl.host_write(i % 16)
        total_valid = sum(ftl.valid_pages_in(b) for b in range(ftl.n_blocks))
        assert total_valid == 16  # one valid page per live logical page

    def test_wear_stats(self):
        ftl = PageMappedFtl(TINY)
        for i in range(TINY.total_pages * 2):
            ftl.host_write(i % 32)
        lo, hi, mean = ftl.wear_stats()
        assert 0 <= lo <= mean <= hi

    def test_endurance_exhaustion(self):
        cfg = FlashConfig(capacity_bytes=4 * units.MIB, erase_endurance=2)
        ftl = PageMappedFtl(cfg)
        with pytest.raises(WornOutError):
            for i in range(cfg.total_pages * 30):
                ftl.host_write(i % 16)

    def test_overfull_device_raises(self):
        cfg = FlashConfig(capacity_bytes=4 * units.MIB,
                          overprovision_ratio=0.0,
                          gc_free_block_low_watermark=0)
        ftl = PageMappedFtl(cfg)
        with pytest.raises(OutOfSpaceError):
            # more live pages than physical space (logical + the single
            # minimum over-provision block)
            for lpn in range(cfg.total_pages + 2 * cfg.pages_per_block):
                ftl.host_write(lpn)


class TestHdd:
    def test_roundtrip(self, clock):
        hdd = HddDevice(clock, HddConfig(capacity_bytes=4 * units.MIB))
        hdd.write_page(9, _payload(9))
        assert hdd.read_page(9) == _payload(9)

    def test_sequential_cheaper_than_random(self):
        cfg = HddConfig(capacity_bytes=64 * units.MIB)
        seq_clock = SimClock()
        seq = HddDevice(seq_clock, cfg)
        for lba in range(64):
            seq.write_page(lba, _payload(lba))
        rand_clock = SimClock()
        rand = HddDevice(rand_clock, cfg)
        for i in range(64):
            rand.write_page((i * 1997) % cfg.total_pages, _payload(i))
        assert seq_clock.now < rand_clock.now / 10

    def test_symmetric_read_write(self, clock):
        cfg = HddConfig(capacity_bytes=4 * units.MIB)
        hdd = HddDevice(clock, cfg)
        hdd.write_page(0, _payload(0))
        far = cfg.total_pages - 1
        hdd.write_page(far, _payload(1))
        t0 = clock.now
        hdd.read_page(0)        # long seek back
        read_cost = clock.now - t0
        t0 = clock.now
        hdd.write_page(far, _payload(2))  # long seek forward
        write_cost = clock.now - t0
        assert read_cost == write_cost  # both pay a full seek

    def test_seek_counted(self, clock):
        cfg = HddConfig(capacity_bytes=4 * units.MIB)
        hdd = HddDevice(clock, cfg)
        hdd.write_page(0, _payload(0))
        hdd.write_page(cfg.total_pages - 1, _payload(1))
        assert hdd.seeks >= 1

    def test_no_parallelism_for_batches(self, clock):
        cfg = HddConfig(capacity_bytes=4 * units.MIB)
        hdd = HddDevice(clock, cfg)
        for lba in range(8):
            hdd.write_page(lba, _payload(lba))
        t0 = clock.now
        hdd.read_pages(list(range(8)))
        batch_cost = clock.now - t0
        # single head: batch costs the sum of transfers, no speedup
        assert batch_cost >= 8 * cfg.transfer_usec_per_page


class TestRaid0:
    def _members(self, clock, n=2):
        return [FlashDevice(clock, TINY, name=f"m{i}") for i in range(n)]

    def test_requires_members(self, clock):
        with pytest.raises(ConfigError):
            Raid0Device([])

    def test_capacity_is_sum(self, clock):
        raid = Raid0Device(self._members(clock, 3))
        assert raid.total_pages == 3 * TINY.total_pages

    def test_roundtrip_through_stripes(self, clock):
        raid = Raid0Device(self._members(clock, 2), stripe_pages=4)
        for lba in range(32):
            raid.write_page(lba, _payload(lba))
        assert all(raid.read_page(lba) == _payload(lba) for lba in range(32))

    def test_striping_distributes_evenly(self, clock):
        members = self._members(clock, 2)
        raid = Raid0Device(members, stripe_pages=4)
        for lba in range(64):
            raid.write_page(lba, _payload(lba))
        assert members[0].stats.writes == members[1].stats.writes == 32

    def test_map_lba_alternates_stripes(self, clock):
        raid = Raid0Device(self._members(clock, 2), stripe_pages=4)
        assert raid.map_lba(0) == (0, 0)
        assert raid.map_lba(3) == (0, 3)
        assert raid.map_lba(4) == (1, 0)
        assert raid.map_lba(8) == (0, 4)

    def test_more_members_more_parallelism(self):
        def batch_cost(n):
            clock = SimClock()
            raid = Raid0Device([FlashDevice(clock, TINY, name=f"m{i}")
                                for i in range(n)], stripe_pages=1)
            raid.write_pages([(lba, _payload(lba)) for lba in range(48)])
            t0 = clock.now
            raid.read_pages(list(range(48)))
            return clock.now - t0

        assert batch_cost(6) < batch_cost(2)

    def test_mismatched_page_size_rejected(self, clock):
        a = FlashDevice(clock, TINY, name="a")
        b = HddDevice(clock, HddConfig(capacity_bytes=4 * units.MIB,
                                       page_size=4096), name="b")
        with pytest.raises(ConfigError):
            Raid0Device([a, b])

    def test_trim_reaches_member(self, clock):
        members = self._members(clock, 2)
        raid = Raid0Device(members, stripe_pages=1)
        raid.write_page(0, _payload(0))
        raid.trim(0)
        with pytest.raises(ReadUnwrittenError):
            raid.read_page(0)
