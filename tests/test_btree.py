"""B⁺-tree tests: unit coverage plus hypothesis property tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import DuplicateKeyError
from repro.index.btree import BPlusTree


class TestBasics:
    def test_empty(self):
        tree = BPlusTree()
        assert len(tree) == 0
        assert tree.search(1) == []
        assert tree.min_key() is None
        assert list(tree.items()) == []

    def test_insert_search(self):
        tree = BPlusTree()
        tree.insert(5, "a")
        assert tree.search(5) == ["a"]
        assert tree.contains(5, "a")
        assert not tree.contains(5, "b")

    def test_duplicate_keys_allowed(self):
        tree = BPlusTree()
        tree.insert(5, "a")
        tree.insert(5, "b")
        assert sorted(tree.search(5)) == ["a", "b"]

    def test_duplicate_pair_rejected(self):
        tree = BPlusTree()
        tree.insert(5, "a")
        with pytest.raises(DuplicateKeyError):
            tree.insert(5, "a")

    def test_unique_mode(self):
        tree = BPlusTree(unique=True)
        tree.insert(5, "a")
        with pytest.raises(DuplicateKeyError):
            tree.insert(5, "b")

    def test_order_validation(self):
        with pytest.raises(ValueError):
            BPlusTree(order=2)

    def test_delete(self):
        tree = BPlusTree()
        tree.insert(5, "a")
        assert tree.delete(5, "a") is True
        assert tree.delete(5, "a") is False
        assert tree.search(5) == []

    def test_delete_one_of_duplicates(self):
        tree = BPlusTree()
        tree.insert(5, "a")
        tree.insert(5, "b")
        tree.delete(5, "a")
        assert tree.search(5) == ["b"]

    def test_composite_tuple_keys(self):
        tree = BPlusTree()
        tree.insert((1, 2, "x"), 100)
        tree.insert((1, 3, "a"), 200)
        assert tree.search((1, 2, "x")) == [100]
        keys = [k for k, _ in tree.range((1, 0, ""), (1, 99, "zzz"))]
        assert keys == [(1, 2, "x"), (1, 3, "a")]

    def test_growth_splits_root(self):
        tree = BPlusTree(order=4)
        for i in range(100):
            tree.insert(i, i)
        assert tree.height >= 3
        tree.check_invariants()
        assert [k for k, _ in tree.items()] == list(range(100))

    def test_range_inclusive_bounds(self):
        tree = BPlusTree(order=4)
        for i in range(20):
            tree.insert(i, i)
        assert [k for k, _ in tree.range(5, 8)] == [5, 6, 7, 8]
        assert [k for k, _ in tree.range(5, 8, inclusive=(False, False))] \
            == [6, 7]

    def test_range_open_ends(self):
        tree = BPlusTree(order=4)
        for i in range(10):
            tree.insert(i, i)
        assert [k for k, _ in tree.range(None, 3)] == [0, 1, 2, 3]
        assert [k for k, _ in tree.range(7, None)] == [7, 8, 9]

    def test_shrink_collapses_root(self):
        tree = BPlusTree(order=4)
        for i in range(100):
            tree.insert(i, i)
        for i in range(100):
            assert tree.delete(i, i)
        tree.check_invariants()
        assert len(tree) == 0
        assert tree.height == 1

    def test_reverse_insertion_order(self):
        tree = BPlusTree(order=4)
        for i in reversed(range(50)):
            tree.insert(i, i)
        tree.check_invariants()
        assert [k for k, _ in tree.items()] == list(range(50))

    def test_min_key(self):
        tree = BPlusTree(order=4)
        for i in (7, 3, 9):
            tree.insert(i, i)
        assert tree.min_key() == 3

    def test_string_keys(self):
        tree = BPlusTree(order=4)
        for word in ["pear", "apple", "melon", "fig"]:
            tree.insert(word, word.upper())
        assert [k for k, _ in tree.items()] == \
            ["apple", "fig", "melon", "pear"]


# --- hypothesis property tests ------------------------------------------------

ops = st.lists(
    st.tuples(st.sampled_from(["insert", "delete"]),
              st.integers(0, 60), st.integers(0, 5)),
    max_size=300)


class TestProperties:
    @given(ops)
    @settings(max_examples=80, deadline=None)
    def test_matches_reference_model(self, operations):
        """The tree behaves exactly like a dict-of-sets reference model."""
        tree = BPlusTree(order=4)
        model: dict[int, set[int]] = {}
        for op, key, value in operations:
            if op == "insert":
                if value in model.get(key, set()):
                    with pytest.raises(DuplicateKeyError):
                        tree.insert(key, value)
                else:
                    tree.insert(key, value)
                    model.setdefault(key, set()).add(value)
            else:
                expected = value in model.get(key, set())
                assert tree.delete(key, value) == expected
                if expected:
                    model[key].discard(value)
                    if not model[key]:
                        del model[key]
        tree.check_invariants()
        assert len(tree) == sum(len(s) for s in model.values())
        for key, values in model.items():
            assert set(tree.search(key)) == values

    @given(st.lists(st.integers(0, 1000), unique=True, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_items_always_sorted(self, keys):
        tree = BPlusTree(order=6)
        for key in keys:
            tree.insert(key, key)
        assert [k for k, _ in tree.items()] == sorted(keys)
        tree.check_invariants()

    @given(st.lists(st.integers(0, 200), unique=True, min_size=1,
                    max_size=120),
           st.integers(0, 200), st.integers(0, 200))
    @settings(max_examples=60, deadline=None)
    def test_range_equals_filter(self, keys, a, b):
        lo, hi = min(a, b), max(a, b)
        tree = BPlusTree(order=4)
        for key in keys:
            tree.insert(key, key)
        expected = sorted(k for k in keys if lo <= k <= hi)
        assert [k for k, _ in tree.range(lo, hi)] == expected

    @given(st.lists(st.integers(0, 50), unique=True, min_size=1,
                    max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_delete_everything_in_random_order(self, keys):
        import random
        tree = BPlusTree(order=4)
        for key in keys:
            tree.insert(key, key)
        order = list(keys)
        random.Random(1).shuffle(order)
        for key in order:
            assert tree.delete(key, key)
            tree.check_invariants()
        assert len(tree) == 0
