"""Long-horizon integration stress: churn + maintenance + recycling.

These runs are sized to force append-page recycling, repeated GC/VACUUM,
buffer pressure and FTL garbage collection simultaneously — the regime where
dangling-pointer and space-accounting bugs live.
"""

from __future__ import annotations

import pytest

from repro.common import units
from repro.common.config import BufferConfig, FlashConfig, SystemConfig
from repro.db.database import Database, EngineKind
from repro.db.catalog import IndexDef
from repro.workload.driver import DriverConfig, TpccDriver
from repro.workload.mixes import TxnType
from repro.workload.tpcc_schema import TpccScale, create_tpcc_tables
from repro.workload.tpcc_data import TpccLoader
from tests.conftest import ACCOUNTS

STRESS_SCALE = TpccScale(districts_per_warehouse=2,
                         customers_per_district=5, items=15,
                         stock_per_warehouse=15,
                         initial_orders_per_district=3,
                         min_order_lines=2, max_order_lines=3)


def _stress_config() -> SystemConfig:
    return SystemConfig(
        flash=FlashConfig(capacity_bytes=48 * units.MIB),
        buffer=BufferConfig(pool_pages=96),
        extent_pages=16,
    )


@pytest.mark.parametrize("kind", [EngineKind.SIASV, EngineKind.SI],
                         ids=["sias-v", "si"])
def test_tpcc_churn_with_aggressive_maintenance(kind):
    db = Database.on_flash(kind, _stress_config())
    create_tpcc_tables(db)
    TpccLoader(db, STRESS_SCALE).load(2)
    config = DriverConfig(clients=4,
                          maintenance_interval_usec=units.SEC // 2,
                          mix={TxnType.NEW_ORDER: 0.5,
                               TxnType.PAYMENT: 0.3,
                               TxnType.DELIVERY: 0.2})
    driver = TpccDriver(db, warehouses=2, scale=STRESS_SCALE, config=config)
    metrics = driver.run_for(3 * units.SEC)
    assert driver.maintenance_runs >= 3
    assert metrics.commits() > 300
    # the database is still fully consistent after all that churn
    txn = db.begin()
    for _ref, district in db.scan(txn, "district"):
        orders = db.lookup(txn, "orders", "by_customer", None) \
            if False else None
        assert district[9] >= STRESS_SCALE.initial_orders_per_district + 1
    rows = list(db.scan(txn, "stock"))
    assert len(rows) == 2 * STRESS_SCALE.stock_per_warehouse
    db.commit(txn)
    db.shutdown()


def test_sias_page_recycling_under_update_storm():
    """Millions of dead versions cycling through a small append region."""
    db = Database.on_flash(EngineKind.SIASV, _stress_config())
    db.create_table("accounts", ACCOUNTS,
                    indexes=[IndexDef("pk", ("id",), unique=True)])
    txn = db.begin()
    refs = [db.insert(txn, "accounts", (i, "own%d" % i, 0.0))
            for i in range(20)]
    db.commit(txn)
    engine = db.table("accounts").engine
    for round_ in range(40):
        txn = db.begin()
        for ref in refs:
            row = db.read(txn, "accounts", ref)
            db.update(txn, "accounts", ref,
                      (row[0], "own%d" % round_, row[2] + 1.0))
        db.commit(txn)
        if round_ % 5 == 4:
            db.maintenance()
    # the store recycled pages rather than growing linearly
    assert engine.store.stats.reclaimed_pages > 0
    assert engine.store.device_pages() < engine.store.stats.sealed_pages
    # every item readable, at the final value
    txn = db.begin()
    for i, ref in enumerate(refs):
        row = db.read(txn, "accounts", ref)
        assert row == (i, "own39", 40.0)
    db.commit(txn)


def test_sias_gc_with_long_running_reader_then_release():
    """A long reader pins versions; releasing it unblocks reclamation."""
    db = Database.on_flash(EngineKind.SIASV, _stress_config())
    db.create_table("accounts", ACCOUNTS,
                    indexes=[IndexDef("pk", ("id",), unique=True)])
    txn = db.begin()
    refs = [db.insert(txn, "accounts", (i, "x", 0.0)) for i in range(10)]
    db.commit(txn)
    long_reader = db.begin()
    baseline = {ref: db.read(long_reader, "accounts", ref) for ref in refs}
    for round_ in range(30):
        txn = db.begin()
        for ref in refs:
            db.update(txn, "accounts", ref, (ref if isinstance(ref, int)
                                             else 0, "y", float(round_)))
        db.commit(txn)
        db.maintenance()
        # the long reader's snapshot stays intact through every GC pass
        for ref in refs:
            assert db.read(long_reader, "accounts", ref) == baseline[ref]
    db.commit(long_reader)
    engine = db.table("accounts").engine
    before = engine.store.device_pages()
    db.maintenance()
    assert engine.store.device_pages() <= before


def test_si_vacuum_storm_keeps_heap_bounded():
    db = Database.on_flash(EngineKind.SI, _stress_config())
    db.create_table("accounts", ACCOUNTS,
                    indexes=[IndexDef("pk", ("id",), unique=True)])
    txn = db.begin()
    refs = [db.insert(txn, "accounts", (i, "x" * 50, 0.0))
            for i in range(20)]
    db.commit(txn)
    for round_ in range(40):
        txn = db.begin()
        new_refs = []
        for ref in refs:
            row = db.read(txn, "accounts", ref)
            new_refs.append(db.update(txn, "accounts", ref,
                                      (row[0], "x" * 50, row[2] + 1)))
        refs = new_refs
        db.commit(txn)
        if round_ % 5 == 4:
            db.maintenance()
    engine = db.table("accounts").engine
    assert engine.heap.page_count < 20  # reuse, not unbounded growth
    txn = db.begin()
    assert all(db.read(txn, "accounts", ref)[2] == 40.0 for ref in refs)
    db.commit(txn)
