"""WAL recycling, size-triggered checkpoints and the async write model."""

from __future__ import annotations

import pytest

from repro.common import units
from repro.common.config import BufferConfig, SystemConfig
from repro.db.database import EngineKind
from repro.storage.flash import FlashDevice
from repro.wal.log import WriteAheadLog
from repro.wal.records import WalRecord, WalRecordType
from tests.conftest import SMALL_FLASH, make_accounts_db


class TestWalRecycling:
    def _wal(self, clock):
        return WriteAheadLog(FlashDevice(clock, SMALL_FLASH, name="wal"))

    def test_recycle_resets_device_footprint(self, clock):
        wal = self._wal(clock)
        for i in range(3000):
            wal.append(WalRecord(WalRecordType.INSERT, 1, i, b"x" * 40))
        wal.force()
        assert wal.device_bytes() > 0
        trimmed = wal.recycle()
        assert trimmed > 0
        assert wal.device_bytes() == 0
        assert wal.durable_records() == []

    def test_writes_continue_after_recycle(self, clock):
        wal = self._wal(clock)
        wal.append(WalRecord(WalRecordType.INSERT, 1, 0, b"a"))
        wal.log_commit(1)
        wal.recycle()
        wal.append(WalRecord(WalRecordType.INSERT, 2, 1, b"b"))
        wal.log_commit(2)
        assert 2 in wal.committed_txids()
        assert 1 not in wal.committed_txids()  # history recycled

    def test_recycle_forces_pending_tail(self, clock):
        wal = self._wal(clock)
        wal.append(WalRecord(WalRecordType.INSERT, 1, 0, b"x"))
        writes_before = wal.device.stats.writes
        wal.recycle()
        assert wal.device.stats.writes > writes_before  # tail forced first

    def test_wal_bounded_under_long_workload(self):
        from repro.db.catalog import IndexDef
        from repro.db.database import Database
        from tests.conftest import ACCOUNTS

        config = SystemConfig(
            flash=SMALL_FLASH,
            buffer=BufferConfig(pool_pages=128,
                                max_wal_bytes=units.MIB // 2),
            extent_pages=16)
        db = Database.on_flash(EngineKind.SIASV, config)
        db.create_table("accounts", ACCOUNTS,
                        indexes=[IndexDef("pk", ("id",), unique=True)])
        max_wal = db.config.buffer.max_wal_bytes
        txn = db.begin()
        refs = [db.insert(txn, "accounts", (i, "x" * 80, 0.0))
                for i in range(20)]
        db.commit(txn)
        for round_ in range(400):
            txn = db.begin()
            for ref in refs:
                row = db.read(txn, "accounts", ref)
                db.update(txn, "accounts", ref,
                          (row[0], row[1], row[2] + 1))
            db.commit(txn)
            db.tick()
            assert db.wal.device_bytes() <= max_wal + units.MIB
        assert db.checkpointer.checkpoints >= 1  # size trigger fired


class TestCheckpointerPostHooks:
    def test_post_subscribers_run_after_flush(self, buffer, tablespace,
                                              clock):
        from repro.buffer.checkpointer import Checkpointer

        order = []
        cp = Checkpointer(buffer, clock, interval_usec=units.SEC)
        cp.subscribe(lambda: order.append("pre"))
        cp.subscribe_post(lambda: order.append("post"))
        cp.run_now()
        assert order == ["pre", "post"]


class TestAsyncWrites:
    def test_async_write_does_not_advance_clock(self, clock):
        ssd = FlashDevice(clock, SMALL_FLASH)
        before = clock.now
        ssd.write_page_async(0, bytes(units.DB_PAGE_SIZE))
        assert clock.now == before
        assert ssd.read_page(0) == bytes(units.DB_PAGE_SIZE)

    def test_sync_read_queues_behind_async_writes(self, clock):
        ssd = FlashDevice(clock, SMALL_FLASH)
        # saturate every channel with pending writes
        for lba in range(ssd.config.channels * 4):
            ssd.write_page_async(lba, bytes(units.DB_PAGE_SIZE))
        t0 = clock.now
        ssd.read_page(0)
        waited = clock.now - t0
        # the read waited behind ~4 pending programs plus its own service
        assert waited > 3 * ssd.config.program_latency_usec

    def test_async_writes_counted_in_stats(self, clock):
        ssd = FlashDevice(clock, SMALL_FLASH)
        ssd.write_page_async(0, bytes(units.DB_PAGE_SIZE))
        assert ssd.stats.writes == 1
        assert len(ssd.write_service_log) == 1

    def test_transaction_path_never_waits_for_seals(self):
        """SIAS-V commits wait only for the WAL, not for page seals."""
        db = make_accounts_db(EngineKind.SIASV)
        txn = db.begin()
        db.bulk_insert(txn, "accounts",
                       [(i, "x" * 200, 0.0) for i in range(500)])
        data_busy_before = db.data_device.stats.busy_usec
        t0 = db.clock.now
        db.commit(txn)
        commit_cost = db.clock.now - t0
        assert db.data_device.stats.busy_usec >= data_busy_before
        # the commit itself costs WAL time, far below the dozens of sealed
        # data pages' program time that went through asynchronously
        assert commit_cost < 10 * db.config.flash.program_latency_usec
