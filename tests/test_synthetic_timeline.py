"""Synthetic-workload and metrics-timeline tests."""

from __future__ import annotations

import pytest

from repro.common import units
from repro.db.database import EngineKind
from repro.workload.metrics import Metrics, TxnOutcome
from repro.workload.mixes import TxnType
from repro.workload.synthetic import SyntheticWorkload
from tests.conftest import make_accounts_db, small_system_config

from repro.db.database import Database


def _db(kind):
    return Database.on_flash(kind, small_system_config(pool_pages=256))


class TestSyntheticWorkload:
    @pytest.mark.parametrize("kind", [EngineKind.SIASV, EngineKind.SI],
                             ids=["sias-v", "si"])
    def test_update_rounds_keep_consistency(self, kind):
        workload = SyntheticWorkload(_db(kind), rows=50, seed=1)
        workload.update_round(200)
        workload.maintain()
        workload.update_round(200)
        assert workload.verify()
        assert workload.stats.updates == 400
        # counters sum equals the number of updates applied
        assert workload.read_round(0) == 0
        txn = workload.db.begin()
        total = sum(row[2] for _r, row in workload.db.scan(txn, "synth"))
        workload.db.commit(txn)
        assert total == 400

    @pytest.mark.parametrize("kind", [EngineKind.SIASV, EngineKind.SI],
                             ids=["sias-v", "si"])
    def test_skew_concentrates_updates(self, kind):
        workload = SyntheticWorkload(_db(kind), rows=100, seed=3)
        workload.update_round(500, skew=2.0)
        txn = workload.db.begin()
        counters = sorted((row[2] for _r, row in
                           workload.db.scan(txn, "synth")), reverse=True)
        workload.db.commit(txn)
        # skewed: the hottest decile holds most of the updates
        assert sum(counters[:10]) > 0.5 * sum(counters)

    def test_delete_fraction(self):
        workload = SyntheticWorkload(_db(EngineKind.SIASV), rows=40,
                                     seed=5)
        deleted = workload.delete_fraction(0.25)
        assert deleted == 10
        assert workload.verify()
        assert len(workload.refs) == 30

    def test_bad_params(self):
        with pytest.raises(ValueError):
            SyntheticWorkload(_db(EngineKind.SIASV), rows=0)
        workload = SyntheticWorkload(_db(EngineKind.SIASV), rows=5)
        with pytest.raises(ValueError):
            workload.delete_fraction(1.5)


class TestTimeline:
    def _metrics(self):
        m = Metrics()
        m.start_usec = 0
        for second in range(4):
            for i in range(second + 1):  # 1,2,3,4 commits per second
                m.record(TxnOutcome(TxnType.NEW_ORDER, True, 100),
                         finished_at_usec=second * units.SEC + i * 1000)
        m.end_usec = 4 * units.SEC
        return m

    def test_buckets(self):
        series = self._metrics().timeline()
        assert series == [(0.0, 1), (1.0, 2), (2.0, 3), (3.0, 4)]

    def test_type_filter(self):
        m = self._metrics()
        m.record(TxnOutcome(TxnType.PAYMENT, True, 100),
                 finished_at_usec=0)
        assert m.timeline(type_=TxnType.NEW_ORDER)[0] == (0.0, 1)
        assert m.timeline(type_=None)[0] == (0.0, 2)

    def test_aborts_excluded(self):
        m = Metrics()
        m.record(TxnOutcome(TxnType.NEW_ORDER, False, 100,
                            serialization_abort=True), finished_at_usec=0)
        assert m.timeline() == []

    def test_bad_bucket(self):
        with pytest.raises(ValueError):
            Metrics().timeline(bucket_usec=0)

    def test_driver_populates_timeline(self):
        from repro.workload.driver import DriverConfig, TpccDriver
        from repro.workload.tpcc_data import TpccLoader
        from repro.workload.tpcc_schema import TpccScale, \
            create_tpcc_tables

        scale = TpccScale(districts_per_warehouse=3,
                          customers_per_district=6, items=20,
                          stock_per_warehouse=20,
                          initial_orders_per_district=3)
        db = _db(EngineKind.SIASV)
        create_tpcc_tables(db)
        TpccLoader(db, scale).load(1)
        driver = TpccDriver(db, 1, scale, config=DriverConfig(clients=2))
        metrics = driver.run_for(3 * units.SEC)
        series = metrics.timeline(type_=None)
        assert len(series) >= 3
        assert all(count > 0 for _t, count in series)
