"""End-to-end database runs on the remaining device configurations.

The facade tests run on a single flash device; these cover the database on
RAID-0 stripes and HDD end to end (correctness, not just the harness), and
a full crash/recovery cycle on RAID.
"""

from __future__ import annotations

import pytest

from repro.common import units
from repro.common.clock import SimClock
from repro.common.config import BufferConfig, FlashConfig, HddConfig, \
    SystemConfig
from repro.db.catalog import IndexDef
from repro.db.database import Database, EngineKind
from repro.db.recovery import crash, recover
from repro.storage.flash import FlashDevice
from repro.storage.hdd import HddDevice
from repro.storage.raid import Raid0Device
from tests.conftest import ACCOUNTS

SMALL = FlashConfig(capacity_bytes=32 * units.MIB)


def _raid_db(kind: EngineKind, members: int = 3) -> Database:
    clock = SimClock()
    data = Raid0Device([FlashDevice(clock, SMALL, name=f"d{i}")
                        for i in range(members)], stripe_pages=1)
    wal = FlashDevice(clock, SMALL, name="wal")
    config = SystemConfig(flash=SMALL, buffer=BufferConfig(pool_pages=64),
                          extent_pages=16)
    db = Database(kind, data, wal, config)
    db.create_table("accounts", ACCOUNTS,
                    indexes=[IndexDef("pk", ("id",), unique=True)])
    return db


def _hdd_db(kind: EngineKind) -> Database:
    clock = SimClock()
    hdd_config = HddConfig(capacity_bytes=32 * units.MIB)
    data = HddDevice(clock, hdd_config, name="data")
    wal = HddDevice(clock, hdd_config, name="wal")
    config = SystemConfig(hdd=hdd_config,
                          buffer=BufferConfig(pool_pages=64),
                          extent_pages=16)
    db = Database(kind, data, wal, config)
    db.create_table("accounts", ACCOUNTS,
                    indexes=[IndexDef("pk", ("id",), unique=True)])
    return db


def _exercise(db: Database, rows: int = 150) -> None:
    txn = db.begin()
    refs = db.bulk_insert(db_txn := txn, "accounts",
                          [(i, f"u{i % 7}", float(i)) for i in range(rows)])
    db.commit(txn)
    for round_ in range(4):
        txn = db.begin()
        for ref_index in range(0, rows, 3):
            hits = db.lookup(txn, "accounts", "pk", ref_index)
            ref, row = hits[0]
            db.update(txn, "accounts", ref, (row[0], row[1], row[2] + 1))
        db.commit(txn)
        db.maintenance()
    txn = db.begin()
    rows_seen = list(db.scan(txn, "accounts"))
    assert len(rows_seen) == rows
    for _ref, row in rows_seen:
        expected = 4.0 if row[0] % 3 == 0 else 0.0
        assert row[2] == row[0] + expected
    db.commit(txn)


@pytest.mark.parametrize("kind", [EngineKind.SIASV, EngineKind.SI],
                         ids=["sias-v", "si"])
class TestOnRaid:
    def test_end_to_end(self, kind):
        db = _raid_db(kind)
        _exercise(db)
        db.shutdown()
        # the stripe actually spread the data over several members
        members = db.data_device.members
        assert sum(m.stats.writes for m in members) > 0
        assert sum(1 for m in members if m.stats.writes > 0) >= 2

    def test_crash_recovery_on_raid(self, kind):
        db = _raid_db(kind)
        txn = db.begin()
        db.bulk_insert(txn, "accounts",
                       [(i, "u", float(i)) for i in range(60)])
        db.commit(txn)
        if kind is EngineKind.SI:
            db.checkpointer.run_now()
        crash(db)
        recover(db)
        txn = db.begin()
        assert len(list(db.scan(txn, "accounts"))) == 60
        db.commit(txn)


@pytest.mark.parametrize("kind", [EngineKind.SIASV, EngineKind.SI],
                         ids=["sias-v", "si"])
class TestOnHdd:
    def test_end_to_end(self, kind):
        db = _hdd_db(kind)
        _exercise(db, rows=80)
        db.shutdown()
        assert db.data_device.stats.writes > 0

    def test_cold_scan_pays_mechanical_costs(self, kind):
        db = _hdd_db(kind)
        _exercise(db, rows=80)
        db.shutdown()
        db.buffer.invalidate_all()
        db.clock.advance(units.SEC)  # drain pending async writes
        # park the arm far away so the cold reads pay a real seek
        far = db.data_device.total_pages - 1
        db.data_device.write_page(far, bytes(units.DB_PAGE_SIZE))
        t0 = db.clock.now
        txn = db.begin()
        assert len(list(db.scan(txn, "accounts"))) == 80
        db.commit(txn)
        # cold reads on mechanical storage: at least one seek's worth
        assert db.clock.now - t0 > 5 * units.MSEC
