"""Direct unit tests of the five TPC-C transaction profiles.

The driver tests exercise the profiles statistically; these pin down the
edge branches deterministically: spec rollbacks, empty delivery queues,
payment by missing last name, remote payments, and order-status on a
customer without orders.
"""

from __future__ import annotations

import pytest

from repro.common.errors import WorkloadError
from repro.common.rng import NURand, make_rng
from repro.db.database import Database, EngineKind
from repro.workload import tpcc_schema as ts
from repro.workload.tpcc_data import TpccLoader, last_name
from repro.workload.tpcc_schema import TpccScale, create_tpcc_tables
from repro.workload.tpcc_txns import (
    SpecRollback,
    TpccContext,
    delivery,
    new_order,
    order_status,
    payment,
    stock_level,
)
from tests.conftest import small_system_config

SCALE = TpccScale(districts_per_warehouse=2, customers_per_district=5,
                  items=15, stock_per_warehouse=15,
                  initial_orders_per_district=3,
                  min_order_lines=2, max_order_lines=3)


class _FixedRng:
    """random.Random lookalike returning scripted values."""

    def __init__(self, randints=None, randoms=None, choices=None):
        self._randints = list(randints or [])
        self._randoms = list(randoms or [])
        self._choices = list(choices or [])

    def randint(self, lo, hi):
        if self._randints:
            value = self._randints.pop(0)
            return min(max(value, lo), hi)
        return lo

    def random(self):
        return self._randoms.pop(0) if self._randoms else 1.0

    def uniform(self, lo, hi):
        return lo

    def choice(self, seq):
        return seq[0]

    def choices(self, seq, weights=None):
        return [seq[0]]

    def randrange(self, n):
        return 0

    def sample(self, population, k):
        return list(population)[:k]

    def shuffle(self, seq):
        return None


def _ctx(db: Database, rng=None) -> TpccContext:
    return TpccContext(db=db, scale=SCALE, warehouses=2,
                       rng=rng or make_rng(1, "profile-test"),
                       nurand=NURand(make_rng(1, "nurand-test")))


@pytest.fixture
def db():
    database = Database.on_flash(EngineKind.SIASV,
                                 small_system_config(pool_pages=256))
    create_tpcc_tables(database)
    TpccLoader(database, SCALE).load(2)
    return database


def _run(db, profile, ctx):
    txn = db.begin()
    try:
        for _ in profile(ctx, txn):
            pass
    except BaseException:
        db.abort(txn)
        raise
    db.commit(txn)


class TestNewOrder:
    def test_commits_and_grows_tables(self, db):
        ctx = _ctx(db)
        txn = db.begin()
        orders_before = sum(1 for _ in db.scan(txn, ts.ORDERS))
        db.commit(txn)
        _run(db, new_order, ctx)
        txn = db.begin()
        assert sum(1 for _ in db.scan(txn, ts.ORDERS)) == orders_before + 1
        db.commit(txn)

    def test_spec_rollback_branch(self, db):
        # random() < 0.01 forces the unused-item rollback on line 1
        rng = _FixedRng(randoms=[0.001], randints=[1, 1, 2, 1])
        ctx = _ctx(db, rng)
        with pytest.raises(SpecRollback):
            _run(db, new_order, ctx)
        # nothing of the doomed order is visible
        txn = db.begin()
        for _ref, district in db.scan(txn, ts.DISTRICT):
            assert district[9] == SCALE.initial_orders_per_district + 1
        db.commit(txn)

    def test_stock_decrements(self, db):
        ctx = _ctx(db)
        txn = db.begin()
        quantities_before = {row[:2]: row[2]
                             for _r, row in db.scan(txn, ts.STOCK)}
        db.commit(txn)
        _run(db, new_order, ctx)
        txn = db.begin()
        changed = sum(1 for _r, row in db.scan(txn, ts.STOCK)
                      if quantities_before[row[:2]] != row[2])
        db.commit(txn)
        assert SCALE.min_order_lines <= changed <= SCALE.max_order_lines


class TestPayment:
    def test_updates_all_three_levels(self, db):
        ctx = _ctx(db)
        txn = db.begin()
        w_before = {r[0]: r[7] for _x, r in db.scan(txn, ts.WAREHOUSE)}
        db.commit(txn)
        _run(db, payment, ctx)
        txn = db.begin()
        w_after = {r[0]: r[7] for _x, r in db.scan(txn, ts.WAREHOUSE)}
        assert sum(w_after.values()) > sum(w_before.values())
        assert sum(1 for _ in db.scan(txn, ts.HISTORY)) == \
            2 * SCALE.districts_per_warehouse * \
            SCALE.customers_per_district + 1
        db.commit(txn)

    def test_by_last_name_branch(self, db):
        # random() < 0.60 triggers the last-name path; the nurand-chosen
        # name exists by construction (loader uses sequential name numbers)
        rng = _FixedRng(randoms=[0.1, 1.0], randints=[1, 1])
        _run(db, payment, _ctx(db, rng))

    def test_bad_credit_appends_data(self, db):
        # find a BC customer (if the scaled loader produced one) and force
        # payments until its c_data grows; otherwise skip
        txn = db.begin()
        bc = [row for _r, row in db.scan(txn, ts.CUSTOMER)
              if row[12] == "BC"]
        db.commit(txn)
        if not bc:
            pytest.skip("no bad-credit customer at this scale/seed")
        ctx = _ctx(db)
        for _ in range(20):
            _run(db, payment, ctx)
        txn = db.begin()
        after = {row[:3]: row for _r, row in db.scan(txn, ts.CUSTOMER)}
        db.commit(txn)
        assert any(len(after[row[:3]][19]) >= len(row[19]) for row in bc)


class TestOrderStatus:
    def test_read_only(self, db):
        ctx = _ctx(db)
        writes_before = db.data_device.stats.writes
        wal_before = db.wal.records_written
        _run(db, order_status, ctx)
        # a read-only transaction leaves no WAL trace at all — not even
        # a COMMIT record, so no force is burned on the read path
        assert db.wal.records_written == wal_before

    def test_customer_without_orders_returns_quietly(self, db):
        # delete every order of district (1,1) customer lookups still work
        ctx = _ctx(db)
        for _ in range(5):
            _run(db, order_status, ctx)


class TestDelivery:
    def test_drains_queue_and_assigns_carrier(self, db):
        ctx = _ctx(db)
        for _ in range(12):
            _run(db, delivery, ctx)
        txn = db.begin()
        assert sum(1 for _ in db.scan(txn, ts.NEW_ORDER)) == 0
        for _r, order in db.scan(txn, ts.ORDERS):
            assert order[5] != 0
        db.commit(txn)

    def test_empty_queue_is_a_noop(self, db):
        ctx = _ctx(db)
        for _ in range(12):
            _run(db, delivery, ctx)
        writes_before = db.wal.records_written
        _run(db, delivery, ctx)  # nothing left to deliver
        # writing nothing means logging nothing — not even a COMMIT
        assert db.wal.records_written == writes_before

    def test_customer_balance_credited(self, db):
        txn = db.begin()
        balances_before = sum(r[15] for _x, r in db.scan(txn, ts.CUSTOMER))
        db.commit(txn)
        ctx = _ctx(db)
        for _ in range(12):
            _run(db, delivery, ctx)
        txn = db.begin()
        balances_after = sum(r[15] for _x, r in db.scan(txn, ts.CUSTOMER))
        db.commit(txn)
        assert balances_after > balances_before


class TestStockLevel:
    def test_read_only_and_commits(self, db):
        ctx = _ctx(db)
        wal_before = db.wal.records_written
        _run(db, stock_level, ctx)
        assert db.wal.records_written == wal_before


class TestContextHelpers:
    def test_pk_missing_raises(self, db):
        ctx = _ctx(db)
        txn = db.begin()
        with pytest.raises(WorkloadError):
            ctx.pk(txn, ts.WAREHOUSE, 999)
        db.abort(txn)

    def test_nurand_ranges(self, db):
        ctx = _ctx(db)
        for _ in range(200):
            assert 1 <= ctx.nurand_customer() <= \
                SCALE.customers_per_district
            assert 1 <= ctx.nurand_item() <= SCALE.items

    def test_last_name_lookup_matches_loader(self, db):
        txn = db.begin()
        name = last_name(0)
        hits = db.lookup(txn, ts.CUSTOMER, "by_last", (1, 1, name))
        assert hits, "customer 1 must carry the BARBARBAR name"
        db.commit(txn)
