"""Unit tests for the common kernel: units, clock, RNG, config."""

from __future__ import annotations

import pytest

from repro.common import NURand, SimClock, make_rng, units
from repro.common.config import (
    BufferConfig,
    EngineConfig,
    FlashConfig,
    FlushThreshold,
    HddConfig,
    PageLayout,
    SystemConfig,
)
from repro.common.errors import ConfigError


class TestUnits:
    def test_page_size_is_8k(self):
        assert units.DB_PAGE_SIZE == 8192

    def test_mib_roundtrip(self):
        assert units.mib(units.as_bytes_mib(3.5)) == pytest.approx(3.5)

    def test_usec_from_sec(self):
        assert units.usec_from_sec(1.5) == 1_500_000

    def test_sec_from_usec(self):
        assert units.sec_from_usec(2_500_000) == pytest.approx(2.5)

    def test_msec_from_usec(self):
        assert units.msec_from_usec(1500) == pytest.approx(1.5)

    def test_fmt_bytes_scales(self):
        assert units.fmt_bytes(512) == "512 B"
        assert units.fmt_bytes(3 * units.MIB) == "3.0 MiB"
        assert units.fmt_bytes(2 * units.GIB) == "2.0 GiB"

    def test_fmt_usec_scales(self):
        assert units.fmt_usec(500) == "500 us"
        assert units.fmt_usec(2 * units.MSEC) == "2.00 ms"
        assert units.fmt_usec(3 * units.SEC) == "3.00 s"
        assert units.fmt_usec(2 * units.MINUTE) == "2.00 min"


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(10)
        clock.advance(5)
        assert clock.now == 15

    def test_advance_zero_is_noop(self):
        clock = SimClock(100)
        clock.advance(0)
        assert clock.now == 100

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(-5)

    def test_advance_to_moves_forward_only(self):
        clock = SimClock(50)
        clock.advance_to(80)
        assert clock.now == 80
        clock.advance_to(30)  # never backwards
        assert clock.now == 80

    def test_now_sec(self):
        assert SimClock(2_000_000).now_sec == pytest.approx(2.0)


class TestRng:
    def test_same_scope_same_stream(self):
        a = make_rng(1, "x")
        b = make_rng(1, "x")
        assert [a.random() for _ in range(5)] == \
            [b.random() for _ in range(5)]

    def test_different_scope_different_stream(self):
        a = make_rng(1, "x")
        b = make_rng(1, "y")
        assert [a.random() for _ in range(5)] != \
            [b.random() for _ in range(5)]

    def test_different_seed_different_stream(self):
        assert make_rng(1, "x").random() != make_rng(2, "x").random()

    def test_nurand_in_range(self):
        nurand = NURand(make_rng(7))
        for _ in range(500):
            assert 1 <= nurand(1023, 1, 100) <= 100
            assert 0 <= nurand(255, 0, 999) <= 999
            assert 1 <= nurand(8191, 1, 5000) <= 5000

    def test_nurand_rejects_bad_a(self):
        nurand = NURand(make_rng(7))
        with pytest.raises(ValueError):
            nurand(100, 1, 10)

    def test_nurand_rejects_empty_range(self):
        nurand = NURand(make_rng(7))
        with pytest.raises(ValueError):
            nurand(255, 10, 1)

    def test_nurand_is_nonuniform(self):
        # the C constant skews the distribution away from uniform
        nurand = NURand(make_rng(3))
        draws = [nurand(255, 0, 255) for _ in range(4000)]
        counts = [draws.count(v) for v in range(256)]
        # a uniform distribution would put ~15.6 in each bucket; NURand's OR
        # folding makes some buckets far denser
        assert max(counts) > 3 * (len(draws) / 256)


class TestConfig:
    def test_default_system_config_valid(self):
        SystemConfig().validate()

    def test_flash_capacity_alignment(self):
        bad = FlashConfig(capacity_bytes=8192 * 64 + 1)
        with pytest.raises(ConfigError):
            bad.validate()

    def test_flash_overprovision_range(self):
        with pytest.raises(ConfigError):
            FlashConfig(overprovision_ratio=0.95).validate()

    def test_flash_needs_channels(self):
        with pytest.raises(ConfigError):
            FlashConfig(channels=0).validate()

    def test_flash_block_size(self):
        cfg = FlashConfig()
        assert cfg.block_size == cfg.page_size * cfg.pages_per_block
        assert cfg.total_pages * cfg.page_size == cfg.capacity_bytes

    def test_hdd_alignment(self):
        with pytest.raises(ConfigError):
            HddConfig(capacity_bytes=8191).validate()

    def test_buffer_minimum_pool(self):
        with pytest.raises(ConfigError):
            BufferConfig(pool_pages=2).validate()

    def test_engine_fill_target_range(self):
        with pytest.raises(ConfigError):
            EngineConfig(append_fill_target=0.0).validate()
        with pytest.raises(ConfigError):
            EngineConfig(append_fill_target=1.5).validate()

    def test_engine_defaults(self):
        cfg = EngineConfig()
        assert cfg.layout is PageLayout.VECTOR
        assert cfg.flush_threshold is FlushThreshold.T2
        assert cfg.vidmap_slots_per_bucket == 1024

    def test_with_engine_replaces(self):
        cfg = SystemConfig().with_engine(layout=PageLayout.NSM)
        assert cfg.engine.layout is PageLayout.NSM
        assert SystemConfig().engine.layout is PageLayout.VECTOR

    def test_with_buffer_replaces(self):
        cfg = SystemConfig().with_buffer(pool_pages=99)
        assert cfg.buffer.pool_pages == 99

    def test_extent_pages_validated(self):
        with pytest.raises(ConfigError):
            SystemConfig(extent_pages=0).validate()


class TestRenderHelpers:
    def test_format_ratio(self):
        from repro.experiments.render import format_ratio
        assert format_ratio(33.0, 1.0) == "33.0x"
        assert format_ratio(1.0, 0.0) == "inf"

    def test_format_pct(self):
        from repro.experiments.render import format_pct
        assert format_pct(0.973) == "97%"
        assert format_pct(-0.12) == "-12%"

    def test_fmt_bool_and_large_floats(self):
        from repro.experiments.render import format_table
        table = format_table("t", ["a", "b", "c"],
                             [[True, 123456.0, 0.0]])
        assert "yes" in table and "123,456" in table and " 0 " in table
