"""Crash-sweep harness tests: recovery invariants at injected crash points.

The full sweep (every write of a long workload) runs from the CLI / CI
smoke job; these tests run reduced sweeps plus targeted single-point
scenarios, including a torn append-page seal.
"""

from __future__ import annotations

import pytest

from repro.common import units
from repro.common.config import (
    BufferConfig,
    EngineConfig,
    FlashConfig,
    PageLayout,
    SystemConfig,
)
from repro.db.catalog import IndexDef
from repro.db.database import Database, EngineKind
from repro.db.recovery import crash, recover
from repro.experiments.crash_sweep import (
    SweepConfig,
    count_writes,
    run_one,
    run_sweep,
)
from tests.conftest import ACCOUNTS

SMALL = dict(accounts=6, transfers=12)

LAYOUTS = pytest.mark.parametrize(
    "layout", [PageLayout.VECTOR, PageLayout.NSM],
    ids=["vector", "nsm"])


def make_layout_db(layout: PageLayout) -> Database:
    """A SIAS-V accounts database with an explicit append-page layout."""
    config = SystemConfig(
        flash=FlashConfig(capacity_bytes=64 * units.MIB),
        buffer=BufferConfig(pool_pages=128),
        engine=EngineConfig(layout=layout),
        extent_pages=16,
    )
    db = Database.on_flash(EngineKind.SIASV, config)
    db.create_table("accounts", ACCOUNTS, indexes=[
        IndexDef("pk", ("id",), unique=True),
        IndexDef("by_owner", ("owner",)),
    ])
    return db


class TestSweep:
    @LAYOUTS
    def test_siasv_sweep_holds_invariants(self, layout):
        """The full value oracle holds for both append-page layouts."""
        cfg = SweepConfig(kind=EngineKind.SIASV, stride=5, layout=layout,
                          **SMALL)
        report = run_sweep(cfg)
        assert report.points_tested >= 3
        assert report.points_crashed == report.points_tested

    def test_layouts_recover_identically_past_end(self):
        """Same workload run to completion under both layouts: identical
        committed-transfer and recovered-row counts.  (Mid-run crash
        points are layout-relative — the layouts seal at different write
        counts — so the sweep's value oracle covers those per layout.)"""
        outcomes = {}
        for layout in (PageLayout.VECTOR, PageLayout.NSM):
            cfg = SweepConfig(kind=EngineKind.SIASV, layout=layout, **SMALL)
            outcome = run_one(cfg, count_writes(cfg) + 100, torn=False)
            outcomes[layout] = (outcome.committed, outcome.recovered_rows)
        assert outcomes[PageLayout.VECTOR] == outcomes[PageLayout.NSM]
        assert outcomes[PageLayout.VECTOR] == (SMALL["transfers"],
                                               SMALL["accounts"])

    def test_si_sweep_holds_invariants(self):
        cfg = SweepConfig(kind=EngineKind.SI, stride=5, **SMALL)
        report = run_sweep(cfg)
        assert report.points_tested >= 3

    def test_count_mode_is_deterministic(self):
        cfg = SweepConfig(kind=EngineKind.SIASV, **SMALL)
        assert count_writes(cfg) == count_writes(cfg)

    def test_crash_past_end_recovers_complete_run(self):
        """A crash point beyond the run's writes: clean shutdown, full
        recovery of every transfer."""
        cfg = SweepConfig(kind=EngineKind.SIASV, **SMALL)
        total = count_writes(cfg)
        outcome = run_one(cfg, total + 100, torn=False)
        assert not outcome.crashed
        assert outcome.committed == cfg.transfers
        assert outcome.recovered_rows == cfg.accounts

    def test_first_write_crash_recovers_empty(self):
        cfg = SweepConfig(kind=EngineKind.SIASV, **SMALL)
        outcome = run_one(cfg, 1, torn=False)
        assert outcome.crashed
        assert outcome.committed == 0
        assert outcome.recovered_rows == 0


class TestTornSealRecovery:
    @LAYOUTS
    def test_torn_tail_page_reported_and_reused(self, layout):
        """A sealed append page half-written at the crash is detected by
        its checksum, reported, made reusable — and its committed
        versions come back through WAL redo.  Identical behaviour for
        both append-page layouts."""
        sias_db = make_layout_db(layout)
        txn = sias_db.begin()
        for i in range(400):  # enough to seal several append pages
            sias_db.insert(txn, "accounts", (i, "u" * 30, float(i)))
        sias_db.commit(txn)
        engine = sias_db.table("accounts").engine
        store = engine.store
        assert all(p.layout is layout for p in store._open.values())
        sealed = list(store.sealed)
        assert sealed, "workload did not seal any append page"
        victim = max(sealed)
        tablespace = store.buffer.tablespace
        lba = tablespace.lba_of(store.file_id, victim)
        raw = tablespace.device.read_page(lba)
        half = len(raw) // 2
        tablespace.device.write_page(lba, raw[:half] + b"\x00" * half)
        crash(sias_db)
        report = recover(sias_db)
        engine_report = report.engine_reports["accounts"]
        assert engine_report.pages_torn == 1
        assert engine_report.pages_reusable >= 1
        # the torn page's address went back to the free pool — and may
        # already have been taken again by WAL redo's re-appends
        reusable = set(store._free_page_nos)
        reoccupied = set(store.sealed) | set(store._open)
        assert victim in (reusable | reoccupied)
        # no committed row was lost: redo replayed the torn versions
        txn = sias_db.begin()
        rows = {row[0] for _ref, row in sias_db.scan(txn, "accounts")}
        sias_db.commit(txn)
        assert rows == set(range(400))

    @LAYOUTS
    def test_double_crash_after_torn_seal(self, layout):
        sias_db = make_layout_db(layout)
        txn = sias_db.begin()
        for i in range(400):
            sias_db.insert(txn, "accounts", (i, "u" * 30, float(i)))
        sias_db.commit(txn)
        store = sias_db.table("accounts").engine.store
        victim = max(store.sealed)
        tablespace = store.buffer.tablespace
        lba = tablespace.lba_of(store.file_id, victim)
        raw = tablespace.device.read_page(lba)
        tablespace.device.write_page(
            lba, raw[:len(raw) // 2] + b"\x00" * (len(raw) // 2))
        crash(sias_db)
        recover(sias_db)
        crash(sias_db)  # recovery's own state must itself be recoverable
        recover(sias_db)
        txn = sias_db.begin()
        rows = {row[0] for _ref, row in sias_db.scan(txn, "accounts")}
        sias_db.commit(txn)
        assert rows == set(range(400))
