"""Crash-sweep harness tests: recovery invariants at injected crash points.

The full sweep (every write of a long workload) runs from the CLI / CI
smoke job; these tests run reduced sweeps plus targeted single-point
scenarios, including a torn append-page seal.
"""

from __future__ import annotations

from repro.db.database import EngineKind
from repro.db.recovery import crash, recover
from repro.experiments.crash_sweep import (
    SweepConfig,
    count_writes,
    run_one,
    run_sweep,
)
SMALL = dict(accounts=6, transfers=12)


class TestSweep:
    def test_siasv_sweep_holds_invariants(self):
        cfg = SweepConfig(kind=EngineKind.SIASV, stride=5, **SMALL)
        report = run_sweep(cfg)
        assert report.points_tested >= 3
        assert report.points_crashed == report.points_tested

    def test_si_sweep_holds_invariants(self):
        cfg = SweepConfig(kind=EngineKind.SI, stride=5, **SMALL)
        report = run_sweep(cfg)
        assert report.points_tested >= 3

    def test_count_mode_is_deterministic(self):
        cfg = SweepConfig(kind=EngineKind.SIASV, **SMALL)
        assert count_writes(cfg) == count_writes(cfg)

    def test_crash_past_end_recovers_complete_run(self):
        """A crash point beyond the run's writes: clean shutdown, full
        recovery of every transfer."""
        cfg = SweepConfig(kind=EngineKind.SIASV, **SMALL)
        total = count_writes(cfg)
        outcome = run_one(cfg, total + 100, torn=False)
        assert not outcome.crashed
        assert outcome.committed == cfg.transfers
        assert outcome.recovered_rows == cfg.accounts

    def test_first_write_crash_recovers_empty(self):
        cfg = SweepConfig(kind=EngineKind.SIASV, **SMALL)
        outcome = run_one(cfg, 1, torn=False)
        assert outcome.crashed
        assert outcome.committed == 0
        assert outcome.recovered_rows == 0


class TestTornSealRecovery:
    def test_torn_tail_page_reported_and_reused(self, sias_db):
        """A sealed append page half-written at the crash is detected by
        its checksum, reported, made reusable — and its committed
        versions come back through WAL redo."""
        txn = sias_db.begin()
        for i in range(400):  # enough to seal several append pages
            sias_db.insert(txn, "accounts", (i, "u" * 30, float(i)))
        sias_db.commit(txn)
        engine = sias_db.table("accounts").engine
        store = engine.store
        sealed = list(store.sealed)
        assert sealed, "workload did not seal any append page"
        victim = max(sealed)
        tablespace = store.buffer.tablespace
        lba = tablespace.lba_of(store.file_id, victim)
        raw = tablespace.device.read_page(lba)
        half = len(raw) // 2
        tablespace.device.write_page(lba, raw[:half] + b"\x00" * half)
        crash(sias_db)
        report = recover(sias_db)
        engine_report = report.engine_reports["accounts"]
        assert engine_report.pages_torn == 1
        assert engine_report.pages_reusable >= 1
        # the torn page's address went back to the free pool — and may
        # already have been taken again by WAL redo's re-appends
        reusable = set(store._free_page_nos)
        reoccupied = set(store.sealed) | set(store._open)
        assert victim in (reusable | reoccupied)
        # no committed row was lost: redo replayed the torn versions
        txn = sias_db.begin()
        rows = {row[0] for _ref, row in sias_db.scan(txn, "accounts")}
        sias_db.commit(txn)
        assert rows == set(range(400))

    def test_double_crash_after_torn_seal(self, sias_db):
        txn = sias_db.begin()
        for i in range(400):
            sias_db.insert(txn, "accounts", (i, "u" * 30, float(i)))
        sias_db.commit(txn)
        store = sias_db.table("accounts").engine.store
        victim = max(store.sealed)
        tablespace = store.buffer.tablespace
        lba = tablespace.lba_of(store.file_id, victim)
        raw = tablespace.device.read_page(lba)
        tablespace.device.write_page(
            lba, raw[:len(raw) // 2] + b"\x00" * (len(raw) // 2))
        crash(sias_db)
        recover(sias_db)
        crash(sias_db)  # recovery's own state must itself be recoverable
        recover(sias_db)
        txn = sias_db.begin()
        rows = {row[0] for _ref, row in sias_db.scan(txn, "accounts")}
        sias_db.commit(txn)
        assert rows == set(range(400))
