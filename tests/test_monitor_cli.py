"""Monitoring snapshot and CLI tests."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.db.database import EngineKind
from repro.db.monitor import snapshot
from tests.conftest import make_accounts_db


def _busy_db(kind):
    db = make_accounts_db(kind)
    txn = db.begin()
    refs = [db.insert(txn, "accounts", (i, "u", float(i)))
            for i in range(40)]
    db.commit(txn)
    for ref in refs[:10]:
        txn = db.begin()
        row = db.read(txn, "accounts", ref)
        db.update(txn, "accounts", ref, (row[0], row[1], row[2] + 1))
        db.commit(txn)
    db.shutdown()
    return db


class TestSnapshot:
    @pytest.mark.parametrize("kind", [EngineKind.SIASV, EngineKind.SI],
                             ids=["sias-v", "si"])
    def test_counters_populated(self, kind):
        db = _busy_db(kind)
        snap = snapshot(db)
        assert snap.txn_commits == 11
        assert snap.txn_aborts == 0
        assert snap.device_writes > 0
        assert snap.wal_records > 0
        assert 0.0 <= snap.buffer_hit_ratio <= 1.0
        assert len(snap.tables) == 1
        table = snap.tables[0]
        assert table.name == "accounts"
        assert table.engine == kind.value.replace("sias-v", "sias-v")

    def test_sias_table_extras(self):
        db = _busy_db(EngineKind.SIASV)
        table = snapshot(db).tables[0]
        assert table.extra["appended"] == 50  # 40 inserts + 10 updates
        assert table.extra["vidmap_items"] == 40

    def test_si_table_extras(self):
        db = _busy_db(EngineKind.SI)
        table = snapshot(db).tables[0]
        assert table.extra["inserts"] == 50
        assert table.extra["xmax_stamps"] == 10

    def test_render_contains_sections(self):
        db = _busy_db(EngineKind.SIASV)
        text = snapshot(db).render()
        assert "system snapshot" in text
        assert "per-table" in text
        assert "accounts" in text


class TestCli:
    def test_parser_commands(self):
        parser = build_parser()
        args = parser.parse_args(["bench", "--warehouses", "2"])
        assert args.command == "bench" and args.warehouses == 2
        args = parser.parse_args(["exhibit", "t1"])
        assert args.id == "t1"
        args = parser.parse_args(["snapshot", "--engine", "si"])
        assert args.engine == "si"

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_exhibit_id(self, capsys):
        assert main(["exhibit", "zz"]) == 2
        assert "unknown exhibit" in capsys.readouterr().err

    def test_snapshot_command_runs(self, capsys):
        assert main(["snapshot", "--warehouses", "1",
                     "--seconds", "1"]) == 0
        out = capsys.readouterr().out
        assert "system snapshot" in out

    @pytest.mark.slow
    def test_bench_command_runs(self, capsys):
        assert main(["bench", "--warehouses", "1", "--seconds", "1",
                     "--clients", "2"]) == 0
        out = capsys.readouterr().out
        assert "sias-v" in out and "si" in out


class TestCliDemoAndExhibit:
    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "first-updater-wins" in out
        assert "page writes" in out

    @pytest.mark.slow
    def test_exhibit_a3_runs(self, capsys):
        assert main(["exhibit", "a3"]) == 0
        out = capsys.readouterr().out
        assert "A3" in out and "vidmap scan" in out


class TestReport:
    def test_assemble_with_missing_and_present(self, tmp_path):
        from repro.experiments.report import EXHIBITS, assemble

        (tmp_path / "t1_write_reduction.txt").write_text("T1 table here")
        report = assemble(tmp_path)
        assert "t1_write_reduction" in report.present
        assert len(report.missing) == len(EXHIBITS) - 1
        assert "T1 table here" in report.text
        assert "missing" in report.text

    def test_write_report(self, tmp_path):
        from repro.experiments.report import write_report

        (tmp_path / "a3_scan.txt").write_text("A3 rows")
        out = write_report(tmp_path)
        assert out.exists()
        assert "A3 rows" in out.read_text()

    def test_cli_report_missing_dir(self, capsys, tmp_path):
        assert main(["report", "--results", str(tmp_path / "nope")]) == 2
        assert "no results directory" in capsys.readouterr().err

    def test_cli_report_runs(self, capsys, tmp_path):
        (tmp_path / "t2_space.txt").write_text("T2 table")
        assert main(["report", "--results", str(tmp_path)]) == 0
        assert "report written" in capsys.readouterr().out
