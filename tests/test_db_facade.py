"""Database facade tests: schema/rows/catalog plus end-to-end behaviour.

The ``any_db`` fixture runs every test against both engines.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import SchemaError, SerializationError
from repro.db.catalog import IndexDef
from repro.db.database import EngineKind
from repro.db.row import RowCodec
from repro.db.schema import ColType, Schema
from tests.conftest import make_accounts_db


class TestSchema:
    def test_of_builder(self):
        schema = Schema.of(("a", ColType.INT), ("b", ColType.STR))
        assert len(schema) == 2
        assert schema.position("b") == 1

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of(("a", ColType.INT), ("a", ColType.STR))

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            Schema(())

    def test_validate_arity(self):
        schema = Schema.of(("a", ColType.INT))
        with pytest.raises(SchemaError):
            schema.validate((1, 2))

    def test_validate_types(self):
        schema = Schema.of(("a", ColType.INT), ("b", ColType.STR),
                           ("c", ColType.FLOAT))
        schema.validate((1, "x", 2.5))
        schema.validate((1, "x", 3))      # int is acceptable as FLOAT
        with pytest.raises(SchemaError):
            schema.validate(("no", "x", 2.5))
        with pytest.raises(SchemaError):
            schema.validate((1, 2, 2.5))
        with pytest.raises(SchemaError):
            schema.validate((True, "x", 2.5))  # bools are not INTs

    def test_project(self):
        schema = Schema.of(("a", ColType.INT), ("b", ColType.STR))
        assert schema.project((5, "x"), ["b", "a"]) == ("x", 5)

    def test_unknown_column(self):
        schema = Schema.of(("a", ColType.INT))
        with pytest.raises(SchemaError):
            schema.position("zz")


row_strategy = st.tuples(
    st.integers(min_value=-2**62, max_value=2**62),
    st.text(max_size=80),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
)


class TestRowCodec:
    SCHEMA = Schema.of(("id", ColType.INT), ("name", ColType.STR),
                       ("value", ColType.FLOAT))

    @given(row_strategy)
    @settings(max_examples=120, deadline=None)
    def test_roundtrip_property(self, row):
        codec = RowCodec(self.SCHEMA)
        decoded = codec.decode(codec.encode(row))
        assert decoded[0] == row[0]
        assert decoded[1] == row[1]
        assert decoded[2] == pytest.approx(row[2])

    def test_unicode_strings(self):
        codec = RowCodec(self.SCHEMA)
        row = (1, "héllo wörld ☃", 1.0)
        assert codec.decode(codec.encode(row))[1] == row[1]

    def test_trailing_garbage_rejected(self):
        codec = RowCodec(self.SCHEMA)
        raw = codec.encode((1, "x", 1.0))
        with pytest.raises(SchemaError):
            codec.decode(raw + b"\x00")

    def test_truncated_rejected(self):
        codec = RowCodec(self.SCHEMA)
        raw = codec.encode((1, "hello", 1.0))
        with pytest.raises(SchemaError):
            codec.decode(raw[:-3])

    def test_oversized_string_rejected(self):
        codec = RowCodec(self.SCHEMA)
        with pytest.raises(SchemaError):
            codec.encode((1, "x" * 70000, 1.0))


class TestCatalog:
    def test_duplicate_table_rejected(self, any_db):
        with pytest.raises(SchemaError):
            any_db.create_table("accounts",
                                Schema.of(("x", ColType.INT)))

    def test_unknown_table(self, any_db):
        with pytest.raises(SchemaError):
            any_db.table("ghosts")

    def test_duplicate_index_rejected(self, any_db):
        relation = any_db.table("accounts")
        with pytest.raises(SchemaError):
            relation.add_index(IndexDef("pk", ("id",)))

    def test_index_on_unknown_column_rejected(self, any_db):
        relation = any_db.table("accounts")
        with pytest.raises(SchemaError):
            relation.add_index(IndexDef("broken", ("nope",)))

    def test_composite_key_extraction(self):
        schema = Schema.of(("a", ColType.INT), ("b", ColType.INT))
        definition = IndexDef("ab", ("a", "b"))
        assert definition.key_of(schema, (1, 2)) == (1, 2)
        single = IndexDef("a", ("a",))
        assert single.key_of(schema, (1, 2)) == 1


class TestCrud:
    def test_insert_read(self, any_db):
        txn = any_db.begin()
        ref = any_db.insert(txn, "accounts", (1, "ann", 10.0))
        any_db.commit(txn)
        txn = any_db.begin()
        assert any_db.read(txn, "accounts", ref) == (1, "ann", 10.0)
        any_db.commit(txn)

    def test_schema_enforced_on_insert(self, any_db):
        txn = any_db.begin()
        with pytest.raises(SchemaError):
            any_db.insert(txn, "accounts", ("bad", "ann", 10.0))
        any_db.abort(txn)

    def test_pk_lookup(self, any_db):
        txn = any_db.begin()
        for i in range(10):
            any_db.insert(txn, "accounts", (i, f"u{i % 3}", float(i)))
        any_db.commit(txn)
        txn = any_db.begin()
        hits = any_db.lookup(txn, "accounts", "pk", 7)
        assert len(hits) == 1 and hits[0][1] == (7, "u1", 7.0)
        assert any_db.lookup(txn, "accounts", "pk", 99) == []
        any_db.commit(txn)

    def test_secondary_lookup_multiple(self, any_db):
        txn = any_db.begin()
        for i in range(9):
            any_db.insert(txn, "accounts", (i, f"u{i % 3}", float(i)))
        any_db.commit(txn)
        txn = any_db.begin()
        hits = any_db.lookup(txn, "accounts", "by_owner", "u2")
        assert sorted(r[0] for _ref, r in hits) == [2, 5, 8]
        any_db.commit(txn)

    def test_update_moves_secondary_key(self, any_db):
        txn = any_db.begin()
        ref = any_db.insert(txn, "accounts", (1, "old", 0.0))
        any_db.commit(txn)
        txn = any_db.begin()
        any_db.update(txn, "accounts", ref, (1, "new", 0.0))
        any_db.commit(txn)
        txn = any_db.begin()
        assert [r[0] for _x, r in
                any_db.lookup(txn, "accounts", "by_owner", "new")] == [1]
        assert any_db.lookup(txn, "accounts", "by_owner", "old") == []
        any_db.commit(txn)

    def test_update_returns_usable_ref(self, any_db):
        txn = any_db.begin()
        ref = any_db.insert(txn, "accounts", (1, "a", 1.0))
        any_db.commit(txn)
        txn = any_db.begin()
        ref = any_db.update(txn, "accounts", ref, (1, "a", 2.0))
        any_db.commit(txn)
        txn = any_db.begin()
        assert any_db.read(txn, "accounts", ref) == (1, "a", 2.0)
        any_db.commit(txn)

    def test_range_lookup(self, any_db):
        txn = any_db.begin()
        for i in range(20):
            any_db.insert(txn, "accounts", (i, "u", float(i)))
        any_db.commit(txn)
        txn = any_db.begin()
        hits = any_db.range_lookup(txn, "accounts", "pk", 5, 9)
        assert [r[0] for _x, r in hits] == [5, 6, 7, 8, 9]
        any_db.commit(txn)

    def test_delete_then_lookup_empty(self, any_db):
        txn = any_db.begin()
        ref = any_db.insert(txn, "accounts", (1, "a", 1.0))
        any_db.commit(txn)
        txn = any_db.begin()
        any_db.delete(txn, "accounts", ref)
        any_db.commit(txn)
        txn = any_db.begin()
        assert any_db.lookup(txn, "accounts", "pk", 1) == []
        assert list(any_db.scan(txn, "accounts")) == []
        any_db.commit(txn)

    def test_abort_rolls_back_everything(self, any_db):
        txn = any_db.begin()
        any_db.insert(txn, "accounts", (1, "a", 1.0))
        any_db.abort(txn)
        txn = any_db.begin()
        assert any_db.lookup(txn, "accounts", "pk", 1) == []
        any_db.commit(txn)

    def test_run_in_txn(self, any_db):
        any_db.run_in_txn(
            lambda txn: any_db.insert(txn, "accounts", (5, "z", 0.0)))
        txn = any_db.begin()
        assert len(any_db.lookup(txn, "accounts", "pk", 5)) == 1
        any_db.commit(txn)

    def test_run_in_txn_aborts_on_error(self, any_db):
        def boom(txn):
            any_db.insert(txn, "accounts", (6, "z", 0.0))
            raise RuntimeError("nope")

        with pytest.raises(RuntimeError):
            any_db.run_in_txn(boom)
        txn = any_db.begin()
        assert any_db.lookup(txn, "accounts", "pk", 6) == []
        any_db.commit(txn)


class TestMaintenancePruning:
    def test_stale_index_entries_pruned(self, any_db):
        txn = any_db.begin()
        ref = any_db.insert(txn, "accounts", (1, "alpha", 0.0))
        any_db.commit(txn)
        for name in ("beta", "gamma", "delta"):
            txn = any_db.begin()
            hits = any_db.lookup(txn, "accounts", "pk", 1)
            ref = any_db.update(txn, "accounts", hits[0][0],
                                (1, name, 0.0))
            any_db.commit(txn)
        any_db.maintenance()
        _defn, tree = any_db.table("accounts").index("by_owner")
        remaining = {key for key, _v in tree.items()}
        assert "delta" in remaining
        assert "alpha" not in remaining and "beta" not in remaining

    def test_deleted_item_index_entries_pruned(self, any_db):
        txn = any_db.begin()
        ref = any_db.insert(txn, "accounts", (1, "gone", 0.0))
        any_db.commit(txn)
        txn = any_db.begin()
        any_db.delete(txn, "accounts", ref)
        any_db.commit(txn)
        any_db.maintenance()
        _defn, tree = any_db.table("accounts").index("pk")
        assert tree.search(1) == []

    def test_lookup_correct_despite_stale_entries(self, any_db):
        """Before maintenance, stale entries exist but lookups stay right."""
        txn = any_db.begin()
        ref = any_db.insert(txn, "accounts", (1, "old", 0.0))
        any_db.commit(txn)
        txn = any_db.begin()
        any_db.update(txn, "accounts", ref, (1, "new", 0.0))
        any_db.commit(txn)
        txn = any_db.begin()
        assert any_db.lookup(txn, "accounts", "by_owner", "old") == []
        any_db.commit(txn)


class TestConflictsThroughFacade:
    def test_concurrent_update_conflict(self, any_db):
        txn = any_db.begin()
        any_db.insert(txn, "accounts", (1, "a", 0.0))
        any_db.commit(txn)
        t1, t2 = any_db.begin(), any_db.begin()
        r1 = any_db.lookup(t1, "accounts", "pk", 1)[0][0]
        r2 = any_db.lookup(t2, "accounts", "pk", 1)[0][0]
        any_db.update(t1, "accounts", r1, (1, "a", 1.0))
        with pytest.raises(SerializationError):
            any_db.update(t2, "accounts", r2, (1, "a", 2.0))
        any_db.commit(t1)
        any_db.abort(t2)

    def test_write_skew_allowed(self, any_db):
        """SI (not serializable) permits write skew — both engines must."""
        txn = any_db.begin()
        ra = any_db.insert(txn, "accounts", (1, "a", 50.0))
        rb = any_db.insert(txn, "accounts", (2, "b", 50.0))
        any_db.commit(txn)
        t1, t2 = any_db.begin(), any_db.begin()
        # each reads both accounts, then updates a different one
        assert any_db.read(t1, "accounts", ra)[2] + \
            any_db.read(t1, "accounts", rb)[2] == 100.0
        assert any_db.read(t2, "accounts", ra)[2] + \
            any_db.read(t2, "accounts", rb)[2] == 100.0
        any_db.update(t1, "accounts", ra, (1, "a", -10.0))
        any_db.update(t2, "accounts", rb, (2, "b", -10.0))
        any_db.commit(t1)
        any_db.commit(t2)  # no serialization failure: plain SI

    def test_snapshot_stability(self, any_db):
        """A transaction re-reading the same item always sees the same row."""
        txn = any_db.begin()
        ref = any_db.insert(txn, "accounts", (1, "a", 1.0))
        any_db.commit(txn)
        reader = any_db.begin()
        first = any_db.lookup(reader, "accounts", "pk", 1)
        writer = any_db.begin()
        any_db.update(writer, "accounts",
                      any_db.lookup(writer, "accounts", "pk", 1)[0][0],
                      (1, "a", 99.0))
        any_db.commit(writer)
        second = any_db.lookup(reader, "accounts", "pk", 1)
        assert [r for _x, r in first] == [r for _x, r in second]
        any_db.commit(reader)


class TestShutdownAndSpace:
    def test_shutdown_flushes_everything(self, any_db):
        txn = any_db.begin()
        for i in range(50):
            any_db.insert(txn, "accounts", (i, "u", float(i)))
        any_db.commit(txn)
        any_db.shutdown()
        assert any_db.buffer.dirty_keys() == []

    def test_space_reports(self, any_db):
        txn = any_db.begin()
        for i in range(200):
            any_db.insert(txn, "accounts", (i, "u" * 30, float(i)))
        any_db.commit(txn)
        any_db.shutdown()
        reports = any_db.space_reports()
        assert len(reports) == 1
        assert reports[0].table == "accounts"
        assert reports[0].data_bytes > 0
        if any_db.kind is EngineKind.SIASV:
            assert reports[0].vidmap_bytes > 0
        else:
            assert reports[0].vidmap_bytes == 0
        assert any_db.total_space_bytes() == reports[0].total_bytes


class TestShutdownIdempotence:
    def test_second_shutdown_is_a_noop(self, any_db):
        txn = any_db.begin()
        any_db.insert(txn, "accounts", (1, "u", 1.0))
        any_db.commit(txn)
        any_db.shutdown()
        files_after_first = len(any_db.tablespace._files)
        checkpoints = any_db.checkpointer.checkpoints
        any_db.shutdown()
        # no duplicate vidmap.<table> files, no re-run sealing/checkpoint
        assert len(any_db.tablespace._files) == files_after_first
        assert any_db.checkpointer.checkpoints == checkpoints

    def test_sias_vidmap_file_created_exactly_once(self, sias_db):
        txn = sias_db.begin()
        sias_db.insert(txn, "accounts", (1, "u", 1.0))
        sias_db.commit(txn)
        sias_db.shutdown()
        sias_db.shutdown()
        names = [f.name for f in sias_db.tablespace._files]
        assert names.count("vidmap.accounts") == 1


class TestRunInTxn:
    def test_defaults_to_snapshot_isolation(self, any_db):
        seen = {}
        any_db.run_in_txn(lambda t: seen.setdefault("ser", t.serializable))
        assert seen["ser"] is False

    def test_serializable_passthrough(self, any_db):
        def work(txn):
            assert txn.serializable
            return any_db.insert(txn, "accounts", (7, "ssi", 7.0))
        ref = any_db.run_in_txn(work, serializable=True)
        check = any_db.begin()
        assert any_db.read(check, "accounts", ref) == (7, "ssi", 7.0)
        any_db.commit(check)
