"""WAL-shipping replication: apply, watermark, resume, fencing, slots.

In-process pairs throughout — the :class:`ReplicationHub` is handed to
the :class:`WalFollower` directly as its source (it speaks the same
``subscribe``/``fetch`` surface as the wire's ``RemoteSource``), so
these tests exercise the replication state machines without sockets.
The wire path and the full failover story are covered end to end by
``repro.experiments.failover`` (CI's replication-smoke job).
"""

from __future__ import annotations

import pytest

from repro.client.pool import ConnectionPool, RetryPolicy
from repro.common.errors import ReplicationError
from repro.db.database import Database, EngineKind
from repro.db.recovery import crash, recover
from repro.replication import (
    REPLICA_TXID_BASE,
    FollowerState,
    FollowerSupervisor,
    RemoteSource,
    ReplicationHub,
    WalFollower,
)
from repro.server import DatabaseServer, ServerConfig
from tests.conftest import make_accounts_db


def make_pair(batch_limit: int = 2) -> tuple[Database, ReplicationHub,
                                             Database, WalFollower]:
    """A leader with a hub and a connected follower over a twin schema."""
    leader = make_accounts_db(EngineKind.SIASV)
    hub = ReplicationHub(leader)
    replica = make_accounts_db(EngineKind.SIASV)
    follower = WalFollower(replica, hub, batch_limit=batch_limit)
    follower.connect()
    return leader, hub, replica, follower


def seed(leader: Database, rows: list[tuple]) -> None:
    txn = leader.begin()
    for row in rows:
        leader.insert(txn, "accounts", row)
    leader.commit(txn)


def balances(db: Database, txn) -> dict[int, float]:
    return {row[0]: row[2] for _ref, row in db.scan(txn, "accounts")}


class TestApply:
    def test_replicates_insert_update_delete(self):
        leader, _hub, replica, follower = make_pair()
        seed(leader, [(1, "a", 10.0), (2, "b", 20.0)])
        txn = leader.begin()
        (ref1, row1), = leader.lookup(txn, "accounts", "pk", 1)
        leader.update(txn, "accounts", ref1, (1, "a", 15.0))
        (ref2, _), = leader.lookup(txn, "accounts", "pk", 2)
        leader.delete(txn, "accounts", ref2)
        leader.commit(txn)

        follower.catch_up()
        read = follower.begin_read()
        assert balances(replica, read) == {1: 15.0}
        # index entries replicate too, not just the heap
        (hit,) = replica.lookup(read, "accounts", "pk", 1)
        assert hit[1] == (1, "a", 15.0)
        assert replica.lookup(read, "accounts", "pk", 2) == []
        replica.commit(read)

    def test_local_txids_clear_of_shipped_ones(self):
        _leader, _hub, replica, follower = make_pair()
        read = follower.begin_read()
        assert read.txid >= REPLICA_TXID_BASE
        replica.commit(read)


class TestWatermark:
    def test_partial_transaction_never_visible(self):
        """A transaction whose records straddle frames is invisible until
        its COMMIT ships — and the watermark only then exposes it."""
        leader, _hub, replica, follower = make_pair(batch_limit=2)
        seed(leader, [(1, "a", 100.0), (2, "b", 100.0)])
        follower.catch_up()

        txn = leader.begin()
        (ref1, _), = leader.lookup(txn, "accounts", "pk", 1)
        (ref2, _), = leader.lookup(txn, "accounts", "pk", 2)
        leader.update(txn, "accounts", ref1, (1, "a", 60.0))
        leader.update(txn, "accounts", ref2, (2, "b", 140.0))
        leader.commit(txn)  # 2 UPDATEs + COMMIT: two frames at batch 2

        before = follower.watermark
        follower.catch_up(max_frames=1)  # UPDATE records only, no COMMIT
        assert follower.watermark == before
        read = follower.begin_read()
        assert balances(replica, read) == {1: 100.0, 2: 100.0}
        replica.commit(read)

        follower.catch_up()
        assert follower.watermark > before
        read = follower.begin_read()
        assert balances(replica, read) == {1: 60.0, 2: 140.0}
        replica.commit(read)


class TestRestartResume:
    def test_resume_from_marker_no_double_apply(self):
        """A restarted follower resumes at its durable marker and applies
        nothing twice — re-delivered transactions dedupe via the clog."""
        leader, hub, replica, follower = make_pair(batch_limit=2)
        seed(leader, [(1, "a", 10.0)])
        # interleave two writers so the COMMIT of one (B) lands while the
        # other (A) still has records pending: the restart marker then
        # points below B's applied COMMIT, forcing a re-delivery of it
        a = leader.begin()
        leader.insert(a, "accounts", (2, "a-row", 2.0))
        b = leader.begin()
        leader.insert(b, "accounts", (3, "b-row", 3.0))
        leader.commit(b)
        (ref, _), = leader.lookup(a, "accounts", "pk", 2)
        leader.update(a, "accounts", ref, (2, "a-row", 4.0))
        leader.commit(a)

        follower.catch_up()
        assert follower.acked_seq == follower.fetch_seq
        read = follower.begin_read()
        assert balances(replica, read) == {1: 10.0, 2: 4.0, 3: 3.0}
        replica.commit(read)

        crash(replica)
        recover(replica)
        resumed = WalFollower(replica, hub, batch_limit=2)
        assert resumed.fetch_seq > 0  # resumed from the marker, not 0
        resumed.connect()
        applied = resumed.catch_up()
        assert applied == 0  # nothing durable was left unshipped
        read = resumed.begin_read()
        assert balances(replica, read) == {1: 10.0, 2: 4.0, 3: 3.0}
        (hit,) = replica.lookup(read, "accounts", "pk", 3)
        assert hit[1] == (3, "b-row", 3.0)
        replica.commit(read)

    def test_restart_mid_pending_dedupes_redelivery(self):
        """Crash while a transaction is half-shipped: the marker anchors
        below it, so already-applied neighbours are re-delivered and must
        dedupe instead of double-applying."""
        leader, hub, replica, follower = make_pair(batch_limit=2)
        seed(leader, [(1, "a", 10.0)])
        follower.catch_up()
        a = leader.begin()
        leader.insert(a, "accounts", (2, "a-row", 2.0))
        b = leader.begin()
        leader.insert(b, "accounts", (3, "b-row", 3.0))
        leader.commit(b)
        (ref, _), = leader.lookup(a, "accounts", "pk", 2)
        leader.update(a, "accounts", ref, (2, "a-row", 4.0))
        leader.commit(a)
        # records: [A-ins, B-ins], [B-commit, A-upd], [A-commit] — stop
        # after two frames: B is applied, A is pending, marker = A's start
        follower.catch_up(max_frames=2)
        assert follower.acked_seq < follower.fetch_seq

        crash(replica)
        recover(replica)
        resumed = WalFollower(replica, hub, batch_limit=2)
        resumed.connect()
        resumed.catch_up()
        assert resumed.deduped_txns >= 1  # B arrived again, applied once
        read = resumed.begin_read()
        assert balances(replica, read) == {1: 10.0, 2: 4.0, 3: 3.0}
        (hit,) = replica.lookup(read, "accounts", "pk", 3)
        assert hit[1] == (3, "b-row", 3.0)
        replica.commit(read)


class TestFencing:
    def test_promotion_discards_pending_and_bumps_epoch(self):
        leader, _hub, replica, follower = make_pair(batch_limit=2)
        seed(leader, [(1, "a", 10.0), (2, "b", 20.0)])
        follower.catch_up()
        txn = leader.begin()
        (ref1, _), = leader.lookup(txn, "accounts", "pk", 1)
        leader.update(txn, "accounts", ref1, (1, "a", 99.0))
        (ref2, _), = leader.lookup(txn, "accounts", "pk", 2)
        leader.update(txn, "accounts", ref2, (2, "b", 99.0))
        leader.commit(txn)
        follower.catch_up(max_frames=1)  # UPDATEs shipped, COMMIT not

        epoch = follower.promote()
        assert epoch == 2
        assert follower.role == "leader"
        # the half-shipped transaction died with the old epoch
        read = follower.begin_read()
        assert balances(replica, read) == {1: 10.0, 2: 20.0}
        replica.commit(read)
        # the promoted node accepts writes and serves its own hub
        txn = replica.begin()
        (ref, _), = replica.lookup(txn, "accounts", "pk", 1)
        replica.update(txn, "accounts", ref, (1, "a", 11.0))
        replica.commit(txn)
        info = follower.subscribe("replica-2", 0)
        assert info["epoch"] == 2

    def test_zombie_leader_fetch_refused(self):
        """After promotion the old hub's epoch is dead: fetches carrying
        the new epoch are refused by the zombie, and a fenced zombie
        refuses everything."""
        leader, hub, _replica, follower = make_pair()
        seed(leader, [(1, "a", 10.0)])
        follower.catch_up()
        follower.promote()

        with pytest.raises(ReplicationError):
            hub.fetch(follower.follower_id, follower.epoch,
                      follower.fetch_seq, follower.acked_seq)
        hub.fence()
        with pytest.raises(ReplicationError):
            hub.fetch(follower.follower_id, 1, follower.fetch_seq,
                      follower.acked_seq)
        with pytest.raises(ReplicationError):
            hub.subscribe("anyone", 0)

    def test_follower_refuses_zombie_frames(self):
        """Frames stamped with a stale epoch are refused follower-side —
        the zombie's serving path may not even know it was deposed."""
        leader, hub, _replica, follower = make_pair()
        seed(leader, [(1, "a", 10.0)])
        follower.catch_up()

        class ZombieSource:
            def subscribe(self, follower_id, start_seq):
                return hub.subscribe(follower_id, start_seq)

            def fetch(self, follower_id, epoch, since_seq, acked_seq,
                      limit):
                frame = hub.fetch(follower_id, epoch, since_seq,
                                  acked_seq, limit)
                # a stale stamp, as a deposed leader would produce
                return (0,) + frame[1:]

        follower.source = ZombieSource()
        seed(leader, [(2, "b", 20.0)])
        with pytest.raises(ReplicationError, match="fenced"):
            follower.catch_up()


class TestSlots:
    def test_slot_clamps_checkpoint_truncation(self):
        """While a follower lags, its slot pins the log; once it acks,
        truncation may proceed and pre-base fetches are refused."""
        leader, hub, _replica, follower = make_pair()
        for i in range(10, 20):
            seed(leader, [(i, f"row-{i}", 1.0)])
        wal = leader.wal
        assert wal.slots()[follower.follower_id] == 0

        wal.log_checkpoint(wal.durable_seq())  # wants to drop everything
        records, _ = wal.records_since(0)      # slot held it all back
        assert records

        follower.catch_up()                    # acks up to the horizon
        assert wal.slots()[follower.follower_id] > 0
        wal.log_checkpoint(wal.durable_seq())
        with pytest.raises(ValueError, match="truncated"):
            wal.records_since(0)

    def test_subscribe_below_base_requires_resync(self):
        leader, hub, _replica, _follower = make_pair()
        for i in range(10, 20):
            seed(leader, [(i, f"row-{i}", 1.0)])
        hub.unsubscribe("replica-1")
        leader.wal.log_checkpoint(leader.wal.durable_seq())
        with pytest.raises(ReplicationError, match="resync"):
            hub.subscribe("late-joiner", 0)


class TestResync:
    def test_below_base_subscribe_over_wire_typed_refusal(self):
        """A WAL_SUBSCRIBE below the retained base round-trips over the
        real wire as a *typed* ReplicationError naming the fix."""
        leader = make_accounts_db(EngineKind.SIASV)
        hub = ReplicationHub(leader)
        server = DatabaseServer(
            leader, ServerConfig(port=0, idle_timeout_sec=30.0),
            replication=hub)
        host, port = server.start_in_background()
        pool = ConnectionPool(size=1, endpoints=[(host, port)])
        try:
            for i in range(10, 20):
                seed(leader, [(i, f"row-{i}", 1.0)])
            leader.wal.log_checkpoint(leader.wal.durable_seq())
            with pytest.raises(ReplicationError, match="resync"):
                RemoteSource(pool).subscribe("late-joiner", 0)
        finally:
            pool.close()
            server.stop_in_background()

    def test_watermark_monotone_across_auto_resync(self):
        """An evicted follower heals through a full resync — and its
        watermark only ever ratchets forward while doing so."""
        leader, _hub, replica, follower = make_pair()
        seed(leader, [(1, "a", 10.0)])
        follower.catch_up()
        before = follower.watermark
        assert before > 0

        leader.wal.max_retained_records = 4
        for i in range(2, 12):
            seed(leader, [(i, f"row-{i}", 1.0)])
        leader.wal.log_checkpoint(leader.wal.durable_seq())

        follower.catch_up()  # fetch below base -> automatic resync
        assert follower.resyncs == 1
        assert follower.watermark > before
        read = follower.begin_read()
        state = balances(replica, read)
        assert state == {1: 10.0, **{i: 1.0 for i in range(2, 12)}}
        replica.commit(read)

    def test_bootstrap_from_scratch_below_base(self):
        """connect() itself auto-resyncs when the subscribe point is
        already below the base — a brand-new replica joining late."""
        leader = make_accounts_db(EngineKind.SIASV)
        hub = ReplicationHub(leader)
        for i in range(10, 20):
            seed(leader, [(i, f"row-{i}", 1.0)])
        leader.wal.log_checkpoint(leader.wal.durable_seq())

        replica = make_accounts_db(EngineKind.SIASV)
        follower = WalFollower(replica, hub, follower_id="late-joiner")
        follower.connect()
        assert follower.resyncs == 1
        follower.catch_up()
        read = follower.begin_read()
        assert balances(replica, read) == {i: 1.0 for i in range(10, 20)}
        replica.commit(read)


class TestSupervisor:
    @staticmethod
    def _supervise(follower) -> FollowerSupervisor:
        return FollowerSupervisor(
            follower,
            retry=RetryPolicy(base_delay_sec=0.0, max_delay_sec=0.0),
            sleep=lambda _s: None)

    def test_eviction_resubscribe_lands_in_resyncing(self):
        """A follower whose slot was evicted under the retention budget
        passes through RESYNCING on its next supervised step — the
        supervisor never crashes, and the step ends streaming again."""
        leader, _hub, replica, follower = make_pair()
        seed(leader, [(1, "a", 10.0)])
        supervisor = self._supervise(follower)
        assert supervisor.step() is FollowerState.STREAMING

        leader.wal.max_retained_records = 4
        for i in range(2, 12):
            seed(leader, [(i, f"row-{i}", 1.0)])
        leader.wal.log_checkpoint(leader.wal.durable_seq())
        assert follower.follower_id not in leader.wal.slots()  # evicted

        assert supervisor.step() is FollowerState.STREAMING
        assert supervisor.resyncs_observed == 1  # passed through RESYNCING
        assert supervisor.failures == 0
        read = follower.begin_read()
        assert len(balances(replica, read)) == 11
        replica.commit(read)

    def test_transport_error_backs_off_then_recovers(self):
        """An unreachable upstream sets DISCONNECTED with a recorded
        error; once it answers again the loop resumes streaming."""
        leader, hub, _replica, follower = make_pair()
        seed(leader, [(1, "a", 10.0)])
        supervisor = self._supervise(follower)
        assert supervisor.step() is FollowerState.STREAMING

        class DeadSource:
            def __getattr__(self, _name):
                raise ConnectionError("upstream unreachable")

        follower.source = DeadSource()
        assert supervisor.step() is FollowerState.DISCONNECTED
        assert supervisor.disconnects == 1
        assert "unreachable" in (supervisor.last_error or "")

        follower.source = hub
        seed(leader, [(2, "b", 20.0)])
        assert supervisor.step() is FollowerState.STREAMING
        assert supervisor.failures == 0


class TestMarkerPersistence:
    def test_watermark_and_epoch_survive_crash(self):
        """The restart marker carries watermark + epoch, so a recovered
        replica's fresh follower resumes with all three — its cascade
        hub never serves closed_ts=0 to a downstream bootstrap."""
        leader, hub, replica, follower = make_pair()
        seed(leader, [(1, "a", 10.0), (2, "b", 20.0)])
        follower.catch_up()
        watermark, epoch = follower.watermark, follower.epoch
        assert watermark > 0

        crash(replica)
        recover(replica)
        resumed = WalFollower(replica, hub)
        assert resumed.watermark == watermark  # before any reconnect
        assert resumed.epoch == epoch

    def test_marker_survives_local_checkpoint(self):
        """A replica-local checkpoint truncates the replica's own WAL —
        the marker must be re-armed after it, or a later crash would
        resume from seq 0 with a zero watermark."""
        leader, hub, replica, follower = make_pair()
        seed(leader, [(1, "a", 10.0)])
        follower.catch_up()
        watermark, acked = follower.watermark, follower.acked_seq

        replica.checkpointer.run_now()  # truncates, then re-marks
        crash(replica)
        recover(replica)
        resumed = WalFollower(replica, hub)
        assert resumed.watermark == watermark
        assert resumed.acked_seq == acked


class TestEngineGate:
    def test_si_baseline_refuses_replication(self):
        """Only SIAS-V relations replicate: the SI baseline has no
        record-redo apply path for the follower to ride."""
        leader = make_accounts_db(EngineKind.SI)
        hub = ReplicationHub(leader)
        replica = make_accounts_db(EngineKind.SI)
        follower = WalFollower(replica, hub)
        follower.connect()
        seed(leader, [(1, "a", 10.0)])
        with pytest.raises(ReplicationError, match="SI baseline"):
            follower.catch_up()
