"""NoFTL raw-flash tests: semantics, engine compatibility, the A5 shape."""

from __future__ import annotations

import pytest

from repro.common import units
from repro.common.clock import SimClock
from repro.common.config import (
    BufferConfig,
    FlashConfig,
    SystemConfig,
)
from repro.common.errors import ReadUnwrittenError, StorageError
from repro.db.catalog import IndexDef
from repro.db.database import Database, EngineKind
from repro.db.schema import ColType, Schema
from repro.experiments import ablation_noftl
from repro.storage.flash import FlashDevice
from repro.storage.noftl import NoFtlFlashDevice

TINY = FlashConfig(capacity_bytes=4 * units.MIB)
PAGE = units.DB_PAGE_SIZE


def _payload(tag: int) -> bytes:
    return bytes([tag % 256]) * PAGE


class TestRawFlashSemantics:
    def test_write_read_roundtrip(self, clock):
        device = NoFtlFlashDevice(clock, TINY)
        device.write_page(5, _payload(1))
        assert device.read_page(5) == _payload(1)

    def test_overwrite_without_erase_is_an_error(self, clock):
        device = NoFtlFlashDevice(clock, TINY)
        device.write_page(0, _payload(1))
        with pytest.raises(StorageError):
            device.write_page(0, _payload(2))

    def test_trim_marks_dead_and_block_erases_when_full_dead(self, clock):
        device = NoFtlFlashDevice(clock, TINY)
        block_pages = device.pages_per_block
        for lba in range(block_pages):
            device.write_page(lba, _payload(lba))
        for lba in range(block_pages - 1):
            device.trim(lba)
        assert device.erases == 0  # one page still valid
        assert device.page_state(0) == "dead"
        device.trim(block_pages - 1)
        assert device.erases == 1  # whole block died: deterministic erase
        assert device.page_state(0) == "erased"

    def test_erased_page_programmable_again(self, clock):
        device = NoFtlFlashDevice(clock, TINY)
        block_pages = device.pages_per_block
        for lba in range(block_pages):
            device.write_page(lba, _payload(lba))
        for lba in range(block_pages):
            device.trim(lba)
        device.write_page(0, _payload(9))  # no error: block was erased
        assert device.read_page(0) == _payload(9)

    def test_dead_page_not_readable(self, clock):
        device = NoFtlFlashDevice(clock, TINY)
        device.write_page(0, _payload(0))
        device.trim(0)
        with pytest.raises(ReadUnwrittenError):
            device.read_page(0)

    def test_writable_hint(self, clock):
        device = NoFtlFlashDevice(clock, TINY)
        assert device.writable_hint(3)
        device.write_page(3, _payload(3))
        assert not device.writable_hint(3)

    def test_write_amp_is_one_by_construction(self, clock):
        device = NoFtlFlashDevice(clock, TINY)
        assert device.write_amplification == 1.0


def _db_on(device_cls, clock=None):
    clock = clock or SimClock()
    config = SystemConfig(flash=TINY,
                          buffer=BufferConfig(pool_pages=64),
                          extent_pages=FlashConfig().pages_per_block)
    data = device_cls(clock, TINY, name="data")
    wal = FlashDevice(clock, TINY, name="wal")
    db = Database(
        EngineKind.SIASV if device_cls is NoFtlFlashDevice
        else EngineKind.SI, data, wal, config)
    return db


class TestEngineCompatibility:
    def test_sias_runs_on_raw_flash(self):
        db = _db_on(NoFtlFlashDevice)
        schema = Schema.of(("id", ColType.INT), ("v", ColType.INT))
        db.create_table("t", schema,
                        indexes=[IndexDef("pk", ("id",), unique=True)])
        txn = db.begin()
        refs = [db.insert(txn, "t", (i, 0)) for i in range(300)]
        db.commit(txn)
        for round_ in range(10):
            txn = db.begin()
            for ref in refs[:50]:
                row = db.read(txn, "t", ref)
                db.update(txn, "t", ref, (row[0], row[1] + 1))
            db.commit(txn)
            db.maintenance()
        txn = db.begin()
        assert len(list(db.scan(txn, "t"))) == 300
        db.commit(txn)

    def test_si_baseline_cannot_run_on_raw_flash(self):
        """In-place writeback programs a non-erased page: raw flash says no."""
        clock = SimClock()
        config = SystemConfig(flash=TINY, buffer=BufferConfig(pool_pages=64))
        data = NoFtlFlashDevice(clock, TINY, name="data")
        wal = FlashDevice(clock, TINY, name="wal")
        db = Database(EngineKind.SI, data, wal, config)
        schema = Schema.of(("id", ColType.INT), ("v", ColType.INT))
        db.create_table("t", schema,
                        indexes=[IndexDef("pk", ("id",), unique=True)])
        with pytest.raises(StorageError):
            for round_ in range(20):
                txn = db.begin()
                if round_ == 0:
                    ref = db.insert(txn, "t", (1, 0))
                else:
                    ref, row = db.lookup(txn, "t", "pk", 1)[0]
                    db.update(txn, "t", ref, (1, round_))
                db.commit(txn)
                db.checkpointer.run_now()  # heap page rewritten in place


class TestA5Shape:
    def test_noftl_latency_tail_flat(self):
        result = ablation_noftl.run(rows=200, updates=8000,
                                    capacity_mib=6, gc_every=800,
                                    cold_rows=100)
        by = {row[0]: row for row in result.rows}
        # NoFTL host writes never stall behind erases
        assert result.max_latency["noftl"] == 400
        assert result.max_latency["ftl"] > result.max_latency["noftl"]
        # write counts comparable: same workload, same engine
        assert abs(by["ftl"][1] - by["noftl"][1]) <= 0.1 * by["ftl"][1]
        # raw flash never amplifies
        assert result.write_amp["noftl"] == 1.0
