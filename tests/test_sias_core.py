"""Unit tests for the SIAS-V core: VIDs, VIDmap, append store."""

from __future__ import annotations

import pytest

from repro.common import units
from repro.common.config import EngineConfig, FlushThreshold, PageLayout
from repro.common.errors import NoSuchItemError
from repro.core.append_store import AppendStore
from repro.core.vid import VidAllocator
from repro.core.vidmap import VidMap
from repro.pages.layout import Tid, VersionRecord


class TestVidAllocator:
    def test_sequential(self):
        alloc = VidAllocator()
        assert [alloc.allocate() for _ in range(5)] == [0, 1, 2, 3, 4]
        assert alloc.high_water == 5

    def test_bulk_allocation(self):
        alloc = VidAllocator()
        block = alloc.allocate_block(100)
        assert list(block) == list(range(100))
        assert alloc.allocate() == 100

    def test_bad_block_size(self):
        with pytest.raises(ValueError):
            VidAllocator().allocate_block(0)


class TestVidMap:
    def test_position_arithmetic(self):
        vidmap = VidMap(slots_per_bucket=1024)
        assert vidmap.bucket_of(0) == 0
        assert vidmap.bucket_of(1023) == 0
        assert vidmap.bucket_of(1024) == 1
        assert vidmap.slot_of(1025) == 1

    def test_get_unset_returns_none(self):
        assert VidMap().get(17) is None

    def test_set_get_roundtrip(self):
        vidmap = VidMap()
        vidmap.set(5, Tid(10, 3))
        assert vidmap.get(5) == Tid(10, 3)

    def test_entrypoint_update_replaces(self):
        """Each TID update substitutes the old TID' (no overflow chains)."""
        vidmap = VidMap()
        vidmap.set(5, Tid(10, 3))
        vidmap.set(5, Tid(11, 0))
        assert vidmap.get(5) == Tid(11, 0)

    def test_buckets_allocated_on_demand(self):
        vidmap = VidMap(slots_per_bucket=4)
        vidmap.set(0, Tid(0, 0))
        assert vidmap.bucket_count == 1
        vidmap.set(9, Tid(0, 1))
        assert vidmap.bucket_count == 3  # buckets 0..2 now exist

    def test_memory_bytes_counts_buckets(self):
        vidmap = VidMap(slots_per_bucket=4, page_size=8192)
        vidmap.set(11, Tid(0, 0))
        assert vidmap.memory_bytes() == 3 * 8192

    def test_entries_in_vid_order(self):
        vidmap = VidMap(slots_per_bucket=4)
        vidmap.set(9, Tid(9, 0))
        vidmap.set(2, Tid(2, 0))
        vidmap.set(4, Tid(4, 0))
        assert [vid for vid, _ in vidmap.entries()] == [2, 4, 9]

    def test_cleared_slot_skipped_by_entries(self):
        vidmap = VidMap(slots_per_bucket=4)
        vidmap.set(1, Tid(0, 0))
        vidmap.set(2, Tid(0, 1))
        vidmap.set(1, None)
        assert [vid for vid, _ in vidmap.entries()] == [2]

    def test_vid_range(self):
        vidmap = VidMap(slots_per_bucket=4)
        for vid in range(10):
            vidmap.set(vid, Tid(vid, 0))
        assert [vid for vid, _ in vidmap.vid_range(3, 7)] == [3, 4, 5, 6]

    def test_negative_vid_rejected(self):
        with pytest.raises(NoSuchItemError):
            VidMap().get(-1)
        with pytest.raises(NoSuchItemError):
            VidMap().set(-1, None)

    def test_item_count(self):
        vidmap = VidMap(slots_per_bucket=4)
        vidmap.set(0, Tid(0, 0))
        vidmap.set(7, Tid(0, 1))
        assert vidmap.item_count() == 2

    def test_lookup_counters(self):
        vidmap = VidMap()
        vidmap.set(0, Tid(0, 0))
        vidmap.get(0)
        vidmap.get(1)
        assert vidmap.lookups == 2
        assert vidmap.updates == 1

    def test_persist_load_roundtrip(self, buffer, tablespace):
        vidmap = VidMap(slots_per_bucket=8)
        for vid in range(20):
            vidmap.set(vid, Tid(vid * 2, vid % 3))
        file_id = tablespace.create_file("vidmap.test")
        pages = vidmap.persist(buffer, file_id)
        assert pages == vidmap.bucket_count
        buffer.invalidate_all()
        loaded = VidMap.load(buffer, file_id, vidmap.bucket_count,
                             slots_per_bucket=8)
        assert list(loaded.entries()) == list(vidmap.entries())


def _record(ts=1, vid=0, size=40, pred=None, tomb=False):
    return VersionRecord(ts, vid, pred, tomb, bytes(size))


class TestAppendStore:
    def _store(self, buffer, tablespace, **engine_kwargs):
        import dataclasses
        config = dataclasses.replace(EngineConfig(), **engine_kwargs)
        file_id = tablespace.create_file("rel.append")
        return AppendStore(buffer, file_id, config)

    def test_append_returns_tids(self, buffer, tablespace):
        store = self._store(buffer, tablespace)
        t0 = store.append(_record(vid=0))
        t1 = store.append(_record(vid=1))
        assert t0 == Tid(0, 0)
        assert t1 == Tid(0, 1)

    def test_read_from_working_page_costs_no_io(self, buffer, tablespace,
                                                flash):
        store = self._store(buffer, tablespace)
        tid = store.append(_record(vid=7, size=10))
        reads_before = flash.stats.reads
        record = store.read(tid)
        assert record.vid == 7
        assert flash.stats.reads == reads_before

    def test_t2_seals_at_fill_target(self, buffer, tablespace, flash):
        store = self._store(buffer, tablespace,
                            flush_threshold=FlushThreshold.T2,
                            append_fill_target=0.5)
        writes_before = flash.stats.writes
        while store.stats.sealed_pages == 0:
            store.append(_record(size=200))
        assert flash.stats.writes == writes_before + 1
        # the sealed page is about half full
        assert 0.5 <= store.stats.avg_fill_degree < 0.6

    def test_t1_does_not_seal_on_fill(self, buffer, tablespace):
        store = self._store(buffer, tablespace,
                            flush_threshold=FlushThreshold.T1,
                            append_fill_target=0.5)
        for _ in range(20):  # well past 50% of a page
            store.append(_record(size=200))
        assert store.stats.sealed_pages == 0  # waits for the bgwriter tick
        store.seal_working_page()
        assert store.stats.sealed_pages == 1

    def test_overflow_always_seals(self, buffer, tablespace):
        store = self._store(buffer, tablespace,
                            flush_threshold=FlushThreshold.T1)
        for _ in range(200):
            store.append(_record(size=200))
        assert store.stats.sealed_pages >= 4  # full pages cannot wait

    def test_seal_empty_is_noop(self, buffer, tablespace):
        store = self._store(buffer, tablespace)
        assert store.seal_working_page() is None

    def test_sealed_page_readable_after_cache_drop(self, buffer, tablespace):
        store = self._store(buffer, tablespace)
        tid = store.append(_record(vid=3, size=100))
        store.seal_working_page()
        buffer.invalidate_all()
        assert store.read(tid).vid == 3

    def test_read_many_parallel(self, buffer, tablespace, flash):
        store = self._store(buffer, tablespace, append_fill_target=1.0)
        tids = [store.append(_record(vid=i, size=500)) for i in range(64)]
        store.seal_working_page()
        buffer.invalidate_all()
        t0 = flash.clock.now
        records = store.read_many(tids)
        elapsed = flash.clock.now - t0
        assert [r.vid for r in records] == list(range(64))
        distinct_pages = len({t.page_no for t in tids})
        # parallel channels beat serial page fetches
        assert elapsed < distinct_pages * 50

    def test_wasted_bytes_accounting(self, buffer, tablespace):
        store = self._store(buffer, tablespace)
        store.append(_record(size=10))
        store.seal_working_page()
        assert store.stats.wasted_bytes > 7000  # nearly a whole page

    def test_reclaim_page_trims_and_recycles(self, buffer, tablespace,
                                             flash):
        store = self._store(buffer, tablespace)
        store.append(_record(size=100))
        page_no = store.seal_working_page()
        store.reclaim_page(page_no)
        assert flash.stats.trims == 1
        assert store.device_pages() == 0
        # the freed page number is reused by the next working page
        store.append(_record(size=100))
        assert store.working_page_no == page_no

    def test_reclaim_unknown_page_raises(self, buffer, tablespace):
        store = self._store(buffer, tablespace)
        with pytest.raises(NoSuchItemError):
            store.reclaim_page(5)

    def test_space_bytes(self, buffer, tablespace):
        store = self._store(buffer, tablespace)
        for _ in range(60):
            store.append(_record(size=300))
        store.seal_working_page()
        assert store.space_bytes() == store.device_pages() * 8192
        assert store.device_pages() >= 2

    def test_layout_respected(self, buffer, tablespace):
        store = self._store(buffer, tablespace, layout=PageLayout.NSM)
        store.append(_record())
        open_page = store.open_page(store.working_page_no)
        assert open_page is not None
        assert open_page.layout is PageLayout.NSM

    def test_transaction_colocation_groups(self, buffer, tablespace):
        store = self._store(buffer, tablespace)
        t1 = store.append(_record(vid=0, size=50), group=101)
        t2 = store.append(_record(vid=1, size=50), group=202)
        t1b = store.append(_record(vid=2, size=50), group=101)
        # each transaction's versions share a page; different txns don't
        assert t1.page_no == t1b.page_no
        assert t1.page_no != t2.page_no

    def test_idle_pages_reused_after_release(self, buffer, tablespace):
        store = self._store(buffer, tablespace)
        t1 = store.append(_record(vid=0, size=50), group=101)
        store.release_group(101)
        t2 = store.append(_record(vid=1, size=50), group=202)
        assert t2.page_no == t1.page_no  # small txns share pages

    def test_seal_working_page_seals_all_groups(self, buffer, tablespace):
        store = self._store(buffer, tablespace)
        store.append(_record(vid=0, size=50), group=101)
        store.append(_record(vid=1, size=50), group=202)
        store.seal_working_page()
        assert store.open_page_nos() == []
        assert store.stats.sealed_pages == 2
