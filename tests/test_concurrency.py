"""Concurrency tests: latched engine core under real OS threads.

Covers the multi-worker contract end to end:

* bounded lock waits — a blocked writer observes the holder's *final*
  commit-log state (commit → first-updater-wins abort; abort → the lock
  transfers and the write proceeds) and times out into
  ``SerializationError`` instead of deadlocking;
* a deterministic two-thread commit-ordering scenario (the waiter can
  only be released *after* the holder's commit point is published);
* WAL group commit — concurrent committers batch onto one leader's
  device write;
* a hot-key transfer stress (no lost updates: money is conserved, the
  lock table drains);
* a threaded TPC-C mix checked against the clause 3.3.2 consistency
  conditions;
* the multi-worker server conserving balances over the wire.
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.common import units
from repro.common.errors import SerializationError
from repro.common.rng import NURand
from repro.db.database import EngineKind
from repro.storage.flash import FlashDevice
from repro.txn.locks import LockTable
from repro.wal.log import WriteAheadLog
from repro.workload import consistency
from repro.workload import tpcc_schema as ts
from repro.workload.tpcc_data import TpccLoader
from repro.workload.tpcc_schema import TpccScale, create_tpcc_tables
from repro.workload.tpcc_txns import SpecRollback, TpccContext, new_order, payment
from tests.conftest import SMALL_FLASH, make_accounts_db


def _wait_until(predicate, timeout_sec: float = 5.0,
                interval_sec: float = 0.005) -> None:
    deadline = time.monotonic() + timeout_sec
    while not predicate():
        if time.monotonic() > deadline:
            pytest.fail("condition not reached within timeout")
        time.sleep(interval_sec)


def _join_all(threads: list[threading.Thread],
              timeout_sec: float = 60.0) -> None:
    for thread in threads:
        thread.join(timeout_sec)
        assert not thread.is_alive(), "worker thread did not finish"


# ---------------------------------------------------------------------------
# Lock-wait semantics
# ---------------------------------------------------------------------------


class TestLockWaits:
    def test_immediate_conflict_by_default(self):
        table = LockTable()
        table.acquire(("t", 1), txid=10)
        with pytest.raises(SerializationError):
            table.acquire(("t", 1), txid=11)
        assert table.stats.waits == 0  # no wait discipline configured

    def test_wait_times_out_into_serialization_error(self):
        table = LockTable(wait_timeout_sec=0.05)
        table.acquire(("t", 1), txid=10)
        start = time.monotonic()
        with pytest.raises(SerializationError):
            table.acquire(("t", 1), txid=11)
        assert time.monotonic() - start >= 0.04
        assert table.stats.waits == 1
        assert table.stats.wait_timeouts == 1
        assert table.stats.conflicts == 1

    def test_wait_is_granted_when_holder_releases(self):
        table = LockTable(wait_timeout_sec=5.0)
        table.acquire(("t", 1), txid=10)
        acquired = threading.Event()

        def waiter() -> None:
            table.acquire(("t", 1), txid=11)
            acquired.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        _wait_until(lambda: table.stats.waits == 1)
        assert not acquired.is_set()
        table.release_all(10)
        _join_all([thread], 5.0)
        assert acquired.is_set()
        assert table.holder_of(("t", 1)) == 11
        assert table.stats.wait_timeouts == 0

    @pytest.mark.parametrize("kind", [EngineKind.SIASV, EngineKind.SI],
                             ids=["sias-v", "si"])
    def test_waiter_aborts_after_holder_commits(self, kind):
        """Wait-then-recheck: a committed holder means the waiter is the
        second updater of the same version and must lose."""
        db = make_accounts_db(kind)
        db.txn_mgr.locks.wait_timeout_sec = 5.0
        seed = db.begin()
        db.insert(seed, "accounts", (1, "a", 10.0))
        db.commit(seed)

        holder = db.begin()
        [(href, _)] = db.lookup(holder, "accounts", "pk", 1)
        db.update(holder, "accounts", href, (1, "a", 20.0))

        outcome: list[object] = []

        def contender() -> None:
            txn = db.begin()
            [(ref, _)] = db.lookup(txn, "accounts", "pk", 1)
            try:
                db.update(txn, "accounts", ref, (1, "a", 99.0))
                db.commit(txn)
                outcome.append("committed")
            except SerializationError:
                db.abort(txn)
                outcome.append("aborted")

        thread = threading.Thread(target=contender)
        thread.start()
        _wait_until(lambda: db.txn_mgr.locks.stats.waits >= 1)
        db.commit(holder)
        _join_all([thread], 10.0)

        assert outcome == ["aborted"]
        check = db.begin()
        [(_, row)] = db.lookup(check, "accounts", "pk", 1)
        assert row == (1, "a", 20.0)  # the holder's write, not the waiter's
        db.commit(check)
        assert db.txn_mgr.locks.held_count() == 0

    @pytest.mark.parametrize("kind", [EngineKind.SIASV, EngineKind.SI],
                             ids=["sias-v", "si"])
    def test_waiter_proceeds_after_holder_aborts(self, kind):
        """An aborted holder's write is void: the waiter inherits the lock
        and its update succeeds."""
        db = make_accounts_db(kind)
        db.txn_mgr.locks.wait_timeout_sec = 5.0
        seed = db.begin()
        db.insert(seed, "accounts", (1, "a", 10.0))
        db.commit(seed)

        holder = db.begin()
        [(href, _)] = db.lookup(holder, "accounts", "pk", 1)
        db.update(holder, "accounts", href, (1, "a", 20.0))

        outcome: list[object] = []

        def contender() -> None:
            txn = db.begin()
            [(ref, _)] = db.lookup(txn, "accounts", "pk", 1)
            try:
                db.update(txn, "accounts", ref, (1, "a", 30.0))
                db.commit(txn)
                outcome.append("committed")
            except SerializationError:
                db.abort(txn)
                outcome.append("aborted")

        thread = threading.Thread(target=contender)
        thread.start()
        _wait_until(lambda: db.txn_mgr.locks.stats.waits >= 1)
        db.abort(holder)
        _join_all([thread], 10.0)

        assert outcome == ["committed"]
        check = db.begin()
        [(_, row)] = db.lookup(check, "accounts", "pk", 1)
        assert row == (1, "a", 30.0)
        db.commit(check)
        assert db.txn_mgr.locks.held_count() == 0


class TestCommitOrdering:
    def test_waiter_wakes_only_after_commit_point_published(self, sias_db):
        """Deterministic two-thread ordering: locks release strictly after
        the commit point (WAL force + clog flip), so a woken waiter always
        sees the holder as COMMITTED — never a torn in-between state."""
        db = sias_db
        db.txn_mgr.locks.wait_timeout_sec = 5.0
        seed = db.begin()
        db.insert(seed, "accounts", (1, "x", 1.0))
        db.commit(seed)

        holder = db.begin()
        [(ref, _)] = db.lookup(holder, "accounts", "pk", 1)
        db.update(holder, "accounts", ref, (1, "x", 2.0))

        observed: list[tuple[bool, bool]] = []

        def contender() -> None:
            txn = db.begin()
            [(cref, _)] = db.lookup(txn, "accounts", "pk", 1)
            try:
                db.update(txn, "accounts", cref, (1, "x", 3.0))
                db.abort(txn)
            except SerializationError:
                # the instant the wait ends, the holder's outcome must
                # already be fully published
                observed.append((
                    db.txn_mgr.clog.is_committed(holder.txid),
                    holder.txid in db.txn_mgr.active_txids,
                ))
                db.abort(txn)

        thread = threading.Thread(target=contender)
        thread.start()
        _wait_until(lambda: db.txn_mgr.locks.stats.waits >= 1)
        db.commit(holder)
        _join_all([thread], 10.0)
        assert observed == [(True, False)]


# ---------------------------------------------------------------------------
# WAL group commit
# ---------------------------------------------------------------------------


class TestGroupCommit:
    def test_concurrent_commits_batch_onto_one_force(self, clock):
        device = FlashDevice(clock, SMALL_FLASH, name="wal")
        wal = WriteAheadLog(device)
        gate = threading.Event()
        first_write_started = threading.Event()
        real_write_pages = device.write_pages
        write_calls: list[int] = []

        def slow_write_pages(writes):
            write_calls.append(len(writes))
            if len(write_calls) == 1:
                first_write_started.set()
                assert gate.wait(10.0)
            return real_write_pages(writes)

        device.write_pages = slow_write_pages

        threads = [threading.Thread(target=wal.log_commit, args=(txid,))
                   for txid in (1, 2, 3)]
        threads[0].start()
        assert first_write_started.wait(10.0)
        threads[1].start()
        threads[2].start()
        # both followers have appended their COMMIT records and are
        # parked on the condition behind the stalled leader
        _wait_until(lambda: wal.records_written == 3)
        time.sleep(0.1)
        gate.set()
        _join_all(threads, 10.0)

        assert wal.committed_txids() == {1, 2, 3}
        durable_commits = {r.txid for r in wal.durable_records()}
        assert durable_commits == {1, 2, 3}
        # the second force covers both followers: at least one of them
        # rode it without touching the device
        assert wal.group_commits >= 1
        assert wal.forces <= 3


# ---------------------------------------------------------------------------
# Hot-key transfer stress (lost-update oracle)
# ---------------------------------------------------------------------------


class TestTransferStress:
    ACCOUNTS = 8
    THREADS = 4
    TRANSFERS_PER_THREAD = 40
    BALANCE = 100.0

    @pytest.mark.parametrize("kind", [EngineKind.SIASV, EngineKind.SI],
                             ids=["sias-v", "si"])
    def test_money_is_conserved(self, kind):
        db = make_accounts_db(kind)
        db.txn_mgr.locks.wait_timeout_sec = 0.2
        seed = db.begin()
        for i in range(self.ACCOUNTS):
            db.insert(seed, "accounts", (i, f"acct{i}", self.BALANCE))
        db.commit(seed)

        committed = [0] * self.THREADS
        failures: list[BaseException] = []

        def worker(index: int) -> None:
            rng = random.Random(1000 + index)
            try:
                done = 0
                while done < self.TRANSFERS_PER_THREAD:
                    src, dst = rng.sample(range(self.ACCOUNTS), 2)
                    amount = round(rng.uniform(0.5, 5.0), 2)
                    txn = db.begin()
                    try:
                        [(sref, srow)] = db.lookup(txn, "accounts", "pk",
                                                   src)
                        [(dref, drow)] = db.lookup(txn, "accounts", "pk",
                                                   dst)
                        db.update(txn, "accounts", sref,
                                  (src, srow[1], srow[2] - amount))
                        db.update(txn, "accounts", dref,
                                  (dst, drow[1], drow[2] + amount))
                        db.commit(txn)
                        done += 1
                    except SerializationError:
                        db.abort(txn)  # losing updater retries
                committed[index] = done
            except BaseException as exc:  # surfaced after join
                failures.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(self.THREADS)]
        for thread in threads:
            thread.start()
        _join_all(threads, 120.0)
        assert not failures, failures

        assert sum(committed) == self.THREADS * self.TRANSFERS_PER_THREAD
        assert db.txn_mgr.locks.held_count() == 0
        assert db.txn_mgr.active_count() == 0
        check = db.begin()
        rows = [row for _ref, row in db.scan(check, "accounts")]
        db.commit(check)
        assert len(rows) == self.ACCOUNTS
        total = sum(row[2] for row in rows)
        assert total == pytest.approx(self.ACCOUNTS * self.BALANCE,
                                      abs=0.01)
        # every committed transfer is a real commit (plus seed + check)
        assert db.txn_mgr.commits == sum(committed) + 2


# ---------------------------------------------------------------------------
# Threaded TPC-C mix + clause 3.3.2 consistency conditions
# ---------------------------------------------------------------------------


class TestThreadedTpcc:
    SCALE = TpccScale(districts_per_warehouse=3, customers_per_district=6,
                      items=30, stock_per_warehouse=30,
                      initial_orders_per_district=4, max_order_lines=6,
                      min_order_lines=2)
    THREADS = 4
    TXNS_PER_THREAD = 20

    @pytest.mark.parametrize("kind", [EngineKind.SIASV, EngineKind.SI],
                             ids=["sias-v", "si"])
    def test_consistency_survives_threaded_mix(self, kind):
        from repro.db.database import Database
        from tests.conftest import small_system_config

        db = Database.on_flash(kind, small_system_config(pool_pages=256))
        db.txn_mgr.locks.wait_timeout_sec = 0.2
        create_tpcc_tables(db)
        TpccLoader(db, self.SCALE, seed=7).load(warehouses=1)

        failures: list[BaseException] = []

        def worker(index: int) -> None:
            rng = random.Random(42 + index)
            ctx = TpccContext(db=db, scale=self.SCALE, warehouses=1,
                              rng=rng, nurand=NURand(rng))
            try:
                done = 0
                while done < self.TXNS_PER_THREAD:
                    profile = payment if rng.random() < 0.5 else new_order
                    txn = db.begin()
                    try:
                        for _ in profile(ctx, txn):
                            pass
                        db.commit(txn)
                        done += 1
                    except SpecRollback:
                        db.abort(txn)
                        done += 1  # the spec's intentional rollback counts
                    except SerializationError:
                        db.abort(txn)
            except BaseException as exc:
                failures.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(self.THREADS)]
        for thread in threads:
            thread.start()
        _join_all(threads, 300.0)
        assert not failures, failures

        assert db.txn_mgr.locks.held_count() == 0
        assert db.txn_mgr.active_count() == 0
        report = consistency.check(db)
        assert report.consistent, report.violations


# ---------------------------------------------------------------------------
# Multi-worker server over the wire
# ---------------------------------------------------------------------------


class TestMultiWorkerServer:
    def test_transfers_conserve_balance_with_four_workers(self):
        from repro.client import RemoteDatabase
        from repro.server import DatabaseServer, ServerConfig

        db = make_accounts_db(EngineKind.SIASV)
        server = DatabaseServer(db, ServerConfig(
            port=0, executor_workers=4, idle_timeout_sec=30.0))
        host, port = server.start_in_background()
        remote = RemoteDatabase(host, port, pool_size=8)
        accounts, threads_n, per_thread = 6, 4, 15
        try:
            assert server.dispatch.executor_workers == 4
            # multi-worker mode switched the lock table to bounded waits
            assert db.txn_mgr.locks.wait_timeout_sec > 0

            seed = remote.begin()
            for i in range(accounts):
                remote.insert(seed, "accounts", (i, f"a{i}", 50.0))
            remote.commit(seed)

            failures: list[BaseException] = []

            def worker(index: int) -> None:
                rng = random.Random(index)
                try:
                    done = 0
                    while done < per_thread:
                        src, dst = rng.sample(range(accounts), 2)
                        txn = remote.begin()
                        try:
                            [(sref, srow)] = remote.lookup(
                                txn, "accounts", "pk", src)
                            [(dref, drow)] = remote.lookup(
                                txn, "accounts", "pk", dst)
                            remote.update(txn, "accounts", sref,
                                          (src, srow[1], srow[2] - 1.0))
                            remote.update(txn, "accounts", dref,
                                          (dst, drow[1], drow[2] + 1.0))
                            remote.commit(txn)
                            done += 1
                        except SerializationError:
                            remote.abort(txn)
                except BaseException as exc:
                    failures.append(exc)

            workers = [threading.Thread(target=worker, args=(i,))
                       for i in range(threads_n)]
            for w in workers:
                w.start()
            _join_all(workers, 120.0)
            assert not failures, failures

            check = remote.begin()
            total = 0.0
            for i in range(accounts):
                [(_, row)] = remote.lookup(check, "accounts", "pk", i)
                total += row[2]
            remote.commit(check)
            assert total == pytest.approx(accounts * 50.0)
            assert db.txn_mgr.locks.held_count() == 0
            stats = remote.server_stats()
            assert stats["executor_workers"] == 4
            # same invariants asserted over the wire (what CI's smoke uses)
            assert stats["engine"]["locks"]["held"] == 0
            assert stats["engine"]["txns"]["active"] == 0
        finally:
            remote.close()
            server.stop_in_background()


# ---------------------------------------------------------------------------
# Eviction-vs-mutation races (review regressions)
# ---------------------------------------------------------------------------


class TestHeapWritePins:
    """Heap write paths must pin the frame across mutate -> mark_dirty.

    Without the pin, a concurrent miss in another worker can evict the
    clean frame between the lookup and the dirtying; the mutation then
    lands on an orphaned page object (silently lost if the page is
    re-faulted, a spurious ``PinError`` if not).  The hostile schedule is
    reproduced deterministically by injecting eviction pressure *inside*
    the mutation itself.
    """

    def _make_heap(self, tablespace, pool_pages: int = 4):
        from repro.baseline.heap import HeapStore
        from repro.buffer.manager import BufferManager
        from repro.common.config import EngineConfig

        buffer = BufferManager(tablespace, pool_pages=pool_pages)
        file_id = tablespace.create_file("heap.test")
        return buffer, HeapStore(buffer, file_id, EngineConfig())

    def _fill_filler_file(self, tablespace, buffer, count: int = 8) -> int:
        from repro.pages.layout import HeapTuple, XMAX_INFINITY
        from repro.pages.slotted import SlottedHeapPage

        filler = tablespace.create_file("filler.test")
        for i in range(count):
            page = SlottedHeapPage(i)
            page.insert(HeapTuple(i, XMAX_INFINITY, False, b"f" * 16))
            buffer.put_dirty(filler, i, page)
        buffer.flush_all()
        return filler

    def test_set_xmax_survives_mid_mutation_eviction_sweep(
            self, tablespace, monkeypatch):
        from repro.pages.layout import HeapTuple, XMAX_INFINITY
        from repro.pages.slotted import SlottedHeapPage

        buffer, heap = self._make_heap(tablespace)
        tid = heap.insert_tuple(HeapTuple(1, XMAX_INFINITY, False, b"x" * 16))
        filler = self._fill_filler_file(tablespace, buffer)
        buffer.flush_all()  # the heap page is now a clean (evictable) frame

        real_set_xmax = SlottedHeapPage.set_xmax
        fired = []

        def hostile_set_xmax(self, slot, xmax):
            if not fired:
                fired.append(True)
                # a "concurrent" worker faults enough pages to sweep the
                # whole pool several times over before the stamp lands
                for _ in range(3):
                    for n in range(8):
                        buffer.get_page(filler, n)
            real_set_xmax(self, slot, xmax)

        monkeypatch.setattr(SlottedHeapPage, "set_xmax", hostile_set_xmax)
        heap.set_xmax(tid, 99)
        monkeypatch.undo()

        assert fired
        assert heap.read(tid).xmax == 99
        # and the stamp reaches the device, not an orphaned page object
        buffer.flush_all()
        buffer.invalidate_all()
        assert heap.read(tid).xmax == 99

    def test_insert_survives_mid_mutation_eviction_sweep(
            self, tablespace, monkeypatch):
        from repro.pages.layout import HeapTuple, XMAX_INFINITY
        from repro.pages.slotted import SlottedHeapPage

        buffer, heap = self._make_heap(tablespace)
        first = heap.insert_tuple(HeapTuple(1, XMAX_INFINITY, False,
                                            b"x" * 16))
        filler = self._fill_filler_file(tablespace, buffer)
        buffer.flush_all()

        real_insert = SlottedHeapPage.insert
        fired = []

        def hostile_insert(self, tuple_):
            if not fired:
                fired.append(True)
                for _ in range(3):
                    for n in range(8):
                        buffer.get_page(filler, n)
            return real_insert(self, tuple_)

        monkeypatch.setattr(SlottedHeapPage, "insert", hostile_insert)
        second = heap.insert_tuple(HeapTuple(2, XMAX_INFINITY, False,
                                             b"y" * 16))
        monkeypatch.undo()

        assert fired
        buffer.flush_all()
        buffer.invalidate_all()
        assert heap.read(first).xmin == 1
        assert heap.read(second).xmin == 2


class TestWalLeaderFailure:
    """A failed leader force must still wake parked followers."""

    class _FailOnceDevice:
        def __init__(self, release: threading.Event) -> None:
            self.pages: dict[int, bytes] = {}
            self.release = release
            self.write_calls = 0

        def write_pages(self, writes) -> None:
            self.write_calls += 1
            if self.write_calls == 1:
                assert self.release.wait(10.0)
                raise OSError("injected device failure")
            for lba, data in writes:
                self.pages[lba] = data

        def trim(self, lba: int) -> None:
            self.pages.pop(lba, None)

    def test_follower_takes_over_after_leader_write_fails(self):
        release = threading.Event()
        device = self._FailOnceDevice(release)
        wal = WriteAheadLog(device)
        leader_errors: list[BaseException] = []
        follower_done = threading.Event()

        def leader() -> None:
            try:
                wal.log_commit(1)
            except OSError as exc:
                leader_errors.append(exc)

        def follower() -> None:
            wal.log_commit(2)
            follower_done.set()

        leader_thread = threading.Thread(target=leader, daemon=True)
        leader_thread.start()
        _wait_until(lambda: device.write_calls == 1)  # leader mid-write
        follower_thread = threading.Thread(target=follower, daemon=True)
        follower_thread.start()
        _wait_until(lambda: wal._waiters == 1)  # follower parked
        release.set()  # leader's device write now raises

        # pre-fix, the follower hangs here forever (never notified)
        _join_all([leader_thread, follower_thread], 10.0)
        assert leader_errors and isinstance(leader_errors[0], OSError)
        assert follower_done.is_set()
        # the follower became the new leader and its force covered both
        # buffered COMMIT records
        assert device.write_calls == 2
        assert {r.txid for r in wal.durable_records()} == {1, 2}


class TestGcLockOrder:
    def test_horizon_is_read_before_stripes_are_held(self, sias_engine,
                                                     monkeypatch):
        """GC must not acquire the txn mutex while holding stripe latches."""
        from contextlib import contextmanager

        from repro.common.latch import LatchStripes
        from repro.core.gc import GarbageCollector
        from repro.txn.manager import TransactionManager

        engine = sias_engine
        order: list[str] = []
        real_holding_all = LatchStripes.holding_all

        @contextmanager
        def tracking_holding_all(self):
            order.append("latch")
            with real_holding_all(self):
                yield
            order.append("unlatch")

        real_horizon = TransactionManager.horizon_txid

        def tracking_horizon(self) -> int:
            order.append("horizon")
            return real_horizon(self)

        monkeypatch.setattr(LatchStripes, "holding_all", tracking_holding_all)
        monkeypatch.setattr(TransactionManager, "horizon_txid",
                            tracking_horizon)
        GarbageCollector(engine).collect()
        assert "horizon" in order and "latch" in order
        assert order.index("horizon") < order.index("latch")
