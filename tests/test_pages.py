"""Unit tests for page formats: codecs, slotted heap, append, VIDmap."""

from __future__ import annotations

import pytest

from repro.common import units
from repro.common.config import PageLayout
from repro.common.errors import (
    PageCorruptError,
    PageFullError,
    SlotError,
)
from repro.pages.append_page import VECTOR_META_SIZE, AppendPage
from repro.pages.base import PAGE_HEADER_SIZE, Page, PageKind
from repro.pages.layout import (
    HEAP_HEADER_SIZE,
    NULL_TID_BYTES,
    TID_SIZE,
    VERSION_HEADER_SIZE,
    XMAX_INFINITY,
    HeapTuple,
    Tid,
    VersionRecord,
)
from repro.pages.slotted import SlottedHeapPage
from repro.pages.vidmap_page import VidMapPage


class TestTid:
    def test_roundtrip(self):
        tid = Tid(123456, 789)
        assert Tid.unpack(tid.pack()) == tid

    def test_packed_size_matches_postgres(self):
        assert TID_SIZE == 6
        assert len(Tid(0, 0).pack()) == 6

    def test_null_pattern(self):
        assert Tid.unpack(NULL_TID_BYTES) is None

    def test_ordering(self):
        assert Tid(1, 5) < Tid(2, 0)
        assert Tid(1, 5) < Tid(1, 6)


class TestVersionRecord:
    def test_roundtrip_with_pred(self):
        record = VersionRecord(create_ts=42, vid=7, pred=Tid(3, 1),
                               tombstone=False, payload=b"data!")
        back, offset = VersionRecord.unpack(record.pack())
        assert back == record
        assert offset == record.size

    def test_roundtrip_without_pred(self):
        record = VersionRecord(5, 0, None, True, b"")
        back, _ = VersionRecord.unpack(record.pack())
        assert back.pred is None
        assert back.tombstone

    def test_no_invalidation_field(self):
        """The on-tuple info has no xmax — invalidation is implicit."""
        record = VersionRecord(1, 1, None, False, b"x")
        assert not hasattr(record, "xmax")
        assert record.size == VERSION_HEADER_SIZE + 1

    def test_truncated_header_raises(self):
        with pytest.raises(PageCorruptError):
            VersionRecord.unpack(b"\x00" * (VERSION_HEADER_SIZE - 1))

    def test_truncated_payload_raises(self):
        record = VersionRecord(1, 1, None, False, b"abcdef")
        with pytest.raises(PageCorruptError):
            VersionRecord.unpack(record.pack()[:-2])


class TestHeapTuple:
    def test_roundtrip(self):
        t = HeapTuple(xmin=10, xmax=20, tombstone=False, payload=b"row")
        back, _ = HeapTuple.unpack(t.pack())
        assert back == t

    def test_live_tuple_has_infinite_xmax(self):
        t = HeapTuple(1, XMAX_INFINITY, False, b"")
        assert not t.invalidated

    def test_with_xmax_is_the_in_place_update(self):
        t = HeapTuple(1, XMAX_INFINITY, False, b"abc")
        stamped = t.with_xmax(9)
        assert stamped.invalidated and stamped.xmax == 9
        assert stamped.payload == t.payload and stamped.xmin == t.xmin


class TestSlottedHeapPage:
    def _tuple(self, n=0, size=50):
        return HeapTuple(n, XMAX_INFINITY, False, bytes(size))

    def test_insert_read(self):
        page = SlottedHeapPage(0)
        slot = page.insert(self._tuple(1))
        assert page.read(slot).xmin == 1

    def test_slots_sequential(self):
        page = SlottedHeapPage(0)
        assert [page.insert(self._tuple(i)) for i in range(5)] == \
            list(range(5))

    def test_set_xmax_in_place(self):
        page = SlottedHeapPage(0)
        slot = page.insert(self._tuple())
        page.set_xmax(slot, 99)
        assert page.read(slot).xmax == 99

    def test_page_full(self):
        page = SlottedHeapPage(0)
        big = HeapTuple(1, XMAX_INFINITY, False, bytes(4000))
        page.insert(big)
        page.insert(big)
        with pytest.raises(PageFullError):
            page.insert(big)

    def test_free_bytes_decrease(self):
        page = SlottedHeapPage(0)
        before = page.free_bytes()
        page.insert(self._tuple(size=100))
        assert page.free_bytes() < before - 100

    def test_kill_frees_space(self):
        page = SlottedHeapPage(0)
        slot = page.insert(self._tuple(size=500))
        before = page.free_bytes()
        page.kill(slot)
        assert page.free_bytes() > before
        with pytest.raises(SlotError):
            page.read(slot)

    def test_kill_twice_raises(self):
        page = SlottedHeapPage(0)
        slot = page.insert(self._tuple())
        page.kill(slot)
        with pytest.raises(SlotError):
            page.kill(slot)

    def test_killed_slot_not_reused(self):
        page = SlottedHeapPage(0)
        slot = page.insert(self._tuple(1))
        page.kill(slot)
        new_slot = page.insert(self._tuple(2))
        assert new_slot != slot  # TIDs stay stable

    def test_out_of_range_slot(self):
        page = SlottedHeapPage(0)
        with pytest.raises(SlotError):
            page.read(3)

    def test_serialise_roundtrip_with_dead_slots(self):
        page = SlottedHeapPage(7)
        s0 = page.insert(self._tuple(1, 30))
        s1 = page.insert(self._tuple(2, 40))
        s2 = page.insert(self._tuple(3, 50))
        page.kill(s1)
        page.set_xmax(s0, 77)
        back = Page.from_bytes(page.to_bytes())
        assert isinstance(back, SlottedHeapPage)
        assert back.page_no == 7
        assert back.read(s0).xmax == 77
        assert back.read(s2).xmin == 3
        with pytest.raises(SlotError):
            back.read(s1)
        assert back.live_slots() == [s0, s2]

    def test_tuples_iterates_live_only(self):
        page = SlottedHeapPage(0)
        s0 = page.insert(self._tuple(1))
        s1 = page.insert(self._tuple(2))
        page.kill(s0)
        assert [slot for slot, _ in page.tuples()] == [s1]


class TestAppendPage:
    def _record(self, ts=1, vid=0, size=40, pred=None, tomb=False):
        return VersionRecord(ts, vid, pred, tomb, bytes(size))

    @pytest.mark.parametrize("layout", [PageLayout.NSM, PageLayout.VECTOR])
    def test_roundtrip(self, layout):
        page = AppendPage(9, layout)
        page.append(self._record(1, 10, 30))
        page.append(self._record(2, 10, 60, pred=Tid(9, 0)))
        page.append(self._record(3, 11, 0, tomb=True))
        back = Page.from_bytes(page.to_bytes())
        assert isinstance(back, AppendPage)
        assert back.layout is layout
        assert back.record_count == 3
        assert back.read(1).pred == Tid(9, 0)
        assert back.read(2).tombstone
        assert back.read(0).payload == bytes(30)

    @pytest.mark.parametrize("layout", [PageLayout.NSM, PageLayout.VECTOR])
    def test_append_until_full(self, layout):
        page = AppendPage(0, layout)
        record = self._record(size=100)
        count = 0
        while page.fits(record):
            page.append(record)
            count += 1
        assert count > 50
        with pytest.raises(PageFullError):
            page.append(record)

    def test_vector_meta_scan_cheaper(self):
        nsm = AppendPage(0, PageLayout.NSM)
        vec = AppendPage(0, PageLayout.VECTOR)
        for i in range(40):
            nsm.append(self._record(i, i, 150))
            vec.append(self._record(i, i, 150))
        assert vec.meta_scan_bytes() < nsm.meta_scan_bytes() / 3

    def test_meta_matches_full_record(self):
        page = AppendPage(0, PageLayout.VECTOR)
        page.append(self._record(5, 3, 20, pred=Tid(1, 2)))
        ts, vid, pred, tomb = page.read_meta(0)
        record = page.read(0)
        assert (ts, vid, pred, tomb) == (record.create_ts, record.vid,
                                         record.pred, record.tombstone)

    def test_fill_degree_monotone(self):
        page = AppendPage(0, PageLayout.VECTOR)
        fills = []
        for i in range(10):
            page.append(self._record(size=200))
            fills.append(page.fill_degree())
        assert fills == sorted(fills)
        assert 0 < fills[0] < fills[-1] <= 1.0

    def test_kind_tracks_layout(self):
        assert AppendPage(0, PageLayout.NSM).kind is PageKind.APPEND_NSM
        assert AppendPage(0, PageLayout.VECTOR).kind is PageKind.APPEND_VECTOR

    def test_empty_page_roundtrip(self):
        page = AppendPage(4, PageLayout.VECTOR)
        back = Page.from_bytes(page.to_bytes())
        assert back.record_count == 0

    def test_slot_bounds(self):
        page = AppendPage(0, PageLayout.NSM)
        page.append(self._record())
        with pytest.raises(SlotError):
            page.read(1)

    def test_vector_records_cost_offset_entry(self):
        page = AppendPage(0, PageLayout.VECTOR)
        before = page.free_bytes()
        page.append(self._record(size=10))
        assert before - page.free_bytes() == VECTOR_META_SIZE + 10


class TestVidMapPage:
    def test_default_capacity_is_1024(self):
        page = VidMapPage(0)
        assert page.slots_per_bucket == 1024

    def test_many_more_tids_would_fit_but_we_cap_at_1024(self):
        """The prototype caps at 1024 TIDs although ~1360 fit the page."""
        capacity = units.DB_PAGE_SIZE - PAGE_HEADER_SIZE
        assert capacity // TID_SIZE > 1300
        with pytest.raises(SlotError):
            VidMapPage(0, slots_per_bucket=1400)

    def test_get_set(self):
        page = VidMapPage(0)
        assert page.get(0) is None
        page.set(0, Tid(5, 6))
        assert page.get(0) == Tid(5, 6)
        page.set(0, None)
        assert page.get(0) is None

    def test_occupied_counts(self):
        page = VidMapPage(0)
        page.set(1, Tid(0, 0))
        page.set(1000, Tid(1, 1))
        assert page.occupied() == 2

    def test_slot_bounds(self):
        page = VidMapPage(0)
        with pytest.raises(SlotError):
            page.get(1024)
        with pytest.raises(SlotError):
            page.set(-1, None)

    def test_roundtrip(self):
        page = VidMapPage(3)
        page.set(0, Tid(1, 2))
        page.set(512, Tid(3, 4))
        back = Page.from_bytes(page.to_bytes())
        assert isinstance(back, VidMapPage)
        assert back.get(0) == Tid(1, 2)
        assert back.get(512) == Tid(3, 4)
        assert back.get(511) is None


class TestPageBase:
    def test_checksum_detects_corruption(self):
        page = SlottedHeapPage(0)
        page.insert(HeapTuple(1, XMAX_INFINITY, False, b"payload"))
        raw = bytearray(page.to_bytes())
        raw[PAGE_HEADER_SIZE + 4] ^= 0xFF  # flip a bit inside the payload
        with pytest.raises(PageCorruptError):
            Page.from_bytes(bytes(raw))

    def test_bad_magic_rejected(self):
        with pytest.raises(PageCorruptError):
            Page.from_bytes(b"\x00" * units.DB_PAGE_SIZE)

    def test_serialised_size_is_exact(self):
        for page in (SlottedHeapPage(0), AppendPage(0, PageLayout.VECTOR),
                     VidMapPage(0)):
            assert len(page.to_bytes()) == units.DB_PAGE_SIZE

    def test_peek_kind(self):
        page = VidMapPage(0)
        assert Page.peek_kind(page.to_bytes()) is PageKind.VIDMAP

    def test_dispatch_by_kind(self):
        pages = [SlottedHeapPage(1), AppendPage(2, PageLayout.NSM),
                 AppendPage(3, PageLayout.VECTOR), VidMapPage(4)]
        kinds = [PageKind.HEAP, PageKind.APPEND_NSM, PageKind.APPEND_VECTOR,
                 PageKind.VIDMAP]
        for page, kind in zip(pages, kinds):
            back = Page.from_bytes(page.to_bytes())
            assert back.kind is kind
            assert back.page_no == page.page_no

    def test_heap_header_sizes(self):
        assert HEAP_HEADER_SIZE == 19
        assert VERSION_HEADER_SIZE == 25
