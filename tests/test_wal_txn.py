"""Unit tests for the WAL and the transaction layer."""

from __future__ import annotations

import pytest

from repro.common.errors import SerializationError, TxnStateError
from repro.storage.flash import FlashDevice
from repro.txn.commitlog import CommitLog, TxnState
from repro.txn.ids import BOOTSTRAP_TXID, TxidAllocator
from repro.txn.locks import LockTable
from repro.txn.manager import TransactionManager, TxnPhase
from repro.txn.snapshot import Snapshot
from repro.wal.log import WriteAheadLog
from repro.wal.records import WalRecord, WalRecordType
from tests.conftest import SMALL_FLASH


@pytest.fixture
def wal(clock):
    device = FlashDevice(clock, SMALL_FLASH, name="wal")
    return WriteAheadLog(device)


class TestWalRecords:
    def test_roundtrip(self):
        record = WalRecord(WalRecordType.UPDATE, txid=9, item_id=44,
                          payload=b"new-row")
        back, offset = WalRecord.unpack(record.pack())
        assert back == record
        assert offset == record.size

    def test_multiple_records_stream(self):
        records = [WalRecord(WalRecordType.INSERT, i, i * 2, b"x" * i)
                   for i in range(5)]
        blob = b"".join(r.pack() for r in records)
        offset = 0
        decoded = []
        while offset < len(blob):
            record, offset = WalRecord.unpack(blob, offset)
            decoded.append(record)
        assert decoded == records


class TestWriteAheadLog:
    def test_append_returns_monotonic_lsns(self, wal):
        lsns = [wal.append(WalRecord(WalRecordType.INSERT, 1, i))
                for i in range(5)]
        assert lsns == sorted(lsns)
        assert len(set(lsns)) == 5

    def test_force_writes_sequentially(self, wal):
        for i in range(600):  # several pages worth
            wal.append(WalRecord(WalRecordType.INSERT, 1, i, b"p" * 20))
        pages = wal.force()
        assert pages >= 2
        assert wal.device.stats.writes == pages

    def test_commit_forces(self, wal):
        wal.append(WalRecord(WalRecordType.INSERT, 1, 0))
        wal.log_commit(1)
        assert wal.device.stats.writes >= 1
        assert 1 in wal.committed_txids()

    def test_abort_does_not_force(self, wal):
        wal.append(WalRecord(WalRecordType.INSERT, 1, 0))
        wal.log_abort(1)
        assert wal.device.stats.writes == 0
        assert 1 not in wal.committed_txids()

    def test_empty_force_is_noop(self, wal):
        assert wal.force() == 0

    def test_replay_preserves_order(self, wal):
        wal.append(WalRecord(WalRecordType.INSERT, 1, 10, b"a"))
        wal.append(WalRecord(WalRecordType.UPDATE, 1, 10, b"b"))
        wal.log_commit(1)
        history = wal.replay()
        assert [r.type for r in history] == [
            WalRecordType.INSERT, WalRecordType.UPDATE, WalRecordType.COMMIT]


class TestTxidAllocator:
    def test_monotone(self):
        alloc = TxidAllocator()
        ids = [alloc.allocate() for _ in range(10)]
        assert ids == sorted(ids) and len(set(ids)) == 10
        assert alloc.last_allocated == ids[-1]

    def test_starts_positive(self):
        assert TxidAllocator().allocate() > BOOTSTRAP_TXID
        with pytest.raises(ValueError):
            TxidAllocator(start=0)


class TestCommitLog:
    def test_bootstrap_always_committed(self):
        assert CommitLog().is_committed(BOOTSTRAP_TXID)

    def test_lifecycle(self):
        clog = CommitLog()
        clog.register(5)
        assert clog.state_of(5) is TxnState.IN_PROGRESS
        clog.set_committed(5)
        assert clog.is_committed(5)

    def test_double_register_raises(self):
        clog = CommitLog()
        clog.register(5)
        with pytest.raises(TxnStateError):
            clog.register(5)

    def test_cannot_commit_twice(self):
        clog = CommitLog()
        clog.register(5)
        clog.set_committed(5)
        with pytest.raises(TxnStateError):
            clog.set_aborted(5)

    def test_unknown_txid(self):
        with pytest.raises(TxnStateError):
            CommitLog().state_of(99)


class TestSnapshotVisibility:
    def test_own_writes_visible(self):
        clog = CommitLog()
        clog.register(5)
        snap = Snapshot(txid=5)
        assert snap.sees_ts(5, clog)

    def test_future_txn_invisible(self):
        clog = CommitLog()
        clog.register(5)
        clog.register(6)
        clog.set_committed(6)
        assert not Snapshot(txid=5).sees_ts(6, clog)

    def test_concurrent_invisible_even_after_commit(self):
        clog = CommitLog()
        clog.register(3)
        snap = Snapshot(txid=5, concurrent=frozenset({3}))
        clog.set_committed(3)
        assert not snap.sees_ts(3, clog)

    def test_earlier_committed_visible(self):
        clog = CommitLog()
        clog.register(3)
        clog.set_committed(3)
        assert Snapshot(txid=5).sees_ts(3, clog)

    def test_aborted_invisible(self):
        clog = CommitLog()
        clog.register(3)
        clog.set_aborted(3)
        assert not Snapshot(txid=5).sees_ts(3, clog)

    def test_in_progress_invisible(self):
        clog = CommitLog()
        clog.register(3)
        assert not Snapshot(txid=5).sees_ts(3, clog)

    def test_overlaps(self):
        a = Snapshot(txid=3)
        b = Snapshot(txid=5, concurrent=frozenset({3}))
        assert b.overlaps(a) and a.overlaps(a)
        assert not Snapshot(txid=9).overlaps(a)


class TestLockTable:
    def test_acquire_release(self):
        locks = LockTable()
        locks.acquire("x", 1)
        assert locks.holder_of("x") == 1
        assert locks.release_all(1) == 1
        assert locks.holder_of("x") is None

    def test_reentrant(self):
        locks = LockTable()
        locks.acquire("x", 1)
        locks.acquire("x", 1)
        assert locks.stats.reentrant == 1

    def test_conflict_raises(self):
        locks = LockTable()
        locks.acquire("x", 1)
        with pytest.raises(SerializationError):
            locks.acquire("x", 2)
        assert locks.stats.conflicts == 1

    def test_release_frees_for_others(self):
        locks = LockTable()
        locks.acquire("x", 1)
        locks.release_all(1)
        locks.acquire("x", 2)  # no raise

    def test_held_count(self):
        locks = LockTable()
        locks.acquire("a", 1)
        locks.acquire("b", 1)
        locks.acquire("c", 2)
        assert locks.held_count() == 3
        locks.release_all(1)
        assert locks.held_count() == 1


class TestTransactionManager:
    def test_begin_commit(self):
        mgr = TransactionManager()
        txn = mgr.begin()
        assert txn.phase is TxnPhase.ACTIVE
        mgr.commit(txn)
        assert txn.phase is TxnPhase.COMMITTED
        assert mgr.commits == 1

    def test_snapshot_captures_concurrent(self):
        mgr = TransactionManager()
        t1 = mgr.begin()
        t2 = mgr.begin()
        assert t2.snapshot.concurrent == {t1.txid}
        assert t1.snapshot.concurrent == frozenset()
        mgr.commit(t1)
        mgr.commit(t2)

    def test_abort_runs_undo_in_reverse(self):
        mgr = TransactionManager()
        txn = mgr.begin()
        order = []
        txn.register_undo(lambda: order.append("first"))
        txn.register_undo(lambda: order.append("second"))
        mgr.abort(txn)
        assert order == ["second", "first"]

    def test_commit_skips_undo(self):
        mgr = TransactionManager()
        txn = mgr.begin()
        ran = []
        txn.register_undo(lambda: ran.append(1))
        mgr.commit(txn)
        assert ran == []

    def test_double_commit_raises(self):
        mgr = TransactionManager()
        txn = mgr.begin()
        mgr.commit(txn)
        with pytest.raises(TxnStateError):
            mgr.commit(txn)

    def test_finish_releases_locks(self):
        mgr = TransactionManager()
        txn = mgr.begin()
        mgr.locks.acquire("k", txn.txid)
        mgr.abort(txn)
        assert mgr.locks.holder_of("k") is None

    def test_horizon_is_min_active(self):
        mgr = TransactionManager()
        t1 = mgr.begin()
        t2 = mgr.begin()
        assert mgr.horizon_txid() == t1.txid
        mgr.commit(t1)
        # t2 saw t1 as concurrent: t1's effects are NOT visible to t2, so
        # the horizon must stay below t1 while t2 lives (RecentGlobalXmin)
        assert mgr.horizon_txid() == t1.txid
        mgr.commit(t2)
        assert mgr.horizon_txid() == t2.txid + 1

    def test_horizon_respects_concurrent_sets(self):
        mgr = TransactionManager()
        t1 = mgr.begin()
        t2 = mgr.begin()   # concurrent = {t1}
        mgr.commit(t1)
        t3 = mgr.begin()   # concurrent = {t2}
        mgr.commit(t2)
        # t3 saw t2 running; horizon is t2, not t3
        assert mgr.horizon_txid() == t2.txid
        mgr.commit(t3)

    def test_wal_commit_record(self, clock):
        device = FlashDevice(clock, SMALL_FLASH, name="wal")
        mgr = TransactionManager(wal=WriteAheadLog(device))
        txn = mgr.begin()
        txn.writes += 1  # a transaction that wrote something
        mgr.commit(txn)
        assert txn.txid in mgr.wal.committed_txids()

    def test_read_only_commit_leaves_no_wal_trace(self, clock):
        device = FlashDevice(clock, SMALL_FLASH, name="wal")
        mgr = TransactionManager(wal=WriteAheadLog(device))
        txn = mgr.begin()
        mgr.commit(txn)
        assert mgr.wal.records_written == 0
        assert mgr.clog.is_committed(txn.txid)

    def test_active_tracking(self):
        mgr = TransactionManager()
        t1 = mgr.begin()
        assert mgr.active_txids == {t1.txid}
        assert mgr.active_count() == 1
        mgr.abort(t1)
        assert mgr.active_count() == 0

    def test_register_undo_after_finish_raises(self):
        mgr = TransactionManager()
        txn = mgr.begin()
        mgr.commit(txn)
        with pytest.raises(TxnStateError):
            txn.register_undo(lambda: None)


class TestSnapshotAtTimestamp:
    """begin(at_ts=...): pinned snapshots and the closed-ts watermark."""

    def test_allocator_ratchet_is_forward_only(self):
        alloc = TxidAllocator()
        first = alloc.allocate()
        alloc.advance_to(first + 10)
        assert alloc.allocate() == first + 11
        alloc.advance_to(first)  # already past: no-op, never backwards
        assert alloc.allocate() == first + 12

    def test_closed_ts_idle_is_last_allocated(self):
        mgr = TransactionManager()
        txn = mgr.begin()
        mgr.commit(txn)
        assert mgr.closed_ts() == txn.txid

    def test_closed_ts_held_down_by_oldest_active(self):
        mgr = TransactionManager()
        t1 = mgr.begin()
        t2 = mgr.begin()
        assert mgr.closed_ts() == t1.txid - 1
        mgr.commit(t1)
        # t2 still active: the watermark moves only past settled prefixes
        assert mgr.closed_ts() == t2.txid - 1
        mgr.commit(t2)
        assert mgr.closed_ts() == t2.txid

    def test_pinned_snapshot_sees_closed_prefix_only(self):
        mgr = TransactionManager()
        writer = mgr.begin()
        mgr.commit(writer)
        ts = mgr.closed_ts()
        pinned = mgr.begin(at_ts=ts)
        later = mgr.begin()
        mgr.commit(later)
        # frozen verdicts: the committed writer at/below ts is visible,
        # the commit that happened after pinning is not
        assert pinned.snapshot.read_ts == ts
        assert pinned.snapshot.concurrent == frozenset()
        assert pinned.snapshot.sees_ts(writer.txid, mgr.clog)
        assert not pinned.snapshot.sees_ts(later.txid, mgr.clog)
        mgr.commit(pinned)
        assert mgr.begin_at == 1

    def test_at_ts_ratchets_txid_space(self):
        mgr = TransactionManager()
        txn = mgr.begin(at_ts=mgr.closed_ts() + 50)
        assert txn.txid > txn.snapshot.read_ts
        mgr.commit(txn)

    def test_at_ts_above_closed_rejected_while_txn_active(self):
        mgr = TransactionManager()
        holder = mgr.begin()
        with pytest.raises(TxnStateError):
            # holder could still commit at/below this timestamp
            mgr.begin(at_ts=holder.txid)
        mgr.commit(holder)
        pinned = mgr.begin(at_ts=holder.txid)  # now closed: fine
        mgr.commit(pinned)

    def test_negative_at_ts_rejected(self):
        with pytest.raises(TxnStateError):
            TransactionManager().begin(at_ts=-1)

    def test_at_ts_and_serializable_exclusive(self):
        mgr = TransactionManager()
        with pytest.raises(TxnStateError):
            mgr.begin(serializable=True, at_ts=0)

    def test_pinned_txn_holds_horizon_at_read_ts(self):
        mgr = TransactionManager()
        writer = mgr.begin()
        mgr.commit(writer)
        ts = mgr.closed_ts()
        later = mgr.begin()
        mgr.commit(later)
        pinned = mgr.begin(at_ts=ts)
        # versions superseded above ts must survive for the pinned reader
        assert mgr.horizon_txid() == ts + 1
        mgr.commit(pinned)

    def test_manager_advance_to_returns_closed_ts(self):
        mgr = TransactionManager()
        txn = mgr.begin()
        mgr.commit(txn)
        closed = mgr.advance_to(txn.txid + 20)
        assert closed == txn.txid + 20 == mgr.closed_ts()
