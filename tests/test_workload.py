"""Workload layer tests: schema, loader, transactions, driver, metrics.

Includes the TPC-C consistency conditions the spec defines (clause 3.3.2):
after any run, ``W_YTD = Σ D_YTD`` per warehouse, ``D_NEXT_O_ID`` ordering,
and order/order-line counts must agree.
"""

from __future__ import annotations

import pytest

from repro.common import units
from repro.db.database import EngineKind
from repro.workload import tpcc_schema as ts
from repro.workload.driver import DriverConfig, TpccDriver
from repro.workload.metrics import Metrics, TxnOutcome, percentile
from repro.workload.mixes import (
    STANDARD_MIX,
    UPDATE_HEAVY_MIX,
    TxnType,
    validate_mix,
)
from repro.workload.tpcc_data import TpccLoader, last_name
from repro.workload.tpcc_schema import TpccScale, create_tpcc_tables
from tests.conftest import small_system_config

from repro.db.database import Database

TINY_SCALE = TpccScale(districts_per_warehouse=3, customers_per_district=6,
                       items=20, stock_per_warehouse=20,
                       initial_orders_per_district=4,
                       min_order_lines=2, max_order_lines=4)


def _tiny_db(kind=EngineKind.SIASV, warehouses=2, seed=42):
    db = Database.on_flash(kind, small_system_config(pool_pages=256))
    create_tpcc_tables(db)
    TpccLoader(db, TINY_SCALE, seed=seed).load(warehouses)
    return db


def _count(db, txn, table):
    return sum(1 for _ in db.scan(txn, table))


class TestScaleAndSchema:
    def test_default_scale_valid(self):
        TpccScale().validate()

    def test_stock_must_match_items(self):
        with pytest.raises(ValueError):
            TpccScale(items=10, stock_per_warehouse=20).validate()

    def test_all_nine_tables(self):
        assert len(ts.ALL_TABLES) == 9
        assert set(ts.SCHEMAS) == set(ts.INDEXES) == set(ts.ALL_TABLES)

    def test_last_name_syllables(self):
        assert last_name(0) == "BARBARBAR"
        assert last_name(371) == "PRICALLYOUGHT"
        assert last_name(999) == "EINGEINGEING"


class TestLoader:
    def test_row_counts(self):
        db = _tiny_db(warehouses=2)
        txn = db.begin()
        s = TINY_SCALE
        assert _count(db, txn, ts.WAREHOUSE) == 2
        assert _count(db, txn, ts.DISTRICT) == 2 * 3
        assert _count(db, txn, ts.CUSTOMER) == 2 * 3 * 6
        assert _count(db, txn, ts.ITEM) == 20
        assert _count(db, txn, ts.STOCK) == 2 * 20
        assert _count(db, txn, ts.ORDERS) == 2 * 3 * 4
        undelivered_per_district = 4 - 4 * 7 // 10
        assert _count(db, txn, ts.NEW_ORDER) == \
            2 * 3 * undelivered_per_district
        db.commit(txn)

    def test_deterministic_across_engines(self):
        a = _tiny_db(EngineKind.SIASV)
        b = _tiny_db(EngineKind.SI)
        ta, tb = a.begin(), b.begin()
        rows_a = sorted(row for _r, row in a.scan(ta, ts.CUSTOMER))
        rows_b = sorted(row for _r, row in b.scan(tb, ts.CUSTOMER))
        assert rows_a == rows_b

    def test_different_seed_different_data(self):
        a = _tiny_db(seed=1)
        b = _tiny_db(seed=2)
        ta, tb = a.begin(), b.begin()
        rows_a = sorted(row for _r, row in a.scan(ta, ts.CUSTOMER))
        rows_b = sorted(row for _r, row in b.scan(tb, ts.CUSTOMER))
        assert rows_a != rows_b

    def test_district_next_o_id_consistent(self):
        db = _tiny_db()
        txn = db.begin()
        for _ref, district in db.scan(txn, ts.DISTRICT):
            assert district[9] == TINY_SCALE.initial_orders_per_district + 1
        db.commit(txn)

    def test_needs_at_least_one_warehouse(self):
        db = Database.on_flash(EngineKind.SIASV, small_system_config())
        create_tpcc_tables(db)
        with pytest.raises(ValueError):
            TpccLoader(db, TINY_SCALE).load(0)


class TestMixes:
    def test_standard_mix_sums_to_one(self):
        validate_mix(STANDARD_MIX)
        validate_mix(UPDATE_HEAVY_MIX)

    def test_new_order_is_45_percent(self):
        assert STANDARD_MIX[TxnType.NEW_ORDER] == pytest.approx(0.45)

    def test_bad_mixes_rejected(self):
        with pytest.raises(ValueError):
            validate_mix({})
        with pytest.raises(ValueError):
            validate_mix({TxnType.PAYMENT: 0.5})


class TestMetrics:
    def _metrics(self):
        m = Metrics()
        m.start_usec = 0
        m.end_usec = units.MINUTE
        for i in range(10):
            m.record(TxnOutcome(TxnType.NEW_ORDER, committed=True,
                                response_usec=(i + 1) * 1000))
        m.record(TxnOutcome(TxnType.PAYMENT, committed=False,
                            response_usec=99, serialization_abort=True))
        return m

    def test_notpm(self):
        assert self._metrics().notpm() == pytest.approx(10.0)

    def test_commit_abort_counts(self):
        m = self._metrics()
        assert m.commits() == 10
        assert m.aborts() == 1
        assert m.serialization_aborts() == 1
        assert m.commits(TxnType.PAYMENT) == 0

    def test_percentile(self):
        assert percentile([], 0.5) == 0
        assert percentile([5], 0.99) == 5
        assert percentile(list(range(1, 101)), 0.90) == 90
        with pytest.raises(ValueError):
            percentile([1], 1.5)

    def test_response_percentile(self):
        m = self._metrics()
        assert m.response_sec(0.90) == pytest.approx(0.009)

    def test_summary(self):
        s = self._metrics().summary()
        assert s.notpm == pytest.approx(10.0)
        assert s.commits == 10 and s.aborts == 1
        assert s.span_sec == pytest.approx(60.0)


class TestTransactions:
    @pytest.mark.parametrize("kind", [EngineKind.SIASV, EngineKind.SI],
                             ids=["sias-v", "si"])
    def test_all_profiles_commit(self, kind):
        db = _tiny_db(kind)
        config = DriverConfig(clients=1, mix={TxnType.NEW_ORDER: 0.2,
                                              TxnType.PAYMENT: 0.2,
                                              TxnType.ORDER_STATUS: 0.2,
                                              TxnType.DELIVERY: 0.2,
                                              TxnType.STOCK_LEVEL: 0.2})
        driver = TpccDriver(db, warehouses=2, scale=TINY_SCALE,
                            config=config)
        metrics = driver.run_transactions(60)
        assert metrics.commits() > 40
        types_seen = {o.type for o in metrics.outcomes if o.committed}
        assert types_seen == set(TxnType)

    def test_new_order_grows_orders(self):
        db = _tiny_db()
        txn = db.begin()
        orders_before = _count(db, txn, ts.ORDERS)
        db.commit(txn)
        config = DriverConfig(clients=1, mix={TxnType.NEW_ORDER: 1.0})
        driver = TpccDriver(db, warehouses=2, scale=TINY_SCALE,
                            config=config)
        metrics = driver.run_transactions(20)
        txn = db.begin()
        assert _count(db, txn, ts.ORDERS) == \
            orders_before + metrics.commits(TxnType.NEW_ORDER)
        db.commit(txn)

    def test_delivery_drains_new_orders(self):
        db = _tiny_db()
        config = DriverConfig(clients=1, mix={TxnType.DELIVERY: 1.0})
        driver = TpccDriver(db, warehouses=2, scale=TINY_SCALE,
                            config=config)
        driver.run_transactions(30)
        txn = db.begin()
        assert _count(db, txn, ts.NEW_ORDER) == 0
        # all orders got a carrier assigned
        for _ref, order in db.scan(txn, ts.ORDERS):
            assert order[5] != 0
        db.commit(txn)

    def test_payment_consistency_w_ytd(self):
        """TPC-C consistency condition 1: W_YTD == sum(D_YTD)."""
        db = _tiny_db()
        config = DriverConfig(clients=2, mix={TxnType.PAYMENT: 1.0})
        driver = TpccDriver(db, warehouses=2, scale=TINY_SCALE,
                            config=config)
        driver.run_transactions(80)
        txn = db.begin()
        w_ytd = {row[0]: row[7] for _r, row in db.scan(txn, ts.WAREHOUSE)}
        d_ytd: dict[int, float] = {}
        for _r, row in db.scan(txn, ts.DISTRICT):
            d_ytd[row[0]] = d_ytd.get(row[0], 0.0) + row[8]
        db.commit(txn)
        base_per_wh = 30_000.0 * TINY_SCALE.districts_per_warehouse
        for w_id, ytd in w_ytd.items():
            # payments added equally to W_YTD and its districts' D_YTD
            assert ytd - 300_000.0 == pytest.approx(
                d_ytd[w_id] - base_per_wh, abs=0.01)

    def test_new_order_consistency_d_next_o_id(self):
        """Condition 3: max(O_ID) == D_NEXT_O_ID - 1 per district."""
        db = _tiny_db()
        config = DriverConfig(clients=3, mix={TxnType.NEW_ORDER: 1.0})
        driver = TpccDriver(db, warehouses=2, scale=TINY_SCALE,
                            config=config)
        driver.run_transactions(60)
        txn = db.begin()
        max_o: dict[tuple[int, int], int] = {}
        for _r, order in db.scan(txn, ts.ORDERS):
            key = (order[0], order[1])
            max_o[key] = max(max_o.get(key, 0), order[2])
        for _r, district in db.scan(txn, ts.DISTRICT):
            key = (district[0], district[1])
            assert district[9] == max_o[key] + 1
        db.commit(txn)

    def test_order_line_counts_match_headers(self):
        """Condition 4-ish: every order has exactly O_OL_CNT lines."""
        db = _tiny_db()
        config = DriverConfig(clients=2, mix={TxnType.NEW_ORDER: 1.0})
        driver = TpccDriver(db, warehouses=2, scale=TINY_SCALE,
                            config=config)
        driver.run_transactions(40)
        txn = db.begin()
        lines: dict[tuple, int] = {}
        for _r, ol in db.scan(txn, ts.ORDER_LINE):
            key = (ol[0], ol[1], ol[2])
            lines[key] = lines.get(key, 0) + 1
        for _r, order in db.scan(txn, ts.ORDERS):
            key = (order[0], order[1], order[2])
            assert lines[key] == order[6]
        db.commit(txn)


class TestDriver:
    def test_think_time_rate_limits(self):
        db = _tiny_db()
        paced = DriverConfig(clients=2, think_time_usec=50 * units.MSEC,
                             mix={TxnType.PAYMENT: 1.0})
        driver = TpccDriver(db, warehouses=2, scale=TINY_SCALE,
                            config=paced)
        metrics = driver.run_for(2 * units.SEC)
        # 2 clients, >=50ms per txn cycle, 2s window: at most ~80 txns
        assert len(metrics.outcomes) <= 85

    def test_zero_think_time_saturates(self):
        db = _tiny_db()
        config = DriverConfig(clients=2, mix={TxnType.PAYMENT: 1.0})
        driver = TpccDriver(db, warehouses=2, scale=TINY_SCALE,
                            config=config)
        metrics = driver.run_for(units.SEC)
        assert len(metrics.outcomes) > 100

    def test_maintenance_runs_on_interval(self):
        db = _tiny_db()
        config = DriverConfig(clients=2,
                              maintenance_interval_usec=units.SEC // 2,
                              mix={TxnType.PAYMENT: 1.0})
        driver = TpccDriver(db, warehouses=2, scale=TINY_SCALE,
                            config=config)
        driver.run_for(2 * units.SEC)
        assert driver.maintenance_runs >= 2

    def test_outcomes_have_response_times(self):
        db = _tiny_db()
        driver = TpccDriver(db, warehouses=2, scale=TINY_SCALE,
                            config=DriverConfig(clients=2))
        metrics = driver.run_transactions(30)
        assert all(o.response_usec > 0 for o in metrics.outcomes)

    def test_run_is_deterministic(self):
        def run_once():
            db = _tiny_db()
            driver = TpccDriver(db, warehouses=2, scale=TINY_SCALE,
                                config=DriverConfig(clients=3), seed=7)
            m = driver.run_transactions(50)
            return [(o.type, o.committed, o.response_usec)
                    for o in m.outcomes]

        assert run_once() == run_once()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DriverConfig(clients=0).validate()
        with pytest.raises(ValueError):
            DriverConfig(think_time_usec=-1).validate()
