"""Hostile-network resilience tests: chaos transport, deadlines, drain,
circuit breaker, ambiguous commits and protocol fuzzing.

Covers the robustness contract end to end:

* the deterministic chaos layer itself (``NetCrashPoint`` counting,
  seeded ``ChaosPlan`` decisions, every ``ChaosSocket`` fault shape);
* per-command deadlines rejected/shed server-side with the retryable
  ``DEADLINE_EXCEEDED`` status, budgeted across client retries;
* graceful drain: new sessions refused with ``SHUTTING_DOWN``, in-flight
  transactions allowed to finish, stragglers aborted at the timeout;
* the client circuit breaker's CLOSED → OPEN → HALF_OPEN lifecycle;
* a mid-``COMMIT`` disconnect on both engines: the lost ack surfaces as
  ``CommitUncertainError``, ``TXN_STATUS`` resolves the fate, and the
  commit applies exactly once;
* the idle reaper never closing a session under an executing command;
* seeded fuzzing of the wire codec (malformed bytes may only raise
  ``ProtocolError``).
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.client import CircuitBreaker, ClientConnection, RemoteDatabase
from repro.client.pool import BreakerState
from repro.common.errors import (
    CircuitOpenError,
    CommitUncertainError,
    DeadlineExceededError,
    ProtocolError,
    SessionError,
)
from repro.common.rng import make_rng
from repro.db.database import EngineKind
from repro.db.monitor import snapshot
from repro.server import (
    ChaosPlan,
    Command,
    DatabaseServer,
    NetCrashPoint,
    NetFaultKind,
    ServerConfig,
    protocol,
)
from repro.server.chaos import ChaosConfig, ChaosSocket
from repro.txn.manager import TxnPhase
from tests.conftest import make_accounts_db


def _wait_until(predicate, timeout_sec: float = 5.0,
                interval_sec: float = 0.02) -> None:
    deadline = time.monotonic() + timeout_sec
    while not predicate():
        if time.monotonic() > deadline:
            pytest.fail("condition not reached within timeout")
        time.sleep(interval_sec)


def _serve(kind: EngineKind = EngineKind.SIASV, **config_kwargs):
    db = make_accounts_db(kind)
    server = DatabaseServer(db, ServerConfig(port=0, **config_kwargs))
    host, port = server.start_in_background()
    return db, server, host, port


# ---------------------------------------------------------------------------
# chaos layer unit tests
# ---------------------------------------------------------------------------

class TestNetCrashPoint:
    def test_fires_exactly_at_kth_event_then_goes_inert(self):
        point = NetCrashPoint(at_event=3, kind=NetFaultKind.TORN)
        assert [point.on_event() for _ in range(5)] == [
            None, None, NetFaultKind.TORN, None, None]
        assert point.tripped
        assert point.events_seen == 5

    def test_count_mode_never_fires(self):
        point = NetCrashPoint(at_event=0)
        assert all(point.on_event() is None for _ in range(10))
        assert not point.tripped
        assert point.events_seen == 10

    def test_disarm_stops_counting(self):
        point = NetCrashPoint(at_event=2)
        point.on_event()
        point.disarm()
        assert point.on_event() is None
        assert point.events_seen == 1

    def test_negative_at_event_rejected(self):
        with pytest.raises(ValueError):
            NetCrashPoint(at_event=-1)


class TestChaosPlan:
    def test_same_seed_same_decisions(self):
        cfg = ChaosConfig(seed=5, reset_prob=0.2, torn_prob=0.2,
                          delay_prob=0.0, split_prob=0.3)
        a = [ChaosPlan(cfg).on_frame() for _ in range(50)]
        b = [ChaosPlan(cfg).on_frame() for _ in range(50)]
        assert a == b
        assert any(kind is not None for kind in a)

    def test_crash_point_takes_priority_over_probabilities(self):
        plan = ChaosPlan(ChaosConfig(seed=1),
                         crash_point=NetCrashPoint(
                             at_event=1, kind=NetFaultKind.RESET_BEFORE))
        assert plan.on_frame() is NetFaultKind.RESET_BEFORE
        assert plan.injected["reset_before"] == 1

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError):
            ChaosPlan(ChaosConfig(reset_prob=1.5))

    def test_split_points_are_valid_cuts(self):
        plan = ChaosPlan(ChaosConfig(seed=3))
        for n in (2, 10, 1000):
            cuts = plan.split_points(n)
            assert all(0 < c < n for c in cuts)
            assert cuts == sorted(cuts)


class _FakeSocket:
    """Records sendall payloads; close() flips a flag."""

    def __init__(self):
        self.sent: list[bytes] = []
        self.closed = False

    def sendall(self, data: bytes) -> None:
        self.sent.append(bytes(data))

    def close(self) -> None:
        self.closed = True


class TestChaosSocket:
    def _wired(self, kind: NetFaultKind):
        plan = ChaosPlan(crash_point=NetCrashPoint(at_event=1, kind=kind))
        fake = _FakeSocket()
        return fake, ChaosSocket(fake, plan)

    def test_split_delivers_all_bytes_in_order(self):
        fake, sock = self._wired(NetFaultKind.SPLIT)
        sock.sendall(b"hello world payload")
        assert b"".join(fake.sent) == b"hello world payload"
        assert len(fake.sent) > 1
        assert not fake.closed

    def test_torn_sends_a_strict_prefix_and_dies(self):
        fake, sock = self._wired(NetFaultKind.TORN)
        with pytest.raises(ConnectionResetError):
            sock.sendall(b"hello world payload")
        sent = b"".join(fake.sent)
        assert b"hello world payload".startswith(sent)
        assert len(sent) < len(b"hello world payload")
        assert fake.closed

    def test_reset_before_sends_nothing(self):
        fake, sock = self._wired(NetFaultKind.RESET_BEFORE)
        with pytest.raises(ConnectionResetError):
            sock.sendall(b"payload")
        assert fake.sent == []
        assert fake.closed

    def test_reset_after_delivers_frame_but_kills_silently(self):
        # the lost-ack window: the frame arrives, no exception is raised,
        # the caller discovers the dead line only on the response read
        fake, sock = self._wired(NetFaultKind.RESET_AFTER)
        sock.sendall(b"payload")
        assert b"".join(fake.sent) == b"payload"
        assert fake.closed

    def test_untripped_frames_pass_untouched(self):
        plan = ChaosPlan(crash_point=NetCrashPoint(
            at_event=2, kind=NetFaultKind.RESET_BEFORE))
        fake = _FakeSocket()
        sock = ChaosSocket(fake, plan)
        sock.sendall(b"first")
        assert fake.sent == [b"first"]


# ---------------------------------------------------------------------------
# circuit breaker
# ---------------------------------------------------------------------------

class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        clock = [0.0]
        b = CircuitBreaker(failure_threshold=3, reset_timeout_sec=1.0,
                           clock=lambda: clock[0])
        for _ in range(2):
            b.record_failure()
        assert b.state is BreakerState.CLOSED
        b.record_failure()
        assert b.state is BreakerState.OPEN
        assert not b.allow()
        assert b.opened_total == 1

    def test_success_resets_the_count(self):
        b = CircuitBreaker(failure_threshold=2)
        b.record_failure()
        b.record_success()
        b.record_failure()
        assert b.state is BreakerState.CLOSED

    def test_half_open_admits_one_probe(self):
        clock = [0.0]
        b = CircuitBreaker(failure_threshold=1, reset_timeout_sec=1.0,
                           clock=lambda: clock[0])
        b.record_failure()
        assert not b.allow()
        clock[0] = 1.5
        assert b.state is BreakerState.HALF_OPEN
        assert b.allow()       # the probe
        assert not b.allow()   # only one probe at a time
        b.record_success()
        assert b.state is BreakerState.CLOSED
        assert b.allow()

    def test_failed_probe_reopens(self):
        clock = [0.0]
        b = CircuitBreaker(failure_threshold=1, reset_timeout_sec=1.0,
                           clock=lambda: clock[0])
        b.record_failure()
        clock[0] = 1.5
        assert b.allow()
        b.record_failure()
        assert not b.allow()
        assert b.opened_total == 2

    def test_pool_fails_fast_when_open(self):
        # nothing listens on the port; a pre-opened breaker means the
        # pool never even dials
        breaker = CircuitBreaker(failure_threshold=1,
                                 reset_timeout_sec=60.0)
        breaker.record_failure()
        remote = RemoteDatabase("127.0.0.1", 1, breaker=breaker)
        with pytest.raises(CircuitOpenError) as exc_info:
            remote.ping()
        assert exc_info.value.breaker is breaker
        assert remote.pool.stats.circuit_rejections == 1


# ---------------------------------------------------------------------------
# deadlines
# ---------------------------------------------------------------------------

class TestDeadlines:
    def test_expired_deadline_rejected_before_execution(self):
        _db, server, host, port = _serve()
        try:
            with ClientConnection(host, port) as conn:
                with pytest.raises(DeadlineExceededError):
                    conn.request(Command.PING, deadline_ms=0)
                # the connection survives a deadline rejection
                assert conn.request(Command.PING) == "pong"
            assert server.dispatch.stats.deadline_rejected >= 1
        finally:
            server.stop_in_background()

    def test_generous_deadline_passes(self):
        _db, server, host, port = _serve()
        try:
            with ClientConnection(host, port) as conn:
                assert conn.request(Command.PING,
                                    deadline_ms=10_000) == "pong"
            assert server.dispatch.stats.deadline_rejected == 0
        finally:
            server.stop_in_background()

    def test_client_budget_spans_retries(self):
        # a zero budget fails client-side without a round trip
        remote = RemoteDatabase("127.0.0.1", 1, deadline_ms=0)
        with pytest.raises(DeadlineExceededError):
            remote.pool.request(
                ClientConnection("127.0.0.1", 1), Command.PING)

    def test_deadline_counters_in_stats_payload(self):
        _db, server, host, port = _serve()
        try:
            with ClientConnection(host, port) as conn:
                with pytest.raises(DeadlineExceededError):
                    conn.request(Command.PING, deadline_ms=0)
            payload = server.stats_payload()
            assert payload["deadline_rejected"] >= 1
            assert payload["deadline_shed"] == 0
            assert payload["draining"] is False
        finally:
            server.stop_in_background()


# ---------------------------------------------------------------------------
# graceful drain
# ---------------------------------------------------------------------------

class TestGracefulDrain:
    def test_draining_refuses_new_sessions_but_finishes_txns(self):
        db, server, host, port = _serve(drain_timeout_sec=5.0)
        worker = RemoteDatabase(host, port)
        txn = worker.begin()
        ref = worker.insert(txn, "accounts", (1, "alice", 10.0))
        # a second client asks the server to stop: drain begins
        RemoteDatabase(host, port).shutdown_server()
        _wait_until(lambda: server.stats_payload()["draining"])
        # new sessions are refused with a typed wire status
        with pytest.raises(SessionError, match="shutting down"):
            RemoteDatabase(host, port).ping()
        assert server.sessions.stats.drain_refused >= 1
        # ...but the in-flight transaction may finish what it started
        assert worker.read(txn, "accounts", ref) == (1, "alice", 10.0)
        worker.commit(txn)
        worker.close()
        _wait_until(lambda: server._thread is None
                    or not server._thread.is_alive())
        server.stop_in_background()
        # the commit stuck: verify directly against the engine
        check = db.begin()
        rows = [row for _ref, row in db.scan(check, "accounts")]
        db.commit(check)
        assert rows == [(1, "alice", 10.0)]
        assert server.sessions.stats.drain_aborts == 0

    def test_drain_timeout_aborts_stragglers(self):
        db, server, host, port = _serve(drain_timeout_sec=0.2)
        worker = RemoteDatabase(host, port)
        txn = worker.begin()
        worker.insert(txn, "accounts", (1, "alice", 10.0))
        RemoteDatabase(host, port).shutdown_server()
        _wait_until(lambda: server._thread is None
                    or not server._thread.is_alive())
        server.stop_in_background()
        assert server.sessions.stats.drain_aborts >= 1
        _commits, _aborts, active = db.txn_mgr.counters()
        assert active == 0
        assert db.txn_mgr.locks.held_count() == 0
        check = db.begin()
        assert list(db.scan(check, "accounts")) == []
        db.commit(check)

    def test_dml_for_unowned_txn_refused_during_drain(self):
        _db, server, host, port = _serve(drain_timeout_sec=2.0)
        worker = RemoteDatabase(host, port)
        txn = worker.begin()
        RemoteDatabase(host, port).shutdown_server()
        _wait_until(lambda: server.stats_payload()["draining"])
        # BEGIN starts *new* work: refused while draining
        with pytest.raises(SessionError, match="shutting down"):
            worker.begin()
        worker.abort(txn)
        worker.close()
        server.stop_in_background()


# ---------------------------------------------------------------------------
# ambiguous commits (the lost-ack window), on both engines
# ---------------------------------------------------------------------------

class TestAmbiguousCommit:
    @pytest.mark.parametrize("kind", [EngineKind.SIASV, EngineKind.SI],
                             ids=["sias-v", "si"])
    def test_ack_lost_after_commit_resolves_committed_once(self, kind):
        db, server, host, port = _serve(kind)
        # frames on the chaos client: BEGIN=1, INSERT=2, COMMIT=3; the
        # commit frame arrives but its ack is lost
        plan = ChaosPlan(crash_point=NetCrashPoint(
            at_event=3, kind=NetFaultKind.RESET_AFTER))
        remote = RemoteDatabase(host, port, chaos=plan)
        try:
            txn = remote.begin()
            remote.insert(txn, "accounts", (1, "alice", 10.0))
            with pytest.raises(CommitUncertainError) as exc_info:
                remote.commit(txn)
            assert exc_info.value.txid == txn.txid
            assert remote.pool.stats.uncertain_commits == 1
            # resolution runs on a fresh connection and is deterministic
            assert remote.resolve_commit(exc_info.value.txid) == "committed"
            assert remote.txn_status(txn.txid) == "committed"
            # exactly once: the row exists exactly one time
            check = remote.begin()
            rows = [row for _ref, row in remote.scan(check, "accounts")]
            remote.commit(check)
            assert rows == [(1, "alice", 10.0)]
        finally:
            remote.close()
            server.stop_in_background()

    @pytest.mark.parametrize("kind", [EngineKind.SIASV, EngineKind.SI],
                             ids=["sias-v", "si"])
    def test_commit_never_sent_resolves_aborted(self, kind):
        db, server, host, port = _serve(kind)
        plan = ChaosPlan(crash_point=NetCrashPoint(
            at_event=3, kind=NetFaultKind.RESET_BEFORE))
        remote = RemoteDatabase(host, port, chaos=plan)
        try:
            txn = remote.begin()
            remote.insert(txn, "accounts", (1, "alice", 10.0))
            with pytest.raises(CommitUncertainError):
                remote.commit(txn)
            # the frame never arrived: the server aborts the orphan on
            # disconnect, and TXN_STATUS settles on "aborted"
            assert remote.resolve_commit(txn.txid) == "aborted"
            check = remote.begin()
            assert list(remote.scan(check, "accounts")) == []
            remote.commit(check)
        finally:
            remote.close()
            server.stop_in_background()

    def test_idempotent_command_retried_through_a_dead_connection(self):
        # the pooled connection dies ambiguously mid-TXN_STATUS (frame
        # sent, ack lost); the pool must re-run it on a fresh connection
        # — this is the path resolve_commit depends on
        _db, server, host, port = _serve()
        plan = ChaosPlan(crash_point=NetCrashPoint(
            at_event=1, kind=NetFaultKind.RESET_AFTER))
        remote = RemoteDatabase(host, port, chaos=plan)
        try:
            assert remote.txn_status(999_999) == "unknown"
            assert remote.pool.stats.ambiguous_retries == 1
        finally:
            remote.close()
            server.stop_in_background()

    def test_txn_status_unknown_for_unallocated_txid(self):
        _db, server, host, port = _serve()
        remote = RemoteDatabase(host, port)
        try:
            assert remote.txn_status(999_999) == "unknown"
        finally:
            remote.close()
            server.stop_in_background()


# ---------------------------------------------------------------------------
# idle reaper vs in-flight commands
# ---------------------------------------------------------------------------

class TestReaperInFlight:
    def test_long_command_is_not_reaped_mid_flight(self):
        db, server, host, port = _serve(idle_timeout_sec=0.2,
                                        reaper_interval_sec=0.05)
        original_tick = db.tick
        release = threading.Event()

        def slow_tick():
            release.wait(1.0)
            original_tick()

        db.tick = slow_tick
        remote = RemoteDatabase(host, port, pool_size=1)
        try:
            done: list[object] = []

            def call():
                remote.tick()
                done.append(True)

            t = threading.Thread(target=call)
            t.start()
            # several reaper intervals pass while the command executes;
            # the session must survive because a command is in flight
            time.sleep(0.5)
            assert server.sessions.stats.idle_closed == 0
            release.set()
            t.join(5.0)
            assert done == [True]
            # completion restarted the idle clock; the same connection
            # answers again before the (new) idle window closes
            assert remote.ping() == "pong"
        finally:
            db.tick = original_tick
            remote.close()
            server.stop_in_background()


# ---------------------------------------------------------------------------
# protocol hardening: seeded fuzz
# ---------------------------------------------------------------------------

class TestProtocolFuzz:
    def test_mutated_frames_raise_only_protocol_error(self):
        rng = make_rng(99, "chaos", "fuzz")
        seeds = [
            protocol.packb((1, int(Command.INSERT), (1, "t", (2, "x")))),
            protocol.packb((2, int(Command.READ), (5, "tbl", 7), 250)),
            protocol.packb({"k": (1, 2.5, None, b"\x00\xff")}),
            protocol.packb("x" * 300),
        ]
        for _ in range(600):
            data = bytearray(seeds[rng.randrange(len(seeds))])
            for _ in range(rng.randrange(1, 4)):
                op = rng.randrange(3)
                if op == 0 and data:         # flip a byte
                    data[rng.randrange(len(data))] = rng.randrange(256)
                elif op == 1 and data:       # truncate
                    del data[rng.randrange(len(data)):]
                else:                        # append garbage
                    data.extend(rng.randrange(256)
                                for _ in range(rng.randrange(1, 5)))
            try:
                protocol.unpackb(bytes(data))
            except ProtocolError:
                pass
            try:
                protocol.decode_request(bytes(data))
            except ProtocolError:
                pass

    def test_deep_nesting_rejected_not_recursion_error(self):
        deep = (b"\x91" * 200) + b"\x01"  # 200 nested one-element arrays
        with pytest.raises(ProtocolError, match="nest"):
            protocol.unpackb(deep)

    def test_request_with_bool_deadline_rejected(self):
        bad = protocol.packb((1, int(Command.PING), (), True))
        with pytest.raises(ProtocolError):
            protocol.decode_request(bad)

    def test_unhashable_map_key_rejected(self):
        # a map keyed by an array decodes to a tuple-of-dict key, which
        # is unhashable — must be a ProtocolError, not a TypeError
        payload = b"\x81" + b"\x91" + b"\x80" + b"\x01"
        with pytest.raises(ProtocolError):
            protocol.unpackb(payload)


# ---------------------------------------------------------------------------
# resilience counters end to end
# ---------------------------------------------------------------------------

class TestResilienceObservability:
    def test_snapshot_carries_service_and_client_counters(self):
        db, server, host, port = _serve()
        remote = RemoteDatabase(host, port)
        try:
            with ClientConnection(host, port) as conn:
                with pytest.raises(DeadlineExceededError):
                    conn.request(Command.PING, deadline_ms=0)
            snap = snapshot(db, server=server, client=remote)
            assert snap.deadline_rejections >= 1
            assert snap.breaker_state == "closed"
            assert snap.uncertain_commits == 0
            rendered = snap.render()
            assert "deadline rejected" in rendered
            assert "breaker" in rendered
        finally:
            remote.close()
            server.stop_in_background()

    def test_stats_payload_reports_session_drain_counters(self):
        _db, server, host, port = _serve()
        try:
            sessions = server.stats_payload()["sessions"]
            assert sessions["drain_refused"] == 0
            assert sessions["drain_aborts"] == 0
        finally:
            server.stop_in_background()
