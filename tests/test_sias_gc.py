"""Garbage collection tests: dead classification, reclamation, relocation."""

from __future__ import annotations

from repro.core.gc import GarbageCollector
from repro.core.scan import vidmap_scan


def _seed(engine, txn_mgr, count=10, size=100):
    txn = txn_mgr.begin()
    vids = [engine.insert(txn, bytes([i]) * size) for i in range(count)]
    txn_mgr.commit(txn)
    return vids


def _update(engine, txn_mgr, vid, payload):
    txn = txn_mgr.begin()
    engine.update(txn, vid, payload)
    txn_mgr.commit(txn)


def _delete(engine, txn_mgr, vid):
    txn = txn_mgr.begin()
    engine.delete(txn, vid)
    txn_mgr.commit(txn)


class TestDeadClassification:
    def test_no_garbage_no_reclaim(self, sias_engine, txn_mgr):
        _seed(sias_engine, txn_mgr)
        sias_engine.store.seal_working_page()
        report = GarbageCollector(sias_engine).collect()
        assert report.pages_reclaimed == 0
        assert report.records_discarded == 0

    def test_superseded_versions_discarded(self, sias_engine, txn_mgr):
        vids = _seed(sias_engine, txn_mgr, count=5, size=1000)
        for _ in range(4):
            for vid in vids:
                _update(sias_engine, txn_mgr, vid, b"x" * 1000)
        sias_engine.store.seal_working_page()
        before_pages = sias_engine.store.device_pages()
        report = GarbageCollector(sias_engine).collect()
        assert report.records_discarded > 0
        assert report.pages_reclaimed > 0
        assert sias_engine.store.device_pages() < before_pages

    def test_versions_needed_by_snapshot_survive(self, sias_engine,
                                                 txn_mgr):
        vids = _seed(sias_engine, txn_mgr, count=3, size=500)
        old_reader = txn_mgr.begin()  # pins the horizon
        for vid in vids:
            _update(sias_engine, txn_mgr, vid, b"new" * 100)
        sias_engine.store.seal_working_page()
        GarbageCollector(sias_engine).collect()
        # the old reader must still see the original versions
        assert sias_engine.read(old_reader, vids[0]) == bytes([0]) * 500
        txn_mgr.commit(old_reader)

    def test_horizon_advance_enables_collection(self, sias_engine, txn_mgr):
        vids = _seed(sias_engine, txn_mgr, count=3, size=1500)
        old_reader = txn_mgr.begin()
        for vid in vids:
            for _ in range(3):
                _update(sias_engine, txn_mgr, vid, b"v" * 1500)
        sias_engine.store.seal_working_page()
        held = GarbageCollector(sias_engine).collect()
        txn_mgr.commit(old_reader)
        released = GarbageCollector(sias_engine).collect()
        assert released.records_discarded >= held.records_discarded

    def test_scan_unchanged_by_gc(self, sias_engine, txn_mgr):
        vids = _seed(sias_engine, txn_mgr, count=8, size=800)
        for vid in vids[::2]:
            _update(sias_engine, txn_mgr, vid, b"fresh" * 100)
        sias_engine.store.seal_working_page()
        txn = txn_mgr.begin()
        before = {(v, r.payload) for v, r in vidmap_scan(sias_engine, txn)}
        txn_mgr.commit(txn)
        GarbageCollector(sias_engine).collect()
        txn = txn_mgr.begin()
        after = {(v, r.payload) for v, r in vidmap_scan(sias_engine, txn)}
        txn_mgr.commit(txn)
        assert before == after


class TestTombstoneCollection:
    def test_deleted_item_fully_removed(self, sias_engine, txn_mgr):
        vids = _seed(sias_engine, txn_mgr, count=4, size=1500)
        _delete(sias_engine, txn_mgr, vids[1])
        sias_engine.store.seal_working_page()
        report = GarbageCollector(sias_engine).collect()
        assert report.items_removed == 1
        assert sias_engine.vidmap.get(vids[1]) is None
        outcome = report.items[vids[1]]
        assert outcome.removed_entirely
        assert outcome.dead_payloads  # index pruning material

    def test_tombstone_kept_while_old_snapshot_lives(self, sias_engine,
                                                     txn_mgr):
        vids = _seed(sias_engine, txn_mgr, count=2)
        old_reader = txn_mgr.begin()
        _delete(sias_engine, txn_mgr, vids[0])
        sias_engine.store.seal_working_page()
        report = GarbageCollector(sias_engine).collect()
        assert report.items_removed == 0
        assert sias_engine.read(old_reader, vids[0]) is not None
        txn_mgr.commit(old_reader)


class TestRelocation:
    def test_live_entrypoints_relocated_from_dirty_pages(self, sias_engine,
                                                         txn_mgr):
        # two items share a page; one is updated repeatedly so the page is
        # mostly dead, the other's single version must be relocated
        txn = txn_mgr.begin()
        stable = sias_engine.insert(txn, b"stable" * 200)
        churner = sias_engine.insert(txn, b"churn" * 200)
        txn_mgr.commit(txn)
        for i in range(20):
            _update(sias_engine, txn_mgr, churner, b"c%d" % i * 300)
        sias_engine.store.seal_working_page()
        report = GarbageCollector(sias_engine).collect()
        assert report.records_relocated >= 1
        txn = txn_mgr.begin()
        assert sias_engine.read(txn, stable) == b"stable" * 200
        assert sias_engine.read(txn, churner).startswith(b"c19")
        txn_mgr.commit(txn)

    def test_relocated_record_keeps_create_ts(self, sias_engine, txn_mgr):
        txn = txn_mgr.begin()
        stable = sias_engine.insert(txn, b"keepme" * 100)
        churner = sias_engine.insert(txn, b"x" * 100)
        txn_mgr.commit(txn)
        original_ts = sias_engine.store.read(
            sias_engine.vidmap.get(stable)).create_ts
        for i in range(30):
            _update(sias_engine, txn_mgr, churner, b"y" * 500)
        sias_engine.store.seal_working_page()
        GarbageCollector(sias_engine).collect()
        relocated = sias_engine.store.read(sias_engine.vidmap.get(stable))
        assert relocated.create_ts == original_ts
        assert relocated.pred is None

    def test_gc_reports_live_and_dead_payloads(self, sias_engine, txn_mgr):
        vids = _seed(sias_engine, txn_mgr, count=1, size=1000)
        _update(sias_engine, txn_mgr, vids[0], b"second" * 200)
        _update(sias_engine, txn_mgr, vids[0], b"third" * 200)
        sias_engine.store.seal_working_page()
        report = GarbageCollector(sias_engine).collect()
        outcome = report.items[vids[0]]
        assert len(outcome.dead_payloads) == 2
        assert outcome.live_payloads == [b"third" * 200]


class TestGcIdempotence:
    def test_second_pass_finds_nothing(self, sias_engine, txn_mgr):
        vids = _seed(sias_engine, txn_mgr, count=5, size=800)
        for vid in vids:
            _update(sias_engine, txn_mgr, vid, b"n" * 800)
        sias_engine.store.seal_working_page()
        GarbageCollector(sias_engine).collect()
        sias_engine.store.seal_working_page()
        second = GarbageCollector(sias_engine).collect()
        assert second.records_discarded == 0
        assert second.pages_reclaimed == 0
