"""The black-box SI checker: unit cases, fixture replay, live recording.

The checker (``repro.experiments.si_check``) is the cluster chaos
sweep's second oracle, so its own verdicts need independent coverage:

* hand-built histories for every violation kind it can report —
  fractured-read, lost-update, own-write-lost, phantom-value — plus the
  deliberate non-obligations (aborted and unresolved-uncertain
  transactions constrain nothing);
* the two bundled JSONL fixtures replayed through ``load_history`` and
  the CLI (``repro si-check`` delegates to the same ``main``), pinning
  the exit-code contract CI relies on;
* ``RecordingDatabase`` against a real server: the recorded history of
  a genuine workload round-trips through dump/load and checks clean.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.client import RemoteDatabase
from repro.db.database import EngineKind
from repro.experiments.si_check import (
    History,
    RecordingDatabase,
    check_history,
    load_history,
    main as si_check_main,
)
from repro.server import DatabaseServer, ServerConfig
from tests.conftest import make_accounts_db

DATA = Path(__file__).parent / "data"


def _txn(txid: int, status: str, seq: int | None, ops: list,
         session: str = "s0") -> dict:
    return {"type": "txn", "txn": txid, "session": session,
            "status": status, "commit_seq": seq, "ops": ops}


def _initial(state: dict) -> dict:
    return {"type": "initial", "state": state}


def kinds(violations) -> list[str]:
    return [v.kind for v in violations]


# --- checker unit cases -------------------------------------------------------

class TestCheckHistory:
    def test_empty_history_passes(self):
        assert check_history([]) == []

    def test_clean_transfer_and_reader(self):
        records = [
            _initial({"a/1": [1, 100.0], "a/2": [2, 100.0]}),
            _txn(5, "committed", 1, [
                ["r", "a/1", [1, 100.0]], ["r", "a/2", [2, 100.0]],
                ["w", "a/1", [1, 90.0]], ["w", "a/2", [2, 110.0]]]),
            _txn(8, "committed", 2, [
                ["r", "a/1", [1, 90.0]], ["r", "a/2", [2, 110.0]]]),
        ]
        assert check_history(records) == []

    def test_reader_on_initial_prefix_passes(self):
        records = [
            _initial({"a/1": [1, 100.0], "a/2": [2, 100.0]}),
            _txn(5, "committed", 1, [["w", "a/1", [1, 90.0]],
                                     ["w", "a/2", [2, 110.0]]]),
            _txn(8, "committed", 2, [
                ["r", "a/1", [1, 100.0]], ["r", "a/2", [2, 100.0]]]),
        ]
        assert check_history(records) == []

    def test_fractured_read_detected(self):
        # the reader saw the credit but not the debit of one transfer
        records = [
            _initial({"a/1": [1, 100.0], "a/2": [2, 100.0]}),
            _txn(5, "committed", 1, [["w", "a/1", [1, 90.0]],
                                     ["w", "a/2", [2, 110.0]]]),
            _txn(8, "committed", 2, [
                ["r", "a/1", [1, 100.0]], ["r", "a/2", [2, 110.0]]],
                 session="scanner"),
        ]
        violations = check_history(records)
        assert kinds(violations) == ["fractured-read"]
        assert violations[0].txn == 8
        assert violations[0].session == "scanner"

    def test_lost_update_detected(self):
        # both writers committed, but the second's snapshot predates the
        # first's write to the same key — first-updater-wins violated
        records = [
            _initial({"x": 0}),
            _txn(1, "committed", 1, [["r", "x", 0], ["w", "x", 1]]),
            _txn(2, "committed", 2, [["r", "x", 0], ["w", "x", 2]]),
        ]
        assert kinds(check_history(records)) == ["lost-update"]

    def test_sequential_writers_pass(self):
        records = [
            _initial({"x": 0}),
            _txn(1, "committed", 1, [["r", "x", 0], ["w", "x", 1]]),
            _txn(2, "committed", 2, [["r", "x", 1], ["w", "x", 2]]),
        ]
        assert check_history(records) == []

    def test_write_skew_on_disjoint_keys_is_allowed(self):
        # SI's documented anomaly: both snapshots at prefix 0, writes to
        # disjoint keys — a serializability checker would flag it, an SI
        # checker must not
        records = [
            _initial({"x": 0, "y": 0}),
            _txn(1, "committed", 1, [["r", "x", 0], ["r", "y", 0],
                                     ["w", "x", 1]]),
            _txn(2, "committed", 2, [["r", "x", 0], ["r", "y", 0],
                                     ["w", "y", 1]]),
        ]
        assert check_history(records) == []

    def test_own_writes_satisfy_reads(self):
        records = [
            _initial({"x": 0}),
            _txn(1, "committed", 1, [["w", "x", 7], ["r", "x", 7]]),
        ]
        assert check_history(records) == []

    def test_own_write_lost_detected(self):
        records = [
            _initial({"x": 0}),
            _txn(1, "committed", 1, [["w", "x", 7], ["r", "x", 0]]),
        ]
        assert kinds(check_history(records)) == ["own-write-lost"]

    def test_phantom_value_detected(self):
        records = [
            _initial({"x": 0}),
            _txn(1, "committed", 1, [["r", "x", 42]]),
        ]
        assert kinds(check_history(records)) == ["phantom-value"]

    def test_read_of_absent_key_passes(self):
        # a pk-lookup miss records a read of None: valid while nothing
        # committed an insert for the key
        records = [
            _txn(1, "committed", 1, [["r", "a/9", None]]),
            _txn(2, "committed", 2, [["w", "a/9", [9, 5.0]]]),
            _txn(3, "committed", 3, [["r", "a/9", [9, 5.0]]]),
        ]
        assert check_history(records) == []

    def test_aborted_txn_constrains_nothing(self):
        # impossible reads on an aborted transaction: no obligation (the
        # connection may have died mid-flight), and its write must not
        # enter the commit order either
        records = [
            _initial({"x": 0}),
            _txn(1, "aborted", None, [["r", "x", 42], ["w", "x", 99]]),
            _txn(2, "committed", 1, [["r", "x", 0]]),
        ]
        assert check_history(records) == []

    def test_uncertain_writer_observed_is_phantom(self):
        # an unresolved writer is excluded from the order; a committed
        # read observing its value is exactly the alarm we want
        records = [
            _initial({"x": 0}),
            _txn(1, "uncertain", None, [["w", "x", 7]]),
            _txn(2, "committed", 1, [["r", "x", 7]]),
        ]
        assert kinds(check_history(records)) == ["phantom-value"]

    def test_max_violations_caps_output(self):
        records = [_initial({"x": 0})]
        records += [_txn(i, "committed", i, [["r", "x", 42]])
                    for i in range(1, 10)]
        assert len(check_history(records, max_violations=3)) == 3

    def test_json_roundtrip_equality(self, tmp_path):
        # tuples become lists through JSON; verdicts must not change
        history = History()
        history.record_initial("a/1", (1, "acct-1", 100.0))
        rec = history.open_txn(5, "w0")
        rec.ops.append(["w", "a/1", (1, "acct-1", 90.0)])
        history.seal(rec, "committed")
        rec = history.open_txn(8, "r0")
        rec.ops.append(["r", "a/1", (1, "acct-1", 90.0)])
        history.seal(rec, "committed")
        assert check_history(history.to_records()) == []
        path = tmp_path / "h.jsonl"
        history.dump(str(path))
        assert check_history(load_history(str(path))) == []


# --- bundled fixtures and the CLI contract ------------------------------------

class TestFixturesAndCli:
    def test_clean_fixture_checks_clean(self):
        records = load_history(str(DATA / "si_clean_history.jsonl"))
        assert check_history(records) == []

    def test_fractured_fixture_is_flagged(self):
        records = load_history(str(DATA / "si_fractured_history.jsonl"))
        assert kinds(check_history(records)) == ["fractured-read"]

    def test_cli_exit_codes(self, capsys):
        clean = str(DATA / "si_clean_history.jsonl")
        fractured = str(DATA / "si_fractured_history.jsonl")
        assert si_check_main([clean]) == 0
        assert si_check_main([fractured]) == 1
        assert si_check_main([fractured, "--expect-anomaly"]) == 0
        assert si_check_main([clean, "--expect-anomaly"]) == 1
        out = capsys.readouterr().out
        assert "fractured-read" in out

    def test_repro_cli_delegates(self, capsys):
        from repro.cli import main as cli_main

        fractured = str(DATA / "si_fractured_history.jsonl")
        assert cli_main(["si-check", fractured, "--expect-anomaly"]) == 0
        assert cli_main(["si-check", fractured]) == 1


# --- live recording against a real server -------------------------------------

@pytest.fixture
def served():
    db = make_accounts_db(EngineKind.SIASV)
    server = DatabaseServer(db, ServerConfig(port=0, idle_timeout_sec=30.0))
    host, port = server.start_in_background()
    yield host, port
    server.stop_in_background()


class TestRecordingDatabase:
    def test_recorded_workload_checks_clean(self, served, tmp_path):
        host, port = served
        history = History()
        with RecordingDatabase(RemoteDatabase(host, port, pool_size=2),
                               history, session="w0") as remote:
            txn = remote.begin()
            refs = {i: remote.insert(txn, "accounts", (i, f"a{i}", 100.0))
                    for i in range(3)}
            remote.commit(txn)
            txn = remote.begin()
            (_r0, row0), = remote.lookup(txn, "accounts", "pk", 0)
            (_r1, row1), = remote.lookup(txn, "accounts", "pk", 1)
            remote.update(txn, "accounts", refs[0],
                          (0, row0[1], row0[2] - 25.0))
            remote.update(txn, "accounts", refs[1],
                          (1, row1[1], row1[2] + 25.0))
            remote.commit(txn)
            txn = remote.begin()
            rows = sorted(row for _ref, row
                          in remote.scan(txn, "accounts"))
            remote.commit(txn)
        assert [r[2] for r in rows] == [75.0, 125.0, 100.0]
        records = history.to_records()
        assert check_history(records) == []
        # the same verdict must survive a dump/load round trip
        path = tmp_path / "recorded.jsonl"
        history.dump(str(path))
        assert check_history(load_history(str(path))) == []
        statuses = [r["status"] for r in load_history(str(path))
                    if r.get("type") == "txn"]
        assert statuses == ["committed"] * 3

    def test_lookup_miss_recorded_as_absent(self, served):
        host, port = served
        history = History()
        with RecordingDatabase(RemoteDatabase(host, port, pool_size=1),
                               history) as remote:
            txn = remote.begin()
            assert remote.lookup(txn, "accounts", "pk", 404) == []
            remote.commit(txn)
        (rec,) = [r for r in history.to_records()
                  if r.get("type") == "txn"]
        assert rec["ops"] == [["r", "accounts/404", None]]
        assert check_history(history.to_records()) == []

    def test_abort_seals_record(self, served):
        host, port = served
        history = History()
        with RecordingDatabase(RemoteDatabase(host, port, pool_size=1),
                               history) as remote:
            txn = remote.begin()
            remote.insert(txn, "accounts", (7, "gone", 1.0))
            remote.abort(txn)
        (rec,) = [r for r in history.to_records()
                  if r.get("type") == "txn"]
        assert rec["status"] == "aborted"
        assert rec["commit_seq"] is None

    def test_delete_is_refused(self, served):
        host, port = served
        history = History()
        with RecordingDatabase(RemoteDatabase(host, port, pool_size=1),
                               history) as remote:
            txn = remote.begin()
            ref = remote.insert(txn, "accounts", (1, "x", 1.0))
            with pytest.raises(NotImplementedError):
                remote.delete(txn, "accounts", ref)
            remote.abort(txn)


# --- fixture hygiene ----------------------------------------------------------

def test_fixtures_are_valid_jsonl():
    for name in ("si_clean_history.jsonl", "si_fractured_history.jsonl"):
        for line in (DATA / name).read_text().splitlines():
            json.loads(line)
