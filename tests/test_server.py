"""Service-layer tests: wire protocol, server, sessions, client pool.

Covers the acceptance contract end to end:

* protocol codec round trips (including the TID ext type and framing
  violations);
* a TPC-C-style mix through ``RemoteDatabase`` over a real socket, with
  client-side ``Metrics`` reconciling against server-side counters
  (delegated to ``examples/networked_tpcc.py``);
* forced overload (in-flight limit 1, burst of client threads) yielding
  ``OVERLOADED`` sheds that the pool retries to completion;
* a connection killed mid-transaction whose orphaned txn is aborted and
  its locks released;
* idle-session reaping, session txn ownership, and
  ``db.monitor.snapshot()`` while several sessions hold transactions in
  flight.
"""

from __future__ import annotations

import importlib.util
import pathlib
import threading
import time

import pytest

from repro.client import ClientConnection, RemoteDatabase
from repro.common.errors import (
    OverloadedError,
    ProtocolError,
    SerializationError,
    SessionError,
)
from repro.db.database import EngineKind
from repro.db.monitor import snapshot
from repro.pages.layout import Tid
from repro.server import Command, DatabaseServer, ServerConfig
from repro.server import protocol
from tests.conftest import make_accounts_db


def _wait_until(predicate, timeout_sec: float = 5.0,
                interval_sec: float = 0.02) -> None:
    """Poll until ``predicate()`` or fail the test after the timeout."""
    deadline = time.monotonic() + timeout_sec
    while not predicate():
        if time.monotonic() > deadline:
            pytest.fail("condition not reached within timeout")
        time.sleep(interval_sec)


@pytest.fixture
def served():
    """A SIAS-V accounts database behind a background server."""
    db = make_accounts_db(EngineKind.SIASV)
    server = DatabaseServer(db, ServerConfig(port=0, idle_timeout_sec=30.0))
    host, port = server.start_in_background()
    yield db, server, host, port
    server.stop_in_background()


class TestProtocolCodec:
    @pytest.mark.parametrize("value", [
        None, True, False, 0, 1, 127, 128, 255, 256, 65535, 65536,
        2**32 - 1, 2**32, 2**63 - 1, -1, -31, -32, -33, -128, -129,
        -32768, -32769, -2**31, -2**63, 3.25, -0.5, "", "hello",
        "ü" * 40, "x" * 70000, b"", b"\x00\xff" * 300, (), (1, 2, 3),
        ((1, "a"), (2.0, None)), tuple(range(40)), {}, {"k": 1},
        {"nested": {"deep": (1, 2)}}, Tid(7, 3), (Tid(0, 0), Tid(2**31, 9)),
    ])
    def test_roundtrip(self, value):
        assert protocol.unpackb(protocol.packb(value)) == value

    def test_lists_decode_as_tuples(self):
        assert protocol.unpackb(protocol.packb([1, [2, 3]])) == (1, (2, 3))

    def test_trailing_bytes_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.unpackb(protocol.packb(1) + b"\x00")

    def test_truncated_value_rejected(self):
        data = protocol.packb((1, "hello", 2.0))
        with pytest.raises(ProtocolError):
            protocol.unpackb(data[:-3])

    def test_unencodable_type_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.packb(object())

    def test_oversized_frame_rejected(self):
        huge = (protocol.MAX_FRAME_BYTES + 1).to_bytes(4, "big")
        with pytest.raises(ProtocolError):
            protocol.frame_length(huge)

    def test_request_roundtrip(self):
        frame = protocol.encode_request(7, Command.INSERT, (1, "t", (2,)))
        request_id, command, args, deadline = protocol.decode_request(
            frame[4:])
        assert (request_id, command, args) == (7, Command.INSERT,
                                               (1, "t", (2,)))
        assert deadline is None

    def test_request_roundtrip_with_deadline(self):
        frame = protocol.encode_request(9, Command.READ, (1, "t", 2),
                                        deadline_ms=250)
        request_id, command, args, deadline = protocol.decode_request(
            frame[4:])
        assert (request_id, command, args, deadline) == (
            9, Command.READ, (1, "t", 2), 250)

    def test_deadline_does_not_change_fast_path_bytes(self):
        # deadline_ms=None must keep the legacy 3-tuple frame byte for
        # byte — the fault-free fast path is unchanged on the wire
        with_none = protocol.encode_request(7, Command.PING, ())
        assert protocol.decode_request(with_none[4:])[3] is None
        legacy = protocol.packb((7, int(Command.PING), ()))
        assert with_none[4:] == legacy


class TestBasicService:
    def test_crud_over_the_wire(self, served):
        _db, _server, host, port = served
        remote = RemoteDatabase.connect(host, port)
        try:
            txn = remote.begin()
            ref = remote.insert(txn, "accounts", (1, "alice", 10.0))
            assert remote.read(txn, "accounts", ref) == (1, "alice", 10.0)
            remote.update(txn, "accounts", ref, (1, "alice", 12.5))
            remote.commit(txn)

            txn = remote.begin()
            [(got_ref, row)] = remote.lookup(txn, "accounts", "pk", 1)
            assert got_ref == ref and row == (1, "alice", 12.5)
            remote.delete(txn, "accounts", ref)
            assert remote.read(txn, "accounts", ref) is None
            remote.abort(txn)

            txn = remote.begin()
            assert remote.read(txn, "accounts", ref) == (1, "alice", 12.5)
            remote.commit(txn)
        finally:
            remote.close()

    def test_serialization_conflict_propagates(self, served):
        _db, _server, host, port = served
        remote = RemoteDatabase.connect(host, port)
        try:
            setup = remote.begin()
            ref = remote.insert(setup, "accounts", (1, "a", 1.0))
            remote.commit(setup)
            t1, t2 = remote.begin(), remote.begin()
            remote.update(t1, "accounts", ref, (1, "a", 2.0))
            with pytest.raises(SerializationError):
                remote.update(t2, "accounts", ref, (1, "a", 3.0))
            remote.abort(t2)
            remote.commit(t1)
        finally:
            remote.close()

    def test_ssi_txn_over_the_wire(self, served):
        _db, _server, host, port = served
        remote = RemoteDatabase.connect(host, port)
        try:
            def work(txn):
                assert txn.serializable
                return remote.insert(txn, "accounts", (9, "ssi", 1.0))
            ref = remote.run_in_txn(work, serializable=True)
            got = remote.run_in_txn(
                lambda t: remote.read(t, "accounts", ref))
            assert got == (9, "ssi", 1.0)
        finally:
            remote.close()

    def test_txn_ownership_is_per_session(self, served):
        _db, _server, host, port = served
        with ClientConnection(host, port) as mine, \
                ClientConnection(host, port) as thief:
            txid = mine.request(Command.BEGIN, False)
            with pytest.raises(SessionError):
                thief.request(Command.COMMIT, txid)
            mine.request(Command.ABORT, txid)

    def test_bad_frame_gets_bad_request(self, served):
        _db, _server, host, port = served
        with ClientConnection(host, port) as conn:
            conn.connect()
            # a frame whose payload is not a (request_id, command, args)
            conn._sock.sendall(
                protocol.encode_frame(protocol.packb("junk")))
            header = conn._recv_exact(4)
            body = conn._recv_exact(protocol.frame_length(header))
            _rid, status, _payload = protocol.decode_response(body)
            assert status == protocol.Status.BAD_REQUEST


class TestNetworkedTpcc:
    def test_example_reconciles_against_server_metrics(self):
        path = (pathlib.Path(__file__).resolve().parent.parent
                / "examples" / "networked_tpcc.py")
        spec = importlib.util.spec_from_file_location("networked_tpcc",
                                                      path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        result = module.main(transactions=25, clients=4, quiet=True)
        summary = result["summary"]
        assert summary.commits > 0
        assert result["server_commits"] == summary.commits
        assert result["server_aborts"] == summary.aborts
        assert result["stats"]["sessions"]["opened"] >= 4


class TestOverload:
    def test_burst_sheds_and_pool_retries_to_completion(self):
        db = make_accounts_db(EngineKind.SIASV)
        server = DatabaseServer(db, ServerConfig(
            port=0, max_in_flight=1, max_queue_depth=0,
            idle_timeout_sec=30.0))
        host, port = server.start_in_background()
        remote = RemoteDatabase(host, port, pool_size=8)
        try:
            seed = remote.begin()
            ref = remote.insert(seed, "accounts", (1, "hot", 0.0))
            remote.commit(seed)

            per_thread, threads = 30, 6
            failures: list[BaseException] = []

            def hammer() -> None:
                try:
                    for _ in range(per_thread):
                        txn = remote.begin()
                        assert remote.read(txn, "accounts", ref)[0] == 1
                        remote.commit(txn)
                except BaseException as exc:  # surfaced after join
                    failures.append(exc)

            workers = [threading.Thread(target=hammer)
                       for _ in range(threads)]
            for w in workers:
                w.start()
            for w in workers:
                w.join(60)
            assert not failures, failures

            stats = remote.server_stats()
            # burst against in-flight limit 1 / queue 0 must have shed...
            assert stats["shed_total"] > 0
            shed_by_cmd = {name: c["shed"]
                           for name, c in stats["commands"].items()}
            assert sum(shed_by_cmd.values()) == stats["shed_total"]
            # ...yet the retrying pool completed every transaction
            assert remote.pool.stats.overload_retries > 0
            assert db.txn_mgr.commits == per_thread * threads + 1
            assert stats["sessions"]["in_flight_txns"] == 0
        finally:
            remote.close()
            server.stop_in_background()

    def test_dispatcher_sheds_beyond_watermark_but_exempts_cleanup(self):
        import asyncio

        from repro.server import Dispatcher

        async def scenario() -> None:
            dispatcher = Dispatcher(max_in_flight=1, max_queue_depth=0)
            gate = threading.Event()
            slow = asyncio.ensure_future(dispatcher.run("SLOW", gate.wait))
            for _ in range(200):  # until SLOW occupies the only slot
                if dispatcher.executing == 1:
                    break
                await asyncio.sleep(0.005)
            assert dispatcher.executing == 1
            with pytest.raises(OverloadedError):
                await dispatcher.run("FAST", lambda: None)
            assert dispatcher.stats.shed_total == 1
            assert dispatcher.stats.of("FAST").shed == 1
            # exempt work (commit/abort/cleanup) is never shed: it queues
            exempt = asyncio.ensure_future(
                dispatcher.run("CLEANUP", lambda: 42, exempt=True))
            await asyncio.sleep(0.02)
            assert not exempt.done()
            gate.set()
            assert await slow is True
            assert await exempt == 42
            dispatcher.close()

        asyncio.run(scenario())


class TestSessionLifecycle:
    def test_disconnect_aborts_orphan_and_releases_locks(self, served):
        db, server, host, port = served
        remote = RemoteDatabase.connect(host, port)
        try:
            setup = remote.begin()
            ref = remote.insert(setup, "accounts", (1, "victim", 1.0))
            remote.commit(setup)

            # a raw connection begins a txn, locks the row, and dies
            doomed = ClientConnection(host, port).connect()
            txid = doomed.request(Command.BEGIN, False)
            doomed.request(Command.UPDATE, txid, "accounts", ref,
                           (1, "victim", 2.0))
            assert db.txn_mgr.locks.held_count() == 1
            doomed.close()  # mid-transaction, no COMMIT/ABORT

            # the counter is bumped on the event loop *after* the abort
            # completes on an executor worker, so waiting on it (rather
            # than active_count) also guarantees the abort is done
            _wait_until(lambda: server.sessions.stats.orphans_aborted == 1)
            assert db.txn_mgr.active_count() == 0
            assert db.txn_mgr.locks.held_count() == 0

            # the orphan's update was undone and its lock released:
            # a fresh transaction can update the row without conflict
            txn = remote.begin()
            assert remote.read(txn, "accounts", ref) == (1, "victim", 1.0)
            remote.update(txn, "accounts", ref, (1, "victim", 3.0))
            remote.commit(txn)
            assert db.txn_mgr.aborts >= 1
        finally:
            remote.close()

    def test_idle_session_is_reaped_and_its_txn_aborted(self):
        db = make_accounts_db(EngineKind.SIASV)
        server = DatabaseServer(db, ServerConfig(
            port=0, idle_timeout_sec=0.2))
        host, port = server.start_in_background()
        idler = ClientConnection(host, port).connect()
        try:
            txid = idler.request(Command.BEGIN, False)
            idler.request(Command.INSERT, txid, "accounts",
                          (5, "idle", 0.0))
            assert db.txn_mgr.active_count() == 1
            _wait_until(lambda: db.txn_mgr.active_count() == 0,
                        timeout_sec=5.0)
            assert server.sessions.stats.idle_closed == 1
            assert server.sessions.stats.orphans_aborted == 1
            # the reaped connection is dead from the client's view
            with pytest.raises((ConnectionError, SessionError)):
                idler.request(Command.PING)
        finally:
            idler.close()
            server.stop_in_background()


class TestMonitorThroughServer:
    def test_snapshot_with_concurrent_sessions_in_flight(self, served):
        db, server, host, port = served
        conns = [ClientConnection(host, port).connect() for _ in range(3)]
        try:
            txids = []
            for i, conn in enumerate(conns):
                txid = conn.request(Command.BEGIN, False)
                conn.request(Command.INSERT, txid, "accounts",
                             (i + 1, f"s{i}", float(i)))
                txids.append(txid)

            # in-process view and wire view agree on in-flight state
            snap = snapshot(db, server=server)
            assert snap.txn_active == 3
            wire = conns[0].request(Command.SNAPSHOT)
            assert wire["txn_active"] == 3
            assert {c["command"] for c in wire["commands"]} >= {
                "BEGIN", "INSERT", "SNAPSHOT"}

            for conn, txid in zip(conns, txids):
                conn.request(Command.COMMIT, txid)
            done = conns[0].request(Command.SNAPSHOT)
            assert done["txn_active"] == 0
            assert (done["txn_commits"] - wire["txn_commits"]) == 3
        finally:
            for conn in conns:
                conn.close()

    def test_render_includes_service_commands(self, served):
        db, server, host, port = served
        remote = RemoteDatabase.connect(host, port)
        try:
            remote.run_in_txn(
                lambda t: remote.insert(t, "accounts", (1, "r", 1.0)))
            text = snapshot(db, server=server).render()
            assert "per-command (service layer)" in text
            assert "INSERT" in text
        finally:
            remote.close()

class TestRecoverOnStart:
    def test_recovery_runs_before_serving(self):
        db = make_accounts_db(EngineKind.SIASV)
        txn = db.begin()
        db.insert(txn, "accounts", (1, "durable", 10.0))
        db.commit(txn)
        txn = db.begin()
        db.insert(txn, "accounts", (2, "in-flight", 20.0))
        # never committed: a restart must roll this back
        server = DatabaseServer(db, ServerConfig(recover_on_start=True))
        assert server.recovery_report is not None
        assert server.recovery_report.committed_txns >= 1
        assert server.recovery_report.rolled_back_txns >= 1
        check = db.begin()
        rows = {row[0] for _ref, row in db.scan(check, "accounts")}
        db.commit(check)
        assert rows == {1}

    def test_recover_keeps_multiworker_lock_waits(self):
        db = make_accounts_db(EngineKind.SIASV)
        server = DatabaseServer(db, ServerConfig(recover_on_start=True,
                                                 executor_workers=4))
        assert server.recovery_report is not None
        # crash()'s lock-table reset must not discard the bounded-wait
        # configuration the multi-worker server just applied
        assert db.txn_mgr.locks.wait_timeout_sec == \
            server.config.lock_wait_timeout_sec
