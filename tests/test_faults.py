"""Fault-injection tests: checksums and error paths under bad storage."""

from __future__ import annotations

import pytest

from repro.buffer.manager import BufferManager
from repro.common import units
from repro.common.errors import PageCorruptError
from repro.pages.layout import HeapTuple, XMAX_INFINITY
from repro.pages.slotted import SlottedHeapPage
from repro.storage.faults import FaultyDevice, TransientReadError
from repro.storage.flash import FlashDevice
from repro.storage.tablespace import Tablespace
from tests.conftest import SMALL_FLASH


def _page(tag: int) -> SlottedHeapPage:
    page = SlottedHeapPage(0)
    page.insert(HeapTuple(tag, XMAX_INFINITY, False, b"x" * 64))
    return page


class TestFaultyDevice:
    def test_clean_passthrough(self, clock):
        device = FaultyDevice(FlashDevice(clock, SMALL_FLASH))
        raw = _page(1).to_bytes()
        device.write_page(0, raw)
        assert device.read_page(0) == raw
        assert device.stats.writes == 1  # delegated attribute

    def test_bitrot_detected_by_checksum(self, clock):
        device = FaultyDevice(FlashDevice(clock, SMALL_FLASH), bitrot=1.0)
        device.write_page(0, _page(1).to_bytes())
        tablespace = Tablespace(device, extent_pages=16)
        f = tablespace.create_file("f")
        tablespace.ensure_page(f, 0)
        buffer = BufferManager(tablespace, pool_pages=8)
        with pytest.raises(PageCorruptError):
            buffer.get_page(f, 0)
        assert device.injected_bitrot >= 1

    def test_transient_errors_raised(self, clock):
        device = FaultyDevice(FlashDevice(clock, SMALL_FLASH),
                              transient=1.0)
        device.write_page(0, _page(1).to_bytes())
        with pytest.raises(TransientReadError):
            device.read_page(0)

    def test_transient_is_retryable(self, clock):
        device = FaultyDevice(FlashDevice(clock, SMALL_FLASH),
                              transient=0.5, seed=3)
        device.write_page(0, _page(1).to_bytes())
        got = None
        for _attempt in range(50):
            try:
                got = device.read_page(0)
                break
            except TransientReadError:
                continue
        assert got is not None

    def test_deterministic_replay(self, clock):
        def run(seed):
            device = FaultyDevice(FlashDevice(clock, SMALL_FLASH,
                                              name=f"d{seed}"),
                                  bitrot=0.3, seed=seed)
            device.write_page(0, _page(1).to_bytes())
            outcomes = []
            for _ in range(20):
                outcomes.append(device.read_page(0))
            return outcomes

        assert run(7) == run(7)

    def test_probability_validation(self, clock):
        with pytest.raises(ValueError):
            FaultyDevice(FlashDevice(clock, SMALL_FLASH), bitrot=1.5)

    def test_batched_reads_perturbed(self, clock):
        device = FaultyDevice(FlashDevice(clock, SMALL_FLASH), bitrot=1.0)
        raw = _page(1).to_bytes()
        for lba in range(4):
            device.write_page(lba, raw)
        results = device.read_pages(list(range(4)))
        assert all(r != raw for r in results)
        assert device.injected_bitrot == 4
