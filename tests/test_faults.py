"""Fault-injection tests: checksums and error paths under bad storage."""

from __future__ import annotations

import pytest

from repro.buffer.manager import BufferManager
from repro.common import units
from repro.common.errors import PageCorruptError, ReadUnwrittenError
from repro.pages.base import Page
from repro.pages.layout import HeapTuple, XMAX_INFINITY
from repro.pages.slotted import SlottedHeapPage
from repro.storage.faults import (
    CrashPoint,
    FaultyDevice,
    InjectedWriteError,
    SimulatedCrash,
    TransientReadError,
)
from repro.storage.flash import FlashDevice
from repro.storage.tablespace import TRANSIENT_READ_RETRIES, Tablespace
from tests.conftest import SMALL_FLASH


def _page(tag: int) -> SlottedHeapPage:
    page = SlottedHeapPage(0)
    page.insert(HeapTuple(tag, XMAX_INFINITY, False, b"x" * 64))
    return page


def _full_page(tag: int) -> SlottedHeapPage:
    """A page packed with tuples, so a torn prefix always corrupts it."""
    page = SlottedHeapPage(0)
    n = 0
    while True:
        tuple_ = HeapTuple(tag * 1000 + n, XMAX_INFINITY, False, b"y" * 64)
        if not page.fits(tuple_):
            return page
        page.insert(tuple_)
        n += 1


class TestFaultyDevice:
    def test_clean_passthrough(self, clock):
        device = FaultyDevice(FlashDevice(clock, SMALL_FLASH))
        raw = _page(1).to_bytes()
        device.write_page(0, raw)
        assert device.read_page(0) == raw
        assert device.stats.writes == 1  # delegated attribute

    def test_bitrot_detected_by_checksum(self, clock):
        device = FaultyDevice(FlashDevice(clock, SMALL_FLASH), bitrot=1.0)
        device.write_page(0, _page(1).to_bytes())
        tablespace = Tablespace(device, extent_pages=16)
        f = tablespace.create_file("f")
        tablespace.ensure_page(f, 0)
        buffer = BufferManager(tablespace, pool_pages=8)
        with pytest.raises(PageCorruptError):
            buffer.get_page(f, 0)
        assert device.injected_bitrot >= 1

    def test_transient_errors_raised(self, clock):
        device = FaultyDevice(FlashDevice(clock, SMALL_FLASH),
                              transient=1.0)
        device.write_page(0, _page(1).to_bytes())
        with pytest.raises(TransientReadError):
            device.read_page(0)

    def test_transient_is_retryable(self, clock):
        device = FaultyDevice(FlashDevice(clock, SMALL_FLASH),
                              transient=0.5, seed=3)
        device.write_page(0, _page(1).to_bytes())
        got = None
        for _attempt in range(50):
            try:
                got = device.read_page(0)
                break
            except TransientReadError:
                continue
        assert got is not None

    def test_deterministic_replay(self, clock):
        def run(seed):
            device = FaultyDevice(FlashDevice(clock, SMALL_FLASH,
                                              name=f"d{seed}"),
                                  bitrot=0.3, seed=seed)
            device.write_page(0, _page(1).to_bytes())
            outcomes = []
            for _ in range(20):
                outcomes.append(device.read_page(0))
            return outcomes

        assert run(7) == run(7)

    def test_probability_validation(self, clock):
        with pytest.raises(ValueError):
            FaultyDevice(FlashDevice(clock, SMALL_FLASH), bitrot=1.5)

    def test_batched_reads_perturbed(self, clock):
        device = FaultyDevice(FlashDevice(clock, SMALL_FLASH), bitrot=1.0)
        raw = _page(1).to_bytes()
        for lba in range(4):
            device.write_page(lba, raw)
        results = device.read_pages(list(range(4)))
        assert all(r != raw for r in results)
        assert device.injected_bitrot == 4

class TestWriteFaults:
    def test_torn_write_fails_checksum(self, clock):
        device = FaultyDevice(FlashDevice(clock, SMALL_FLASH),
                              torn_write=1.0)
        device.write_page(0, _full_page(1).to_bytes())
        assert device.injected_torn == 1
        with pytest.raises(PageCorruptError):
            Page.from_bytes(device.read_page(0))

    def test_failed_write_zero_then_partial(self, clock):
        device = FaultyDevice(FlashDevice(clock, SMALL_FLASH),
                              failed_write=1.0)
        raw = _page(1).to_bytes()
        with pytest.raises(InjectedWriteError):
            device.write_page(0, raw)
        # first failure persists nothing at all
        with pytest.raises(ReadUnwrittenError):
            device.read_page(0)
        with pytest.raises(InjectedWriteError):
            device.write_page(1, raw)
        # second failure persists a torn prefix: content exists but is
        # not the full write
        assert device.injected_write_fails == 2
        assert isinstance(device.read_page(1), bytes)

    def test_torn_batch_applies_prefix(self, clock):
        point = CrashPoint(at_write=3)
        device = FaultyDevice(FlashDevice(clock, SMALL_FLASH),
                              crash_point=point)
        raw = _page(1).to_bytes()
        with pytest.raises(SimulatedCrash):
            device.write_pages([(lba, raw) for lba in range(5)])
        point.disarm()
        assert device.read_page(0) == raw
        assert device.read_page(1) == raw
        for lba in (2, 3, 4):  # crash write and beyond never landed
            with pytest.raises(ReadUnwrittenError):
                device.read_page(lba)


class TestCrashPoint:
    def test_count_mode_never_fires(self, clock):
        point = CrashPoint(at_write=0)
        device = FaultyDevice(FlashDevice(clock, SMALL_FLASH),
                              crash_point=point)
        raw = _page(1).to_bytes()
        for lba in range(5):
            device.write_page(lba, raw)
        assert point.writes_seen == 5
        assert not point.tripped

    def test_fires_at_kth_write_and_stays_tripped(self, clock):
        point = CrashPoint(at_write=3)
        device = FaultyDevice(FlashDevice(clock, SMALL_FLASH),
                              crash_point=point)
        raw = _page(1).to_bytes()
        device.write_page(0, raw)
        device.write_page(1, raw)
        with pytest.raises(SimulatedCrash):
            device.write_page(2, raw)
        assert point.tripped
        # the dead machine rejects all further writes...
        with pytest.raises(SimulatedCrash):
            device.write_page(3, raw)
        # ...and the crash write itself persisted nothing (torn=False)
        with pytest.raises(ReadUnwrittenError):
            device.read_page(2)
        point.disarm()  # reboot: I/O works again
        device.write_page(3, raw)
        assert device.read_page(3) == raw

    def test_torn_crash_persists_checksum_failing_prefix(self, clock):
        point = CrashPoint(at_write=1, torn=True)
        device = FaultyDevice(FlashDevice(clock, SMALL_FLASH),
                              crash_point=point)
        raw = _full_page(1).to_bytes()
        with pytest.raises(SimulatedCrash):
            device.write_page(0, raw)
        point.disarm()
        stored = device.read_page(0)
        half = len(raw) // 2
        assert stored[:half] == raw[:half]
        assert stored != raw
        with pytest.raises(PageCorruptError):
            Page.from_bytes(stored)

    def test_shared_counter_across_devices(self, clock):
        point = CrashPoint(at_write=3)
        data = FaultyDevice(FlashDevice(clock, SMALL_FLASH, name="a"),
                            crash_point=point)
        wal = FaultyDevice(FlashDevice(clock, SMALL_FLASH, name="b"),
                           crash_point=point)
        raw = _page(1).to_bytes()
        data.write_page(0, raw)
        wal.write_page(0, raw)
        with pytest.raises(SimulatedCrash):
            data.write_page(1, raw)  # third write system-wide

    def test_deterministic_same_seed_same_prefix(self, clock):
        def run(k):
            point = CrashPoint(at_write=k)
            device = FaultyDevice(FlashDevice(clock, SMALL_FLASH,
                                              name=f"det{k}"),
                                  crash_point=point)
            landed = []
            try:
                for lba in range(6):
                    device.write_page(lba, _page(lba).to_bytes())
                    landed.append(lba)
            except SimulatedCrash:
                pass
            return landed

        # a crash at write k leaves exactly the first k-1 writes
        assert run(4) == [0, 1, 2]
        assert run(4) == [0, 1, 2]

    def test_validation(self):
        with pytest.raises(ValueError):
            CrashPoint(at_write=-1)


class TestTransientRetry:
    def test_fault_in_retries_to_success(self, clock):
        fails = {"remaining": 2}

        class _FlakyTwice:
            def __init__(self, inner):
                self._inner = inner

            def read_page(self, lba):
                if fails["remaining"]:
                    fails["remaining"] -= 1
                    raise TransientReadError("injected flake")
                return self._inner.read_page(lba)

            def __getattr__(self, name):
                return getattr(self._inner, name)

        inner = FlashDevice(clock, SMALL_FLASH)
        raw = _page(1).to_bytes()
        inner.write_page(0, raw)
        tablespace = Tablespace(_FlakyTwice(inner), extent_pages=16)
        f = tablespace.create_file("f")
        tablespace.ensure_page(f, 0)
        assert tablespace.read_page(tablespace.lba_of(f, 0)) == raw
        assert fails["remaining"] == 0

    def test_exhaustion_raises_and_counts(self, clock):
        device = FaultyDevice(FlashDevice(clock, SMALL_FLASH),
                              transient=1.0)
        device.write_page(0, _page(1).to_bytes())
        tablespace = Tablespace(device, extent_pages=16)
        f = tablespace.create_file("f")
        tablespace.ensure_page(f, 0)
        with pytest.raises(TransientReadError):
            tablespace.read_page(tablespace.lba_of(f, 0))
        assert device.retries_exhausted == 1
        # the first attempt plus every retry hit the fault
        assert device.injected_transient == 1 + TRANSIENT_READ_RETRIES

    def test_buffer_fault_in_survives_transients(self, clock):
        device = FaultyDevice(FlashDevice(clock, SMALL_FLASH),
                              transient=0.4, seed=11)
        raw = _page(1).to_bytes()
        for lba in range(8):
            device.write_page(lba, raw)
        tablespace = Tablespace(device, extent_pages=16)
        f = tablespace.create_file("f")
        tablespace.ensure_page(f, 7)
        buffer = BufferManager(tablespace, pool_pages=4)
        for page_no in range(8):  # pool of 4: every read is a fault-in
            assert buffer.get_page(f, page_no).to_bytes() == raw
        assert device.injected_transient > 0
        assert device.retries_exhausted == 0
