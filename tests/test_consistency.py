"""TPC-C consistency-condition tests (the engine-correctness oracle)."""

from __future__ import annotations

import pytest

from repro.common import units
from repro.common.config import BufferConfig, SystemConfig
from repro.db.database import Database, EngineKind
from repro.workload import consistency
from repro.workload.driver import DriverConfig, TpccDriver
from repro.workload.mixes import STANDARD_MIX, TxnType
from repro.workload.tpcc_data import TpccLoader
from repro.workload.tpcc_schema import TpccScale, create_tpcc_tables
from tests.conftest import SMALL_FLASH

SCALE = TpccScale(districts_per_warehouse=3, customers_per_district=6,
                  items=25, stock_per_warehouse=25,
                  initial_orders_per_district=4,
                  min_order_lines=2, max_order_lines=4)


def _db(kind):
    db = Database.on_flash(
        kind, SystemConfig(flash=SMALL_FLASH,
                           buffer=BufferConfig(pool_pages=256),
                           extent_pages=16))
    create_tpcc_tables(db)
    TpccLoader(db, SCALE).load(2)
    return db


class TestAfterLoad:
    @pytest.mark.parametrize("kind", [EngineKind.SIASV, EngineKind.SI],
                             ids=["sias-v", "si"])
    def test_fresh_load_is_consistent(self, kind):
        report = consistency.check(_db(kind))
        assert report.consistent, report.violations


class TestAfterWorkload:
    @pytest.mark.parametrize("kind", [EngineKind.SIASV, EngineKind.SI],
                             ids=["sias-v", "si"])
    def test_standard_mix_preserves_consistency(self, kind):
        db = _db(kind)
        driver = TpccDriver(db, 2, SCALE, config=DriverConfig(
            clients=4, maintenance_interval_usec=units.SEC,
            mix=dict(STANDARD_MIX)))
        driver.run_for(4 * units.SEC)
        report = consistency.check(db)
        assert report.consistent, report.violations

    @pytest.mark.parametrize("kind", [EngineKind.SIASV, EngineKind.SI],
                             ids=["sias-v", "si"])
    def test_conflict_storm_preserves_consistency(self, kind):
        """Heavy contention: many aborts, consistency must still hold."""
        db = _db(kind)
        driver = TpccDriver(db, 2, SCALE, config=DriverConfig(
            clients=8, maintenance_interval_usec=units.SEC,
            mix={TxnType.NEW_ORDER: 0.6, TxnType.PAYMENT: 0.4}))
        metrics = driver.run_for(4 * units.SEC)
        assert metrics.serialization_aborts() > 0  # contention happened
        report = consistency.check(db)
        assert report.consistent, report.violations

    def test_consistency_after_crash_recovery(self):
        from repro.db.recovery import crash, recover

        db = _db(EngineKind.SIASV)
        driver = TpccDriver(db, 2, SCALE, config=DriverConfig(clients=4))
        driver.run_for(2 * units.SEC)
        crash(db)
        recover(db)
        report = consistency.check(db)
        assert report.consistent, report.violations


class TestDetectsCorruption:
    def test_flags_broken_ytd(self):
        db = _db(EngineKind.SIASV)
        txn = db.begin()
        (ref, row), = db.lookup(txn, "warehouse", "pk", 1)
        db.update(txn, "warehouse", ref, row[:7] + (row[7] + 123.0,))
        db.commit(txn)
        report = consistency.check(db)
        assert not report.consistent
        assert any("condition 1" in v for v in report.violations)

    def test_flags_broken_next_o_id(self):
        db = _db(EngineKind.SIASV)
        txn = db.begin()
        (ref, row), = db.lookup(txn, "district", "pk", (1, 1))
        db.update(txn, "district", ref, row[:9] + (row[9] + 5,))
        db.commit(txn)
        report = consistency.check(db)
        assert any("condition 2" in v for v in report.violations)

    def test_flags_duplicate_pk(self):
        db = _db(EngineKind.SIASV)
        txn = db.begin()
        db.insert(txn, "item", (1, 1, "dup", 1.0, "x"))  # id 1 exists
        db.commit(txn)
        report = consistency.check(db)
        assert any("condition 6" in v for v in report.violations)

    def test_flags_missing_order_line(self):
        db = _db(EngineKind.SIASV)
        txn = db.begin()
        hits = db.range_lookup(txn, "order_line", "pk",
                               (1, 1, 1, 0), (1, 1, 1, 99))
        db.delete(txn, "order_line", hits[0][0])
        db.commit(txn)
        report = consistency.check(db)
        assert any("condition" in v for v in report.violations)
