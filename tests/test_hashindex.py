"""Extendible-hash index tests: unit + hypothesis + facade integration."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import DuplicateKeyError, IndexError_
from repro.db.catalog import IndexDef, IndexKind
from repro.db.database import Database, EngineKind
from repro.db.schema import ColType, Schema
from repro.index.hashindex import ExtendibleHashIndex
from tests.conftest import small_system_config


class TestBasics:
    def test_empty(self):
        index = ExtendibleHashIndex()
        assert len(index) == 0
        assert index.search(5) == []
        assert list(index.items()) == []

    def test_insert_search(self):
        index = ExtendibleHashIndex()
        index.insert("k", 1)
        assert index.search("k") == [1]
        assert index.contains("k", 1)
        assert not index.contains("k", 2)

    def test_duplicate_keys(self):
        index = ExtendibleHashIndex()
        index.insert(5, "a")
        index.insert(5, "b")
        assert sorted(index.search(5)) == ["a", "b"]

    def test_duplicate_pair_rejected(self):
        index = ExtendibleHashIndex()
        index.insert(5, "a")
        with pytest.raises(DuplicateKeyError):
            index.insert(5, "a")

    def test_unique_mode(self):
        index = ExtendibleHashIndex(unique=True)
        index.insert(5, "a")
        with pytest.raises(DuplicateKeyError):
            index.insert(5, "b")

    def test_delete(self):
        index = ExtendibleHashIndex()
        index.insert(5, "a")
        assert index.delete(5, "a")
        assert not index.delete(5, "a")
        assert index.search(5) == []

    def test_no_range_scans(self):
        index = ExtendibleHashIndex()
        with pytest.raises(IndexError_):
            list(index.range(1, 10))

    def test_directory_doubles_under_load(self):
        index = ExtendibleHashIndex(bucket_capacity=4)
        for i in range(200):
            index.insert(i, i)
        assert index.global_depth > 1
        assert index.bucket_count > 2
        index.check_invariants()
        for i in range(200):
            assert index.search(i) == [i]

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ExtendibleHashIndex(bucket_capacity=1)

    def test_tuple_keys(self):
        index = ExtendibleHashIndex(bucket_capacity=4)
        for w in range(5):
            for d in range(5):
                index.insert((w, d), w * 10 + d)
        assert index.search((3, 4)) == [34]
        index.check_invariants()


class TestProperties:
    @given(st.lists(st.tuples(st.sampled_from(["insert", "delete"]),
                              st.integers(0, 40), st.integers(0, 4)),
                    max_size=250))
    @settings(max_examples=60, deadline=None)
    def test_matches_reference_model(self, operations):
        index = ExtendibleHashIndex(bucket_capacity=4)
        model: dict[int, set[int]] = {}
        for op, key, value in operations:
            if op == "insert":
                if value in model.get(key, set()):
                    with pytest.raises(DuplicateKeyError):
                        index.insert(key, value)
                else:
                    index.insert(key, value)
                    model.setdefault(key, set()).add(value)
            else:
                expected = value in model.get(key, set())
                assert index.delete(key, value) == expected
                if expected:
                    model[key].discard(value)
                    if not model[key]:
                        del model[key]
        index.check_invariants()
        assert len(index) == sum(len(s) for s in model.values())
        for key, values in model.items():
            assert set(index.search(key)) == values
        assert sorted(index.items()) == sorted(
            (k, v) for k, s in model.items() for v in s)


class TestFacadeIntegration:
    @pytest.fixture(params=[EngineKind.SIASV, EngineKind.SI],
                    ids=["sias-v", "si"])
    def hash_db(self, request):
        db = Database.on_flash(request.param, small_system_config())
        schema = Schema.of(("id", ColType.INT), ("owner", ColType.STR),
                           ("balance", ColType.FLOAT))
        db.create_table("accounts", schema, indexes=[
            IndexDef("pk", ("id",), unique=True, kind=IndexKind.HASH),
            IndexDef("by_owner", ("owner",), kind=IndexKind.HASH),
        ])
        return db

    def test_crud_through_hash_indexes(self, hash_db):
        db = hash_db
        txn = db.begin()
        for i in range(50):
            db.insert(txn, "accounts", (i, f"u{i % 5}", float(i)))
        db.commit(txn)
        txn = db.begin()
        (ref, row), = db.lookup(txn, "accounts", "pk", 17)
        assert row == (17, "u2", 17.0)
        db.update(txn, "accounts", ref, (17, "moved", 0.0))
        db.commit(txn)
        txn = db.begin()
        assert [r[0] for _x, r in
                db.lookup(txn, "accounts", "by_owner", "moved")] == [17]
        db.commit(txn)

    def test_maintenance_prunes_hash_entries(self, hash_db):
        db = hash_db
        txn = db.begin()
        ref = db.insert(txn, "accounts", (1, "old", 0.0))
        db.commit(txn)
        txn = db.begin()
        db.update(txn, "accounts", ref, (1, "new", 0.0))
        db.commit(txn)
        db.maintenance()
        _defn, index = db.table("accounts").index("by_owner")
        assert {key for key, _v in index.items()} == {"new"}

    def test_recovery_rebuilds_hash_indexes(self, hash_db):
        from repro.db.recovery import crash, recover
        db = hash_db
        txn = db.begin()
        for i in range(20):
            db.insert(txn, "accounts", (i, "u", float(i)))
        db.commit(txn)
        if db.kind is EngineKind.SI:
            db.checkpointer.run_now()
        crash(db)
        recover(db)
        txn = db.begin()
        assert len(db.lookup(txn, "accounts", "pk", 7)) == 1
        db.commit(txn)
