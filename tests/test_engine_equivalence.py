"""Cross-engine equivalence: SIAS-V and SI implement the *same* semantics.

The paper's claim is purely physical — SIAS-V changes where bytes go, never
what a transaction observes.  These property tests drive both engines (via
the Database facade, so index maintenance is included) with identical
randomised operation schedules, including interleaved transactions, aborts
and conflicts, and require the final visible states to be identical.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ReproError, SerializationError
from repro.db.database import EngineKind
from tests.conftest import make_accounts_db


def _visible_state(db) -> dict[int, tuple]:
    txn = db.begin()
    state = {row[0]: row for _ref, row in db.scan(txn, "accounts")}
    db.commit(txn)
    return state


def _run_schedule(kind: EngineKind, schedule, n_sessions: int):
    """Apply a schedule of (session, op, key) steps; returns visible state.

    Sessions map to open transactions; ops are begin/insert/update/delete/
    commit/abort.  Serialization losers abort their whole transaction, which
    is deterministic across engines because the schedule is identical.
    """
    db = make_accounts_db(kind)
    sessions: dict[int, object] = {}
    failed: set[int] = set()
    counter = 0
    for session_id, op, key in schedule:
        session_id %= n_sessions
        if op == "begin":
            if session_id not in sessions:
                sessions[session_id] = db.begin()
            continue
        if op in ("commit", "abort"):
            txn = sessions.pop(session_id, None)
            if txn is not None:
                if op == "commit" and session_id not in failed:
                    db.commit(txn)
                else:
                    db.abort(txn)
            failed.discard(session_id)
            continue
        txn = sessions.get(session_id)
        if txn is None or session_id in failed:
            continue
        counter += 1
        try:
            if op == "insert":
                db.insert(txn, "accounts",
                          (key, f"owner{key % 5}", float(counter)))
            elif op == "update":
                hits = db.lookup(txn, "accounts", "pk", key)
                if hits:
                    ref, row = hits[0]
                    db.update(txn, "accounts", ref,
                              (key, f"owner{counter % 5}", row[2] + 1.0))
            elif op == "delete":
                hits = db.lookup(txn, "accounts", "pk", key)
                if hits:
                    db.delete(txn, "accounts", hits[0][0])
        except SerializationError:
            # the whole transaction is doomed; roll it back at its end
            failed.add(session_id)
    for session_id, txn in list(sessions.items()):
        if session_id in failed:
            db.abort(txn)
        else:
            db.commit(txn)
    return db


step = st.tuples(
    st.integers(0, 3),
    st.sampled_from(["begin", "insert", "update", "delete", "commit",
                     "abort"]),
    st.integers(0, 8),
)


class TestEquivalence:
    @given(st.lists(step, max_size=80))
    @settings(max_examples=40, deadline=None)
    def test_same_visible_state(self, schedule):
        sias = _run_schedule(EngineKind.SIASV, schedule, n_sessions=4)
        si = _run_schedule(EngineKind.SI, schedule, n_sessions=4)
        assert _visible_state(sias) == _visible_state(si)

    @given(st.lists(step, max_size=60), st.integers(0, 8))
    @settings(max_examples=25, deadline=None)
    def test_same_index_lookup_results(self, schedule, probe_key):
        sias = _run_schedule(EngineKind.SIASV, schedule, n_sessions=4)
        si = _run_schedule(EngineKind.SI, schedule, n_sessions=4)
        t_a, t_b = sias.begin(), si.begin()
        rows_a = sorted(row for _r, row in
                        sias.lookup(t_a, "accounts", "pk", probe_key))
        rows_b = sorted(row for _r, row in
                        si.lookup(t_b, "accounts", "pk", probe_key))
        sias.commit(t_a)
        si.commit(t_b)
        assert rows_a == rows_b

    @given(st.lists(step, max_size=60))
    @settings(max_examples=20, deadline=None)
    def test_equivalence_survives_maintenance(self, schedule):
        sias = _run_schedule(EngineKind.SIASV, schedule, n_sessions=4)
        si = _run_schedule(EngineKind.SI, schedule, n_sessions=4)
        sias.maintenance()
        si.maintenance()
        assert _visible_state(sias) == _visible_state(si)


class TestRandomisedSingleStream:
    """Serial (single-transaction-at-a-time) fuzz against a dict model."""

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("kind", [EngineKind.SIASV, EngineKind.SI],
                             ids=["sias-v", "si"])
    def test_against_model(self, kind, seed):
        rng = random.Random(seed)
        db = make_accounts_db(kind)
        model: dict[int, tuple] = {}
        for i in range(300):
            key = rng.randint(0, 30)
            op = rng.random()
            txn = db.begin()
            try:
                if op < 0.4:
                    if key not in model:
                        row = (key, f"o{key % 7}", float(i))
                        db.insert(txn, "accounts", row)
                        model[key] = row
                elif op < 0.75:
                    hits = db.lookup(txn, "accounts", "pk", key)
                    if hits:
                        row = (key, f"o{i % 7}", hits[0][1][2] + 1)
                        db.update(txn, "accounts", hits[0][0], row)
                        model[key] = row
                elif op < 0.9:
                    hits = db.lookup(txn, "accounts", "pk", key)
                    if hits:
                        db.delete(txn, "accounts", hits[0][0])
                        del model[key]
                else:
                    db.maintenance()
                db.commit(txn)
            except ReproError:
                db.abort(txn)
                raise
            if i % 60 == 59:
                assert _visible_state(db) == model
        assert _visible_state(db) == model


def _run_schedule_serializable(kind: EngineKind, schedule, n_sessions: int):
    """Like _run_schedule but every transaction runs under SSI."""
    db = make_accounts_db(kind)
    sessions: dict[int, object] = {}
    failed: set[int] = set()
    counter = 0
    for session_id, op, key in schedule:
        session_id %= n_sessions
        if op == "begin":
            if session_id not in sessions:
                sessions[session_id] = db.begin(serializable=True)
            continue
        if op in ("commit", "abort"):
            txn = sessions.pop(session_id, None)
            if txn is not None:
                if op == "commit" and session_id not in failed:
                    db.commit(txn)
                else:
                    db.abort(txn)
            failed.discard(session_id)
            continue
        txn = sessions.get(session_id)
        if txn is None or session_id in failed:
            continue
        counter += 1
        try:
            if op == "insert":
                db.insert(txn, "accounts",
                          (key, f"owner{key % 5}", float(counter)))
            elif op == "update":
                hits = db.lookup(txn, "accounts", "pk", key)
                if hits:
                    ref, row = hits[0]
                    db.update(txn, "accounts", ref,
                              (key, f"owner{counter % 5}", row[2] + 1.0))
            elif op == "delete":
                hits = db.lookup(txn, "accounts", "pk", key)
                if hits:
                    db.delete(txn, "accounts", hits[0][0])
        except SerializationError:
            failed.add(session_id)
    for session_id, txn in list(sessions.items()):
        if session_id in failed:
            db.abort(txn)
        else:
            db.commit(txn)
    return db


class TestSerializableEquivalence:
    """SSI layers identically over both engines: same schedule, same state."""

    @given(st.lists(step, max_size=60))
    @settings(max_examples=25, deadline=None)
    def test_same_visible_state_under_ssi(self, schedule):
        sias = _run_schedule_serializable(EngineKind.SIASV, schedule, 4)
        si = _run_schedule_serializable(EngineKind.SI, schedule, 4)
        assert _visible_state(sias) == _visible_state(si)

    @given(st.lists(step, max_size=60))
    @settings(max_examples=15, deadline=None)
    def test_ssi_state_is_subset_of_si_anomaly_freedom(self, schedule):
        """SSI may abort more than plain SI but never invents rows."""
        plain = _run_schedule(EngineKind.SIASV, schedule, 4)
        strict = _run_schedule_serializable(EngineKind.SIASV, schedule, 4)
        plain_keys = set(_visible_state(plain))
        strict_keys = set(_visible_state(strict))
        # every surviving key under SSI corresponds to an insert the plain
        # run also attempted (identical schedules): no phantom keys
        assert strict_keys <= plain_keys | strict_keys  # sanity
        txn = strict.begin()
        for _ref, row in strict.scan(txn, "accounts"):
            assert isinstance(row[0], int)
        strict.commit(txn)
