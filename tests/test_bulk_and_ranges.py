"""Bulk loading and VID-range scan tests."""

from __future__ import annotations

import pytest

from repro.common.errors import SchemaError
from repro.db.database import EngineKind
from tests.conftest import make_accounts_db


class TestBulkInsert:
    def test_bulk_equals_singles(self, any_db):
        rows = [(i, f"u{i % 3}", float(i)) for i in range(100)]
        txn = any_db.begin()
        refs = any_db.bulk_insert(txn, "accounts", rows)
        any_db.commit(txn)
        assert len(refs) == 100
        txn = any_db.begin()
        assert sorted(r for _x, r in any_db.scan(txn, "accounts")) == rows
        hits = any_db.lookup(txn, "accounts", "pk", 42)
        assert hits[0][1] == (42, "u0", 42.0)
        any_db.commit(txn)

    def test_sias_bulk_vids_are_contiguous(self, sias_db):
        txn = sias_db.begin()
        refs = sias_db.bulk_insert(
            txn, "accounts", [(i, "u", 0.0) for i in range(20)])
        sias_db.commit(txn)
        assert refs == list(range(refs[0], refs[0] + 20))

    def test_bulk_abort_rolls_back(self, any_db):
        txn = any_db.begin()
        any_db.bulk_insert(txn, "accounts",
                           [(i, "u", 0.0) for i in range(10)])
        any_db.abort(txn)
        txn = any_db.begin()
        assert list(any_db.scan(txn, "accounts")) == []
        assert any_db.lookup(txn, "accounts", "pk", 3) == []
        any_db.commit(txn)

    def test_bulk_uncommitted_invisible(self, any_db):
        writer = any_db.begin()
        any_db.bulk_insert(writer, "accounts",
                           [(i, "u", 0.0) for i in range(5)])
        reader = any_db.begin()
        assert list(any_db.scan(reader, "accounts")) == []
        any_db.commit(writer)
        any_db.commit(reader)

    def test_bulk_survives_crash_recovery(self, sias_db):
        from repro.db.recovery import crash, recover
        txn = sias_db.begin()
        sias_db.bulk_insert(txn, "accounts",
                            [(i, "u", float(i)) for i in range(30)])
        sias_db.commit(txn)
        crash(sias_db)
        recover(sias_db)
        txn = sias_db.begin()
        assert len(list(sias_db.scan(txn, "accounts"))) == 30
        sias_db.commit(txn)


class TestVidRangeScan:
    def test_range_returns_span(self, sias_db):
        txn = sias_db.begin()
        refs = sias_db.bulk_insert(
            txn, "accounts", [(i, "u", float(i)) for i in range(50)])
        sias_db.commit(txn)
        txn = sias_db.begin()
        rows = sias_db.scan_vid_range(txn, "accounts", refs[10], refs[20])
        assert [vid for vid, _ in rows] == refs[10:20]
        sias_db.commit(txn)

    def test_range_skips_deleted(self, sias_db):
        txn = sias_db.begin()
        refs = sias_db.bulk_insert(
            txn, "accounts", [(i, "u", 0.0) for i in range(10)])
        sias_db.commit(txn)
        txn = sias_db.begin()
        sias_db.delete(txn, "accounts", refs[5])
        sias_db.commit(txn)
        txn = sias_db.begin()
        rows = sias_db.scan_vid_range(txn, "accounts", 0, 10)
        assert refs[5] not in [vid for vid, _ in rows]
        assert len(rows) == 9
        sias_db.commit(txn)

    def test_range_respects_snapshot(self, sias_db):
        txn = sias_db.begin()
        ref, = sias_db.bulk_insert(txn, "accounts", [(1, "old", 0.0)])
        sias_db.commit(txn)
        reader = sias_db.begin()
        writer = sias_db.begin()
        sias_db.update(writer, "accounts", ref, (1, "new", 1.0))
        sias_db.commit(writer)
        rows = sias_db.scan_vid_range(reader, "accounts", 0, 10)
        assert rows[0][1][1] == "old"
        sias_db.commit(reader)

    def test_si_rejects_vid_ranges(self, si_db):
        txn = si_db.begin()
        with pytest.raises(SchemaError):
            si_db.scan_vid_range(txn, "accounts", 0, 10)
        si_db.commit(txn)


class TestEdgeCases:
    def test_empty_bulk_insert(self, any_db):
        txn = any_db.begin()
        assert any_db.bulk_insert(txn, "accounts", []) == []
        any_db.commit(txn)

    def test_empty_vid_range(self, sias_db):
        txn = sias_db.begin()
        assert sias_db.scan_vid_range(txn, "accounts", 5, 5) == []
        assert sias_db.scan_vid_range(txn, "accounts", 10, 3) == []
        sias_db.commit(txn)

    def test_bulk_insert_schema_validated(self, any_db):
        from repro.common.errors import SchemaError
        txn = any_db.begin()
        with pytest.raises(SchemaError):
            any_db.bulk_insert(txn, "accounts", [("bad", "row", 1.0)])
        any_db.abort(txn)
