"""Unit tests for the blocktrace recorder and the tablespace allocator."""

from __future__ import annotations

import pytest

from repro.common import units
from repro.common.errors import InvalidAddressError, OutOfSpaceError
from repro.storage.flash import FlashDevice
from repro.storage.tablespace import Tablespace
from repro.storage.trace import (
    TraceOp,
    TraceRecorder,
    render_scatter,
    swimlane_locality,
    to_csv,
    write_locality,
)
from tests.conftest import SMALL_FLASH


class TestTraceRecorder:
    def _trace(self, events):
        recorder = TraceRecorder()
        for t, op, lba in events:
            recorder.record(t, op, lba, 1)
        return recorder

    def test_summary_counts(self):
        recorder = self._trace([
            (0, TraceOp.WRITE, 0), (10, TraceOp.WRITE, 1),
            (20, TraceOp.READ, 0), (30, TraceOp.TRIM, 1),
            (40, TraceOp.ERASE, 0)])
        s = recorder.summary()
        assert (s.writes, s.reads, s.trims, s.erases) == (2, 1, 1, 1)
        assert s.write_bytes == 2 * units.DB_PAGE_SIZE
        assert s.span_usec == 40

    def test_empty_summary(self):
        s = TraceRecorder().summary()
        assert s.reads == s.writes == 0
        assert s.span_usec == 0

    def test_filter(self):
        recorder = self._trace([(0, TraceOp.WRITE, 0), (1, TraceOp.READ, 1)])
        assert len(recorder.filter(TraceOp.READ)) == 1

    def test_clear(self):
        recorder = self._trace([(0, TraceOp.WRITE, 0)])
        recorder.clear()
        assert recorder.events == []

    def test_csv_export(self):
        recorder = self._trace([(5, TraceOp.WRITE, 9)])
        csv = to_csv(recorder)
        assert csv.splitlines() == ["time_usec,op,lba,npages", "5,W,9,1"]

    def test_scatter_renders(self):
        recorder = self._trace(
            [(i * 10, TraceOp.WRITE if i % 2 else TraceOp.READ, i * 7)
             for i in range(50)])
        art = render_scatter(recorder, width=40, height=10, title="demo")
        assert "demo" in art
        assert "W" in art and "r" in art

    def test_scatter_empty(self):
        assert "(empty trace)" in render_scatter(TraceRecorder())

    def test_write_locality_sequential(self):
        recorder = self._trace(
            [(i, TraceOp.WRITE, i) for i in range(20)])
        assert write_locality(recorder) == 1.0

    def test_write_locality_scattered(self):
        recorder = self._trace(
            [(i, TraceOp.WRITE, (i * 613) % 1000) for i in range(50)])
        assert write_locality(recorder) < 0.2

    def test_swimlane_locality_interleaved_appends(self):
        # two relations appending alternately: globally non-sequential,
        # but perfect within each 256-page lane
        events = []
        a, b = 0, 256
        for i in range(40):
            if i % 2 == 0:
                events.append((i, TraceOp.WRITE, a))
                a += 1
            else:
                events.append((i, TraceOp.WRITE, b))
                b += 1
        recorder = self._trace(events)
        assert write_locality(recorder) < 0.1
        assert swimlane_locality(recorder) == 1.0

    def test_swimlane_locality_rewrites_score_low(self):
        recorder = self._trace(
            [(i, TraceOp.WRITE, 5) for i in range(20)])  # same page over and over
        assert swimlane_locality(recorder) < 0.1


class TestTablespace:
    def _ts(self, clock, extent=8):
        device = FlashDevice(clock, SMALL_FLASH)
        return Tablespace(device, extent_pages=extent)

    def test_files_get_disjoint_extents(self, clock):
        ts = self._ts(clock)
        a = ts.create_file("a")
        b = ts.create_file("b")
        lba_a = ts.ensure_page(a, 0)
        lba_b = ts.ensure_page(b, 0)
        assert abs(lba_a - lba_b) >= 8  # different extents

    def test_sequential_pages_sequential_lbas(self, clock):
        ts = self._ts(clock)
        f = ts.create_file("f")
        lbas = [ts.ensure_page(f, i) for i in range(8)]
        assert lbas == list(range(lbas[0], lbas[0] + 8))

    def test_growth_allocates_new_extent(self, clock):
        ts = self._ts(clock, extent=4)
        f = ts.create_file("f")
        ts.ensure_page(f, 0)
        assert ts.file_pages(f) == 4
        ts.ensure_page(f, 4)
        assert ts.file_pages(f) == 8

    def test_interleaved_growth_keeps_translation(self, clock):
        ts = self._ts(clock, extent=4)
        a = ts.create_file("a")
        b = ts.create_file("b")
        ts.ensure_page(a, 0)
        ts.ensure_page(b, 0)
        ts.ensure_page(a, 4)  # a's second extent comes after b's first
        assert ts.lba_of(a, 4) > ts.lba_of(b, 0)
        assert ts.lba_of(a, 1) == ts.lba_of(a, 0) + 1

    def test_lba_of_unallocated_raises(self, clock):
        ts = self._ts(clock)
        f = ts.create_file("f")
        with pytest.raises(InvalidAddressError):
            ts.lba_of(f, 0)

    def test_unknown_file_raises(self, clock):
        ts = self._ts(clock)
        with pytest.raises(InvalidAddressError):
            ts.ensure_page(99, 0)

    def test_out_of_space(self, clock):
        ts = self._ts(clock, extent=SMALL_FLASH.total_pages)
        f = ts.create_file("f")
        ts.ensure_page(f, 0)  # takes the whole device
        g = ts.create_file("g")
        with pytest.raises(OutOfSpaceError):
            ts.ensure_page(g, 0)

    def test_total_allocated(self, clock):
        ts = self._ts(clock, extent=4)
        a = ts.create_file("a")
        b = ts.create_file("b")
        ts.ensure_page(a, 0)
        ts.ensure_page(b, 5)
        assert ts.total_allocated_pages() == 4 + 8

    def test_trim_page_reaches_device(self, clock):
        ts = self._ts(clock)
        f = ts.create_file("f")
        lba = ts.ensure_page(f, 0)
        ts.device.write_page(lba, bytes(units.DB_PAGE_SIZE))
        ts.trim_page(f, 0)
        assert ts.device.stats.trims == 1

    def test_file_name(self, clock):
        ts = self._ts(clock)
        f = ts.create_file("rel.orders")
        assert ts.file_name(f) == "rel.orders"
