"""Clock-sweep behaviour after the O(1) intrusive-list rewrite.

The sweep order used to live in a Python list that was rebuilt and scanned
on every install; it is now a circular doubly-linked structure threaded
through the frames.  These tests pin the *observable* second-chance
semantics — victim order, pin handling, eviction stats — so the pointer
surgery can never drift from the seed behaviour.  The frame-replacement
dirtiness fix (``_install`` on a resident key) is covered here too.
"""

from __future__ import annotations

import pytest

from repro.buffer.manager import BufferManager
from repro.common.errors import NoFreeFrameError, PinError
from repro.pages.layout import HeapTuple, XMAX_INFINITY
from repro.pages.slotted import SlottedHeapPage


def _heap_page(page_no: int, tag: int = 0) -> SlottedHeapPage:
    page = SlottedHeapPage(page_no)
    page.insert(HeapTuple(tag, XMAX_INFINITY, False, b"x" * 16))
    return page


@pytest.fixture
def pool4(tablespace) -> BufferManager:
    return BufferManager(tablespace, pool_pages=4)


class TestSecondChance:
    def test_fifo_when_untouched(self, pool4, tablespace):
        """With no re-references the sweep degrades to FIFO."""
        f = tablespace.create_file("f")
        for i in range(4):
            pool4.put_clean(f, i, _heap_page(i, i))
        pool4.put_clean(f, 4, _heap_page(4))
        assert not pool4.is_cached(f, 0)          # oldest went first
        assert all(pool4.is_cached(f, i) for i in (1, 2, 3, 4))
        pool4.put_clean(f, 5, _heap_page(5))
        assert not pool4.is_cached(f, 1)          # then the next oldest

    def test_reference_grants_second_chance(self, pool4, tablespace):
        f = tablespace.create_file("f")
        for i in range(4):
            pool4.put_dirty(f, i, _heap_page(i, i))
        pool4.flush_all()
        # first eviction clears every reference bit, then takes page 0
        pool4.put_clean(f, 4, _heap_page(4))
        assert not pool4.is_cached(f, 0)
        # re-reference page 1: the hit sets its bit again
        pool4.get_page(f, 1)
        pool4.put_clean(f, 5, _heap_page(5))
        assert pool4.is_cached(f, 1)              # survived on second chance
        assert not pool4.is_cached(f, 2)          # unreferenced victim

    def test_replacement_keeps_clock_position(self, pool4, tablespace):
        """Re-installing a resident key must not move it to the tail."""
        f = tablespace.create_file("f")
        for i in range(4):
            pool4.put_clean(f, i, _heap_page(i, i))
        pool4.put_clean(f, 1, _heap_page(1, 99))  # replace in place
        pool4.put_clean(f, 4, _heap_page(4))      # evicts 0 (oldest)
        assert not pool4.is_cached(f, 0)
        pool4.put_clean(f, 5, _heap_page(5))
        # had the replacement re-queued page 1 at the tail, page 2 would
        # have been the victim here
        assert not pool4.is_cached(f, 1)
        assert pool4.is_cached(f, 2)

    def test_drop_of_hand_frame_keeps_sweep_sound(self, pool4, tablespace):
        f = tablespace.create_file("f")
        for i in range(4):
            pool4.put_clean(f, i, _heap_page(i, i))
        pool4.put_clean(f, 4, _heap_page(4))      # hand now points past 0
        for i in (1, 2, 3, 4):
            pool4.drop(f, i)                      # including the hand frame
        for i in range(10, 16):                   # pool refills and churns
            pool4.put_clean(f, i, _heap_page(i))
        assert sum(pool4.is_cached(f, i) for i in range(10, 16)) == 4

    def test_drop_everything_then_reuse(self, pool4, tablespace):
        f = tablespace.create_file("f")
        for i in range(3):
            pool4.put_clean(f, i, _heap_page(i))
        for i in range(3):
            pool4.drop(f, i)
        for i in range(5):
            pool4.put_clean(f, 20 + i, _heap_page(20 + i))
        assert sum(pool4.is_cached(f, 20 + i) for i in range(5)) == 4


class TestPinsUnderSweep:
    def test_all_pinned_raises(self, pool4, tablespace):
        f = tablespace.create_file("f")
        for i in range(4):
            pool4.put_clean(f, i, _heap_page(i))
            pool4.pin(f, i)
        with pytest.raises(NoFreeFrameError):
            pool4.put_clean(f, 4, _heap_page(4))
        # releasing one pin makes the install succeed again
        pool4.unpin(f, 2)
        pool4.put_clean(f, 4, _heap_page(4))
        assert not pool4.is_cached(f, 2)

    def test_sweep_skips_pinned_frames(self, pool4, tablespace):
        f = tablespace.create_file("f")
        for i in range(4):
            pool4.put_clean(f, i, _heap_page(i, i))
        pool4.pin(f, 0)                           # oldest, but untouchable
        pool4.put_clean(f, 4, _heap_page(4))
        assert pool4.is_cached(f, 0)
        assert not pool4.is_cached(f, 1)          # next unpinned victim
        pool4.unpin(f, 0)

    def test_eviction_stats_match_churn(self, pool4, tablespace):
        """Stats semantics unchanged: one eviction per forced install, one
        writeback per dirty victim."""
        f = tablespace.create_file("f")
        for i in range(10):
            pool4.put_dirty(f, i, _heap_page(i, i))
        assert pool4.stats.evictions == 6
        assert pool4.stats.writebacks == 6
        wb = pool4.stats.writebacks
        pool4.flush_all()
        for i in range(20, 30):
            pool4.put_clean(f, i, _heap_page(i))
        assert pool4.stats.evictions == 16
        assert pool4.stats.writebacks == wb + 4   # only the 4 dirty frames


class TestInstallReplacement:
    def test_replacing_dirty_frame_stays_dirty(self, pool4, tablespace):
        """Regression: put_clean over a dirty resident frame used to drop
        the dirty flag, losing the (new) content on eviction."""
        f = tablespace.create_file("f")
        pool4.put_dirty(f, 0, _heap_page(0, 1))
        replacement = _heap_page(0, 2)
        pool4.put_clean(f, 0, replacement)
        assert pool4.is_dirty(f, 0)
        assert pool4.cached_bytes(f, 0) is None
        assert pool4.flush_all() == 1             # replacement reaches disk
        pool4.invalidate_all()
        assert pool4.get_page(f, 0).read(0).xmin == 2

    def test_replacing_clean_frame_stays_clean(self, pool4, tablespace):
        f = tablespace.create_file("f")
        page = _heap_page(0, 1)
        pool4.put_dirty(f, 0, page)
        pool4.flush_all()
        pool4.put_clean(f, 0, page, raw=page.to_bytes())
        assert not pool4.is_dirty(f, 0)
        assert pool4.flush_all() == 0

    def test_replacing_pinned_frame_raises(self, pool4, tablespace):
        f = tablespace.create_file("f")
        pool4.put_dirty(f, 0, _heap_page(0))
        pool4.pin(f, 0)
        with pytest.raises(PinError):
            pool4.put_clean(f, 0, _heap_page(0, 9))
        pool4.unpin(f, 0)

    def test_dirty_set_tracks_replacement(self, pool4, tablespace):
        f = tablespace.create_file("f")
        pool4.put_dirty(f, 0, _heap_page(0))
        assert pool4.dirty_keys() == [(f, 0)]
        pool4.put_dirty(f, 0, _heap_page(0, 5))   # replace dirty with dirty
        assert pool4.dirty_keys() == [(f, 0)]     # no duplicates
        pool4.flush_all()
        assert pool4.dirty_keys() == []
