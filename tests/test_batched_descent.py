"""Batched chain descent must be observably identical to the serial walk.

``descend_visible_batch`` fetches predecessor chains level-synchronously
(one ``read_many`` per chain level) instead of one read per hop.  The
optimisation is only legal if the *resolutions* and the *stats accounting*
match the serial ``resolve_visible`` exactly — these tests build version
chains of mixed depth (updates, deletes, uncommitted writers, repeated
VIDs) and compare both code paths on the same engine state.
"""

from __future__ import annotations

from repro.core.engine import SiasVStats
from repro.core.scan import vidmap_scan


def _build_chains(engine, txn_mgr, items=12, rounds=3):
    """items with chain depths 0..rounds, one deleted, one never-committed."""
    txn = txn_mgr.begin()
    vids = [engine.insert(txn, bytes([i + 1]) * 64) for i in range(items)]
    txn_mgr.commit(txn)
    for r in range(rounds):
        txn = txn_mgr.begin()
        for vid in vids[: items - r * (items // rounds)]:
            engine.update(txn, vid, bytes([r + 1]) * 96)
        txn_mgr.commit(txn)
    txn = txn_mgr.begin()
    engine.delete(txn, vids[0])
    txn_mgr.commit(txn)
    return vids


class TestBatchedDescentEquivalence:
    def test_resolutions_match_serial(self, sias_engine, txn_mgr):
        vids = _build_chains(sias_engine, txn_mgr)
        old_reader = txn_mgr.begin()  # mid-history snapshot walks chains
        txn = txn_mgr.begin()
        sias_engine.update(txn, vids[1], b"z" * 32)
        txn_mgr.commit(txn)
        for reader in (old_reader, txn_mgr.begin()):
            probe = vids + [vids[0], 10_000]  # repeated VID + unknown VID
            serial = [sias_engine.resolve_visible(reader, v) for v in probe]
            batched = sias_engine.resolve_visible_many(reader, probe)
            assert batched == serial
        txn_mgr.commit(old_reader)

    def test_stats_accounting_matches_serial(self, sias_engine, txn_mgr):
        vids = _build_chains(sias_engine, txn_mgr)
        old_reader = txn_mgr.begin()
        txn = txn_mgr.begin()
        for vid in vids[1:5]:  # vids[0] is tombstoned
            sias_engine.update(txn, vid, b"w" * 48)
        txn_mgr.commit(txn)

        probe = vids + [99_999]
        sias_engine.stats = SiasVStats()
        for vid in probe:
            sias_engine.resolve_visible(old_reader, vid)
        serial = sias_engine.stats

        sias_engine.stats = SiasVStats()
        sias_engine.resolve_visible_many(old_reader, probe)
        batched = sias_engine.stats

        assert batched.resolves == serial.resolves
        assert batched.chain_hops == serial.chain_hops
        assert batched.max_chain_hops == serial.max_chain_hops
        txn_mgr.commit(old_reader)

    def test_read_many_matches_serial_reads(self, sias_engine, txn_mgr):
        vids = _build_chains(sias_engine, txn_mgr)
        reader = txn_mgr.begin()
        probe = vids + [vids[0], 77_777]
        serial = [sias_engine.read(reader, v) for v in probe]
        reads_after_serial = reader.reads
        sias_engine.stats = SiasVStats()
        batched = sias_engine.read_many(reader, probe)
        assert batched == serial
        assert serial[probe.index(vids[0])] is None  # tombstone reads None
        assert reader.reads == reads_after_serial + len(probe)
        txn_mgr.commit(reader)

    def test_uncommitted_writer_invisible_to_batch(self, sias_engine,
                                                   txn_mgr):
        vids = _build_chains(sias_engine, txn_mgr, items=6, rounds=2)
        writer = txn_mgr.begin()
        sias_engine.update(writer, vids[2], b"uncommitted" * 4)
        reader = txn_mgr.begin()
        serial = [sias_engine.resolve_visible(reader, v) for v in vids]
        batched = sias_engine.resolve_visible_many(reader, vids)
        assert batched == serial
        assert batched[2] is not None
        assert batched[2][0].payload != b"uncommitted" * 4
        txn_mgr.commit(writer)
        txn_mgr.commit(reader)

    def test_vidmap_scan_matches_serial_resolution(self, sias_engine,
                                                   txn_mgr):
        vids = _build_chains(sias_engine, txn_mgr)
        sias_engine.store.seal_working_page()
        reader = txn_mgr.begin()
        expected = {}
        for vid in vids:
            resolved = sias_engine.resolve_visible(reader, vid)
            if resolved is not None and not resolved[0].tombstone:
                expected[vid] = resolved[0]
        scanned = dict(vidmap_scan(sias_engine, reader, batch_size=4))
        assert scanned == expected
        txn_mgr.commit(reader)
