"""Space reclamation: page-granular garbage collection for the append store.

Following the paper's discussion section, GC (i) finds victim pages,
(ii) re-inserts live tuple versions and (iii) discards dead ones, handing
whole pages back to the device as trims — a deterministic, DBMS-driven
erase pattern instead of opaque device-side background GC.

Deadness is derived purely from the chain structure and the transaction
horizon: walking an item's chain from the entrypoint, the first version
committed *before* the horizon is visible to every present and future
snapshot; everything **older** than it is dead.  A committed tombstone at
the entrypoint kills the whole item (and frees its VIDmap slot).  Versions
left unreachable by aborted transactions are dead by construction — they are
simply never reached by any chain walk.

Because sealed pages are immutable, a live version can only be *relocated*
when nothing points at it physically — i.e. it is its item's entrypoint
(only the mutable VIDmap references it) and its whole predecessor chain is
dead (the relocated copy carries ``pred = NULL``).  Pages whose records are
all dead-or-relocatable are reclaimed; others are left for a later pass,
which matches log-structured reality: cold mixed pages wait until the
horizon advances.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ReadUnwrittenError
from repro.core.engine import SiasVEngine
from repro.pages.append_page import AppendPage
from repro.pages.layout import Tid, VersionRecord


@dataclass
class GcItemOutcome:
    """Index-maintenance payload for one affected data item."""

    vid: int
    dead_payloads: list[bytes] = field(default_factory=list)
    live_payloads: list[bytes] = field(default_factory=list)
    removed_entirely: bool = False


@dataclass
class GcReport:
    """What one GC pass did."""

    horizon: int = 0
    pages_examined: int = 0
    pages_reclaimed: int = 0
    records_discarded: int = 0
    records_relocated: int = 0
    items_removed: int = 0
    items: dict[int, GcItemOutcome] = field(default_factory=dict)

    def outcome_for(self, vid: int) -> GcItemOutcome:
        """Get-or-create the outcome entry for ``vid``."""
        if vid not in self.items:
            self.items[vid] = GcItemOutcome(vid)
        return self.items[vid]


class GarbageCollector:
    """One-pass chain-walking collector over an engine's append store."""

    def __init__(self, engine: SiasVEngine) -> None:
        self.engine = engine

    def collect(self) -> GcReport:
        """Run one full GC pass; returns the report for index pruning.

        The pass runs with *every* stripe latch of the engine held
        (``holding_all``): concurrent writers are quiesced while chains are
        classified, entrypoints swung and pages reclaimed.  Readers are
        excluded at a higher level — the server dispatches MAINTENANCE on
        its exclusive lane, so no command overlaps a reclaim that could
        recycle a page a lock-free reader is descending into.
        """
        engine = self.engine
        # Capture the horizon *before* taking the stripe latches: reading
        # it inside would acquire the txn mutex (hierarchy level 2) while
        # holding level-5 latches — an upward acquisition the lock
        # hierarchy forbids.  A horizon captured a moment earlier is
        # strictly conservative: it can only under-estimate what is dead,
        # never reclaim a version some snapshot still needs.
        horizon = engine.txn_mgr.horizon_txid()
        with engine.latches.holding_all():
            report = GcReport(horizon=horizon)
            live: dict[Tid, VersionRecord] = {}
            relocatable: set[Tid] = set()
            dead_reachable: dict[Tid, VersionRecord] = {}
            self._classify_chains(report, live, relocatable, dead_reachable)
            self._sweep_pages(report, live, relocatable)
            return report

    # -- phase 1: chain classification ----------------------------------------

    def _classify_chains(self, report: GcReport,
                         live: dict[Tid, VersionRecord],
                         relocatable: set[Tid],
                         dead_reachable: dict[Tid, VersionRecord]) -> None:
        engine = self.engine
        clog = engine.txn_mgr.clog
        horizon = report.horizon
        for vid, entry_tid in list(engine.vidmap.entries()):
            chain: list[tuple[Tid, VersionRecord]] = []
            tid: Tid | None = entry_tid
            severed_at = engine.chain_severed.get(vid)
            while tid is not None:
                try:
                    record = engine.store.read(tid)
                except ReadUnwrittenError:
                    # The pred pointer dangles into a page crash recovery
                    # reclaimed (a torn seal, trimmed during rescan).  The
                    # tail below this point was never durable; stop the
                    # walk as a severed marker would.
                    break
                chain.append((tid, record))
                if tid == severed_at:
                    # An earlier pass discarded (and index-pruned) the tail
                    # below this record; its pred pointer may dangle into a
                    # reclaimed-and-recycled page, so the walk stops here.
                    break
                tid = record.pred
            if not chain:
                continue
            cutoff = self._horizon_visible_index(chain, clog, horizon)
            entry_record = chain[0][1]
            if (cutoff == 0 and entry_record.tombstone
                    and clog.is_committed(entry_record.create_ts)):
                # Deleted and the deletion is visible to everyone: the whole
                # item is dead; free its VIDmap slot.
                outcome = report.outcome_for(vid)
                outcome.removed_entirely = True
                for dtid, drecord in chain:
                    dead_reachable[dtid] = drecord
                    if not drecord.tombstone:
                        outcome.dead_payloads.append(drecord.payload)
                engine.vidmap.set(vid, None)
                engine.chain_severed.pop(vid, None)
                report.items_removed += 1
                continue
            last_live = len(chain) - 1 if cutoff is None else cutoff
            for i, (ctid, crecord) in enumerate(chain):
                if i <= last_live:
                    live[ctid] = crecord
                else:
                    dead_reachable[ctid] = crecord
            if len(chain) > last_live + 1:
                outcome = report.outcome_for(vid)
                for _ctid, crecord in chain[last_live + 1:]:
                    if not crecord.tombstone:
                        outcome.dead_payloads.append(crecord.payload)
                for _ctid, crecord in chain[:last_live + 1]:
                    if not crecord.tombstone:
                        outcome.live_payloads.append(crecord.payload)
                # the tail is logically discarded right now: sever the
                # chain so no later walk follows the cutoff's pred pointer
                engine.chain_severed[vid] = chain[last_live][0]
            if cutoff == 0 and not entry_record.tombstone:
                # Entrypoint is visible at the horizon: its whole pred chain
                # is (now) dead, so only the VIDmap references it.
                relocatable.add(entry_tid)

    @staticmethod
    def _horizon_visible_index(chain: list[tuple[Tid, VersionRecord]],
                               clog, horizon: int) -> int | None:
        """Index of the newest version visible to every future snapshot."""
        for i, (_tid, record) in enumerate(chain):
            if (record.create_ts < horizon
                    and clog.is_committed(record.create_ts)):
                return i
        return None

    # -- phase 2: page sweep ---------------------------------------------------------

    def _sweep_pages(self, report: GcReport,
                     live: dict[Tid, VersionRecord],
                     relocatable: set[Tid]) -> None:
        engine = self.engine
        trigger = engine.config.gc_dead_ratio_trigger
        for page_no in engine.store.sealed_page_nos():
            report.pages_examined += 1
            count = engine.store.page_record_count(page_no)
            slots = [Tid(page_no, slot) for slot in range(count)]
            live_slots = [t for t in slots if t in live]
            dead_count = count - len(live_slots)
            if dead_count == 0:
                continue
            movable = [t for t in live_slots if t in relocatable]
            if len(movable) < len(live_slots):
                # Some live record is pinned by physical references from a
                # newer version's pred pointer: the page must wait.
                continue
            if dead_count / count < trigger and live_slots:
                continue  # not dirty enough to pay the relocation writes
            page = engine.store.buffer.get_page(engine.store.file_id,
                                                page_no)
            assert isinstance(page, AppendPage)
            for tid in movable:
                record = page.read(tid.slot)
                copy = VersionRecord(create_ts=record.create_ts,
                                     vid=record.vid, pred=None,
                                     tombstone=record.tombstone,
                                     payload=record.payload)
                new_tid = engine.store.append(copy)
                engine.vidmap.set(record.vid, new_tid)
                engine.chain_severed.pop(record.vid, None)
                report.records_relocated += 1
            report.records_discarded += dead_count
            engine.store.reclaim_page(page_no)
            report.pages_reclaimed += 1
