"""Scans: the VIDmap-mediated selective scan vs. the traditional full scan.

The paper's Algorithm 1 scans the VIDmap first and, per data item, fetches
only the entrypoint (plus predecessors until visibility) — a *selective*,
highly parallelisable access pattern that SSDs reward.  The traditional
HDD-era scan reads the complete relation sequentially and checks every tuple
version.  Both are implemented here against the same engine so the scan
ablation (experiment A3) can compare them with identical data:

* :func:`vidmap_scan` — batches entrypoint fetches so distinct pages travel
  through the device's parallel channels together.
* :func:`full_relation_scan` — reads every sealed page front to back and
  visibility-checks every version it finds (candidate versions must still be
  re-resolved against the chain, as the paper describes, since a page holds
  arbitrary old versions).
"""

from __future__ import annotations

from typing import Iterator

from repro.core.engine import SiasVEngine
from repro.pages.append_page import AppendPage
from repro.pages.layout import Tid, VersionRecord
from repro.txn.manager import Transaction

#: Entrypoint fetches grouped per device round-trip.
SCAN_BATCH = 64


def vidmap_scan(engine: SiasVEngine, txn: Transaction,
                batch_size: int = SCAN_BATCH,
                ) -> Iterator[tuple[int, VersionRecord]]:
    """Yield ``(vid, visible_record)`` via the VIDmap (Algorithm 1).

    Entrypoints are fetched in parallel batches and items whose entrypoint
    is not visible descend their predecessor chains *level-synchronously*:
    each chain level of the whole batch is one ``read_many`` round-trip, so
    the descent exploits the device's channel parallelism just like the
    entrypoint fetches (instead of one serial read per hop).  Tombstoned
    (deleted) items are skipped.
    """
    pending: list[tuple[int, Tid]] = []

    def _drain(batch: list[tuple[int, Tid]],
               ) -> Iterator[tuple[int, VersionRecord]]:
        results, _depths, hops = engine.descend_visible_batch(
            txn, [tid for _vid, tid in batch])
        engine.stats.add(chain_hops=hops)
        for (vid, _tid), result in zip(batch, results):
            if result is not None and not result[0].tombstone:
                yield vid, result[0]

    for vid, tid in engine.vidmap.entries():
        pending.append((vid, tid))
        if len(pending) >= batch_size:
            yield from _drain(pending)
            pending = []
    if pending:
        yield from _drain(pending)


def full_relation_scan(engine: SiasVEngine, txn: Transaction,
                       ) -> Iterator[tuple[int, VersionRecord]]:
    """Yield ``(vid, visible_record)`` by reading the whole relation.

    Every sealed page is fetched (sequential, no selectivity) and every
    version found becomes a *candidate*: it is emitted only if it equals the
    version the chain resolution would return — the traditional scan's
    per-candidate visibility confirmation.

    Each VID's chain is resolved at most once.  The resolution outcome is
    cached — including "settled invisible" (nothing visible, or only a
    tombstone) and "visible at some other TID" — so later candidates of an
    already-settled VID skip the redundant descent; the skips are counted
    in ``engine.stats.scan_descents_saved``.
    """
    emitted: set[int] = set()
    settled_invisible: set[int] = set()
    visible_at: dict[int, Tid] = {}

    def _pages() -> Iterator[tuple[int, AppendPage]]:
        for page_no in engine.store.sealed_page_nos():
            page = engine.store.buffer.get_page(engine.store.file_id,
                                                page_no)
            assert isinstance(page, AppendPage)
            yield page_no, page
        # versions still only in open (unsealed) pages
        for page_no in engine.store.open_page_nos():
            open_page = engine.store.open_page(page_no)
            assert open_page is not None
            yield page_no, open_page

    for page_no, page in _pages():
        for slot, candidate in page.records():
            vid = candidate.vid
            if vid in emitted or vid in settled_invisible:
                engine.stats.add(scan_descents_saved=1)
                continue
            here = Tid(page_no, slot)
            cached = visible_at.get(vid)
            if cached is not None:
                engine.stats.add(scan_descents_saved=1)
                if cached == here:
                    del visible_at[vid]
                    emitted.add(vid)
                    yield vid, candidate
                continue
            resolved = engine.resolve_visible(txn, vid)
            if resolved is None:
                settled_invisible.add(vid)
                continue
            record, tid = resolved
            if record.tombstone:
                settled_invisible.add(vid)
            elif tid == here:
                emitted.add(vid)
                yield vid, record
            else:
                visible_at[vid] = tid
