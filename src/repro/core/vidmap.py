"""The VIDmap: VID → entrypoint-TID mapping vector.

One VIDmap exists per relation and serves **all** access paths (scans and
every index).  It is the hashtable variant of the paper's Section on data
structures: page-sized buckets of fixed slot count, bucket number =
``VID // slots_per_bucket``, slot = ``VID % slots_per_bucket`` — exact-match
lookups in O(1), no overflow buckets (each VID has exactly one TID record),
VID-range queries walk buckets sequentially.

Following the prototype ("the SIAS data structures are only persisted during
shutdown; all information required for reconstruction is stored on each
tuple version"), the VIDmap lives in memory during normal operation — its
updates cost **no device I/O**, which is precisely why moving the entrypoint
pointer on every update is cheap.  :meth:`VidMap.persist` writes the buckets
through a tablespace file at shutdown and :meth:`VidMap.load` restores them;
crash recovery instead rebuilds the map from the append pages (see
``SiasVEngine.reconstruct_vidmap``).
"""

from __future__ import annotations

import threading
from typing import Iterator

from repro.buffer.manager import BufferManager
from repro.common import units
from repro.common.errors import NoSuchItemError
from repro.pages.layout import Tid
from repro.pages.vidmap_page import VidMapPage


class VidMap:
    """In-memory bucketed vector of entrypoint TIDs."""

    def __init__(self, slots_per_bucket: int = 1024,
                 page_size: int = units.DB_PAGE_SIZE) -> None:
        self.slots_per_bucket = slots_per_bucket
        self.page_size = page_size
        self._buckets: list[VidMapPage] = []
        self.lookups = 0
        self.updates = 0
        # Growth-only mutex: appending new buckets is check-then-append and
        # must not race (two workers would misnumber buckets).  Slot get/set
        # on existing buckets stays lock-free — single list/array element
        # reads and writes are atomic under the GIL, and per-item stripe
        # latches in the engine already serialise same-VID writers.
        self._grow_mu = threading.Lock()

    # -- position arithmetic (the paper's DIFF / MOD operations) ----------------

    def bucket_of(self, vid: int) -> int:
        """``BucketNr = VID // slots_per_bucket``."""
        return vid // self.slots_per_bucket

    def slot_of(self, vid: int) -> int:
        """``TID_pos = VID mod slots_per_bucket``."""
        return vid % self.slots_per_bucket

    # -- access -------------------------------------------------------------------

    def get(self, vid: int) -> Tid | None:
        """Entrypoint TID of ``vid`` (None for never-set or cleared slots)."""
        if vid < 0:
            raise NoSuchItemError(f"negative VID {vid}")
        self.lookups += 1
        bucket = self.bucket_of(vid)
        if bucket >= len(self._buckets):
            return None
        return self._buckets[bucket].get(self.slot_of(vid))

    def set(self, vid: int, tid: Tid | None) -> None:
        """Move the entrypoint of ``vid`` (allocating buckets on demand).

        A new bucket is allocated after each ``slots_per_bucket`` consecutive
        VIDs; since VIDs are assigned sequentially the buckets fill in order.
        """
        if vid < 0:
            raise NoSuchItemError(f"negative VID {vid}")
        self.updates += 1
        bucket = self.bucket_of(vid)
        if bucket >= len(self._buckets):
            with self._grow_mu:
                while bucket >= len(self._buckets):
                    self._buckets.append(
                        VidMapPage(len(self._buckets), self.slots_per_bucket,
                                   self.page_size))
        self._buckets[bucket].set(self.slot_of(vid), tid)

    def entries(self) -> Iterator[tuple[int, Tid]]:
        """All ``(vid, entrypoint)`` pairs in VID order — the scan path.

        Walks each bucket's occupied slots in one batched pass
        (:meth:`VidMapPage.items`) rather than probing every slot through
        the bounds-checked ``get``.
        """
        for bucket_no, bucket in enumerate(self._buckets):
            base = bucket_no * self.slots_per_bucket
            for slot, tid in bucket.items():
                yield base + slot, tid

    def entries_from(self, start: int) -> Iterator[tuple[int, Tid]]:
        """``(vid, entrypoint)`` pairs with ``vid >= start``, in VID order.

        The resume point of cursored scans: seeks straight to the bucket
        holding ``start`` instead of replaying the map from VID 0.
        """
        start = max(0, start)
        for bucket_no in range(self.bucket_of(start), len(self._buckets)):
            bucket = self._buckets[bucket_no]
            base = bucket_no * self.slots_per_bucket
            first = start - base if base < start else 0
            for slot, tid in bucket.items():
                if slot >= first:
                    yield base + slot, tid

    def entry_batches(self, start: int,
                      size: int) -> Iterator[list[tuple[int, Tid]]]:
        """``(vid, entrypoint)`` pairs with ``vid >= start`` in lists of up
        to ``size`` — the vectorized scan's feed.  Each bucket contributes
        one batched comprehension instead of a per-slot generator resume.
        """
        start = max(0, start)
        batch: list[tuple[int, Tid]] = []
        for bucket_no in range(self.bucket_of(start), len(self._buckets)):
            bucket = self._buckets[bucket_no]
            base = bucket_no * self.slots_per_bucket
            first = start - base
            if first > 0:
                batch.extend([(base + slot, tid)
                              for slot, tid in bucket.items()
                              if slot >= first])
            else:
                batch.extend([(base + slot, tid)
                              for slot, tid in bucket.items()])
            while len(batch) >= size:
                yield batch[:size]
                batch = batch[size:]
        if batch:
            yield batch

    def vid_range(self, lo: int, hi: int) -> Iterator[tuple[int, Tid]]:
        """``(vid, entrypoint)`` pairs with lo ≤ vid < hi (range query)."""
        for vid in range(max(0, lo), hi):
            tid = self.get(vid)
            if tid is not None:
                yield vid, tid

    # -- size accounting -------------------------------------------------------------

    @property
    def bucket_count(self) -> int:
        """Number of allocated buckets."""
        return len(self._buckets)

    def memory_bytes(self) -> int:
        """Resident footprint modelled as bucket pages."""
        return len(self._buckets) * self.page_size

    def item_count(self) -> int:
        """Number of live (non-cleared) VID slots."""
        return sum(bucket.occupied() for bucket in self._buckets)

    # -- persistence (shutdown path) ----------------------------------------------------

    def persist(self, buffer: BufferManager, file_id: int) -> int:
        """Write every bucket to ``file_id`` pages; returns pages written."""
        for bucket in self._buckets:
            buffer.tablespace.ensure_page(file_id, bucket.page_no)
            buffer.put_dirty(file_id, bucket.page_no, bucket)
        return buffer.flush_batch(
            [(file_id, b.page_no) for b in self._buckets])

    @classmethod
    def load(cls, buffer: BufferManager, file_id: int, bucket_count: int,
             slots_per_bucket: int = 1024,
             page_size: int = units.DB_PAGE_SIZE) -> "VidMap":
        """Read ``bucket_count`` buckets back from a tablespace file."""
        vidmap = cls(slots_per_bucket, page_size)
        pages = buffer.get_pages(file_id, list(range(bucket_count)))
        for page in pages:
            if not isinstance(page, VidMapPage):
                raise NoSuchItemError(
                    f"page {page.page_no} in VIDmap file is {type(page)}")
            vidmap._buckets.append(page)
        return vidmap
