"""Vectorized scan/aggregate operators — the execution layer that makes
the "V" of SIAS-V pay off on reads.

The tuple-at-a-time scan (:mod:`repro.core.scan`) resolves visibility one
candidate at a time and materialises a full :class:`VersionRecord` per
emitted row.  On a sealed VECTOR (PAX) page that wastes the layout: the
creation timestamps already sit in one contiguous mini-column, so a whole
page can be visibility-checked in a single pass.  This module routes
VECTOR pages through page-at-a-time *kernels*:

1. **Batch visibility** — :meth:`Snapshot.visibility_bitmap` over the
   page's timestamp vector yields a visibility bitmap (bit ``i`` = slot
   ``i`` visible), one predicate pass instead of N ``resolve_visible``
   calls.  The per-timestamp verdict memo is shared across every page of
   the scan.
2. **Predicate pushdown** — equality/range predicates on fixed-width
   columns are probed straight out of the payload heap at a fixed byte
   offset (:meth:`RowCodec.fixed_field` + :meth:`AppendPage.probe_payload`),
   producing a selection verdict that is combined with the visibility
   bitmap *before* any ``VersionRecord`` or row is materialised.
   Invisible and non-matching versions are never decoded.
3. **Never-materialize operators** — ``count`` touches only the metadata
   vectors; ``sum``/``min``/``max`` touch one probed field per surviving
   slot; filtered scans decode exactly the emitted rows.

VIDs whose entrypoint slot loses visibility fall back to the existing
level-synchronous chain descent (:meth:`SiasVEngine.descend_visible_batch`)
starting from the entrypoint's predecessor; entries living on open or NSM
pages take the same fallback from the entrypoint itself — NSM behaviour is
unchanged.  Results are emitted in VID order either way, which is what the
cursored batch scan (``after``/``limit``) relies on.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from itertools import compress, repeat
from typing import Callable, Iterator, Protocol

from repro.common.config import PageLayout
from repro.common.errors import SchemaError
from repro.core.engine import SiasVEngine
from repro.pages.append_page import AppendPage
from repro.pages.layout import FLAG_TOMBSTONE, Tid
from repro.txn.manager import Transaction

#: VIDmap entries resolved per kernel round (bounds buffered memory and
#: groups entrypoint pages into one buffer fetch).  Large enough that a
#: sealed page's slots land in one round, so its column passes run once.
VEC_BATCH = 1024

_OPS: dict[str, Callable[[object, object], bool]] = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

#: Aggregate operators understood by :func:`vec_aggregate`.
AGGREGATE_OPS = ("count", "sum", "min", "max")


class _Codec(Protocol):
    """The duck type vecscan needs from :class:`repro.db.row.RowCodec`."""

    schema: object

    def decode(self, data: bytes) -> tuple: ...

    def fixed_field(self, name: str) -> tuple[int, object] | None: ...


@dataclass(frozen=True)
class Predicate:
    """One pushdown-able comparison: ``column <op> value``."""

    column: str
    op: str
    value: object

    @staticmethod
    def normalize(where: object) -> "Predicate | None":
        """Accept a :class:`Predicate` or a ``(column, op, value)`` tuple."""
        if where is None:
            return None
        if isinstance(where, Predicate):
            return where
        if (isinstance(where, (tuple, list)) and len(where) == 3
                and isinstance(where[0], str) and isinstance(where[1], str)):
            return Predicate(where[0], where[1], where[2])
        raise SchemaError(
            f"predicate must be (column, op, value), got {where!r}")


class _CompiledPredicate:
    """A predicate bound to one codec: row check + optional page probe."""

    __slots__ = ("codec", "position", "compare", "value", "probe")

    def __init__(self, codec: _Codec, pred: Predicate) -> None:
        self.codec = codec
        self.position = codec.schema.position(pred.column)
        compare = _OPS.get(pred.op)
        if compare is None:
            raise SchemaError(
                f"unknown predicate operator {pred.op!r} "
                f"(expected one of {sorted(_OPS)})")
        self.compare = compare
        self.value = pred.value
        self.probe = codec.fixed_field(pred.column)

    def matches_row(self, row: tuple) -> bool:
        return self.compare(row[self.position], self.value)

    def matches_page(self, page: AppendPage, slot: int) -> bool:
        """Evaluate against an undecoded slot, probing when possible."""
        if self.probe is not None:
            value = page.probe_payload(slot, *self.probe)
            if value is not None:
                return self.compare(value, self.value)
        row = self.codec.decode(page.payload_slice(slot))
        return self.compare(row[self.position], self.value)

    def page_bitmap(self, page: AppendPage) -> tuple[int, int] | None:
        """``(match_bits, unknown_bits)`` from one column pass, or None.

        ``match_bits`` has bit ``i`` set when slot ``i``'s probed value
        satisfies the predicate; ``unknown_bits`` marks slots whose
        payload was too short to probe (evaluate those with
        :meth:`matches_page`).  None when the column can't be probed —
        no fixed offset, or a record-mode/NSM page.
        """
        if self.probe is None:
            return None
        column = page.probe_column(*self.probe)
        if column is None:
            return None
        compare = self.compare
        value = self.value
        match = 0
        unknown = 0
        if None in column:
            # short payloads present: per-slot pass tracking the unknowns
            bit = 1
            for probed in column:
                if probed is None:
                    unknown |= bit
                elif compare(probed, value):
                    match |= bit
                bit <<= 1
        else:
            # map/compress run the comparison column-at-a-time in C; the
            # Python loop only touches the matching slots
            for slot in compress(range(len(column)),
                                 map(compare, column, repeat(value))):
                match |= 1 << slot
        return match, unknown


def row_matcher(codec: _Codec,
                where: object) -> Callable[[tuple], bool] | None:
    """Decoded-row predicate check (the non-vectorized engines' path)."""
    pred = Predicate.normalize(where)
    if pred is None:
        return None
    return _CompiledPredicate(codec, pred).matches_row


def row_projection(codec: _Codec,
                   columns: object) -> Callable[[tuple], tuple] | None:
    """Decoded-row column projection; None when selecting whole rows."""
    if columns is None:
        return None
    positions = [codec.schema.position(name) for name in columns]
    return lambda row: tuple(row[i] for i in positions)


def fold_values(op: str, values: Iterator[object]) -> object:
    """Fold an aggregate over a value stream (shared by both engines)."""
    if op == "sum":
        return sum(values)
    if op == "min":
        return min(values, default=None)
    if op == "max":
        return max(values, default=None)
    raise SchemaError(
        f"unknown aggregate {op!r} (expected one of {AGGREGATE_OPS})")


# -- extraction ---------------------------------------------------------------------

def _extractors(codec: _Codec, columns: object,
                ) -> tuple[Callable[[AppendPage, int], object],
                           Callable[[tuple], object] | None,
                           Callable[[AppendPage], list | None] | None]:
    """``(from_page, from_row, page_values)`` per extraction mode.

    * ``columns is None`` — whole decoded rows.
    * ``columns`` a list — projected tuples; all-fixed projections are
      probed straight off the page, never decoding the row.
    * ``columns is _COUNT_ONLY`` — no value at all (``from_row`` is None
      and the fallback path skips the row decode when unfiltered).
    * ``columns`` a single string — that column's scalar (aggregates).

    ``page_values`` (None when the mode can't use it) extracts the whole
    page's values in one column pass: element ``slot`` is the emitted
    value, or None where the slot needs the per-slot ``from_page``
    fallback (short payload).  It returns None outright on pages without
    a probe-able heap (record-mode seals).
    """
    if columns is _COUNT_ONLY:
        return (lambda page, slot: True), None, None
    if columns is None:
        return ((lambda page, slot: codec.decode(page.payload_slice(slot))),
                (lambda row: row), None)
    if isinstance(columns, str):
        position = codec.schema.position(columns)
        probe = codec.fixed_field(columns)
        if probe is not None:
            offset, fmt = probe

            def from_page(page: AppendPage, slot: int) -> object:
                value = page.probe_payload(slot, offset, fmt)
                if value is None:  # short payload: fall back to a decode
                    value = codec.decode(page.payload_slice(slot))[position]
                return value

            def page_values(page: AppendPage) -> list | None:
                return page.probe_column(offset, fmt)
        else:
            def from_page(page: AppendPage, slot: int) -> object:
                return codec.decode(page.payload_slice(slot))[position]

            page_values = None
        return from_page, (lambda row: row[position]), page_values
    positions = [codec.schema.position(name) for name in columns]
    probes = [codec.fixed_field(name) for name in columns]

    def project(row: tuple) -> tuple:
        return tuple(row[i] for i in positions)

    if probes and all(p is not None for p in probes):
        def from_page(page: AppendPage, slot: int) -> object:
            out = []
            for offset, fmt in probes:  # type: ignore[misc]
                value = page.probe_payload(slot, offset, fmt)
                if value is None:
                    return project(codec.decode(page.payload_slice(slot)))
                out.append(value)
            return tuple(out)

        def page_values(page: AppendPage) -> list | None:
            cols = [page.probe_column(offset, fmt)
                    for offset, fmt in probes]  # type: ignore[misc]
            if any(col is None for col in cols):
                return None
            # a None element = short payload in that slot: per-slot fallback
            return [None if None in row else row for row in zip(*cols)]
    else:
        def from_page(page: AppendPage, slot: int) -> object:
            return project(codec.decode(page.payload_slice(slot)))

        page_values = None
    return from_page, project, page_values


class _CountOnly:
    """Sentinel: emit existence only, never touch payload bytes."""


_COUNT_ONLY = _CountOnly()


# -- the scan driver ---------------------------------------------------------------

_MISSING = object()  # sentinel distinguishing "not cached" from cached None


def _drive(engine: SiasVEngine, codec: _Codec, txn: Transaction,
           columns: object, cpred: _CompiledPredicate | None,
           after_vid: int | None) -> Iterator[tuple[int, object]]:
    """Yield ``(vid, value)`` in VID order through the page kernels."""
    for chunk in _drive_chunks(engine, codec, txn, columns, cpred,
                               after_vid):
        yield from chunk


def _drive_chunks(engine: SiasVEngine, codec: _Codec, txn: Transaction,
                  columns: object, cpred: _CompiledPredicate | None,
                  after_vid: int | None) -> Iterator[list]:
    """The chunked feed under :func:`_drive`: one emitted list per kernel
    round (``vec_count`` consumes the lists whole, by length)."""
    extractors = _extractors(codec, columns)
    memo: dict[int, bool] = {}  # per-timestamp visibility, scan-wide
    # per-page bitmaps, scan-wide: sealed pages are immutable and the
    # snapshot is fixed, so a page revisited by a later round (entrypoints
    # scatter after updates) reuses its bitmaps instead of re-running the
    # column passes.  These are ints — a few bytes per touched page.
    vis_cache: dict[int, int] = {}
    sel_cache: dict[int, tuple[int, int] | None] = {}
    start = 0 if after_vid is None else after_vid + 1
    for batch in engine.vidmap.entry_batches(start, VEC_BATCH):
        yield _drain(engine, codec, txn, batch, cpred,
                     extractors, memo, vis_cache, sel_cache)


def _drain(engine: SiasVEngine, codec: _Codec, txn: Transaction,
           batch: list[tuple[int, Tid]], cpred: _CompiledPredicate | None,
           extractors: tuple, memo: dict[int, bool],
           vis_cache: dict[int, int],
           sel_cache: dict[int, tuple[int, int] | None],
           ) -> list[tuple[int, object]]:
    """One kernel round over ``batch`` VIDmap entries: the emitted rows,
    in VID order."""
    from_page, from_row, page_values = extractors
    store = engine.store
    out: list[tuple[int, object] | None] = [None] * len(batch)
    # fallbacks: (batch index, tid to descend from, hops already charged)
    fallback: list[tuple[int, Tid, int]] = []
    groups: dict[int, list[tuple[int, int, int]]] = {}
    open_nos = set(store.open_page_nos())  # one latched read per round
    # entries arrive in VID order, which runs along pages — resolve each
    # page's group once per run instead of per entry
    prev_no = -1
    emit_to = None
    for i, (vid, tid) in enumerate(batch):
        page_no = tid.page_no
        if page_no != prev_no:
            prev_no = page_no
            if page_no in open_nos:
                # open pages mutate under us: tuple-at-a-time fallback
                emit_to = None
            else:
                group = groups.get(page_no)
                if group is None:
                    groups[page_no] = group = []
                emit_to = group.append
        if emit_to is None:
            fallback.append((i, tid, 0))
        else:
            emit_to((i, vid, tid.slot))
    if groups:
        page_nos = list(groups)
        pages = dict(zip(page_nos,
                         store.buffer.get_pages(store.file_id, page_nos)))
    count_mode = from_row is None
    direct_count = 0  # aligned-page count-mode rows, never materialised
    snapshot = txn.snapshot
    clog = engine.txn_mgr.clog
    unpack_tid = Tid.unpack
    for page_no, members in groups.items():
        page = pages[page_no]
        assert isinstance(page, AppendPage)
        meta = page.meta_columns()
        if meta is None:
            # NSM layout: the kernels don't apply — unchanged descent path
            for i, _vid, _slot in members:
                fallback.append((i, batch[i][1], 0))
            continue
        _ts_vec, vid_vec, pred_vec, _flag_vec = meta
        visible = vis_cache.get(page_no)
        if visible is None:
            visible = snapshot.visibility_bitmap(meta[0], clog, memo)
            vis_cache[page_no] = visible
        # bitmap algebra before any per-slot work: visible, not deleted,
        # and (when the predicate probes) matching or needing a check
        emit = visible & ~page.tombstone_bitmap()
        unknown = 0
        if cpred is not None:
            probed = sel_cache.get(page_no, _MISSING)
            if probed is _MISSING:
                probed = cpred.page_bitmap(page)
                sel_cache[page_no] = probed
            if probed is not None:
                match, unknown = probed
                emit &= match | unknown
        else:
            probed = None
        colvals = page_values(page) if page_values is not None else None
        per_slot_pred = cpred is not None and probed is None
        # Settled fast path: every member's entry still matches its slot's
        # recorded VID (nothing moved under us), the whole page is visible,
        # and the predicate fully probed — the per-slot verdict is already
        # in ``emit``, so the member walk needs one bit test per entry
        # (counting needs none at all: popcount the page verdict).
        count = len(vid_vec)
        if (not per_slot_pred and unknown == 0
                and visible == (1 << count) - 1
                and [m[1] for m in members]
                == [vid_vec[m[2]] for m in members]):
            if count_mode:
                if len(members) == count:
                    # full coverage: member slots are exactly 0..count-1
                    direct_count += emit.bit_count()
                else:
                    mask = 0
                    for m in members:
                        mask |= 1 << m[2]
                    direct_count += (emit & mask).bit_count()
            elif colvals is not None:
                for i, vid, slot in members:
                    if (emit >> slot) & 1:
                        value = colvals[slot]
                        if value is None:  # short payload: slot fallback
                            value = from_page(page, slot)
                        out[i] = (vid, value)
            else:
                for i, vid, slot in members:
                    if (emit >> slot) & 1:
                        out[i] = (vid, from_page(page, slot))
            continue
        for i, vid, slot in members:
            if vid_vec[slot] != vid:
                # entry moved under us (concurrent update): resolve serially
                fallback.append((i, batch[i][1], 0))
                continue
            if not (visible >> slot) & 1:
                # entrypoint invisible: descend from its predecessor (the
                # one hop the serial walk would also charge)
                pred_tid = unpack_tid(pred_vec[slot])
                if pred_tid is not None:
                    fallback.append((i, pred_tid, 1))
                continue
            if not (emit >> slot) & 1:
                continue
            if (unknown >> slot) & 1 or per_slot_pred:
                if not cpred.matches_page(page, slot):
                    continue
            if count_mode:
                out[i] = (vid, True)
                continue
            if colvals is not None:
                value = colvals[slot]
                if value is None:  # short payload: per-slot fallback
                    value = from_page(page, slot)
            else:
                value = from_page(page, slot)
            out[i] = (vid, value)
    if fallback:
        results, _depths, hops = engine.descend_visible_batch(
            txn, [tid for _i, tid, _pre in fallback])
        engine.stats.add(chain_hops=hops +
                         sum(pre for _i, _tid, pre in fallback))
        for (i, _tid, _pre), result in zip(fallback, results):
            if result is None:
                continue
            record, _found = result
            if record.tombstone:
                continue
            vid = batch[i][0]
            if cpred is None and from_row is None:
                out[i] = (vid, True)  # count mode: payload never decoded
                continue
            row = codec.decode(record.payload)
            if cpred is not None and not cpred.matches_row(row):
                continue
            out[i] = (vid, True if from_row is None else from_row(row))
    rows = [item for item in out if item is not None]
    if direct_count:
        # placeholders: only vec_count consumes count-mode chunks (by
        # length), so the popcounted settled pages contribute length alone
        rows += [True] * direct_count
    return rows


# -- public operators ---------------------------------------------------------------

def vec_scan(engine: SiasVEngine, codec: _Codec, txn: Transaction,
             columns: object = None, where: object = None,
             after_vid: int | None = None,
             ) -> Iterator[tuple[int, object]]:
    """Filtered, optionally projected scan: ``(vid, row_or_projection)``.

    ``where`` is ``(column, op, value)`` with ``op`` one of
    ``== != < <= > >=``; ``columns`` an iterable of column names (None for
    whole rows).  ``after_vid`` resumes strictly after that VID — the
    cursor of :func:`vec_scan_batch`.
    """
    pred = Predicate.normalize(where)
    cpred = _CompiledPredicate(codec, pred) if pred is not None else None
    columns = list(columns) if (columns is not None
                                and not isinstance(columns, str)) else columns
    yield from _drive(engine, codec, txn, columns, cpred, after_vid)


def vec_scan_batch(engine: SiasVEngine, codec: _Codec, txn: Transaction,
                   columns: object = None, where: object = None,
                   after_vid: int | None = None, limit: int = VEC_BATCH,
                   ) -> tuple[list[tuple[int, object]], int | None]:
    """One cursored page of :func:`vec_scan`: ``(rows, next_cursor)``.

    ``next_cursor`` is the last emitted VID when the page filled up (pass
    it back as ``after_vid`` for the next page) and None when the scan is
    exhausted.
    """
    if limit <= 0:
        raise SchemaError(f"scan batch limit must be positive, got {limit}")
    rows: list[tuple[int, object]] = []
    for vid, value in vec_scan(engine, codec, txn, columns, where,
                               after_vid):
        rows.append((vid, value))
        if len(rows) >= limit:
            return rows, vid
    return rows, None


def vec_count(engine: SiasVEngine, codec: _Codec, txn: Transaction,
              where: object = None) -> int:
    """Visible-row count; unfiltered, it never touches payload bytes."""
    pred = Predicate.normalize(where)
    cpred = _CompiledPredicate(codec, pred) if pred is not None else None
    return sum(len(chunk) for chunk
               in _drive_chunks(engine, codec, txn, _COUNT_ONLY, cpred,
                                None))


def vec_aggregate(engine: SiasVEngine, codec: _Codec, txn: Transaction,
                  op: str, column: str | None = None,
                  where: object = None) -> object:
    """``count``/``sum``/``min``/``max`` over the visible rows.

    ``sum`` of no rows is 0; ``min``/``max`` of no rows is None.
    """
    if op == "count":
        return vec_count(engine, codec, txn, where)
    if op not in AGGREGATE_OPS:
        raise SchemaError(
            f"unknown aggregate {op!r} (expected one of {AGGREGATE_OPS})")
    if column is None:
        raise SchemaError(f"aggregate {op!r} needs a column")
    pred = Predicate.normalize(where)
    cpred = _CompiledPredicate(codec, pred) if pred is not None else None
    # fold chunk-at-a-time (sum of sums, min of mins, ...) so the hot
    # per-value pass is a list comprehension, not a generator resume
    partials = [fold_values(op, [value for _vid, value in chunk])
                for chunk in _drive_chunks(engine, codec, txn, column,
                                           cpred, None)
                if chunk]
    return fold_values(op, [p for p in partials if p is not None])
