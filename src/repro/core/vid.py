"""Virtual ID allocation.

Every data item of a relation receives a *virtual ID* at insertion: a
monotonically increasing positive number shared by all of the item's tuple
versions.  Sequential assignment is what makes the VIDmap a dense vector —
bucket and slot positions are pure arithmetic — and enables page-wise
(bulk) allocation for loads.
"""

from __future__ import annotations

import threading


class VidAllocator:
    """Hands out sequential VIDs, with bulk reservation for loading.

    Thread-safe: allocation is read-modify-write, so concurrent inserters
    serialise on a mutex — two workers can never receive the same VID.
    """

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise ValueError(f"VIDs start at 0, got {start}")
        self._next = start
        self._mu = threading.Lock()

    def allocate(self) -> int:
        """Return a fresh VID."""
        with self._mu:
            vid = self._next
            self._next += 1
            return vid

    def allocate_block(self, count: int) -> range:
        """Reserve ``count`` consecutive VIDs (bulk-load path)."""
        if count < 1:
            raise ValueError(f"block size must be >= 1, got {count}")
        with self._mu:
            block = range(self._next, self._next + count)
            self._next += count
            return block

    @property
    def high_water(self) -> int:
        """One past the largest VID handed out so far."""
        return self._next
