"""SIAS-V core: VIDs, the VIDmap vector, append storage, engine, scans, GC."""

from repro.core.append_store import AppendStore, AppendStoreStats
from repro.core.engine import SiasVEngine, SiasVStats
from repro.core.gc import GarbageCollector, GcItemOutcome, GcReport
from repro.core.scan import full_relation_scan, vidmap_scan
from repro.core.vecscan import (
    Predicate,
    vec_aggregate,
    vec_count,
    vec_scan,
    vec_scan_batch,
)
from repro.core.vid import VidAllocator
from repro.core.vidmap import VidMap

__all__ = [
    "AppendStore",
    "AppendStoreStats",
    "GarbageCollector",
    "GcItemOutcome",
    "GcReport",
    "Predicate",
    "SiasVEngine",
    "SiasVStats",
    "VidAllocator",
    "VidMap",
    "full_relation_scan",
    "vec_aggregate",
    "vec_count",
    "vec_scan",
    "vec_scan_batch",
    "vidmap_scan",
]
