"""Crash recovery for a SIAS-V engine.

The SIAS-V recovery story is deliberately simple — a direct consequence of
the append-only design the paper emphasises: *"all information that is
required for a reconstruction is stored on each tuple version"*.

What is volatile and lost at a crash:

* the **VIDmap** (in-memory vector, persisted only at clean shutdown),
* the **working append page** (versions not yet sealed to the device),
* the append store's bookkeeping (sealed-page set, free page numbers),
* the chain-severed markers.

What survives: every *sealed* append page (written exactly once, never
dirty in the buffer) and the forced prefix of the WAL.

Recovery therefore proceeds in three steps:

1. **Rescan** the relation's file: every readable page rebuilds the
   sealed-page set; trimmed (GC-reclaimed) pages read back as unwritten and
   become reusable page numbers.
2. **Rebuild the VIDmap**: for every VID, the committed version with the
   greatest creation timestamp is the entrypoint.  Versions created by
   transactions without a COMMIT record are treated as aborted.
3. **Redo from the WAL**: committed modifications whose versions lived in
   the lost working page are re-appended in log order (the WAL carries the
   VID and the full payload).

There is no undo phase: aborted/unfinished transactions' versions are
simply never referenced again and the next GC pass discards them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import (PageCorruptError, ReadUnwrittenError,
                                 ReproError)
from repro.core.engine import SiasVEngine
from repro.pages.append_page import AppendPage
from repro.pages.base import Page
from repro.pages.layout import Tid, VersionRecord
from repro.wal.records import WalRecord, WalRecordType


@dataclass
class SiasRecoveryReport:
    """What one engine's recovery pass did."""

    pages_rescanned: int = 0
    pages_reusable: int = 0
    pages_torn: int = 0  # checksum-failing (partially written) pages
    items_mapped: int = 0
    redo_applied: int = 0
    redo_skipped: int = 0  # already present on a sealed page


def crash_engine(engine: SiasVEngine) -> None:
    """Discard the engine's volatile state, as a power loss would."""
    engine.vidmap._buckets.clear()
    engine.chain_severed.clear()
    engine.store._open.clear()
    engine.store._current.clear()
    engine.store._idle_page_nos.clear()
    engine.store.sealed.clear()
    engine.store._free_page_nos.clear()
    engine.store._next_page_no = 0


def recover_engine(engine: SiasVEngine,
                   wal_records: list[WalRecord]) -> SiasRecoveryReport:
    """Rebuild an engine from device pages plus the durable WAL prefix.

    ``wal_records`` must be the *durable* WAL prefix, already filtered to
    this engine's relation, in log order.  The commit log is consulted for
    transaction fates (recovery marks unfinished transactions aborted
    before calling this).
    """
    report = SiasRecoveryReport()
    _rescan_pages(engine, report)
    _rebuild_vidmap(engine, report)
    _redo_from_wal(engine, wal_records, report)
    return report


def _rescan_pages(engine: SiasVEngine, report: SiasRecoveryReport) -> None:
    from repro.core.append_store import _SealedPageInfo

    store = engine.store
    tablespace = store.buffer.tablespace
    allocated = tablespace.file_pages(store.file_id)
    for page_no in range(allocated):
        lba = tablespace.lba_of(store.file_id, page_no)
        try:
            raw = tablespace.read_page(lba)
        except ReadUnwrittenError:
            # never written, or trimmed by GC: reusable address space
            store._free_page_nos.append(page_no)
            report.pages_reusable += 1
            continue
        try:
            page = Page.from_bytes(raw)
        except PageCorruptError:
            # torn write: the crash interrupted this page's seal, so its
            # checksum fails.  Its versions were not durable — any
            # committed ones come back via WAL redo (a seal in flight at
            # the crash postdates the last completed checkpoint, so its
            # records were never truncated).  The address is reusable.
            # Trim the half-written content so any surviving pred pointer
            # into this page faults as *unwritten* (the signal every chain
            # walk already tolerates) instead of as a checksum failure.
            tablespace.trim_page(store.file_id, page_no)
            store._free_page_nos.append(page_no)
            report.pages_torn += 1
            report.pages_reusable += 1
            continue
        if not isinstance(page, AppendPage):
            continue  # e.g. persisted VIDmap buckets share no file, skip
        store.buffer.put_clean(store.file_id, page_no, page)
        store.sealed[page_no] = _SealedPageInfo(page.record_count)
        report.pages_rescanned += 1
    store._next_page_no = allocated
    import heapq
    heapq.heapify(store._free_page_nos)


def _rebuild_vidmap(engine: SiasVEngine,
                    report: SiasRecoveryReport) -> None:
    clog = engine.txn_mgr.clog
    best: dict[int, tuple[int, Tid]] = {}
    max_vid = -1
    for page_no in engine.store.sealed_page_nos():
        page = engine.store.buffer.get_page(engine.store.file_id, page_no)
        assert isinstance(page, AppendPage)
        for slot, record in page.records():
            max_vid = max(max_vid, record.vid)
            if not clog.is_committed(record.create_ts):
                continue
            current = best.get(record.vid)
            if current is None or record.create_ts > current[0]:
                best[record.vid] = (record.create_ts, Tid(page_no, slot))
    for vid, (_ts, tid) in best.items():
        engine.vidmap.set(vid, tid)
    report.items_mapped = len(best)
    # VID allocation must resume above everything ever assigned
    if max_vid >= engine.allocator.high_water:
        engine.allocator.allocate_block(max_vid + 1
                                        - engine.allocator.high_water)


def _durable_depth(engine: SiasVEngine, tid: Tid, txid: int) -> int:
    """How many of ``txid``'s versions head the durable chain at ``tid``.

    A transaction that wrote the same item more than once left a run of
    equal-``create_ts`` versions at the head of the chain; redo must skip
    exactly that many of its WAL records and apply the remainder.  A
    faulting pred (torn page below the head) ends the count early, which
    at worst re-appends a version identical to an unreadable durable one.
    """
    depth = 0
    next_tid: Tid | None = tid
    while next_tid is not None:
        try:
            record = engine.store.read(next_tid)
        except ReproError:
            break
        if record.create_ts != txid:
            break
        depth += 1
        next_tid = record.pred
    return depth


def _redo_from_wal(engine: SiasVEngine, wal_records: list[WalRecord],
                   report: SiasRecoveryReport) -> None:
    clog = engine.txn_mgr.clog
    seen: dict[tuple[int, int], int] = {}
    pre_depth: dict[tuple[int, int], int] = {}
    for record in wal_records:
        if record.type not in (WalRecordType.INSERT, WalRecordType.UPDATE,
                               WalRecordType.DELETE):
            continue
        if not clog.is_committed(record.txid):
            continue
        vid = record.item_id
        current_tid = engine.vidmap.get(vid)
        key = (record.txid, vid)
        index = seen.get(key, 0)
        seen[key] = index + 1
        if current_tid is not None:
            current = engine.store.read(current_tid)
            if current.create_ts > record.txid:
                report.redo_skipped += 1
                continue  # a later committed change supersedes this one
            if current.create_ts == record.txid:
                # the transaction's own versions head the chain: its
                # first ``depth`` records are already durable, any
                # further writes it made to this item are not
                if key not in pre_depth:
                    pre_depth[key] = _durable_depth(
                        engine, current_tid, record.txid)
                if index < pre_depth[key]:
                    report.redo_skipped += 1
                    continue
        version = VersionRecord(
            create_ts=record.txid,
            vid=vid,
            pred=current_tid,
            tombstone=record.type is WalRecordType.DELETE,
            payload=record.payload,
        )
        new_tid = engine.store.append(version)
        engine.vidmap.set(vid, new_tid)
        if vid >= engine.allocator.high_water:
            engine.allocator.allocate_block(
                vid + 1 - engine.allocator.high_water)
        report.redo_applied += 1
