"""Append storage manager (LbSM) in tuple-version granularity.

Each relation owns one append store.  Freshly created tuple versions are
packed into in-memory *open pages*; a page reaches the device exactly once —
when it is *sealed* — after which it is immutable.  The seal moment is the
paper's **flush threshold**:

* **t2** (default): seal when the page reaches its fill target, so pages
  arrive densely packed; the checkpointer piggy-backs the last partial
  page.  This is the configuration behind the 97 % write reduction.
* **t1**: the background writer seals every open page on its tick
  regardless of fill degree — the paper's "sparsely filled pages are
  persisted too frequently" configuration (more page writes, wasted space).

Two **co-location policies** choose which versions share a page:

* ``RECENCY`` (SIAS-V): one open page per relation; versions created
  around the same time are co-located.
* ``TRANSACTION`` (SI-CV): one open page per *transaction group* — the
  engine passes its transaction id as the group key, so a transaction's
  versions land together.  When a transaction finishes, its page is marked
  idle and reused by later transactions (small transactions share pages
  rather than sealing sparse ones).

Sealed pages are written with a direct sequential device write inside the
relation's extent region (the blocktrace "swimlane") and cached clean in
the buffer pool: the buffer never needs to write a SIAS-V data page back,
which is the paper's "simplified buffer management".

Page numbers freed by garbage collection are recycled for future open
pages (subject to the device's ``writable_hint`` on raw flash), bounding
the relation's on-device footprint.
"""

from __future__ import annotations

import heapq
import threading
from dataclasses import dataclass

from repro.buffer.manager import BufferManager
from repro.common.config import EngineConfig, FlushThreshold
from repro.common.errors import NoSuchItemError, PageError
from repro.pages.append_page import AppendPage
from repro.pages.layout import Tid, VersionRecord

#: Group key used by the RECENCY policy (one shared page).
_SHARED = None


@dataclass
class AppendStoreStats:
    """Write-side behaviour counters (feed the T1/T2/A2 experiments)."""

    appended_records: int = 0
    sealed_pages: int = 0
    sealed_bytes: int = 0
    wasted_bytes: int = 0          # capacity left unused in sealed pages
    fill_degree_sum: float = 0.0   # for the average fill degree
    reclaimed_pages: int = 0


    @property
    def avg_fill_degree(self) -> float:
        """Mean fill degree of sealed pages (1.0 = perfectly packed)."""
        if self.sealed_pages == 0:
            return 1.0
        return self.fill_degree_sum / self.sealed_pages


@dataclass
class _SealedPageInfo:
    """GC bookkeeping for one sealed page."""

    record_count: int
    dead_count: int = 0


class AppendStore:
    """Per-relation append region with threshold-driven sealing."""

    def __init__(self, buffer: BufferManager, file_id: int,
                 config: EngineConfig) -> None:
        self.buffer = buffer
        self.file_id = file_id
        self.config = config
        self._next_page_no = 0
        self._free_page_nos: list[int] = []
        #: unsealed pages by page number
        self._open: dict[int, AppendPage] = {}
        #: group key → page number of that group's current open page
        self._current: dict[object, int] = {}
        #: open pages whose group finished (reusable by new groups)
        self._idle_page_nos: list[int] = []
        self.sealed: dict[int, _SealedPageInfo] = {}
        self.stats = AppendStoreStats()
        # The *append-page tail latch*: serialises open-page selection,
        # appends, seals and page-number recycling.  Reads stay lock-free —
        # seal_page publishes the page to the buffer pool *before* removing
        # it from the open set, so a concurrent reader always finds the
        # page in one of the two places.
        self._mu = threading.RLock()

    # -- open-page management -----------------------------------------------------

    def _take_page_no(self) -> int:
        if self.config.recycle_pages and self._free_page_nos:
            tablespace = self.buffer.tablespace
            deferred: list[int] = []
            chosen: int | None = None
            while self._free_page_nos:
                candidate = heapq.heappop(self._free_page_nos)
                lba = tablespace.lba_of(self.file_id, candidate)
                if tablespace.device.writable_hint(lba):
                    chosen = candidate
                    break
                # raw flash: the page's erase block still holds live
                # neighbours — recycle it later, after the block erases
                deferred.append(candidate)
            for page_no in deferred:
                heapq.heappush(self._free_page_nos, page_no)
            if chosen is not None:
                return chosen
        page_no = self._next_page_no
        self._next_page_no += 1
        return page_no

    def _page_for(self, group: object, record: VersionRecord) -> AppendPage:
        page_no = self._current.get(group)
        if page_no is not None:
            page = self._open[page_no]
            if page.fits(record):
                return page
            self.seal_page(page_no)
        # adopt an idle page with room before opening a fresh one
        while self._idle_page_nos:
            idle_no = self._idle_page_nos.pop()
            idle = self._open.get(idle_no)
            if idle is None:
                continue  # sealed meanwhile
            if idle.fits(record):
                self._current[group] = idle_no
                return idle
            self.seal_page(idle_no)
        page = AppendPage(self._take_page_no(), self.config.layout,
                          self.config.page_size)
        self._open[page.page_no] = page
        self._current[group] = page.page_no
        return page

    def open_page_nos(self) -> list[int]:
        """Numbers of all unsealed (in-memory) pages."""
        with self._mu:
            return sorted(self._open.keys())

    def open_page(self, page_no: int) -> AppendPage | None:
        """The open page with this number, if any."""
        return self._open.get(page_no)

    @property
    def working_page_no(self) -> int | None:
        """Page number of the shared (RECENCY) open page, if one exists."""
        return self._current.get(_SHARED)

    # -- appending --------------------------------------------------------------------

    def append(self, record: VersionRecord,
               group: object = _SHARED) -> Tid:
        """Append one version; returns its TID.

        ``group`` selects the co-location unit (the engine passes the
        transaction id under the SI-CV policy).  Under threshold t2 the
        page seals as soon as it reaches the fill target; under t1 sealing
        is left to the background-writer tick.
        """
        with self._mu:
            page = self._page_for(group, record)
            if not page.fits(record):
                raise PageError(
                    f"record of {record.size} B cannot fit an empty append "
                    "page")
            slot = page.append(record)
            tid = Tid(page.page_no, slot)
            self.stats.appended_records += 1
            if (self.config.flush_threshold is FlushThreshold.T2
                    and page.fill_degree() >= self.config.append_fill_target):
                self.seal_page(page.page_no)
            return tid

    def release_group(self, group: object) -> None:
        """The group (transaction) finished: its page becomes reusable."""
        with self._mu:
            page_no = self._current.pop(group, None)
            if page_no is not None and page_no in self._open:
                self._idle_page_nos.append(page_no)

    # -- sealing -----------------------------------------------------------------------

    def seal_page(self, page_no: int) -> int | None:
        """Persist one open page; returns its page number (None if empty).

        The page is written to the device immediately (one sequential
        append inside the relation's extents) and cached *clean*: it will
        never be written again.
        """
        with self._mu:
            page = self._open.get(page_no)
            if page is None:
                return None
            if page.record_count == 0:
                del self._open[page_no]
                self._unlink_current(page_no)
                heapq.heappush(self._free_page_nos, page_no)
                return None
            lba = self.buffer.tablespace.ensure_page(self.file_id,
                                                     page.page_no)
            # the seal is fire-and-forget: the transaction path never waits
            # for data-page I/O, only for the WAL (recovery replays a lost
            # seal).  The page is encoded exactly once: the same image goes
            # to the device and seeds the buffer's sealed-page byte cache.
            encoded = page.to_bytes()
            self.buffer.tablespace.device.write_page_async(lba, encoded)
            self.buffer.put_clean(self.file_id, page.page_no, page,
                                  raw=encoded)
            # remove from the open set only after the buffer holds the
            # page: a lock-free reader racing the seal finds the page
            # either open or cached, never neither
            del self._open[page_no]
            self._unlink_current(page_no)
            self.sealed[page.page_no] = _SealedPageInfo(page.record_count)
            self.stats.sealed_pages += 1
            self.stats.sealed_bytes += page.page_size
            self.stats.wasted_bytes += page.free_bytes()
            self.stats.fill_degree_sum += page.fill_degree()
            return page.page_no

    def _unlink_current(self, page_no: int) -> None:
        for group, current_no in list(self._current.items()):
            if current_no == page_no:
                del self._current[group]

    def seal_working_page(self) -> int | None:
        """Seal every open page (bgwriter t1 tick / checkpoint piggy-back).

        Returns the last sealed page number (None if nothing was open) —
        the singular name survives from the single-working-page design and
        keeps the t1/t2 subscription call sites trivial.
        """
        with self._mu:
            result: int | None = None
            for page_no in self.open_page_nos():
                sealed = self.seal_page(page_no)
                if sealed is not None:
                    result = sealed
            return result

    # -- reads -----------------------------------------------------------------------

    def read(self, tid: Tid) -> VersionRecord:
        """Fetch one version (open-page hits cost no I/O)."""
        page = self._open.get(tid.page_no)
        if page is not None:
            return page.read(tid.slot)
        page = self.buffer.get_page(self.file_id, tid.page_no)
        if not isinstance(page, AppendPage):
            raise NoSuchItemError(
                f"page {tid.page_no} is {type(page).__name__}, expected "
                "AppendPage")
        return page.read(tid.slot)

    def read_many(self, tids: list[Tid]) -> list[VersionRecord]:
        """Batched fetch: distinct pages are read with one parallel batch.

        This is the parallelisable access path behind the VIDmap scan.
        """
        from_open: dict[int, VersionRecord] = {}
        page_nos: list[int] = []
        for i, tid in enumerate(tids):
            open_page = self._open.get(tid.page_no)
            if open_page is not None:
                from_open[i] = open_page.read(tid.slot)
            else:
                page_nos.append(tid.page_no)
        pages = {}
        if page_nos:
            unique = list(dict.fromkeys(page_nos))
            for page_no, page in zip(unique,
                                     self.buffer.get_pages(self.file_id,
                                                           unique)):
                pages[page_no] = page
        out: list[VersionRecord] = []
        for i, tid in enumerate(tids):
            if i in from_open:
                out.append(from_open[i])
            else:
                out.append(pages[tid.page_no].read(tid.slot))
        return out

    # -- GC support ------------------------------------------------------------------------

    def sealed_page_nos(self) -> list[int]:
        """Numbers of all sealed (device-resident) pages."""
        return sorted(self.sealed.keys())

    def page_record_count(self, page_no: int) -> int:
        """Records on a sealed page."""
        return self.sealed[page_no].record_count

    def reclaim_page(self, page_no: int) -> None:
        """Hand a fully-dead sealed page back: buffer drop + device trim.

        The page number becomes reusable for future open pages; the trim
        tells the simulated FTL the flash pages are dead (deterministic,
        DBMS-driven erase behaviour).
        """
        with self._mu:
            if page_no not in self.sealed:
                raise NoSuchItemError(f"page {page_no} is not a sealed page")
            del self.sealed[page_no]
            self.buffer.drop(self.file_id, page_no)
            self.buffer.tablespace.trim_page(self.file_id, page_no)
            heapq.heappush(self._free_page_nos, page_no)
            self.stats.reclaimed_pages += 1

    # -- space accounting ----------------------------------------------------------------------

    def device_pages(self) -> int:
        """Sealed pages currently occupying device space."""
        return len(self.sealed)

    def space_bytes(self) -> int:
        """Device footprint of this relation's version data."""
        return len(self.sealed) * self.config.page_size
