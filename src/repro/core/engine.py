"""The SIAS-V storage engine: one relation, versioned by appends.

Mutation model (the paper's Algorithms 2/3 re-expressed):

* **Insert** allocates a fresh VID, appends version ``X₀`` with
  ``pred = NULL`` and points the VIDmap at it.
* **Update** appends a successor version whose ``pred`` is the current
  entrypoint and swings the VIDmap pointer.  *Nothing* is written to the old
  version — its invalidation is implicit in the successor's existence.  The
  first-updater-wins rule is enforced with a transactional lock per
  ``(relation, VID)`` plus an entrypoint-visibility check: an updater that
  cannot see the current entrypoint lost a race to a committed-concurrent
  writer and aborts with a serialization error.
* **Delete** appends a *tombstone* version — required as long as running
  transactions may still view older versions of the item.
* **Read** descends from the entrypoint through predecessor references and
  returns the first version visible under the transaction's snapshot.

On abort, registered undo actions swing VIDmap entrypoints back, so aborted
versions become unreachable garbage for the page GC.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.buffer.manager import BufferManager
from repro.common.config import Colocation, EngineConfig
from repro.common.errors import (
    NoSuchItemError,
    SerializationError,
    TombstoneError,
)
from repro.common.latch import LatchStripes
from repro.core.append_store import AppendStore
from repro.core.vid import VidAllocator
from repro.core.vidmap import VidMap
from repro.pages.append_page import AppendPage
from repro.pages.layout import Tid, VersionRecord
from repro.txn.manager import Transaction, TransactionManager
from repro.wal.records import WalRecord, WalRecordType


@dataclass
class SiasVStats:
    """Read-path behaviour counters.

    Updated only through :meth:`add`, which folds a whole operation's
    deltas in under an internal mutex — scans and resolutions run on
    several dispatcher workers concurrently, and a bare ``+=`` on these
    fields is a lost-update race.  Same atomic-read-and-update discipline
    as :meth:`repro.txn.manager.TransactionManager.counters`.
    """

    resolves: int = 0      # visible-version resolutions
    chain_hops: int = 0    # predecessor fetches beyond the entrypoint
    max_chain_hops: int = 0
    tombstone_hits: int = 0
    scan_descents_saved: int = 0  # chain descents skipped via scan caching

    def __post_init__(self) -> None:
        # Not a dataclass field: the lock is identity state, not a counter,
        # and must stay out of comparisons and replace().
        self._mu = threading.Lock()

    def add(self, *, resolves: int = 0, chain_hops: int = 0,
            tombstone_hits: int = 0, scan_descents_saved: int = 0,
            observed_depth: int = -1) -> None:
        """Atomically fold one operation's counter deltas in.

        ``observed_depth`` is the chain depth a resolution was found at
        (-1 for none); it only ever raises ``max_chain_hops``.
        """
        with self._mu:
            self.resolves += resolves
            self.chain_hops += chain_hops
            self.tombstone_hits += tombstone_hits
            self.scan_descents_saved += scan_descents_saved
            if observed_depth > self.max_chain_hops:
                self.max_chain_hops = observed_depth


class SiasVEngine:
    """Append-storage MVCC engine for one relation."""

    def __init__(self, relation_id: int, buffer: BufferManager,
                 file_id: int, config: EngineConfig,
                 txn_mgr: TransactionManager) -> None:
        self.relation_id = relation_id
        self.config = config
        self.txn_mgr = txn_mgr
        self.vidmap = VidMap(config.vidmap_slots_per_bucket, config.page_size)
        self.allocator = VidAllocator()
        self.store = AppendStore(buffer, file_id, config)
        self.stats = SiasVStats()
        #: striped latches keyed by ``(relation_id, vid)``: each write path
        #: holds exactly one stripe around its append + entrypoint swing,
        #: so unrelated items proceed in parallel; GC quiesces writers by
        #: holding all stripes (``holding_all``)
        self.latches = LatchStripes(64)
        #: vid → TID whose pred pointer is severed: GC discarded the chain
        #: tail below this record, so walks must not follow its pred (the
        #: target pages may have been reclaimed and recycled).  In-memory
        #: like the VIDmap; rebuilt trivially on recovery (a missing pred
        #: target means severed).
        self.chain_severed: dict[int, Tid] = {}

    # -- write path --------------------------------------------------------------

    def _group(self, txn: Transaction) -> object:
        """Co-location group for this transaction's appends."""
        if self.config.colocation is Colocation.TRANSACTION:
            return txn.txid
        return None

    def on_txn_finished(self, txid: int) -> None:
        """Release the transaction's co-location page (SI-CV policy)."""
        self.store.release_group(txid)

    def insert(self, txn: Transaction, payload: bytes) -> int:
        """Create a new data item; returns its VID."""
        vid = self.allocator.allocate()
        self.txn_mgr.locks.acquire((self.relation_id, vid), txn.txid)
        key = (self.relation_id, vid)
        record = VersionRecord(create_ts=txn.txid, vid=vid, pred=None,
                               tombstone=False, payload=payload)
        with self.latches.of(key):
            tid = self.store.append(record, group=self._group(txn))
            self.vidmap.set(vid, tid)
        txn.register_undo(lambda: self._undo_entrypoint(vid, None))
        self._log(txn, WalRecordType.INSERT, vid, payload)
        txn.writes += 1
        return vid

    def bulk_insert(self, txn: Transaction,
                    payloads: list[bytes]) -> range:
        """Page-wise bulk load: N items with one VID block reservation.

        The paper's VIDmap section calls this out explicitly: "pre-loading
        and bulk-loading can be supported, e.g. new VIDs can be generated
        in a page-wise manner".  One lock acquisition covers the whole
        block (the VIDs are fresh, nobody else can address them), one undo
        action clears it, and one WAL record per row is still written so
        crash recovery replays losslessly.
        """
        vids = self.allocator.allocate_block(len(payloads))
        self.txn_mgr.locks.acquire((self.relation_id, ("bulk", vids.start)),
                                   txn.txid)
        group = self._group(txn)
        for vid, payload in zip(vids, payloads):
            record = VersionRecord(create_ts=txn.txid, vid=vid, pred=None,
                                   tombstone=False, payload=payload)
            tid = self.store.append(record, group=group)
            self.vidmap.set(vid, tid)
            self._log(txn, WalRecordType.INSERT, vid, payload)
        txn.register_undo(
            lambda: [self.vidmap.set(vid, None) for vid in vids])
        txn.writes += len(payloads)
        return vids

    def update(self, txn: Transaction, vid: int, payload: bytes) -> None:
        """Append a successor version of ``vid`` (implicit invalidation).

        The item lock is taken *before* the visibility check: with lock
        waiting enabled (multi-worker server) a second updater blocks here
        until the holder finishes, then re-validates the entrypoint — if
        the holder committed a conflicting version, the check aborts the
        waiter (first-updater-wins); if the holder aborted, the waiter
        proceeds.  That is PostgreSQL's wait-then-recheck discipline.
        """
        self.txn_mgr.locks.acquire((self.relation_id, vid), txn.txid)
        entry_tid = self._check_updatable(txn, vid)
        key = (self.relation_id, vid)
        record = VersionRecord(create_ts=txn.txid, vid=vid, pred=entry_tid,
                               tombstone=False, payload=payload)
        with self.latches.of(key):
            new_tid = self.store.append(record, group=self._group(txn))
            self.vidmap.set(vid, new_tid)
        txn.register_undo(lambda: self._undo_entrypoint(vid, entry_tid))
        self._log(txn, WalRecordType.UPDATE, vid, payload)
        txn.writes += 1

    def delete(self, txn: Transaction, vid: int) -> None:
        """Append a tombstone version of ``vid``."""
        self.txn_mgr.locks.acquire((self.relation_id, vid), txn.txid)
        entry_tid = self._check_updatable(txn, vid)
        key = (self.relation_id, vid)
        record = VersionRecord(create_ts=txn.txid, vid=vid, pred=entry_tid,
                               tombstone=True, payload=b"")
        with self.latches.of(key):
            new_tid = self.store.append(record, group=self._group(txn))
            self.vidmap.set(vid, new_tid)
        txn.register_undo(lambda: self._undo_entrypoint(vid, entry_tid))
        self._log(txn, WalRecordType.DELETE, vid, b"")
        txn.writes += 1

    def _undo_entrypoint(self, vid: int, entry_tid: Tid | None) -> None:
        """Abort path: swing the entrypoint back under the item's stripe."""
        with self.latches.of((self.relation_id, vid)):
            self.vidmap.set(vid, entry_tid)

    def _check_updatable(self, txn: Transaction, vid: int) -> Tid:
        """Algorithm-3 precondition: the entrypoint must be visible to us.

        Returns the entrypoint TID the new version will chain to.
        """
        entry_tid = self.vidmap.get(vid)
        if entry_tid is None:
            raise NoSuchItemError(
                f"relation {self.relation_id}: VID {vid} does not exist")
        entry = self.store.read(entry_tid)
        if not txn.snapshot.sees_ts(entry.create_ts, self.txn_mgr.clog):
            # A newer version exists that we cannot see: either its writer
            # is still running (lock conflict) or it committed after our
            # snapshot (first-updater-wins loss).  Both abort us.
            raise SerializationError(
                f"concurrent update of VID {vid}: entrypoint created by "
                f"txn {entry.create_ts} is invisible to txn {txn.txid}")
        if entry.tombstone:
            raise TombstoneError(
                f"relation {self.relation_id}: VID {vid} was deleted")
        return entry_tid

    def _log(self, txn: Transaction, rtype: WalRecordType, vid: int,
             payload: bytes) -> None:
        if self.txn_mgr.wal is not None:
            self.txn_mgr.wal.append(WalRecord(rtype, txn.txid, vid, payload,
                                              self.relation_id))

    # -- read path -----------------------------------------------------------------

    def resolve_visible(self, txn: Transaction,
                        vid: int) -> tuple[VersionRecord, Tid] | None:
        """First visible version of ``vid``, walking entrypoint → preds.

        Returns None for unknown VIDs and items with no visible version.
        Tombstones are *returned* (callers distinguish deleted-and-visible
        from never-visible).
        """
        tid = self.vidmap.get(vid)
        if tid is None:
            return None
        hops = 0
        while True:
            record = self.store.read(tid)
            if txn.snapshot.sees_ts(record.create_ts, self.txn_mgr.clog):
                self.stats.add(resolves=1, chain_hops=hops,
                               observed_depth=hops)
                return record, tid
            if record.pred is None:
                self.stats.add(resolves=1, chain_hops=hops)
                return None
            tid = record.pred
            hops += 1

    def descend_visible_batch(
            self, txn: Transaction, entries: list[Tid | None],
    ) -> tuple[list[tuple[VersionRecord, Tid] | None], list[int], int]:
        """Batched chain descent: one ``read_many`` per chain *level*.

        All entrypoints are fetched together; the not-yet-visible survivors
        of each level descend to their predecessors with another batched
        fetch — so chain hops ride the device's channel parallelism exactly
        like the entrypoint fetches do, instead of serialising one read per
        hop.  TIDs repeated within a level are fetched once.

        Returns ``(resolutions, depths, total_hops)``: per-entry visible
        ``(record, tid)`` or None, the chain depth each resolution was found
        at, and the total predecessor hops taken (for stats, which the
        callers update exactly as the serial walk did).
        """
        clog = self.txn_mgr.clog
        sees = txn.snapshot.sees_ts
        results: list[tuple[VersionRecord, Tid] | None] = [None] * len(entries)
        depths = [0] * len(entries)
        pending = [(i, tid) for i, tid in enumerate(entries)
                   if tid is not None]
        depth = 0
        total_hops = 0
        while pending:
            unique = list(dict.fromkeys(tid for _i, tid in pending))
            fetched = dict(zip(unique, self.store.read_many(unique)))
            descended: list[tuple[int, Tid]] = []
            for i, tid in pending:
                record = fetched[tid]
                if sees(record.create_ts, clog):
                    results[i] = (record, tid)
                    depths[i] = depth
                elif record.pred is not None:
                    descended.append((i, record.pred))
                    total_hops += 1
                # else: chain exhausted with nothing visible → stays None
            pending = descended
            depth += 1
        return results, depths, total_hops

    def resolve_visible_many(
            self, txn: Transaction,
            vids: list[int]) -> list[tuple[VersionRecord, Tid] | None]:
        """Batched :meth:`resolve_visible` with identical stats accounting."""
        entries: list[Tid | None] = []
        resolves = 0
        for vid in vids:
            tid = self.vidmap.get(vid)
            if tid is not None:
                resolves += 1
            entries.append(tid)
        results, depths, hops = self.descend_visible_batch(txn, entries)
        deepest = max((found_depth for result, found_depth
                       in zip(results, depths) if result is not None),
                      default=-1)
        self.stats.add(resolves=resolves, chain_hops=hops,
                       observed_depth=deepest)
        return results

    def read(self, txn: Transaction, vid: int) -> bytes | None:
        """Visible payload of ``vid`` (None if absent, invisible or deleted)."""
        resolved = self.resolve_visible(txn, vid)
        txn.reads += 1
        if resolved is None:
            return None
        record, _tid = resolved
        if record.tombstone:
            self.stats.add(tombstone_hits=1)
            return None
        return record.payload

    def read_many(self, txn: Transaction,
                  vids: list[int]) -> list[bytes | None]:
        """Batched :meth:`read` — the index-lookup fast path."""
        resolved = self.resolve_visible_many(txn, vids)
        txn.reads += len(vids)
        out: list[bytes | None] = []
        for item in resolved:
            if item is None:
                out.append(None)
                continue
            record, _tid = item
            if record.tombstone:
                self.stats.add(tombstone_hits=1)
                out.append(None)
            else:
                out.append(record.payload)
        return out

    def exists(self, txn: Transaction, vid: int) -> bool:
        """Whether ``vid`` has a visible non-tombstone version."""
        return self.read(txn, vid) is not None

    # -- recovery -----------------------------------------------------------------------

    def reconstruct_vidmap(self) -> VidMap:
        """Rebuild the VIDmap from the version data alone.

        All information required for reconstruction is stored on each tuple
        version: for every VID the entrypoint is its committed version with
        the greatest creation timestamp.  (Versions of uncommitted or
        aborted transactions are skipped.)  Used by the recovery tests to
        show the in-memory VIDmap is redundant state.
        """
        best: dict[int, tuple[int, Tid]] = {}
        clog = self.txn_mgr.clog

        def _consider(record: VersionRecord, tid: Tid) -> None:
            if not clog.is_committed(record.create_ts):
                return
            current = best.get(record.vid)
            if current is None or record.create_ts > current[0]:
                best[record.vid] = (record.create_ts, tid)

        for page_no in self.store.sealed_page_nos():
            page = self.store.buffer.get_page(self.store.file_id, page_no)
            assert isinstance(page, AppendPage)
            for slot, record in page.records():
                _consider(record, Tid(page_no, slot))
        for page_no in self.store.open_page_nos():
            open_page = self.store.open_page(page_no)
            assert open_page is not None
            for slot, record in open_page.records():
                _consider(record, Tid(page_no, slot))
        rebuilt = VidMap(self.config.vidmap_slots_per_bucket,
                         self.config.page_size)
        for vid, (_ts, tid) in best.items():
            rebuilt.set(vid, tid)
        return rebuilt
