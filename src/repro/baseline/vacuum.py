"""VACUUM: dead-version reclamation for the SI baseline.

A heap tuple is dead when (a) its creator aborted, or (b) it was invalidated
by a transaction that committed before the GC horizon — no present or future
snapshot can see it.  VACUUM kills dead tuples in place (another page
write!), refreshes the free-space map so the space is reused, and reports
``(tid, payload)`` pairs so the database layer can prune the per-version
index entries the baseline accumulates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baseline.engine import SiEngine
from repro.pages.layout import XMAX_INFINITY, HeapTuple, Tid


@dataclass
class VacuumReport:
    """What one VACUUM pass reclaimed."""

    horizon: int = 0
    tuples_examined: int = 0
    tuples_killed: int = 0
    pages_touched: int = 0
    killed: list[tuple[Tid, bytes]] = field(default_factory=list)


class Vacuum:
    """Full-relation vacuum over a baseline engine."""

    def __init__(self, engine: SiEngine) -> None:
        self.engine = engine

    def _is_dead(self, tuple_: HeapTuple, horizon: int) -> bool:
        clog = self.engine.txn_mgr.clog
        if clog.is_aborted(tuple_.xmin):
            return True
        if tuple_.xmax == XMAX_INFINITY:
            return False
        return (tuple_.xmax < horizon and clog.is_committed(tuple_.xmax))

    def run(self) -> VacuumReport:
        """One pass over every heap page; returns the report."""
        engine = self.engine
        report = VacuumReport(horizon=engine.txn_mgr.horizon_txid())
        for page_no, page in engine.heap.pages():
            page_killed = 0
            for slot, tuple_ in page.tuples():
                report.tuples_examined += 1
                if self._is_dead(tuple_, report.horizon):
                    tid = Tid(page_no, slot)
                    report.killed.append((tid, tuple_.payload))
                    engine.heap.kill(tid)
                    page_killed += 1
            if page_killed:
                report.pages_touched += 1
                report.tuples_killed += page_killed
        return report
