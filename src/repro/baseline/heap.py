"""Heap store: mutable slotted pages managed through the buffer pool.

This is the update-in-place substrate of the SI baseline.  Every mutation —
including the 8-byte ``xmax`` stamp of an invalidation — dirties the whole
page, which the buffer eventually writes back in place: the exact I/O
pattern the paper identifies as hostile to flash.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.buffer.manager import BufferManager
from repro.common.config import EngineConfig
from repro.common.errors import NoSuchItemError
from repro.common.latch import LatchStripes
from repro.baseline.fsm import FreeSpaceMap
from repro.pages.layout import HeapTuple, Tid
from repro.pages.slotted import SlottedHeapPage


@dataclass
class HeapStats:
    """Write-side counters of the baseline."""

    tuple_inserts: int = 0
    in_place_invalidations: int = 0  # xmax stamps (the paper's culprit)
    killed_tuples: int = 0
    pages_extended: int = 0


class HeapStore:
    """Per-relation heap file with FSM-driven placement."""

    def __init__(self, buffer: BufferManager, file_id: int,
                 config: EngineConfig) -> None:
        self.buffer = buffer
        self.file_id = file_id
        self.config = config
        self.fsm = FreeSpaceMap()
        self.stats = HeapStats()
        # Placement mutex: FSM search + file extension are check-then-act
        # over shared state, so inserts serialise here.  Page-granular
        # stripe latches protect individual page mutations — an xmax stamp
        # on one page proceeds in parallel with inserts on another.
        # Lock order: placement mutex → page stripe.
        self._place_mu = threading.Lock()
        self.latches = LatchStripes(16)

    @property
    def page_count(self) -> int:
        """Heap pages allocated so far."""
        return self.fsm.page_count

    # -- placement -----------------------------------------------------------------

    def _page_for(self, needed: int) -> tuple[int, SlottedHeapPage]:
        """Find-or-extend a page with room; returned page is *pinned*."""
        page_no = self.fsm.find_page(needed)
        if page_no is not None:
            page = self._get_pinned(page_no)
            if page.fits_bytes(needed):
                return page_no, page
            self.fsm.update(page_no, page.free_bytes())
            self.buffer.unpin(self.file_id, page_no)
        new_no = self.fsm.page_count
        page = SlottedHeapPage(new_no, self.config.page_size)
        self.buffer.put_dirty(self.file_id, new_no, page, pinned=True)
        self.fsm.register_page(new_no, page.free_bytes())
        self.stats.pages_extended += 1
        return new_no, page

    def _get(self, page_no: int) -> SlottedHeapPage:
        page = self.buffer.get_page(self.file_id, page_no)
        if not isinstance(page, SlottedHeapPage):
            raise NoSuchItemError(
                f"page {page_no} is {type(page).__name__}, expected heap")
        return page

    def _get_pinned(self, page_no: int) -> SlottedHeapPage:
        """Fetch a page with an eviction pin held (write paths).

        Every mutate-then-``mark_dirty`` sequence must pin: without the
        pin a concurrent miss in another worker can evict the clean
        frame mid-mutation, so the change would land on an orphaned page
        object (silently lost if the page is re-faulted).  The page
        stripe latch cannot prevent this — eviction never takes stripes.
        """
        page = self.buffer.get_page_pinned(self.file_id, page_no)
        if not isinstance(page, SlottedHeapPage):
            self.buffer.unpin(self.file_id, page_no)
            raise NoSuchItemError(
                f"page {page_no} is {type(page).__name__}, expected heap")
        return page

    # -- tuple operations ---------------------------------------------------------------

    def insert_tuple(self, tuple_: HeapTuple) -> Tid:
        """Place a tuple on any page with room (FSM); returns its TID."""
        fillfactor_room = int(self.config.page_size
                              * (1.0 - self.config.heap_fillfactor))
        needed = tuple_.size + 2 + fillfactor_room
        with self._place_mu:
            page_no, page = self._page_for(needed)
            try:
                with self.latches.of((self.file_id, page_no)):
                    slot = page.insert(tuple_)
                    self.buffer.mark_dirty(self.file_id, page_no)
            finally:
                self.buffer.unpin(self.file_id, page_no)
            self.fsm.update(page_no, page.free_bytes())
            self.stats.tuple_inserts += 1
            return Tid(page_no, slot)

    def read(self, tid: Tid) -> HeapTuple:
        """Fetch the tuple at ``tid``."""
        return self._get(tid.page_no).read(tid.slot)

    def set_xmax(self, tid: Tid, xmax: int) -> None:
        """In-place invalidation: stamp ``xmax`` and dirty the page."""
        with self.latches.of((self.file_id, tid.page_no)):
            page = self._get_pinned(tid.page_no)
            try:
                page.set_xmax(tid.slot, xmax)
                self.buffer.mark_dirty(self.file_id, tid.page_no)
            finally:
                self.buffer.unpin(self.file_id, tid.page_no)
            self.stats.in_place_invalidations += 1

    def kill(self, tid: Tid) -> None:
        """Remove a dead tuple's body (VACUUM) and free its space."""
        with self._place_mu:
            with self.latches.of((self.file_id, tid.page_no)):
                page = self._get_pinned(tid.page_no)
                try:
                    page.kill(tid.slot)
                    self.buffer.mark_dirty(self.file_id, tid.page_no)
                finally:
                    self.buffer.unpin(self.file_id, tid.page_no)
            self.fsm.update(tid.page_no, page.free_bytes())
            self.stats.killed_tuples += 1

    # -- iteration -----------------------------------------------------------------------

    def pages(self):
        """Yield ``(page_no, page)`` front to back (sequential scan order)."""
        for page_no in range(self.fsm.page_count):
            yield page_no, self._get(page_no)

    def space_bytes(self) -> int:
        """Device footprint of the heap file."""
        return self.fsm.page_count * self.config.page_size
