"""Classical Snapshot Isolation engine — the paper's comparison baseline.

Faithful to the PostgreSQL behaviour the paper describes: every tuple version
carries *both* timestamps; an update (i) stamps ``xmax`` **in place** on the
old version's page and (ii) inserts the new version on an arbitrary page
with free space (FSM).  That is two dirtied pages per update, scattered over
the relation — the random-write pattern of the SI blocktrace.  A delete
stamps ``xmax`` only.  Aborted transactions leave their versions in place
(invisible via the commit log) for VACUUM to reclaim, exactly like
PostgreSQL.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baseline.heap import HeapStore
from repro.buffer.manager import BufferManager
from repro.common.config import EngineConfig
from repro.common.errors import SerializationError
from repro.pages.layout import XMAX_INFINITY, HeapTuple, Tid
from repro.txn.manager import Transaction, TransactionManager
from repro.wal.records import WalRecord, WalRecordType


@dataclass
class SiStats:
    """Baseline behaviour counters."""

    reads: int = 0
    visibility_checks: int = 0


class SiEngine:
    """Update-in-place MVCC engine for one relation."""

    def __init__(self, relation_id: int, buffer: BufferManager,
                 file_id: int, config: EngineConfig,
                 txn_mgr: TransactionManager) -> None:
        self.relation_id = relation_id
        self.config = config
        self.txn_mgr = txn_mgr
        self.heap = HeapStore(buffer, file_id, config)
        self.stats = SiStats()

    # -- visibility ---------------------------------------------------------------

    def is_visible(self, txn: Transaction, tuple_: HeapTuple) -> bool:
        """Classical SI check over both on-tuple timestamps."""
        self.stats.visibility_checks += 1
        snapshot, clog = txn.snapshot, self.txn_mgr.clog
        if not snapshot.sees_ts(tuple_.xmin, clog):
            return False
        if tuple_.xmax != XMAX_INFINITY and snapshot.sees_ts(tuple_.xmax,
                                                             clog):
            return False  # invalidated before our snapshot
        return True

    # -- write path --------------------------------------------------------------------

    def insert(self, txn: Transaction, payload: bytes) -> Tid:
        """Create a tuple; returns its TID (the item handle under SI)."""
        tuple_ = HeapTuple(xmin=txn.txid, xmax=XMAX_INFINITY,
                           tombstone=False, payload=payload)
        tid = self.heap.insert_tuple(tuple_)
        self._log(txn, WalRecordType.INSERT, tid, payload)
        txn.writes += 1
        return tid

    def update(self, txn: Transaction, tid: Tid, payload: bytes) -> Tid:
        """Invalidate ``tid`` in place and insert the successor version.

        Returns the new version's TID — callers (and indexes) must track it.

        The item lock is taken first: with lock waiting enabled a second
        updater blocks until the holder finishes, then re-validates —
        committed holder means first-updater-wins abort, aborted holder
        means the stamp was void and the waiter proceeds.
        """
        self.txn_mgr.locks.acquire((self.relation_id, tid), txn.txid)
        self._check_updatable(txn, tid)
        # 1st physical write: in-place xmax stamp on the old version's page.
        self.heap.set_xmax(tid, txn.txid)
        # 2nd physical write: the new version on an arbitrary FSM page.
        new_tuple = HeapTuple(xmin=txn.txid, xmax=XMAX_INFINITY,
                              tombstone=False, payload=payload)
        new_tid = self.heap.insert_tuple(new_tuple)
        self._log(txn, WalRecordType.UPDATE, new_tid, payload)
        txn.writes += 1
        return new_tid

    def delete(self, txn: Transaction, tid: Tid) -> None:
        """Invalidate ``tid`` in place (no new version)."""
        self.txn_mgr.locks.acquire((self.relation_id, tid), txn.txid)
        self._check_updatable(txn, tid)
        self.heap.set_xmax(tid, txn.txid)
        self._log(txn, WalRecordType.DELETE, tid, b"")
        txn.writes += 1

    def _check_updatable(self, txn: Transaction, tid: Tid) -> None:
        tuple_ = self.heap.read(tid)
        if not self.is_visible(txn, tuple_):
            raise SerializationError(
                f"tuple {tid} is not visible to txn {txn.txid}: "
                "concurrent update (first-updater-wins)")
        if tuple_.xmax != XMAX_INFINITY and tuple_.xmax != txn.txid:
            # Someone else already stamped this version.  If they aborted
            # the stamp is void and we may proceed; if they are running or
            # committed (necessarily concurrent with us, or the version
            # would be invisible) we are the second updater and lose.
            if not self.txn_mgr.clog.is_aborted(tuple_.xmax):
                raise SerializationError(
                    f"tuple {tid} was invalidated by txn {tuple_.xmax} "
                    "(first-updater-wins)")

    def _log(self, txn: Transaction, rtype: WalRecordType, tid: Tid,
             payload: bytes) -> None:
        if self.txn_mgr.wal is not None:
            item = (tid.page_no << 16) | tid.slot
            self.txn_mgr.wal.append(WalRecord(rtype, txn.txid, item, payload,
                                              self.relation_id))

    # -- read path -------------------------------------------------------------------------

    def is_dead_to_all(self, tid: Tid) -> bool:
        """Whether no present or future snapshot can see this version.

        Used for index *kill bits* (PostgreSQL's LP_DEAD hints): an index
        scan that lands on such a version removes the entry immediately
        instead of waiting for VACUUM, which keeps hot keys from
        accumulating unbounded dead entries between vacuums.
        """
        tuple_ = self.heap.read(tid)
        clog = self.txn_mgr.clog
        if clog.is_aborted(tuple_.xmin):
            return True
        if tuple_.xmax == XMAX_INFINITY:
            return False
        return (tuple_.xmax < self.txn_mgr.horizon_txid()
                and clog.is_committed(tuple_.xmax))

    def read(self, txn: Transaction, tid: Tid) -> bytes | None:
        """Payload at ``tid`` if that exact version is visible, else None."""
        txn.reads += 1
        self.stats.reads += 1
        tuple_ = self.heap.read(tid)
        if self.is_visible(txn, tuple_):
            return tuple_.payload
        return None

    def scan(self, txn: Transaction):
        """Traditional full scan: every page, every version, checked.

        Pages are fetched one at a time (sequential — the HDD-era pattern);
        yields ``(tid, payload)`` for visible versions.
        """
        for page_no, page in self.heap.pages():
            for slot, tuple_ in page.tuples():
                if self.is_visible(txn, tuple_):
                    yield Tid(page_no, slot), tuple_.payload
