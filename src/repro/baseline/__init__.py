"""Baseline: classical in-place-invalidation Snapshot Isolation engine."""

from repro.baseline.engine import SiEngine, SiStats
from repro.baseline.fsm import FreeSpaceMap
from repro.baseline.heap import HeapStats, HeapStore
from repro.baseline.vacuum import Vacuum, VacuumReport

__all__ = [
    "FreeSpaceMap",
    "HeapStats",
    "HeapStore",
    "SiEngine",
    "SiStats",
    "Vacuum",
    "VacuumReport",
]
