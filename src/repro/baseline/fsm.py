"""Free-space map for the baseline heap.

PostgreSQL places new tuple versions on *any* page with enough free space.
The map tracks approximate per-page free bytes and serves requests from a
rotating cursor — so consecutive inserts land on different pages spread over
the whole file.  This is the placement behaviour behind the scattered write
pattern of the SI blocktrace (and behind SIAS-V's contrasting swimlanes).
"""

from __future__ import annotations


class FreeSpaceMap:
    """Approximate free-bytes-per-page tracking with rotating first-fit."""

    def __init__(self) -> None:
        self._free: list[int] = []
        self._cursor = 0
        # upper bound on max(self._free); lets find_page refuse in O(1)
        # when no page can fit (tightened whenever a full scan fails)
        self._max_free_bound = 0

    @property
    def page_count(self) -> int:
        """Pages known to the map."""
        return len(self._free)

    def register_page(self, page_no: int, free_bytes: int) -> None:
        """Add a page (must be registered in page-number order)."""
        if page_no != len(self._free):
            raise ValueError(
                f"pages register sequentially: expected {len(self._free)}, "
                f"got {page_no}")
        self._free.append(free_bytes)
        self._max_free_bound = max(self._max_free_bound, free_bytes)

    def update(self, page_no: int, free_bytes: int) -> None:
        """Refresh a page's free-byte estimate."""
        self._free[page_no] = free_bytes
        self._max_free_bound = max(self._max_free_bound, free_bytes)

    def free_bytes(self, page_no: int) -> int:
        """Current estimate for a page."""
        return self._free[page_no]

    def find_page(self, needed: int) -> int | None:
        """First page (from the rotating cursor) with ``needed`` bytes free.

        Returns None when no page fits — the caller extends the file.  The
        cursor advances past a successful hit, spreading placements.
        """
        if needed > self._max_free_bound:
            return None  # no page can possibly fit
        n = len(self._free)
        for step in range(n):
            page_no = (self._cursor + step) % n
            if self._free[page_no] >= needed:
                self._cursor = (page_no + 1) % n
                return page_no
        # the bound was stale: tighten it so the next misses are O(1)
        self._max_free_bound = max(self._free, default=0)
        return None

    def total_free(self) -> int:
        """Sum of free bytes over all pages."""
        return sum(self._free)
