"""Leader side of WAL shipping: slots, fetch batches, backups, fencing.

The hub is a thin privileged view over the node's own write-ahead log.
Followers address the log by *global record sequence numbers*
(:meth:`repro.wal.log.WriteAheadLog.durable_seq`), which survive
checkpoint truncation and segment recycling; each subscribed follower
owns a replication slot whose position clamps truncation, so the shipped
stream can never gap while the follower is behind.

Fencing: the hub carries an **epoch** token.  Every fetch must present
the epoch it subscribed under; a mismatch raises
:class:`~repro.common.errors.ReplicationError` (wire status ``FENCED``).
After a failover the promoted follower bumps the epoch, so a zombie old
leader — or a follower still talking to one — is refused deterministically
rather than fed a diverging history.

Online base backups: a follower that fell below the retained WAL base
(its slot was dropped or evicted) bootstraps through
``backup_begin`` / ``backup_fetch`` / ``backup_end`` — PostgreSQL's
``pg_basebackup`` feeding a streaming standby.  ``backup_begin`` cuts a
consistent image at the node's closed timestamp and pins the follower's
slot at the redo anchor, so the image plus the stream resumed at the
handle's ``resume_seq`` reconstructs exactly the leader's history: every
transaction the image misses has all of its records at or above the
anchor (see :meth:`~repro.wal.log.WriteAheadLog.redo_anchor_seq`), and
every transaction the stream re-delivers is deduplicated on the replica
by creation timestamp and commit-log fate.

A hub normally serves a leader database and samples
``db.closed_ts()``; a **cascading** hub on a replica is handed the
follower's replay watermark as ``closed_ts_fn`` instead — the replica's
own WAL (shipped records land there) is then a valid upstream for
grand-followers, with the watermark playing the closed timestamp's role
in the never-fractured argument.
"""

from __future__ import annotations

from typing import Callable

from repro.common.errors import ReplicationError
from repro.db.database import Database


class _BackupJob:
    """One in-flight base backup: a materialized consistent image."""

    def __init__(self, backup_id: str, follower_id: str, epoch: int,
                 resume_seq: int, closed_ts: int, durable_seq: int,
                 entries: list[tuple], chunk_records: int) -> None:
        self.backup_id = backup_id
        self.follower_id = follower_id
        self.epoch = epoch
        self.resume_seq = resume_seq
        self.closed_ts = closed_ts
        self.durable_seq = durable_seq
        #: flat image entries: (table, vid, create_ts, tombstone, payload)
        self.entries = entries
        self.chunk_records = max(1, chunk_records)
        self.fetched_chunks = 0

    @property
    def chunks(self) -> int:
        records = len(self.entries)
        return (records + self.chunk_records - 1) // self.chunk_records

    def chunk(self, index: int) -> list[tuple]:
        if index < 0 or index >= max(1, self.chunks):
            raise ReplicationError(
                f"backup {self.backup_id!r} has {self.chunks} chunk(s), "
                f"chunk {index} does not exist")
        lo = index * self.chunk_records
        return self.entries[lo:lo + self.chunk_records]

    def handle(self) -> dict:
        """The wire-friendly backup handle ``backup_begin`` returns."""
        return {
            "backup_id": self.backup_id,
            "epoch": self.epoch,
            "resume_seq": self.resume_seq,
            "closed_ts": self.closed_ts,
            "durable_seq": self.durable_seq,
            "chunks": self.chunks,
            "records": len(self.entries),
        }


class ReplicationHub:
    """Serves the durable WAL tail (and base backups) of one node."""

    def __init__(self, db: Database, epoch: int = 1,
                 closed_ts_fn: Callable[[], int] | None = None,
                 max_retained_records: int | None = None,
                 backup_chunk_records: int = 64) -> None:
        self.db = db
        #: fencing token; bumped by whoever wins a failover
        self.epoch = epoch
        #: ``"leader"`` serves fetches and accepts writes; ``"fenced"``
        #: refuses both (a deposed leader that must not ack anything)
        self.role = "leader"
        #: the closed timestamp shipped with every frame.  A leader hub
        #: samples the transaction manager's watermark; a cascading hub
        #: on a replica is handed the follower's replay watermark instead
        #: (the highest timestamp the replica has *fully applied* — its
        #: own ``db.closed_ts()`` would count replica-local read txids
        #: and overshoot what is actually safe downstream).
        self._closed_ts_fn = closed_ts_fn or db.closed_ts
        if max_retained_records is not None:
            db.wal.max_retained_records = max_retained_records
        self.backup_chunk_records = backup_chunk_records
        self._backups: dict[str, _BackupJob] = {}
        self._backup_counter = 0
        self.shipped_frames = 0
        self.shipped_records = 0
        self.backups_started = 0
        self.backups_finished = 0

    # -- subscription -------------------------------------------------------

    def subscribe(self, follower_id: str, start_seq: int) -> dict:
        """Register (or rewind) a follower's slot at ``start_seq``.

        Returns ``{"epoch", "durable_seq"}`` — the epoch the follower must
        present on every fetch, and the current durable horizon so it can
        size its catch-up.
        """
        self._require_leader()
        try:
            self.db.wal.register_slot(follower_id, start_seq)
        except ValueError as exc:
            raise ReplicationError(str(exc)) from None
        return {"epoch": self.epoch,
                "durable_seq": self.db.wal.durable_seq()}

    def unsubscribe(self, follower_id: str) -> None:
        """Drop a follower's slot (its retention floor goes with it)."""
        self.db.wal.drop_slot(follower_id)

    # -- shipping -----------------------------------------------------------

    def fetch(self, follower_id: str, epoch: int, since_seq: int,
              acked_seq: int,
              limit: int = 256) -> tuple[int, int, bytes, int, int]:
        """One shipped frame: durable records starting at ``since_seq``.

        Returns ``(epoch, since_seq, blob, durable_seq, closed_ts)`` where
        ``blob`` is the packed concatenation of at most ``limit`` records.

        ``closed_ts`` is sampled **before** the records are taken: every
        transaction at or below it reached its fate before the sample, so
        its COMMIT record (if any) is below the ``durable_seq`` returned
        with this very frame.  A follower that has applied up to that
        horizon may therefore pin snapshots at ``closed_ts`` without ever
        observing a fractured transaction — this ordering is the
        correctness argument for the replica watermark.

        ``acked_seq`` is the follower's durable restart point; the slot
        ratchets to it, releasing retention behind it.
        """
        self._require_leader()
        if epoch != self.epoch:
            raise ReplicationError(
                f"fetch from {follower_id!r} carries epoch {epoch}, "
                f"current epoch is {self.epoch}: the requester is fenced")
        closed_ts = self._closed_ts_fn()
        try:
            records, durable_seq = self.db.wal.records_since(since_seq,
                                                             limit)
        except ValueError as exc:
            raise ReplicationError(str(exc)) from None
        self.db.wal.advance_slot(follower_id, acked_seq)
        self.shipped_frames += 1
        self.shipped_records += len(records)
        blob = b"".join(record.pack() for record in records)
        return self.epoch, since_seq, blob, durable_seq, closed_ts

    # -- online base backup -------------------------------------------------

    def backup_begin(self, follower_id: str) -> dict:
        """Cut a consistent bootstrap image; returns the backup handle.

        The cut, in order: force the WAL, sample the closed timestamp,
        sample the redo anchor for it and pin the follower's slot there
        (truncation cannot outrun the resume point while the image
        installs), then materialize every visible version at the closed
        timestamp under a pinned snapshot.  The image holds exactly the
        committed transactions at or below ``closed_ts``; every
        transaction above it has all of its records at or above
        ``resume_seq`` (:meth:`~repro.wal.log.WriteAheadLog.redo_anchor_seq`),
        so the resumed stream re-ships it in full and the replica's
        commit-log dedupe absorbs any overlap — a transaction is never
        half image, half stream.
        """
        self._require_leader()
        wal = self.db.wal
        wal.force()
        closed_ts = self._closed_ts_fn()
        resume_seq = wal.redo_anchor_seq(closed_ts)
        try:
            wal.register_slot(follower_id, resume_seq)
        except ValueError as exc:
            raise ReplicationError(str(exc)) from None
        durable_seq = wal.durable_seq()
        entries = self._capture_image(closed_ts)
        self._backup_counter += 1
        backup_id = f"{follower_id}#{self._backup_counter}"
        job = _BackupJob(backup_id, follower_id, self.epoch, resume_seq,
                         closed_ts, durable_seq, entries,
                         self.backup_chunk_records)
        self._backups[backup_id] = job
        self.backups_started += 1
        return job.handle()

    def backup_fetch(self, backup_id: str, epoch: int,
                     chunk_index: int) -> list[tuple]:
        """One image chunk: ``(table, vid, create_ts, tombstone, payload)``
        entries.  Chunks may be fetched in any order and re-fetched (a
        crashed installer restarts the backup, but a retried chunk must
        not fault)."""
        self._require_leader()
        job = self._backups.get(backup_id)
        if job is None:
            raise ReplicationError(
                f"unknown backup {backup_id!r}: the backup source "
                f"restarted, begin a new backup")
        if epoch != self.epoch or job.epoch != self.epoch:
            raise ReplicationError(
                f"backup {backup_id!r} carries epoch {epoch}, current "
                f"epoch is {self.epoch}: the requester is fenced")
        job.fetched_chunks += 1
        return job.chunk(chunk_index)

    def backup_end(self, backup_id: str) -> None:
        """Release a backup job (idempotent — a vanished job is fine)."""
        if self._backups.pop(backup_id, None) is not None:
            self.backups_finished += 1

    def _capture_image(self, closed_ts: int) -> list[tuple]:
        """Materialize every version visible at ``closed_ts``.

        Runs under a snapshot transaction pinned at the cut timestamp:
        the pin freezes commit-log verdicts below it and holds the GC
        horizon at ``closed_ts + 1``, so chain descent cannot race a
        concurrent reclaim.  Visible tombstones are captured too — the
        installer must know a deleted item is *deleted*, not merely
        absent, when resyncing over stale state.
        """
        from repro.core.engine import SiasVEngine

        txn = self.db.begin(at_ts=closed_ts)
        clog = self.db.txn_mgr.clog
        entries: list[tuple] = []
        try:
            for name, relation in self.db.tables.items():
                engine = relation.engine
                if not isinstance(engine, SiasVEngine):
                    raise ReplicationError(
                        f"relation {name!r} runs the SI baseline engine, "
                        f"which has no record-level backup image")
                for vid in range(engine.allocator.high_water):
                    tid = engine.vidmap.get(vid)
                    while tid is not None:
                        version = engine.store.read(tid)
                        if txn.snapshot.sees_ts(version.create_ts, clog):
                            entries.append((name, vid, version.create_ts,
                                            bool(version.tombstone),
                                            bytes(version.payload)))
                            break
                        tid = version.pred
        finally:
            self.db.commit(txn)
        return entries

    # -- fencing ------------------------------------------------------------

    def fence(self) -> None:
        """Depose this leader: refuse all future fetches and writes.

        Applied to a restarted old leader after a failover (the STONITH
        step) so it can never again ack a write or ship a frame from the
        dead epoch.  In-flight backups die with it — their handles carry
        the dead epoch and are refused.
        """
        self.role = "fenced"
        self._backups.clear()

    def _require_leader(self) -> None:
        if self.role != "leader":
            raise ReplicationError(
                f"node is {self.role}, not the leader")

    # -- introspection ------------------------------------------------------

    def status(self) -> dict:
        """Replication facts for STATS / SNAPSHOT surfacing."""
        wal = self.db.wal
        return {
            "role": self.role,
            "epoch": self.epoch,
            "durable_seq": wal.durable_seq(),
            "slots": wal.slots(),
            "slots_evicted": wal.slots_evicted,
            "retained_records": wal.retained_records(),
            "max_retained_records": wal.max_retained_records or 0,
            "shipped_frames": self.shipped_frames,
            "shipped_records": self.shipped_records,
            "backups_started": self.backups_started,
            "backups_finished": self.backups_finished,
            "active_backups": len(self._backups),
        }
