"""Leader side of WAL shipping: slots, fetch batches, epoch fencing.

The hub is a thin privileged view over the node's own write-ahead log.
Followers address the log by *global record sequence numbers*
(:meth:`repro.wal.log.WriteAheadLog.durable_seq`), which survive
checkpoint truncation and segment recycling; each subscribed follower
owns a replication slot whose position clamps truncation, so the shipped
stream can never gap while the follower is behind.

Fencing: the hub carries an **epoch** token.  Every fetch must present
the epoch it subscribed under; a mismatch raises
:class:`~repro.common.errors.ReplicationError` (wire status ``FENCED``).
After a failover the promoted follower bumps the epoch, so a zombie old
leader — or a follower still talking to one — is refused deterministically
rather than fed a diverging history.
"""

from __future__ import annotations

from repro.common.errors import ReplicationError
from repro.db.database import Database


class ReplicationHub:
    """Serves the durable WAL tail of one leader database."""

    def __init__(self, db: Database, epoch: int = 1) -> None:
        self.db = db
        #: fencing token; bumped by whoever wins a failover
        self.epoch = epoch
        #: ``"leader"`` serves fetches and accepts writes; ``"fenced"``
        #: refuses both (a deposed leader that must not ack anything)
        self.role = "leader"
        self.shipped_frames = 0
        self.shipped_records = 0

    # -- subscription -------------------------------------------------------

    def subscribe(self, follower_id: str, start_seq: int) -> dict:
        """Register (or rewind) a follower's slot at ``start_seq``.

        Returns ``{"epoch", "durable_seq"}`` — the epoch the follower must
        present on every fetch, and the current durable horizon so it can
        size its catch-up.
        """
        self._require_leader()
        try:
            self.db.wal.register_slot(follower_id, start_seq)
        except ValueError as exc:
            raise ReplicationError(str(exc)) from None
        return {"epoch": self.epoch,
                "durable_seq": self.db.wal.durable_seq()}

    def unsubscribe(self, follower_id: str) -> None:
        """Drop a follower's slot (its retention floor goes with it)."""
        self.db.wal.drop_slot(follower_id)

    # -- shipping -----------------------------------------------------------

    def fetch(self, follower_id: str, epoch: int, since_seq: int,
              acked_seq: int,
              limit: int = 256) -> tuple[int, int, bytes, int, int]:
        """One shipped frame: durable records starting at ``since_seq``.

        Returns ``(epoch, since_seq, blob, durable_seq, closed_ts)`` where
        ``blob`` is the packed concatenation of at most ``limit`` records.

        ``closed_ts`` is sampled **before** the records are taken: every
        transaction at or below it reached its fate before the sample, so
        its COMMIT record (if any) is below the ``durable_seq`` returned
        with this very frame.  A follower that has applied up to that
        horizon may therefore pin snapshots at ``closed_ts`` without ever
        observing a fractured transaction — this ordering is the
        correctness argument for the replica watermark.

        ``acked_seq`` is the follower's durable restart point; the slot
        ratchets to it, releasing retention behind it.
        """
        self._require_leader()
        if epoch != self.epoch:
            raise ReplicationError(
                f"fetch from {follower_id!r} carries epoch {epoch}, "
                f"current epoch is {self.epoch}: the requester is fenced")
        closed_ts = self.db.closed_ts()
        try:
            records, durable_seq = self.db.wal.records_since(since_seq,
                                                             limit)
        except ValueError as exc:
            raise ReplicationError(str(exc)) from None
        self.db.wal.advance_slot(follower_id, acked_seq)
        self.shipped_frames += 1
        self.shipped_records += len(records)
        blob = b"".join(record.pack() for record in records)
        return self.epoch, since_seq, blob, durable_seq, closed_ts

    # -- fencing ------------------------------------------------------------

    def fence(self) -> None:
        """Depose this leader: refuse all future fetches and writes.

        Applied to a restarted old leader after a failover (the STONITH
        step) so it can never again ack a write or ship a frame from the
        dead epoch.
        """
        self.role = "fenced"

    def _require_leader(self) -> None:
        if self.role != "leader":
            raise ReplicationError(
                f"node is {self.role}, not the leader")

    # -- introspection ------------------------------------------------------

    def status(self) -> dict:
        """Replication facts for STATS / SNAPSHOT surfacing."""
        return {
            "role": self.role,
            "epoch": self.epoch,
            "durable_seq": self.db.wal.durable_seq(),
            "slots": self.db.wal.slots(),
            "shipped_frames": self.shipped_frames,
            "shipped_records": self.shipped_records,
        }
