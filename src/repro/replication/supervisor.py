"""Supervised follower loop: reconnect, resync, back off, report.

PR 9's follower was hand-cranked — every ``connect``/``catch_up`` call
belonged to the experiment driving it, and a dropped connection was the
caller's problem.  :class:`FollowerSupervisor` owns that loop: it runs
connect→catch_up continuously, absorbs transport failures with
full-jitter exponential backoff (the same
:class:`~repro.client.pool.RetryPolicy` schedule the client pool uses,
for the same reason — followers shed by one leader hiccup must not
reconnect in lockstep), lets the follower's automatic full resync run
under it, and exposes a typed state machine for health surfacing:

* ``STREAMING`` — connected and applying frames,
* ``RESYNCING`` — mid base-backup bootstrap (set by the follower's
  ``resync`` through :meth:`note_resync`),
* ``DISCONNECTED`` — last step failed on transport or fencing; backing
  off before the next attempt,
* ``PROMOTED`` — this node was promoted; the loop stops looping.

``step()`` is the unit of progress and is what tests and the chaos
sweep drive deterministically; ``start()``/``stop()`` wrap it in a
daemon thread for live deployments.  State and counters ride the
follower's ``status()`` into STATS and the monitoring SNAPSHOT.
"""

from __future__ import annotations

import threading
import time
from enum import Enum

from repro.client.pool import RetryPolicy
from repro.common.errors import ReplicationError, ServiceError


class FollowerState(Enum):
    """Health of a supervised follower."""

    DISCONNECTED = "disconnected"
    STREAMING = "streaming"
    RESYNCING = "resyncing"
    PROMOTED = "promoted"


#: errors that mean "the upstream is unreachable", not "the stream is
#: wrong": socket failures plus the client pool's shed/deadline/circuit
#: refusals.  ReplicationError is handled separately — fencing needs a
#: re-subscribe (epoch adoption), not just a retry.
TRANSPORT_ERRORS = (ConnectionError, OSError, ServiceError)


class FollowerSupervisor:
    """Keeps a :class:`~repro.replication.follower.WalFollower` streaming."""

    def __init__(self, follower, retry: RetryPolicy | None = None,
                 sleep=time.sleep, on_frame=None) -> None:
        self.follower = follower
        follower.supervisor = self
        #: per-applied-frame hook threaded into ``catch_up`` — the chaos
        #: sweep's kill points count frames through this
        self.on_frame = on_frame
        self.retry = retry if retry is not None else RetryPolicy(
            base_delay_sec=0.01, max_delay_sec=1.0)
        self._sleep = sleep
        self.state = FollowerState.DISCONNECTED
        self._connected = False
        #: consecutive failed steps — indexes the backoff schedule
        self.failures = 0
        self.steps = 0
        self.disconnects = 0
        self.fence_refusals = 0
        self.resyncs_observed = 0
        self.backoff_sec_total = 0.0
        self.last_error: str | None = None
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    # -- the loop -----------------------------------------------------------

    def step(self) -> FollowerState:
        """One supervision round: (re)connect if needed, then catch up.

        Never raises on transport or fencing failures — those set
        ``DISCONNECTED``, record the error, and sleep one full-jitter
        backoff interval so the caller can just loop.
        """
        self.steps += 1
        follower = self.follower
        if follower.role == "leader":
            self.state = FollowerState.PROMOTED
            return self.state
        try:
            if not self._connected:
                follower.connect()
                self._connected = True
            follower.catch_up(on_frame=self.on_frame)
        except TRANSPORT_ERRORS as exc:
            if isinstance(exc, ReplicationError):
                # fenced, gapped, or a deposed upstream: the fix is a
                # fresh subscribe (which adopts the new epoch), not a
                # blind retry of the same fetch
                self.fence_refusals += 1
            else:
                self.disconnects += 1
            self._connected = False
            self.failures += 1
            self.state = FollowerState.DISCONNECTED
            self.last_error = f"{type(exc).__name__}: {exc}"
            self._backoff()
            return self.state
        self.failures = 0
        self.last_error = None
        self.state = FollowerState.STREAMING
        return self.state

    def _backoff(self) -> None:
        delay = self.retry.delay(self.failures - 1)
        self.backoff_sec_total += delay
        if delay > 0:
            self._sleep(delay)

    def note_resync(self) -> None:
        """Called by the follower when its automatic resync kicks in."""
        self.state = FollowerState.RESYNCING
        self.resyncs_observed += 1

    # -- thread wrapper -----------------------------------------------------

    def run(self, max_steps: int | None = None) -> FollowerState:
        """Loop :meth:`step` until promoted, stopped, or ``max_steps``."""
        while not self._stop.is_set():
            if self.step() is FollowerState.PROMOTED:
                break
            if max_steps is not None:
                max_steps -= 1
                if max_steps <= 0:
                    break
        return self.state

    def start(self) -> None:
        """Run the loop in a daemon thread."""
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(target=self.run,
                                        name="follower-supervisor",
                                        daemon=True)
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the loop and join the thread."""
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout)

    # -- introspection ------------------------------------------------------

    def status(self) -> dict:
        """Supervision facts for STATS / SNAPSHOT surfacing."""
        return {
            "state": self.state.value,
            "steps": self.steps,
            "failures": self.failures,
            "disconnects": self.disconnects,
            "fence_refusals": self.fence_refusals,
            "resyncs": self.resyncs_observed,
            "backoff_sec_total": round(self.backoff_sec_total, 6),
            "last_error": self.last_error or "",
        }
