"""WAL-shipping replication: leader-side log shipping, follower apply.

A leader node attaches a :class:`~repro.replication.leader.ReplicationHub`
to its database and serves ``WAL_SUBSCRIBE`` / ``WAL_FETCH`` plus the
``BACKUP_BEGIN`` / ``BACKUP_FETCH`` / ``BACKUP_END`` bootstrap commands;
a replica runs a :class:`~repro.replication.follower.WalFollower` that
continuously fetches the durable log tail, applies committed transactions
through the same redo idiom crash recovery uses, and serves snapshot
reads pinned at its replay watermark — stale-bounded, never fractured.
A follower that falls below the leader's retained WAL base bootstraps
itself through an online base backup (automatic full resync); a
:class:`~repro.replication.supervisor.FollowerSupervisor` keeps the loop
running through disconnects with full-jitter backoff; ``cascade=True``
followers serve a hub over their own WAL so replicas chain
replica-of-replica.  Promotion fences the old epoch so a zombie leader's
frames are refused everywhere — and the adopted epoch propagates down
cascading chains.
"""

from repro.replication.follower import (
    REPLICA_TXID_BASE,
    RemoteSource,
    WalFollower,
)
from repro.replication.leader import ReplicationHub
from repro.replication.supervisor import FollowerState, FollowerSupervisor

__all__ = [
    "REPLICA_TXID_BASE",
    "FollowerState",
    "FollowerSupervisor",
    "RemoteSource",
    "ReplicationHub",
    "WalFollower",
]
