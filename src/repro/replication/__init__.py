"""WAL-shipping replication: leader-side log shipping, follower apply.

A leader node attaches a :class:`~repro.replication.leader.ReplicationHub`
to its database and serves ``WAL_SUBSCRIBE`` / ``WAL_FETCH``; a replica
runs a :class:`~repro.replication.follower.WalFollower` that continuously
fetches the durable log tail, applies committed transactions through the
same redo idiom crash recovery uses, and serves snapshot reads pinned at
its replay watermark — stale-bounded, never fractured.  Promotion fences
the old epoch so a zombie leader's frames are refused everywhere.
"""

from repro.replication.follower import (
    REPLICA_TXID_BASE,
    RemoteSource,
    WalFollower,
)
from repro.replication.leader import ReplicationHub

__all__ = [
    "REPLICA_TXID_BASE",
    "RemoteSource",
    "ReplicationHub",
    "WalFollower",
]
