"""Follower side of WAL shipping: continuous redo, watermark reads.

A :class:`WalFollower` drives a replica database.  It fetches the
leader's durable log tail in frames (in-process through a
:class:`~repro.replication.leader.ReplicationHub`, or over the wire
through :class:`RemoteSource`), buffers each transaction's data records
until its COMMIT arrives, and then applies the whole transaction through
the same idempotent redo idiom crash recovery uses
(:func:`repro.core.recovery._redo_from_wal`): append the version, swing
the VIDmap entrypoint, bump the allocator, insert index entries.
Versions land **before** the commit-log flip, so a replica reader can
never observe a half-applied transaction.

Reads are pinned at the **replay watermark**: the leader's closed
timestamp as of a frame the follower has fully caught up to.  Because
the leader samples ``closed_ts`` before taking the records
(:meth:`~repro.replication.leader.ReplicationHub.fetch`), every
transaction at or below the watermark is either fully applied here or
was aborted — a snapshot at the watermark is stale-bounded but never
fractured.

Restart resume: after each applied frame the follower appends a small
control record to its *own* WAL (``CHECKPOINT`` carrying the restart
sequence in ``item_id`` with payload ``b"REPL"``) and forces it.  On
restart, stock crash recovery rebuilds the replica state from its own
durable log, the last control record names where to resume, and
re-delivered records are deduplicated against the commit log and the
engine's version chains.

Only SIAS-V relations replicate: the SI baseline's recovery is
checkpoint-consistent rather than record-redo (see
:mod:`repro.db.recovery`), so it has no per-record apply path to ride.
"""

from __future__ import annotations

from repro.common.errors import ReplicationError
from repro.core.engine import SiasVEngine
from repro.db.database import Database
from repro.pages.layout import VersionRecord
from repro.txn.commitlog import TxnState
from repro.wal.records import WalRecord, WalRecordType

#: Follower-local txids start here, far above any leader txid the stream
#: can ship, so a local read transaction's commit-log registration can
#: never collide with a shipped transaction's.
REPLICA_TXID_BASE = 1 << 40

#: payload tag of the follower's restart-resume control records
_REPL_MARKER = b"REPL"


class RemoteSource:
    """Fetches a leader's WAL over the wire protocol.

    Wraps a :class:`~repro.client.pool.ConnectionPool` aimed at the
    leader and speaks ``WAL_SUBSCRIBE`` / ``WAL_FETCH``.
    """

    def __init__(self, pool) -> None:
        self.pool = pool

    def subscribe(self, follower_id: str, start_seq: int) -> dict:
        from repro.server.protocol import Command
        epoch, durable_seq = self.pool.call(
            Command.WAL_SUBSCRIBE, follower_id, start_seq)
        return {"epoch": epoch, "durable_seq": durable_seq}

    def fetch(self, follower_id: str, epoch: int, since_seq: int,
              acked_seq: int,
              limit: int) -> tuple[int, int, bytes, int, int]:
        from repro.server.protocol import Command
        result = self.pool.call(Command.WAL_FETCH, follower_id, epoch,
                                since_seq, acked_seq, limit)
        return tuple(result)  # type: ignore[return-value]


class WalFollower:
    """Continuously applies a leader's log to a replica database.

    ``db`` must be provisioned with the same tables in the same creation
    order as the leader (relation ids are assigned by creation order and
    DDL is not WAL-logged).
    """

    def __init__(self, db: Database, source, follower_id: str = "replica-1",
                 batch_limit: int = 256) -> None:
        self.db = db
        self.source = source
        self.follower_id = follower_id
        self.batch_limit = batch_limit
        # keep local txids (read transactions, recovery's index-rebuild
        # scan) clear of the shipped leader txid space
        db.txn_mgr.advance_to(REPLICA_TXID_BASE)
        #: next global seq to fetch from the leader
        self.fetch_seq = self._resume_seq()
        #: durable restart point (last forced control record)
        self.acked_seq = self.fetch_seq
        #: replica read timestamp: leader closed_ts as of a frame this
        #: follower has fully applied
        self.watermark = 0
        self.epoch = 0
        self.role = "replica"
        self.leader_durable_seq = self.fetch_seq
        self.hub = None  # set on promotion
        #: data records of transactions whose COMMIT has not arrived yet
        self._pending: dict[int, list[WalRecord]] = {}
        #: first global seq of each pending transaction (restart anchor)
        self._pending_seq: dict[int, int] = {}
        self.frames = 0
        self.applied_txns = 0
        self.applied_records = 0
        self.deduped_txns = 0

    # -- lifecycle ----------------------------------------------------------

    def connect(self) -> dict:
        """Subscribe at the restart point; adopt the leader's epoch."""
        info = self.source.subscribe(self.follower_id, self.acked_seq)
        self.epoch = int(info["epoch"])
        self.leader_durable_seq = int(info["durable_seq"])
        return info

    def catch_up(self, max_frames: int | None = None,
                 on_frame=None) -> int:
        """Fetch and apply until the leader's durable horizon is reached.

        Returns the number of records applied.  ``on_frame`` (if given)
        is invoked after each applied frame — the chaos sweep's kill
        points count these.  ``max_frames`` bounds the loop for
        incremental draining.
        """
        applied = 0
        while True:
            frame = self.source.fetch(self.follower_id, self.epoch,
                                      self.fetch_seq, self.acked_seq,
                                      self.batch_limit)
            epoch, start_seq, blob, durable_seq, closed_ts = frame
            if epoch != self.epoch:
                raise ReplicationError(
                    f"frame carries epoch {epoch}, follower is at "
                    f"{self.epoch}: refusing a fenced leader's records")
            if start_seq != self.fetch_seq:
                raise ReplicationError(
                    f"frame starts at seq {start_seq}, expected "
                    f"{self.fetch_seq}: the shipped stream gapped")
            records = self._unpack(blob)
            for offset, record in enumerate(records):
                self._apply(record, start_seq + offset)
            self.fetch_seq = start_seq + len(records)
            applied += len(records)
            self._mark_progress()
            self.leader_durable_seq = durable_seq
            self.frames += 1
            if self.fetch_seq >= durable_seq:
                # everything durable at closed_ts-sample time is applied:
                # the watermark may ratchet to that closed timestamp
                self.watermark = max(self.watermark, closed_ts)
            if on_frame is not None:
                on_frame(self)
            if self.fetch_seq >= durable_seq:
                return applied
            if max_frames is not None:
                max_frames -= 1
                if max_frames <= 0:
                    return applied

    def promote(self) -> int:
        """Leader failover: fence the old epoch and start leading.

        Incomplete shipped transactions (data records without a durable
        COMMIT from the old leader) are discarded — their fate is abort
        by omission, exactly as crash recovery would settle them.  The
        epoch bump fences the old leader: its frames and fetches are
        refused everywhere from now on.
        """
        from repro.replication.leader import ReplicationHub
        self._pending.clear()
        self._pending_seq.clear()
        self.epoch += 1
        self.role = "leader"
        self.hub = ReplicationHub(self.db, epoch=self.epoch)
        return self.epoch

    # -- reads --------------------------------------------------------------

    def read_ts(self) -> int:
        """The snapshot timestamp replica reads are pinned at."""
        return self.watermark

    def begin_read(self):
        """A snapshot transaction pinned at the replay watermark."""
        return self.db.begin(at_ts=self.watermark)

    # -- post-promotion leader surface --------------------------------------

    def subscribe(self, follower_id: str, start_seq: int) -> dict:
        """Serve a subscription (valid once promoted)."""
        self._require_promoted()
        return self.hub.subscribe(follower_id, start_seq)

    def fetch(self, follower_id: str, epoch: int, since_seq: int,
              acked_seq: int, limit: int = 256):
        """Serve a fetch (valid once promoted)."""
        self._require_promoted()
        return self.hub.fetch(follower_id, epoch, since_seq, acked_seq,
                              limit)

    def _require_promoted(self) -> None:
        if self.role != "leader" or self.hub is None:
            raise ReplicationError(
                f"node is a {self.role}, not the leader")

    # -- applying -----------------------------------------------------------

    @staticmethod
    def _unpack(blob: bytes) -> list[WalRecord]:
        records: list[WalRecord] = []
        offset = 0
        while offset < len(blob):
            record, offset = WalRecord.unpack(blob, offset)
            records.append(record)
        return records

    def _apply(self, record: WalRecord, seq: int) -> None:
        kind = record.type
        if kind in (WalRecordType.INSERT, WalRecordType.UPDATE,
                    WalRecordType.DELETE):
            self._pending.setdefault(record.txid, []).append(record)
            self._pending_seq.setdefault(record.txid, seq)
        elif kind is WalRecordType.COMMIT:
            data = self._pending.pop(record.txid, [])
            self._pending_seq.pop(record.txid, None)
            self._apply_commit(record.txid, data)
        elif kind is WalRecordType.ABORT:
            self._pending.pop(record.txid, None)
            self._pending_seq.pop(record.txid, None)
        # CHECKPOINT: leader-local truncation bookkeeping, nothing to
        # apply.  PREPARE: the decision arrives later as COMMIT/ABORT;
        # the data records simply stay pending until then.

    def _apply_commit(self, txid: int, data: list[WalRecord]) -> None:
        clog = self.db.txn_mgr.clog
        state = clog._states.get(txid)
        if state is TxnState.COMMITTED:
            # restart re-delivery of a transaction whose COMMIT already
            # made it into our own durable log
            self.deduped_txns += 1
            return
        # our own WAL first, so a follower crash replays this transaction
        # through the stock recovery path; the per-frame control-record
        # force covers these appends
        wal = self.db.wal
        for record in data:
            wal.append(record)
        wal.append(WalRecord(WalRecordType.COMMIT, txid, 0))
        by_rel = {relation.relation_id: relation
                  for relation in self.db.tables.values()}
        for record in data:
            self._redo(by_rel, record)
        # versions are in place — only now may readers learn the fate
        if state is None:
            clog.register(txid)
            clog.set_committed(txid)
        elif state is TxnState.ABORTED:
            # a restart's recovery rolled this half-shipped transaction
            # back locally; the leader's durable COMMIT wins — flip the
            # fate directly, the redo above restored the versions
            clog._states[txid] = TxnState.COMMITTED
        else:
            clog.set_committed(txid)
        self.applied_txns += 1

    def _redo(self, by_rel: dict, record: WalRecord) -> None:
        relation = by_rel.get(record.relation_id)
        if relation is None:
            raise ReplicationError(
                f"shipped record names relation {record.relation_id}, "
                f"which this replica does not have: schema mismatch")
        engine = relation.engine
        if not isinstance(engine, SiasVEngine):
            raise ReplicationError(
                f"relation {relation.name!r} runs the SI baseline "
                f"engine, which has no record-redo apply path")
        vid = record.item_id
        current_tid = engine.vidmap.get(vid)
        if current_tid is not None:
            current = engine.store.read(current_tid)
            # strictly newer only: an equal create_ts is this same
            # transaction's *earlier* write to the vid (insert then
            # update), whose successor must still be appended — whole
            # re-delivered transactions are deduped via the commit log
            # before any record reaches this point
            if current.create_ts > record.txid:
                return

        version = VersionRecord(
            create_ts=record.txid,
            vid=vid,
            pred=current_tid,
            tombstone=record.type is WalRecordType.DELETE,
            payload=record.payload,
        )
        new_tid = engine.store.append(version)
        engine.vidmap.set(vid, new_tid)
        if vid >= engine.allocator.high_water:
            engine.allocator.allocate_block(
                vid + 1 - engine.allocator.high_water)
        if record.type is not WalRecordType.DELETE:
            row = relation.codec.decode(record.payload)
            for definition, tree in relation.indexes.values():
                key = definition.key_of(relation.schema, row)
                if not tree.contains(key, vid):
                    tree.insert(key, vid)
        self.applied_records += 1

    # -- restart resume -----------------------------------------------------

    def _mark_progress(self) -> None:
        """Force a control record naming where a restart must resume.

        The restart point is the earliest first-seq among still-pending
        transactions (their data records must be re-delivered), or the
        fetch cursor when nothing is pending.  Forcing the marker also
        makes every record appended by :meth:`_apply_commit` since the
        last frame durable.
        """
        marker = (min(self._pending_seq.values())
                  if self._pending_seq else self.fetch_seq)
        self.db.wal.append(WalRecord(WalRecordType.CHECKPOINT, -1, marker,
                                     payload=_REPL_MARKER))
        self.db.wal.force()
        self.acked_seq = marker

    def _resume_seq(self) -> int:
        for record in reversed(self.db.wal.durable_records()):
            if (record.type is WalRecordType.CHECKPOINT
                    and record.payload == _REPL_MARKER):
                return record.item_id
        return 0

    # -- introspection ------------------------------------------------------

    def status(self) -> dict:
        """Replication facts for STATS / SNAPSHOT surfacing."""
        out = {
            "role": self.role,
            "epoch": self.epoch,
            "fetch_seq": self.fetch_seq,
            "acked_seq": self.acked_seq,
            "watermark": self.watermark,
            "lag_records": max(0, self.leader_durable_seq - self.fetch_seq),
            "frames": self.frames,
            "applied_txns": self.applied_txns,
            "applied_records": self.applied_records,
        }
        if self.hub is not None:
            out["slots"] = self.db.wal.slots()
        return out
