"""Follower side of WAL shipping: continuous redo, watermark reads.

A :class:`WalFollower` drives a replica database.  It fetches the
leader's durable log tail in frames (in-process through a
:class:`~repro.replication.leader.ReplicationHub`, or over the wire
through :class:`RemoteSource`), buffers each transaction's data records
until its COMMIT arrives, and then applies the whole transaction through
the same idempotent redo idiom crash recovery uses
(:func:`repro.core.recovery._redo_from_wal`): append the version, swing
the VIDmap entrypoint, bump the allocator, insert index entries.
Versions land **before** the commit-log flip, so a replica reader can
never observe a half-applied transaction.

Reads are pinned at the **replay watermark**: the leader's closed
timestamp as of a frame the follower has fully caught up to.  Because
the leader samples ``closed_ts`` before taking the records
(:meth:`~repro.replication.leader.ReplicationHub.fetch`), every
transaction at or below the watermark is either fully applied here or
was aborted — a snapshot at the watermark is stale-bounded but never
fractured.

Restart resume: after each applied frame the follower appends a small
control record to its *own* WAL (``CHECKPOINT`` carrying the restart
sequence in ``item_id``, with a payload tagging it ``b"REPL"`` and
carrying the replay watermark and adopted epoch) and forces it.  On
restart, stock crash recovery rebuilds the replica state from its own
durable log, the last control record names where to resume, which
timestamp pinned reads (and a cascade hub's backup cut) may trust, and
which epoch fences deposed upstreams; re-delivered records are
deduplicated against the commit log and the engine's version chains.
The marker must survive the replica's *own* checkpoints: local WAL
truncation re-arms it (:meth:`WalFollower._remark_after_checkpoint`),
and a cascade node additionally pins truncation at the watermark's redo
anchor so records of transactions above the backup cut stay shippable
(they are in neither an image at the watermark nor a stream resumed
past them).

Full resync: a follower refused with "full resync required" (its
restart point fell below the leader's retained WAL base — its slot was
dropped or evicted) bootstraps itself through :meth:`WalFollower.resync`:
it pulls a consistent base-backup image from the leader
(``BACKUP_BEGIN``/``BACKUP_FETCH``/``BACKUP_END``), installs it as
ordinary committed transactions in its own WAL, and rejoins the stream
at the handle's resume point.  ``connect`` and ``catch_up`` trigger the
resync automatically.  Crash-mid-resync is safe by construction: each
installed chunk is a durable, fate-settled WAL prefix, the resume
marker is written only after the whole image is in, so a restart lands
below base again and simply restarts the resync — re-installation
dedupes against version chains and the commit log.  Stock recovery
never sees a half-installed image as anything but a prefix of committed
transactions.

Cascading: a follower built with ``cascade=True`` attaches a
:class:`~repro.replication.leader.ReplicationHub` over its *own* WAL —
the shipped records already land there — so grand-followers can chain
replica-of-replica.  The cascade hub advertises the follower's replay
watermark as its closed timestamp (the replica's own ``closed_ts()``
counts replica-local read txids and would overshoot what is actually
applied).  Epoch fencing propagates down the chain: when the upstream
is promoted, this follower adopts the higher epoch on reconnect and
stamps it onto its cascade hub, which fences every grand-follower into
the same reconnect-and-adopt step.

Only SIAS-V relations replicate: the SI baseline's recovery is
checkpoint-consistent rather than record-redo (see
:mod:`repro.db.recovery`), so it has no per-record apply path to ride.
"""

from __future__ import annotations

import struct

from repro.common.errors import ReplicationError
from repro.core.engine import SiasVEngine
from repro.db.database import Database
from repro.pages.layout import VersionRecord
from repro.txn.commitlog import TxnState
from repro.wal.records import WalRecord, WalRecordType

#: Follower-local txids start here, far above any leader txid the stream
#: can ship, so a local read transaction's commit-log registration can
#: never collide with a shipped transaction's.
REPLICA_TXID_BASE = 1 << 40

#: payload tag of the follower's restart-resume control records
_REPL_MARKER = b"REPL"

#: substring of the typed refusal that triggers an automatic resync
_RESYNC_NEEDLE = "full resync required"


class RemoteSource:
    """Fetches a leader's WAL over the wire protocol.

    Wraps a :class:`~repro.client.pool.ConnectionPool` aimed at the
    leader and speaks ``WAL_SUBSCRIBE`` / ``WAL_FETCH`` plus the
    ``BACKUP_BEGIN`` / ``BACKUP_FETCH`` / ``BACKUP_END`` bootstrap
    commands.
    """

    def __init__(self, pool) -> None:
        self.pool = pool

    def subscribe(self, follower_id: str, start_seq: int) -> dict:
        from repro.server.protocol import Command
        epoch, durable_seq = self.pool.call(
            Command.WAL_SUBSCRIBE, follower_id, start_seq)
        return {"epoch": epoch, "durable_seq": durable_seq}

    def unsubscribe(self, follower_id: str) -> None:
        from repro.server.protocol import Command
        self.pool.call(Command.WAL_UNSUBSCRIBE, follower_id)

    def fetch(self, follower_id: str, epoch: int, since_seq: int,
              acked_seq: int,
              limit: int) -> tuple[int, int, bytes, int, int]:
        from repro.server.protocol import Command
        result = self.pool.call(Command.WAL_FETCH, follower_id, epoch,
                                since_seq, acked_seq, limit)
        return tuple(result)  # type: ignore[return-value]

    def backup_begin(self, follower_id: str) -> dict:
        from repro.server.protocol import Command
        return self.pool.call(Command.BACKUP_BEGIN, follower_id)

    def backup_fetch(self, backup_id: str, epoch: int,
                     chunk_index: int) -> list[tuple]:
        from repro.server.protocol import Command
        entries = self.pool.call(Command.BACKUP_FETCH, backup_id, epoch,
                                 chunk_index)
        return [tuple(entry) for entry in entries]

    def backup_end(self, backup_id: str) -> None:
        from repro.server.protocol import Command
        self.pool.call(Command.BACKUP_END, backup_id)


class WalFollower:
    """Continuously applies a leader's log to a replica database.

    ``db`` must be provisioned with the same tables in the same creation
    order as the leader (relation ids are assigned by creation order and
    DDL is not WAL-logged).  ``cascade=True`` attaches a replication hub
    over the replica's own WAL so further replicas can chain off it.
    """

    def __init__(self, db: Database, source, follower_id: str = "replica-1",
                 batch_limit: int = 256, cascade: bool = False) -> None:
        self.db = db
        self.source = source
        self.follower_id = follower_id
        self.batch_limit = batch_limit
        # keep local txids (read transactions, recovery's index-rebuild
        # scan) clear of the shipped leader txid space
        db.txn_mgr.advance_to(REPLICA_TXID_BASE)
        resume_seq, resume_watermark, resume_epoch = self._resume_state()
        #: next global seq to fetch from the leader
        self.fetch_seq = resume_seq
        #: durable restart point (last forced control record)
        self.acked_seq = self.fetch_seq
        #: replica read timestamp: leader closed_ts as of a frame this
        #: follower has fully applied — recovered from the durable
        #: marker, so a restarted cascade node never advertises a cut
        #: below data its commit log already holds
        self.watermark = resume_watermark
        self.epoch = resume_epoch
        self.role = "replica"
        self.leader_durable_seq = self.fetch_seq
        self.hub = None
        #: set by an attached FollowerSupervisor (resync notifications)
        self.supervisor = None
        #: default per-chunk hook for resyncs triggered *internally*
        #: (connect / catch_up auto-resync) — the chaos sweep's
        #: mid-backup kill points ride this
        self.on_resync_chunk = None
        #: data records of transactions whose COMMIT has not arrived yet
        self._pending: dict[int, list[WalRecord]] = {}
        #: first global seq of each pending transaction (restart anchor)
        self._pending_seq: dict[int, int] = {}
        #: True when _apply_commit appended records since the last force —
        #: the commit log (which survives crashes) may only run ahead of
        #: the durable WAL until the next marker force, never across one
        self._wal_dirty = False
        self.frames = 0
        self.applied_txns = 0
        self.applied_records = 0
        self.deduped_txns = 0
        self.resyncs = 0
        self.resync_records = 0
        self.marker_skips = 0
        #: last durably marked (restart seq, watermark, epoch) — a frame
        #: that moved none of them and appended nothing skips the force
        self._marked = (self.acked_seq, self.watermark, self.epoch)
        if cascade:
            from repro.replication.leader import ReplicationHub
            self.hub = ReplicationHub(self.db, epoch=self.epoch,
                                      closed_ts_fn=lambda: self.watermark)
        # Latest follower wins the db's checkpoint hooks: a restarted
        # node builds a fresh WalFollower over the same recovered
        # Database, and a superseded follower's hooks must not stamp
        # stale markers over the new one's.
        db._wal_follower = self
        db.checkpointer.subscribe(self._pin_watermark_anchor)
        db.checkpointer.subscribe_post(self._remark_after_checkpoint)

    # -- lifecycle ----------------------------------------------------------

    def connect(self) -> dict:
        """Subscribe at the restart point; adopt the leader's epoch.

        A restart point below the leader's retained base triggers an
        automatic full resync, after which the subscription is retried
        at the fresh resume point.
        """
        try:
            info = self.source.subscribe(self.follower_id, self.acked_seq)
        except ReplicationError as exc:
            if _RESYNC_NEEDLE not in str(exc):
                raise
            self.resync()
            info = self.source.subscribe(self.follower_id, self.acked_seq)
        self._adopt_epoch(int(info["epoch"]))
        self.leader_durable_seq = int(info["durable_seq"])
        return info

    def catch_up(self, max_frames: int | None = None,
                 on_frame=None) -> int:
        """Fetch and apply until the leader's durable horizon is reached.

        Returns the number of records applied.  ``on_frame`` (if given)
        is invoked after each applied frame — the chaos sweep's kill
        points count these.  ``max_frames`` bounds the loop for
        incremental draining.  A fetch refused below the retained base
        (the slot was evicted mid-stream) auto-resyncs and continues.
        """
        applied = 0
        while True:
            try:
                frame = self.source.fetch(self.follower_id, self.epoch,
                                          self.fetch_seq, self.acked_seq,
                                          self.batch_limit)
            except ReplicationError as exc:
                if _RESYNC_NEEDLE not in str(exc):
                    raise
                self.resync()
                continue
            epoch, start_seq, blob, durable_seq, closed_ts = frame
            if epoch != self.epoch:
                raise ReplicationError(
                    f"frame carries epoch {epoch}, follower is at "
                    f"{self.epoch}: refusing a fenced leader's records")
            if start_seq != self.fetch_seq:
                raise ReplicationError(
                    f"frame starts at seq {start_seq}, expected "
                    f"{self.fetch_seq}: the shipped stream gapped")
            records = self._unpack(blob)
            for offset, record in enumerate(records):
                self._apply(record, start_seq + offset)
            self.fetch_seq = start_seq + len(records)
            applied += len(records)
            self.leader_durable_seq = durable_seq
            if self.fetch_seq >= durable_seq:
                # everything durable at closed_ts-sample time is applied:
                # the watermark may ratchet to that closed timestamp.
                # Ratchet *before* marking progress so the forced marker
                # carries it — a restart then resumes with a watermark
                # covering everything the marker's force made durable.
                self.watermark = max(self.watermark, closed_ts)
            self._mark_progress()
            self.frames += 1
            if on_frame is not None:
                on_frame(self)
            if self.fetch_seq >= durable_seq:
                return applied
            if max_frames is not None:
                max_frames -= 1
                if max_frames <= 0:
                    return applied

    def promote(self) -> int:
        """Leader failover: fence the old epoch and start leading.

        Incomplete shipped transactions (data records without a durable
        COMMIT from the old leader) are discarded — their fate is abort
        by omission, exactly as crash recovery would settle them.  The
        epoch bump fences the old leader: its frames and fetches are
        refused everywhere from now on, and a cascade hub re-stamped
        with the new epoch fences every grand-follower into adopting it.
        """
        from repro.replication.leader import ReplicationHub
        self._pending.clear()
        self._pending_seq.clear()
        self.epoch += 1
        self.role = "leader"
        # the watermark pin served downstream bootstraps cut at the
        # replay watermark; a leader cuts at its own closed_ts instead
        self.db.wal.drop_slot("~watermark")
        # Write txids minted after promotion must never collide with any
        # downstream follower's *local* read txids (those live in
        # [REPLICA_TXID_BASE, ...) and are registered in each replica's
        # commit log — a shipped txn reusing one would be silently
        # deduped there).  Stratify by epoch: epoch-E leaders mint from
        # E * REPLICA_TXID_BASE, always a full band above local reads.
        self.db.txn_mgr.advance_to(REPLICA_TXID_BASE * self.epoch)
        if self.hub is None:
            self.hub = ReplicationHub(self.db, epoch=self.epoch)
        else:
            # a cascade hub graduates: new epoch, and the closed
            # timestamp now comes from the node's own transactions
            # (the watermark stops advancing once nothing ships in)
            self.hub.epoch = self.epoch
            self.hub._closed_ts_fn = self.db.closed_ts
        return self.epoch

    # -- full resync --------------------------------------------------------

    def resync(self, on_chunk=None) -> dict:
        """Bootstrap from a leader base backup, then rejoin the stream.

        Installs the image as ordinary committed transactions in the
        replica's own WAL (each chunk forced before its versions become
        visible), sweeps stale rows the image no longer contains, and
        only then writes the restart marker at the handle's resume
        point.  ``on_chunk`` (if given) runs after each installed chunk
        — the chaos sweep's mid-backup kill points count these.
        """
        if self.supervisor is not None:
            self.supervisor.note_resync()
        if on_chunk is None:
            on_chunk = self.on_resync_chunk
        handle = self.source.backup_begin(self.follower_id)
        self._adopt_epoch(int(handle["epoch"]))
        # drop half-shipped transactions from before the gap: everything
        # above the cut is re-delivered by the resumed stream
        self._pending.clear()
        self._pending_seq.clear()
        closed_ts = int(handle["closed_ts"])
        image_vids: dict[str, set[int]] = {name: set()
                                           for name in self.db.tables}
        # one COMMIT per image txid, appended only after the *last*
        # chunk: an image fragments a transaction across chunks (it is
        # keyed by vid, not txid), and a per-chunk COMMIT would make a
        # grand-follower streaming this WAL settle the transaction on
        # its first fragment and dedupe the rest as re-delivery
        txids: list[int] = []
        seen: set[int] = set()
        for index in range(int(handle["chunks"])):
            entries = self.source.backup_fetch(handle["backup_id"],
                                               self.epoch, index)
            self._install_chunk(entries, image_vids, txids, seen)
            if on_chunk is not None:
                on_chunk(self, index)
        self.source.backup_end(handle["backup_id"])
        self._sweep_absent(image_vids, closed_ts, txids, seen)
        if txids:
            wal = self.db.wal
            for txid in txids:
                wal.append(WalRecord(WalRecordType.COMMIT, txid, 0))
            wal.force()
        self.fetch_seq = int(handle["resume_seq"])
        self.leader_durable_seq = int(handle["durable_seq"])
        self.watermark = max(self.watermark, closed_ts)
        # the durable restart point moves only now, once the whole image
        # is in: a crash anywhere above resumes below base and restarts
        # the resync cleanly instead of trusting a half-installed image
        self._mark_progress()
        self.resyncs += 1
        return handle

    def _adopt_epoch(self, new_epoch: int) -> None:
        """Monotone epoch adoption — the fencing-propagation step.

        Epochs only grow.  A higher epoch means the lineage changed
        upstream: half-shipped transactions of the deposed lineage are
        dropped, and a cascade hub is re-stamped so every grand-follower
        is fenced into the same adoption on its next fetch.  A *lower*
        epoch means this source is a deposed zombie — refuse it.
        """
        if new_epoch < self.epoch:
            raise ReplicationError(
                f"upstream serves epoch {new_epoch}, follower already "
                f"adopted {self.epoch}: refusing a deposed lineage")
        if new_epoch > self.epoch:
            self._pending.clear()
            self._pending_seq.clear()
            self.epoch = new_epoch
            if self.hub is not None and self.role != "leader":
                self.hub.epoch = new_epoch

    def _install_chunk(self, entries: list[tuple],
                       image_vids: dict[str, set[int]],
                       txids: list[int], seen: set[int]) -> None:
        """Install one backup chunk of the image.

        Data records land in the replica's own WAL and are forced, and
        the commit-log fate is settled, *before* any version becomes
        visible — but the matching WAL COMMIT records are the caller's
        (``resync``'s), appended once per txid after the final chunk.
        A crash mid-install therefore leaves data records whose clog
        fate is COMMITTED but whose COMMIT record is absent: recovery
        keeps the clog verdict and redoes them, and the unmoved restart
        marker re-runs the whole resync anyway.  Versions already at or
        past an entry's timestamp are skipped — that is what makes a
        restarted resync idempotent.
        """
        wal = self.db.wal
        clog = self.db.txn_mgr.clog
        staged: list[tuple] = []
        fresh: list[int] = []
        for name, vid, create_ts, tombstone, payload in entries:
            bucket = image_vids.get(name)
            if bucket is None:
                raise ReplicationError(
                    f"backup image names relation {name!r}, which this "
                    f"replica does not have: schema mismatch")
            bucket.add(vid)
            relation = self.db.tables[name]
            engine = relation.engine
            head_tid = engine.vidmap.get(vid)
            if head_tid is not None:
                head = engine.store.read(head_tid)
                # at or past this image version already: a restarted
                # resync re-installing, or a transaction above the cut
                # this replica had applied before it fell behind
                if head.create_ts >= create_ts:
                    continue
            kind = (WalRecordType.DELETE if tombstone
                    else WalRecordType.INSERT)
            wal.append(WalRecord(kind, create_ts, vid, payload=payload,
                                 relation_id=relation.relation_id))
            if create_ts not in seen:
                seen.add(create_ts)
                txids.append(create_ts)
                fresh.append(create_ts)
            staged.append((relation, vid, create_ts, tombstone, payload))
        wal.force()
        for relation, vid, create_ts, tombstone, payload in staged:
            self._install_version(relation, vid, create_ts, tombstone,
                                  payload)
        for txid in fresh:
            self._force_committed(clog, txid)

    def _install_version(self, relation, vid: int, create_ts: int,
                         tombstone: bool, payload: bytes) -> None:
        engine = relation.engine
        if not isinstance(engine, SiasVEngine):
            raise ReplicationError(
                f"relation {relation.name!r} runs the SI baseline "
                f"engine, which has no record-redo apply path")
        current_tid = engine.vidmap.get(vid)
        if current_tid is not None:
            current = engine.store.read(current_tid)
            if current.create_ts >= create_ts:
                return
        version = VersionRecord(
            create_ts=create_ts,
            vid=vid,
            pred=current_tid,
            tombstone=tombstone,
            payload=payload,
        )
        new_tid = engine.store.append(version)
        engine.vidmap.set(vid, new_tid)
        if vid >= engine.allocator.high_water:
            engine.allocator.allocate_block(
                vid + 1 - engine.allocator.high_water)
        if not tombstone:
            row = relation.codec.decode(payload)
            for definition, tree in relation.indexes.values():
                key = definition.key_of(relation.schema, row)
                if not tree.contains(key, vid):
                    tree.insert(key, vid)
        self.resync_records += 1

    def _sweep_absent(self, image_vids: dict[str, set[int]],
                      closed_ts: int, txids: list[int],
                      seen: set[int]) -> None:
        """Tombstone live local rows the image no longer contains.

        A vid with a locally visible live version at or below the cut
        that is absent from the image can only mean the leader deleted
        it and fully reclaimed the chain (the tombstone itself was
        GC'd).  Heads *above* the cut belong to the re-shipped stream
        region and are left alone.  The tombstones commit at the cut
        timestamp through the caller's single deferred COMMIT batch —
        the cut may coincide with an image txid, and two COMMIT records
        for one txid would make a grand-follower dedupe the second's
        records as re-delivery.
        """
        clog = self.db.txn_mgr.clog
        for name, relation in self.db.tables.items():
            engine = relation.engine
            present = image_vids.get(name, set())
            doomed: list[int] = []
            for vid in range(engine.allocator.high_water):
                if vid in present:
                    continue
                head = self._visible_head(engine, vid, closed_ts, clog)
                if head is not None and not head.tombstone:
                    doomed.append(vid)
            if not doomed:
                continue
            wal = self.db.wal
            for vid in doomed:
                wal.append(WalRecord(WalRecordType.DELETE, closed_ts, vid,
                                     relation_id=relation.relation_id))
            wal.force()
            if closed_ts not in seen:
                seen.add(closed_ts)
                txids.append(closed_ts)
            for vid in doomed:
                self._install_version(relation, vid, closed_ts, True, b"")
            self._force_committed(clog, closed_ts)

    @staticmethod
    def _visible_head(engine, vid: int, ts: int, clog):
        tid = engine.vidmap.get(vid)
        while tid is not None:
            version = engine.store.read(tid)
            if (version.create_ts <= ts
                    and clog.is_committed(version.create_ts)):
                return version
            tid = version.pred
        return None

    @staticmethod
    def _force_committed(clog, txid: int) -> None:
        """Settle ``txid`` COMMITTED regardless of its local state.

        Image transactions are committed on the leader by construction
        (they are visible at the cut).  Locally the txid may be unknown,
        or ABORTED because a pre-resync crash settled a half-shipped
        delivery by omission — the leader's durable verdict wins.
        """
        state = clog._states.get(txid)
        if state is TxnState.COMMITTED:
            return
        if state is None:
            clog.register(txid)
            clog.set_committed(txid)
        else:
            clog._states[txid] = TxnState.COMMITTED

    # -- reads --------------------------------------------------------------

    def read_ts(self) -> int:
        """The snapshot timestamp replica reads are pinned at."""
        return self.watermark

    def begin_read(self):
        """A snapshot transaction pinned at the replay watermark."""
        return self.db.begin(at_ts=self.watermark)

    # -- hub surface (promoted leader, or cascading replica) ----------------

    def subscribe(self, follower_id: str, start_seq: int) -> dict:
        """Serve a subscription (promoted, or cascading)."""
        self._require_hub()
        return self.hub.subscribe(follower_id, start_seq)

    def unsubscribe(self, follower_id: str) -> None:
        """Drop a downstream follower's slot (promoted, or cascading)."""
        self._require_hub()
        self.hub.unsubscribe(follower_id)

    def fetch(self, follower_id: str, epoch: int, since_seq: int,
              acked_seq: int, limit: int = 256):
        """Serve a fetch (promoted, or cascading)."""
        self._require_hub()
        return self.hub.fetch(follower_id, epoch, since_seq, acked_seq,
                              limit)

    def backup_begin(self, follower_id: str) -> dict:
        """Serve a base backup (promoted, or cascading)."""
        self._require_hub()
        return self.hub.backup_begin(follower_id)

    def backup_fetch(self, backup_id: str, epoch: int,
                     chunk_index: int) -> list[tuple]:
        self._require_hub()
        return self.hub.backup_fetch(backup_id, epoch, chunk_index)

    def backup_end(self, backup_id: str) -> None:
        self._require_hub()
        self.hub.backup_end(backup_id)

    def _require_hub(self) -> None:
        if self.hub is None:
            raise ReplicationError(
                f"node is a non-cascading {self.role}: it serves no "
                f"replication hub")

    # -- applying -----------------------------------------------------------

    @staticmethod
    def _unpack(blob: bytes) -> list[WalRecord]:
        records: list[WalRecord] = []
        offset = 0
        while offset < len(blob):
            record, offset = WalRecord.unpack(blob, offset)
            records.append(record)
        return records

    def _apply(self, record: WalRecord, seq: int) -> None:
        kind = record.type
        if kind in (WalRecordType.INSERT, WalRecordType.UPDATE,
                    WalRecordType.DELETE):
            self._pending.setdefault(record.txid, []).append(record)
            self._pending_seq.setdefault(record.txid, seq)
        elif kind is WalRecordType.COMMIT:
            data = self._pending.pop(record.txid, [])
            self._pending_seq.pop(record.txid, None)
            self._apply_commit(record.txid, data)
        elif kind is WalRecordType.ABORT:
            self._pending.pop(record.txid, None)
            self._pending_seq.pop(record.txid, None)
        # CHECKPOINT: leader-local truncation bookkeeping, nothing to
        # apply.  PREPARE: the decision arrives later as COMMIT/ABORT;
        # the data records simply stay pending until then.

    def _apply_commit(self, txid: int, data: list[WalRecord]) -> None:
        clog = self.db.txn_mgr.clog
        state = clog._states.get(txid)
        if state is TxnState.COMMITTED:
            # restart re-delivery of a transaction whose COMMIT already
            # made it into our own durable log
            self.deduped_txns += 1
            return
        # our own WAL first, so a follower crash replays this transaction
        # through the stock recovery path; the per-frame control-record
        # force covers these appends
        wal = self.db.wal
        for record in data:
            wal.append(record)
        wal.append(WalRecord(WalRecordType.COMMIT, txid, 0))
        self._wal_dirty = True
        by_rel = {relation.relation_id: relation
                  for relation in self.db.tables.values()}
        for record in data:
            self._redo(by_rel, record)
        # versions are in place — only now may readers learn the fate
        if state is None:
            clog.register(txid)
            clog.set_committed(txid)
        elif state is TxnState.ABORTED:
            # a restart's recovery rolled this half-shipped transaction
            # back locally; the leader's durable COMMIT wins — flip the
            # fate directly, the redo above restored the versions
            clog._states[txid] = TxnState.COMMITTED
        else:
            clog.set_committed(txid)
        self.applied_txns += 1

    def _redo(self, by_rel: dict, record: WalRecord) -> None:
        relation = by_rel.get(record.relation_id)
        if relation is None:
            raise ReplicationError(
                f"shipped record names relation {record.relation_id}, "
                f"which this replica does not have: schema mismatch")
        engine = relation.engine
        if not isinstance(engine, SiasVEngine):
            raise ReplicationError(
                f"relation {relation.name!r} runs the SI baseline "
                f"engine, which has no record-redo apply path")
        vid = record.item_id
        current_tid = engine.vidmap.get(vid)
        if current_tid is not None:
            current = engine.store.read(current_tid)
            # strictly newer only: an equal create_ts is this same
            # transaction's *earlier* write to the vid (insert then
            # update), whose successor must still be appended — whole
            # re-delivered transactions are deduped via the commit log
            # before any record reaches this point
            if current.create_ts > record.txid:
                return

        version = VersionRecord(
            create_ts=record.txid,
            vid=vid,
            pred=current_tid,
            tombstone=record.type is WalRecordType.DELETE,
            payload=record.payload,
        )
        new_tid = engine.store.append(version)
        engine.vidmap.set(vid, new_tid)
        if vid >= engine.allocator.high_water:
            engine.allocator.allocate_block(
                vid + 1 - engine.allocator.high_water)
        if record.type is not WalRecordType.DELETE:
            row = relation.codec.decode(record.payload)
            for definition, tree in relation.indexes.values():
                key = definition.key_of(relation.schema, row)
                if not tree.contains(key, vid):
                    tree.insert(key, vid)
        self.applied_records += 1

    # -- restart resume -----------------------------------------------------

    def _mark_progress(self) -> None:
        """Force a control record naming where a restart must resume.

        The restart point is the earliest first-seq among still-pending
        transactions (their data records must be re-delivered), or the
        fetch cursor when nothing is pending.  Forcing the marker also
        makes every record appended by :meth:`_apply_commit` since the
        last frame durable.

        A frame that applied nothing and left the restart point unmoved
        is skipped entirely: an idle poll (or a frame that only grew a
        still-pending transaction) must not burn a WAL append plus a
        force per fetch — everything newer than the unchanged marker is
        re-delivered after a crash anyway.  A frame that *did* apply
        records must always force, even with an unmoved marker: the
        commit-log flips it made are crash-durable, so the matching WAL
        records must be too, or re-delivery would dedupe a transaction
        whose versions died with the crash.
        """
        marker = (min(self._pending_seq.values())
                  if self._pending_seq else self.fetch_seq)
        state = (marker, self.watermark, self.epoch)
        if state == self._marked and not self._wal_dirty:
            self.marker_skips += 1
            return
        if state != self._marked:
            self.db.wal.append(WalRecord(WalRecordType.CHECKPOINT, -1,
                                         marker,
                                         payload=self._marker_payload()))
        self.db.wal.force()
        self._wal_dirty = False
        self.acked_seq = marker
        self._marked = state

    def _marker_payload(self) -> bytes:
        """Marker payload: tag plus the durable watermark and epoch."""
        return _REPL_MARKER + struct.pack("<qq", self.watermark,
                                          self.epoch)

    def _resume_state(self) -> tuple[int, int, int]:
        """Recover ``(resume_seq, watermark, epoch)`` from the last
        durable restart marker (all zero without one)."""
        for record in reversed(self.db.wal.durable_records()):
            if (record.type is WalRecordType.CHECKPOINT
                    and record.payload.startswith(_REPL_MARKER)):
                if len(record.payload) >= len(_REPL_MARKER) + 16:
                    watermark, epoch = struct.unpack_from(
                        "<qq", record.payload, len(_REPL_MARKER))
                    return record.item_id, watermark, epoch
                # bare legacy tag: resume the seq, re-learn the rest
                return record.item_id, 0, 0
        return 0, 0, 0

    # -- local checkpoints ---------------------------------------------------

    def _pin_watermark_anchor(self) -> None:
        """Pre-checkpoint: pin local truncation at the backup cut.

        A cascade node serves base backups cut at its watermark, and a
        resumed stream starts at ``redo_anchor_seq(watermark)`` — so
        records of transactions *above* the watermark must survive this
        node's own checkpoints or a downstream bootstrap would miss
        them (they are in neither the image nor the resumed stream).
        The pin rides the ordinary slot-retention floor.
        """
        db = self.db
        if getattr(db, "_wal_follower", None) is not self:
            return  # superseded by a restarted follower on the same db
        if self.hub is None or self.role == "leader":
            # nothing chains off this node's WAL through a watermark
            # cut; a promoted leader's hub cuts at its own closed_ts,
            # which begin_checkpoint's active-txn anchor already covers
            return
        db.wal.register_slot("~watermark",
                             db.wal.redo_anchor_seq(self.watermark))

    def _remark_after_checkpoint(self) -> None:
        """Post-checkpoint: re-arm the restart marker.

        Local WAL truncation drops old control records (their txid -1
        never holds the redo anchor back).  Without a durable marker a
        restarted follower would resume at seq 0 with watermark 0 — and
        a restarted *cascade* node would advertise closed timestamp 0,
        silently serving empty backup images below data its commit log
        already holds.  One forced control record per checkpoint keeps
        the marker exactly as durable as the data it vouches for.
        """
        db = self.db
        if getattr(db, "_wal_follower", None) is not self:
            return
        db.wal.append(WalRecord(WalRecordType.CHECKPOINT, -1,
                                self.acked_seq,
                                payload=self._marker_payload()))
        db.wal.force()
        self._wal_dirty = False
        self._marked = (self.acked_seq, self.watermark, self.epoch)

    # -- introspection ------------------------------------------------------

    def status(self) -> dict:
        """Replication facts for STATS / SNAPSHOT surfacing."""
        out = {
            "role": self.role,
            "epoch": self.epoch,
            "fetch_seq": self.fetch_seq,
            "acked_seq": self.acked_seq,
            "watermark": self.watermark,
            "lag_records": max(0, self.leader_durable_seq - self.fetch_seq),
            "frames": self.frames,
            "applied_txns": self.applied_txns,
            "applied_records": self.applied_records,
            "deduped_txns": self.deduped_txns,
            "resyncs": self.resyncs,
            "resync_records": self.resync_records,
            "marker_skips": self.marker_skips,
        }
        if self.hub is not None:
            out["slots"] = self.db.wal.slots()
            out["cascade"] = self.role != "leader"
        if self.supervisor is not None:
            out["supervisor"] = self.supervisor.status()
        return out
