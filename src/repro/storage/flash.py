"""Simulated flash SSD: asymmetric latencies, FTL, channels, wear.

The device combines the channel-parallel request scheduler from
:class:`~repro.storage.device.BlockDevice` with the page-mapped FTL of
:mod:`repro.storage.ftl`.  The properties the paper exploits are all present:

* **Read/write asymmetry** — page reads are ~8× cheaper than programs.
* **Erase-before-write** — overwrites program new pages; reclaiming space
  needs block erases with valid-page relocation (foreground GC stalls).
* **I/O parallelism** — batched requests spread over channels.
* **Endurance** — per-block erase counters; a block can wear out.

Logical page *contents* are stored in a plain dict keyed by LBA so that data
correctness is independent of FTL placement decisions.
"""

from __future__ import annotations

from repro.common.clock import SimClock
from repro.common.config import FlashConfig
from repro.common.errors import ReadUnwrittenError
from repro.storage.device import BlockDevice
from repro.storage.ftl import PageMappedFtl
from repro.storage.trace import TraceOp, TraceRecorder


class FlashDevice(BlockDevice):
    """A flash SSD simulator with a page-mapped FTL."""

    def __init__(self, clock: SimClock, config: FlashConfig | None = None,
                 trace: TraceRecorder | None = None,
                 name: str = "ssd0") -> None:
        self.config = config or FlashConfig()
        self.config.validate()
        super().__init__(
            clock=clock,
            total_pages=self.config.total_pages,
            page_size=self.config.page_size,
            channels=self.config.channels,
            name=name,
            trace=trace,
        )
        self.ftl = PageMappedFtl(self.config)
        self._data: dict[int, bytes] = {}

    # -- BlockDevice hooks ------------------------------------------------------

    def _service_read(self, lba: int) -> int:
        return self.ftl.host_read(lba)

    def _service_write(self, lba: int) -> int:
        erases_before = self.ftl.stats.erases
        cost = self.ftl.host_write(lba)
        erases_done = self.ftl.stats.erases - erases_before
        if erases_done and self.trace is not None:
            self.trace.record(self.clock.now, TraceOp.ERASE, lba, erases_done)
        return cost

    def _store(self, lba: int, data: bytes) -> None:
        self._data[lba] = data

    def _load(self, lba: int) -> bytes:
        try:
            return self._data[lba]
        except KeyError:
            raise ReadUnwrittenError(
                f"{self.name}: LBA {lba} read before first write") from None

    def _discard(self, lba: int) -> None:
        self.ftl.host_trim(lba)
        self._data.pop(lba, None)

    # -- flash-specific inspection -----------------------------------------------

    @property
    def write_amplification(self) -> float:
        """Physical programs per host write (device-internal view)."""
        return self.ftl.stats.write_amplification

    @property
    def erase_count_total(self) -> int:
        """Total block erases performed by the device so far."""
        return self.ftl.stats.erases

    def wear_stats(self) -> tuple[int, int, float]:
        """``(min, max, mean)`` per-block erase counts."""
        return self.ftl.wear_stats()

    def live_pages(self) -> int:
        """Host-visible pages currently holding valid data.

        The device's own view of occupancy: written pages minus everything
        superseded or trimmed — the fair space metric across engines.
        """
        return sum(self.ftl.valid_pages_in(block)
                   for block in range(self.ftl.n_blocks))
