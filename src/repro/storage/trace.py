"""Block-trace recording and rendering — the repo's ``blktrace``/``blkparse``.

The paper visualises device behaviour with blocktraces (Figures: SIAS append
"swimlanes" vs. SI's scattered read/write mix) and summarises them with
``blkparse`` (Table: write amount in MB).  :class:`TraceRecorder` captures
``(sim_time, op, lba, npages)`` events at the device boundary;
:class:`TraceSummary` aggregates them; :func:`render_scatter` draws an ASCII
time×LBA scatter plot good enough to see the swimlane-vs-diagonal contrast in
a terminal, and :func:`to_csv` exports points for external plotting.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.common import units


class TraceOp(Enum):
    """Operation classes recorded at the device boundary."""

    READ = "R"
    WRITE = "W"
    TRIM = "T"
    ERASE = "E"


@dataclass(frozen=True)
class TraceEvent:
    """One device-level I/O event."""

    time_usec: int
    op: TraceOp
    lba: int
    npages: int


class TraceRecorder:
    """Appends :class:`TraceEvent` records; cheap enough to keep always-on."""

    def __init__(self, page_size: int = units.DB_PAGE_SIZE) -> None:
        self.page_size = page_size
        self.events: list[TraceEvent] = []

    def record(self, time_usec: int, op: TraceOp, lba: int,
               npages: int) -> None:
        """Record one event."""
        self.events.append(TraceEvent(time_usec, op, lba, npages))

    def clear(self) -> None:
        """Drop all recorded events."""
        self.events.clear()

    def filter(self, op: TraceOp) -> list[TraceEvent]:
        """Events of one operation class, in record order."""
        return [e for e in self.events if e.op is op]

    def summary(self) -> "TraceSummary":
        """Aggregate counters over the whole trace (blkparse substitute)."""
        reads = writes = trims = erases = 0
        read_pages = write_pages = 0
        first = last = None
        for e in self.events:
            if first is None:
                first = e.time_usec
            last = e.time_usec
            if e.op is TraceOp.READ:
                reads += 1
                read_pages += e.npages
            elif e.op is TraceOp.WRITE:
                writes += 1
                write_pages += e.npages
            elif e.op is TraceOp.TRIM:
                trims += 1
            elif e.op is TraceOp.ERASE:
                erases += 1
        return TraceSummary(
            reads=reads,
            writes=writes,
            trims=trims,
            erases=erases,
            read_bytes=read_pages * self.page_size,
            write_bytes=write_pages * self.page_size,
            span_usec=0 if first is None else (last or 0) - first,
        )


@dataclass(frozen=True)
class TraceSummary:
    """Aggregated view of a trace."""

    reads: int
    writes: int
    trims: int
    erases: int
    read_bytes: int
    write_bytes: int
    span_usec: int

    @property
    def write_mib(self) -> float:
        """Total host-visible write volume in MiB."""
        return units.mib(self.write_bytes)

    @property
    def read_mib(self) -> float:
        """Total host-visible read volume in MiB."""
        return units.mib(self.read_bytes)


def render_scatter(recorder: TraceRecorder, width: int = 100,
                   height: int = 30, title: str = "") -> str:
    """ASCII time×LBA scatter of a trace.

    Columns are simulated time, rows are LBA ranges (top = high addresses).
    ``r`` marks a cell containing only reads, ``W`` only writes, ``*`` both.
    The SIAS-V trace shows horizontal write swimlanes over a read scatter;
    the SI trace shows writes smeared across the whole address range.
    """
    events = [e for e in recorder.events
              if e.op in (TraceOp.READ, TraceOp.WRITE)]
    if not events:
        return f"{title}\n(empty trace)\n"
    t_min = min(e.time_usec for e in events)
    t_max = max(e.time_usec for e in events)
    lba_max = max(e.lba + e.npages for e in events)
    t_span = max(1, t_max - t_min)
    grid = [[" "] * width for _ in range(height)]

    def _mark(row: int, col: int, symbol: str) -> None:
        cell = grid[row][col]
        if cell == " ":
            grid[row][col] = symbol
        elif cell != symbol:
            grid[row][col] = "*"

    for e in events:
        col = min(width - 1, (e.time_usec - t_min) * width // t_span)
        row = min(height - 1, e.lba * height // max(1, lba_max))
        row = height - 1 - row  # high LBAs at the top
        _mark(row, col, "r" if e.op is TraceOp.READ else "W")

    lines = []
    if title:
        lines.append(title)
    lines.append(f"LBA 0..{lba_max}  time 0..{units.fmt_usec(t_span)}  "
                 f"(r=read  W=write  *=both)")
    lines.append("+" + "-" * width + "+")
    lines.extend("|" + "".join(row) + "|" for row in grid)
    lines.append("+" + "-" * width + "+")
    return "\n".join(lines) + "\n"


def to_csv(recorder: TraceRecorder) -> str:
    """Export a trace as CSV (``time_usec,op,lba,npages``)."""
    rows = ["time_usec,op,lba,npages"]
    rows.extend(f"{e.time_usec},{e.op.value},{e.lba},{e.npages}"
                for e in recorder.events)
    return "\n".join(rows) + "\n"


def write_locality(recorder: TraceRecorder) -> float:
    """Fraction of writes that are sequential to their predecessor write.

    Strict global adjacency: only a write starting exactly where the
    previous write ended counts.  See :func:`swimlane_locality` for the
    per-region variant that matches the paper's figures.
    """
    writes = recorder.filter(TraceOp.WRITE)
    if len(writes) < 2:
        return 1.0
    sequential = 0
    prev_end = writes[0].lba + writes[0].npages
    for e in writes[1:]:
        if e.lba == prev_end:
            sequential += 1
        prev_end = e.lba + e.npages
    return sequential / (len(writes) - 1)


def swimlane_locality(recorder: TraceRecorder,
                      region_pages: int = 256) -> float:
    """Fraction of writes sequential *within their address region*.

    The paper's SIAS blocktrace shows per-relation append "swimlanes":
    writes interleave across relations but are strictly sequential inside
    each relation's extent region.  This metric buckets the address space
    into ``region_pages``-sized lanes and scores a write as sequential if it
    lands exactly where the last write *in its lane* ended (or opens a lane
    at a fresh position).  SIAS-V scores near 1.0; SI's scattered in-place
    updates revisit arbitrary positions inside lanes and score low.
    """
    writes = recorder.filter(TraceOp.WRITE)
    if not writes:
        return 1.0
    lane_next: dict[int, int] = {}
    sequential = 0
    for e in writes:
        lane = e.lba // region_pages
        expected = lane_next.get(lane)
        if expected is None or e.lba == expected:
            sequential += 1
        lane_next[lane] = e.lba + e.npages
    return sequential / len(writes)
