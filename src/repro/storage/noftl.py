"""NoFTL flash: direct chip access without a translation layer.

The paper's discussion argues that integrating append-storage GC into the
MV-DBMS "transfers yet more control over the Flash storage into the
MV-DBMS", citing the NoFTL line of work (Hardock et al., VLDB 2013): strip
the FTL entirely and let the database drive erases deterministically.

This device exposes raw flash semantics:

* a page is ERASED, VALID or DEAD; **programming a non-erased page is an
  error** — there is no transparent remapping, so an update-in-place engine
  (the SI baseline) physically cannot run here, while SIAS-V's write-once
  append pages fit naturally;
* ``trim`` marks pages dead; when the *last* page of an erase block dies,
  the device erases the block immediately — a deterministic, DBMS-triggered
  erase instead of opaque background GC;
* there is **no relocation**: write amplification is 1.0 by construction
  and foreground writes never stall behind garbage collection, which is
  exactly the predictability claim the ablation (A5) measures.
"""

from __future__ import annotations

from enum import Enum

from repro.common.clock import SimClock
from repro.common.config import FlashConfig
from repro.common.errors import ReadUnwrittenError, StorageError
from repro.storage.device import BlockDevice
from repro.storage.trace import TraceOp, TraceRecorder


class _PageState(Enum):
    ERASED = "erased"
    VALID = "valid"
    DEAD = "dead"


class NoFtlFlashDevice(BlockDevice):
    """Raw flash with DBMS-driven, block-deterministic erases."""

    def __init__(self, clock: SimClock, config: FlashConfig | None = None,
                 trace: TraceRecorder | None = None,
                 name: str = "noftl0") -> None:
        self.config = config or FlashConfig()
        self.config.validate()
        super().__init__(
            clock=clock,
            total_pages=self.config.total_pages,
            page_size=self.config.page_size,
            channels=self.config.channels,
            name=name,
            trace=trace,
        )
        self._state = [_PageState.ERASED] * self.config.total_pages
        self._data: dict[int, bytes] = {}
        self.pages_per_block = self.config.pages_per_block
        n_blocks = self.config.total_pages // self.pages_per_block
        self._dead_in_block = [0] * n_blocks
        self.erase_counts = [0] * n_blocks
        self.erases = 0
        self.programs = 0

    # -- raw-flash service model ------------------------------------------------

    def _service_read(self, lba: int) -> int:
        return self.config.read_latency_usec

    def _service_write(self, lba: int) -> int:
        if self._state[lba] is not _PageState.ERASED:
            raise StorageError(
                f"{self.name}: program of non-erased page {lba} "
                f"({self._state[lba].value}); NoFTL has no remapping — "
                "only append-style engines can run on raw flash")
        self._state[lba] = _PageState.VALID
        self.programs += 1
        return self.config.program_latency_usec

    def _store(self, lba: int, data: bytes) -> None:
        self._data[lba] = data

    def _load(self, lba: int) -> bytes:
        if self._state[lba] is not _PageState.VALID:
            raise ReadUnwrittenError(
                f"{self.name}: page {lba} is {self._state[lba].value}")
        return self._data[lba]

    def _discard(self, lba: int) -> None:
        """DBMS trim: mark dead; erase the block when it is fully dead."""
        if self._state[lba] is not _PageState.VALID:
            return
        self._state[lba] = _PageState.DEAD
        self._data.pop(lba, None)
        block = lba // self.pages_per_block
        self._dead_in_block[block] += 1
        if self._dead_in_block[block] == self.pages_per_block:
            self._erase_block(block)

    def _erase_block(self, block: int) -> None:
        """Deterministic erase, charged to the (DBMS GC) caller."""
        base = block * self.pages_per_block
        for lba in range(base, base + self.pages_per_block):
            self._state[lba] = _PageState.ERASED
            self._data.pop(lba, None)
        self._dead_in_block[block] = 0
        self.erase_counts[block] += 1
        self.erases += 1
        self.stats.busy_usec += self.config.erase_latency_usec
        self.clock.advance(self.config.erase_latency_usec)
        if self.trace is not None:
            self.trace.record(self.clock.now, TraceOp.ERASE, base,
                              self.pages_per_block)

    def writable_hint(self, lba: int) -> bool:
        """Only erased pages can be programmed on raw flash."""
        return self._state[lba] is _PageState.ERASED

    # -- inspection ----------------------------------------------------------------

    @property
    def write_amplification(self) -> float:
        """Always 1.0: no relocation exists on raw flash."""
        return 1.0

    def page_state(self, lba: int) -> str:
        """State name of one page (tests, debugging)."""
        return self._state[lba].value

    def wear_stats(self) -> tuple[int, int, float]:
        """``(min, max, mean)`` per-block erase counts."""
        counts = self.erase_counts
        return min(counts), max(counts), sum(counts) / len(counts)
