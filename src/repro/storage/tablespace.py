"""Tablespace: maps per-file page numbers to device LBAs, extent-wise.

Each relation (and each auxiliary structure: VIDmap, heap, append region,
WAL) is a *file* of logically numbered pages.  Files grow in fixed-size
extents allocated sequentially on the device.  Because SIAS-V appends pages
to each relation monotonically, a relation's pages land in (mostly)
contiguous LBA ranges — the append "swimlanes" visible in the paper's
blocktrace figure.  The paper notes this placement explicitly: tuples of
different relations are not stored on the same page, and pages of different
relations are placed at different locations to reduce contention.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, TypeVar

from repro.common.errors import InvalidAddressError, OutOfSpaceError
from repro.storage.device import BlockDevice
from repro.storage.faults import TransientReadError

#: Default extent granularity (pages): 2 MiB with 8 KiB pages.
DEFAULT_EXTENT_PAGES = 256

#: Bounded retry of transient read faults ("may succeed on retry") before
#: the error propagates — mirrors a driver re-issuing a timed-out request.
TRANSIENT_READ_RETRIES = 3
#: Deterministic backoff: simulated microseconds charged per retry,
#: growing linearly with the attempt number.
TRANSIENT_BACKOFF_USEC = 200

_T = TypeVar("_T")


@dataclass
class _FileState:
    """Extent list and high-water mark of one file."""

    name: str
    extents: list[int] = field(default_factory=list)  # first LBA per extent
    allocated_pages: int = 0


class Tablespace:
    """Sequential extent allocator over one block device."""

    def __init__(self, device: BlockDevice,
                 extent_pages: int = DEFAULT_EXTENT_PAGES) -> None:
        if extent_pages < 1:
            raise InvalidAddressError(
                f"extent_pages must be >= 1, got {extent_pages}")
        self.device = device
        self.extent_pages = extent_pages
        self._files: list[_FileState] = []
        self._next_lba = 0

    # -- file management -----------------------------------------------------

    def create_file(self, name: str) -> int:
        """Register a new file; returns its file id."""
        self._files.append(_FileState(name))
        return len(self._files) - 1

    def file_name(self, file_id: int) -> str:
        """Human-readable name of a file (for traces and debugging)."""
        return self._file(file_id).name

    def file_pages(self, file_id: int) -> int:
        """Pages allocated to the file so far."""
        return self._file(file_id).allocated_pages

    def total_allocated_pages(self) -> int:
        """Pages allocated across all files (the space-consumption metric)."""
        return sum(f.allocated_pages for f in self._files)

    def _file(self, file_id: int) -> _FileState:
        if not 0 <= file_id < len(self._files):
            raise InvalidAddressError(f"unknown file id {file_id}")
        return self._files[file_id]

    # -- address translation -----------------------------------------------------

    def ensure_page(self, file_id: int, page_no: int) -> int:
        """Translate, growing the file with new extents if needed."""
        state = self._file(file_id)
        while page_no >= state.allocated_pages:
            self._grow(state)
        return self._translate(state, page_no)

    def lba_of(self, file_id: int, page_no: int) -> int:
        """Translate an already-allocated page (raises if out of range)."""
        state = self._file(file_id)
        if page_no >= state.allocated_pages:
            raise InvalidAddressError(
                f"file '{state.name}': page {page_no} beyond allocation "
                f"({state.allocated_pages} pages)")
        return self._translate(state, page_no)

    def _translate(self, state: _FileState, page_no: int) -> int:
        extent = page_no // self.extent_pages
        offset = page_no % self.extent_pages
        return state.extents[extent] + offset

    def _grow(self, state: _FileState) -> None:
        if self._next_lba + self.extent_pages > self.device.total_pages:
            raise OutOfSpaceError(
                f"tablespace full: cannot grow file '{state.name}'")
        state.extents.append(self._next_lba)
        self._next_lba += self.extent_pages
        state.allocated_pages += self.extent_pages

    # -- retrying reads -----------------------------------------------------------

    def read_page(self, lba: int) -> bytes:
        """Device read with bounded retry of transient faults.

        The fault-in paths (buffer misses, recovery rescans) read through
        here: a :class:`~repro.storage.faults.TransientReadError` is
        retried up to :data:`TRANSIENT_READ_RETRIES` times with a
        deterministic simulated-time backoff; exhaustion re-raises and is
        counted on the device's ``retries_exhausted`` (when the device
        exposes one — :class:`~repro.storage.faults.FaultyDevice` does).

        The fault-free fast path is a plain delegation: the retry loop
        (and its per-call bookkeeping) engages only once a fault fires.
        """
        try:
            return self.device.read_page(lba)
        except TransientReadError:
            return self._retry_read(self.device.read_page, lba)

    def read_pages(self, lbas: list[int]) -> list[bytes]:
        """Batched device read with the same bounded transient retry."""
        try:
            return self.device.read_pages(lbas)
        except TransientReadError:
            return self._retry_read(self.device.read_pages, lbas)

    def _retry_read(self, op: Callable[[object], _T], arg: object) -> _T:
        """Slow path: the first attempt already failed transiently."""
        last: TransientReadError | None = None
        for attempt in range(1, TRANSIENT_READ_RETRIES + 1):
            self.device.clock.advance(attempt * TRANSIENT_BACKOFF_USEC)
            try:
                return op(arg)
            except TransientReadError as exc:
                last = exc
        exhausted = getattr(self.device, "retries_exhausted", None)
        if exhausted is not None:
            self.device.retries_exhausted = exhausted + 1
        assert last is not None
        raise last

    # -- space reclamation ------------------------------------------------------------

    def trim_page(self, file_id: int, page_no: int) -> None:
        """Tell the device this file page is dead (GC handing space back)."""
        self.device.trim(self.lba_of(file_id, page_no))
