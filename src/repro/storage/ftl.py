"""Page-mapped Flash Translation Layer model.

The FTL is what turns host-visible page writes into flash *programs* and
*erases*.  Flash cannot overwrite in place: a logical overwrite programs a new
physical page and invalidates the old one; reclaiming invalidated pages needs
a whole-block erase, preceded by relocating the block's still-valid pages
(garbage collection).  This is precisely why the paper's small in-place
timestamp updates are so expensive — an 8 KiB page rewrite for a 32-bit
timestamp, later amplified again by GC relocation.

The model tracks, per host operation, the *device-internal* cost in
microseconds (programs + any foreground GC it triggered), plus cumulative
counters from which write amplification and wear statistics are derived.
Data contents are **not** stored here — the owning device keeps the logical
page store; the FTL is purely a placement/cost/wear model, which keeps data
correctness independent of placement policy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import FlashConfig
from repro.common.errors import OutOfSpaceError, WornOutError

#: Reverse-map sentinel: physical page holds no valid logical page.
_INVALID = -1
#: Reverse-map sentinel: physical page is erased and programmable.
_FREE = -2


@dataclass
class FtlStats:
    """Cumulative FTL counters."""

    host_writes: int = 0       # host-visible page writes
    programs: int = 0          # physical page programs (host + GC relocation)
    erases: int = 0            # block erases
    gc_runs: int = 0           # foreground GC invocations
    gc_relocated: int = 0      # valid pages moved by GC
    trims: int = 0

    @property
    def write_amplification(self) -> float:
        """Physical programs per host write (1.0 = no amplification)."""
        if self.host_writes == 0:
            return 1.0
        return self.programs / self.host_writes


class PageMappedFtl:
    """Greedy page-mapped FTL with foreground garbage collection.

    Placement policy: all programs go to a single *active* block filled
    sequentially; when it fills, the next block comes from the free pool.
    GC triggers when the free pool drops to the configured low watermark and
    greedily picks the victim with the fewest valid pages (never the active
    block).  Erase counts per block feed the wear/endurance experiment.
    """

    def __init__(self, config: FlashConfig) -> None:
        config.validate()
        self.config = config
        logical_blocks = config.total_pages // config.pages_per_block
        extra = int(logical_blocks * config.overprovision_ratio)
        self.n_blocks = logical_blocks + max(1, extra)
        self.pages_per_block = config.pages_per_block
        total_phys = self.n_blocks * self.pages_per_block
        self._l2p: dict[int, int] = {}
        self._p2l: list[int] = [_FREE] * total_phys
        self._valid_count: list[int] = [0] * self.n_blocks
        self.erase_counts: list[int] = [0] * self.n_blocks
        self._free_blocks: list[int] = list(range(self.n_blocks - 1, 0, -1))
        self._active_block: int = 0
        self._active_next_page: int = 0
        self.stats = FtlStats()

    # -- inspection -----------------------------------------------------------

    def physical_of(self, lpn: int) -> int | None:
        """Physical page currently mapped to ``lpn`` (None if unmapped)."""
        return self._l2p.get(lpn)

    @property
    def free_block_count(self) -> int:
        """Blocks in the erased pool (excluding the active block)."""
        return len(self._free_blocks)

    def valid_pages_in(self, block: int) -> int:
        """Valid (live) physical pages in ``block``."""
        return self._valid_count[block]

    def wear_stats(self) -> tuple[int, int, float]:
        """``(min, max, mean)`` erase counts across blocks."""
        counts = self.erase_counts
        return min(counts), max(counts), sum(counts) / len(counts)

    # -- host operations --------------------------------------------------------

    def host_write(self, lpn: int) -> int:
        """Account one host page write; return internal cost in microseconds.

        Cost = one program, plus — if the write triggered foreground GC —
        the GC's relocation programs and block erase.
        """
        self.stats.host_writes += 1
        cost = 0
        old = self._l2p.get(lpn)
        if old is not None:
            self._invalidate(old)
        cost += self._program(lpn)
        cost += self._maybe_collect()
        return cost

    def host_read(self, lpn: int) -> int:
        """Account one host page read; return cost in microseconds."""
        return self.config.read_latency_usec

    def host_trim(self, lpn: int) -> None:
        """Drop the mapping for ``lpn`` — the page is dead to the host.

        Trimmed pages cost nothing now and make future GC cheaper, which is
        how the database-driven space reclamation of the paper transfers
        control over erase behaviour to the DBMS.
        """
        self.stats.trims += 1
        old = self._l2p.pop(lpn, None)
        if old is not None:
            self._invalidate(old)

    # -- internals ----------------------------------------------------------------

    def _invalidate(self, ppn: int) -> None:
        block = ppn // self.pages_per_block
        if self._p2l[ppn] == _INVALID:
            return
        self._p2l[ppn] = _INVALID
        self._valid_count[block] -= 1

    def _program(self, lpn: int) -> int:
        """Program ``lpn`` into the active block; return program cost."""
        if self._active_next_page >= self.pages_per_block:
            self._advance_active_block()
        ppn = (self._active_block * self.pages_per_block
               + self._active_next_page)
        self._active_next_page += 1
        self._p2l[ppn] = lpn
        self._l2p[lpn] = ppn
        self._valid_count[self._active_block] += 1
        self.stats.programs += 1
        return self.config.program_latency_usec

    def _advance_active_block(self) -> None:
        if not self._free_blocks:
            raise OutOfSpaceError(
                "FTL has no free blocks left (device over-full; GC starved)")
        self._active_block = self._free_blocks.pop()
        self._active_next_page = 0

    def _maybe_collect(self) -> int:
        """Run foreground GC while the free pool is at the low watermark."""
        cost = 0
        while len(self._free_blocks) < self.config.gc_free_block_low_watermark:
            cost += self._collect_once()
        return cost

    def _collect_once(self) -> int:
        victim = self._pick_victim()
        if victim is None:
            raise OutOfSpaceError(
                "FTL GC found no victim block (all space is live data)")
        cost = 0
        self.stats.gc_runs += 1
        base = victim * self.pages_per_block
        for offset in range(self.pages_per_block):
            lpn = self._p2l[base + offset]
            if lpn >= 0:  # still valid: relocate
                self._invalidate(base + offset)
                cost += self._program(lpn)
                self.stats.gc_relocated += 1
        cost += self._erase(victim)
        return cost

    def _pick_victim(self) -> int | None:
        """Greedy: the non-active, non-free block with fewest valid pages.

        Returns None only if no block can yield space (every page of every
        candidate is valid) — the device is genuinely full.
        """
        free = set(self._free_blocks)
        best: int | None = None
        best_valid = self.pages_per_block + 1
        for block in range(self.n_blocks):
            if block == self._active_block or block in free:
                continue
            valid = self._valid_count[block]
            if valid < best_valid:
                best, best_valid = block, valid
        if best is None or best_valid >= self.pages_per_block:
            return None
        return best

    def _erase(self, block: int) -> int:
        self.erase_counts[block] += 1
        if self.erase_counts[block] > self.config.erase_endurance:
            raise WornOutError(
                f"flash block {block} exceeded endurance "
                f"({self.config.erase_endurance} erases)")
        base = block * self.pages_per_block
        for offset in range(self.pages_per_block):
            self._p2l[base + offset] = _FREE
        self._valid_count[block] = 0
        self._free_blocks.insert(0, block)
        self.stats.erases += 1
        return self.config.erase_latency_usec
