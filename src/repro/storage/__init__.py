"""Storage substrate: simulated flash SSD, HDD, RAID-0 and block tracing."""

from repro.storage.device import BlockDevice, DeviceStats
from repro.storage.faults import FaultyDevice, TransientReadError
from repro.storage.flash import FlashDevice
from repro.storage.ftl import FtlStats, PageMappedFtl
from repro.storage.hdd import HddDevice
from repro.storage.noftl import NoFtlFlashDevice
from repro.storage.raid import Raid0Device
from repro.storage.trace import (
    TraceEvent,
    TraceOp,
    TraceRecorder,
    TraceSummary,
    render_scatter,
    swimlane_locality,
    to_csv,
    write_locality,
)

__all__ = [
    "BlockDevice",
    "DeviceStats",
    "FaultyDevice",
    "FlashDevice",
    "TransientReadError",
    "FtlStats",
    "HddDevice",
    "NoFtlFlashDevice",
    "PageMappedFtl",
    "Raid0Device",
    "swimlane_locality",
    "TraceEvent",
    "TraceOp",
    "TraceRecorder",
    "TraceSummary",
    "render_scatter",
    "to_csv",
    "write_locality",
]
