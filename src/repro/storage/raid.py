"""Software RAID-0 (striping) over homogeneous block devices.

The paper evaluates two- and six-SSD stripe sets.  :class:`Raid0Device`
presents one flat LBA space; fixed-size stripes are distributed round-robin
over the members.  Requests are *serviced by* the member devices' own cost
models (so flash members keep their FTL/wear state), while queueing happens
at the RAID level: the aggregate exposes the sum of the members' channels to
the batch scheduler, so striping multiplies usable parallelism exactly the
way the hardware stripe set does.
"""

from __future__ import annotations

from repro.common.clock import SimClock
from repro.common.errors import ConfigError
from repro.storage.device import BlockDevice
from repro.storage.trace import TraceRecorder


class Raid0Device(BlockDevice):
    """Stripe a flat LBA space over member block devices."""

    def __init__(self, members: list[BlockDevice], stripe_pages: int = 8,
                 trace: TraceRecorder | None = None,
                 name: str = "raid0") -> None:
        if not members:
            raise ConfigError("RAID-0 needs at least one member device")
        page_size = members[0].page_size
        min_pages = min(m.total_pages for m in members)
        if any(m.page_size != page_size for m in members):
            raise ConfigError("RAID-0 members must share a page size")
        if stripe_pages < 1:
            raise ConfigError(f"stripe_pages must be >= 1, got {stripe_pages}")
        clock: SimClock = members[0].clock
        channels = sum(len(m._schedule.busy_until) for m in members)
        super().__init__(
            clock=clock,
            total_pages=min_pages * len(members),
            page_size=page_size,
            channels=channels,
            name=name,
            trace=trace,
        )
        self.members = members
        self.stripe_pages = stripe_pages

    # -- address mapping ---------------------------------------------------------

    def map_lba(self, lba: int) -> tuple[int, int]:
        """Map a RAID LBA to ``(member_index, member_lba)``."""
        stripe = lba // self.stripe_pages
        offset = lba % self.stripe_pages
        member = stripe % len(self.members)
        member_stripe = stripe // len(self.members)
        return member, member_stripe * self.stripe_pages + offset

    # -- BlockDevice hooks (delegate service & storage to the member) --------------

    def _service_read(self, lba: int) -> int:
        member, mlba = self.map_lba(lba)
        device = self.members[member]
        service = device._service_read(mlba)
        device.stats.reads += 1
        device.stats.read_bytes += self.page_size
        device.stats.busy_usec += service
        return service

    def _service_write(self, lba: int) -> int:
        member, mlba = self.map_lba(lba)
        device = self.members[member]
        service = device._service_write(mlba)
        device.stats.writes += 1
        device.stats.write_bytes += self.page_size
        device.stats.busy_usec += service
        return service

    def _store(self, lba: int, data: bytes) -> None:
        member, mlba = self.map_lba(lba)
        self.members[member]._store(mlba, data)

    def _load(self, lba: int) -> bytes:
        member, mlba = self.map_lba(lba)
        return self.members[member]._load(mlba)

    def _discard(self, lba: int) -> None:
        member, mlba = self.map_lba(lba)
        self.members[member]._discard(mlba)
