"""Block-device abstraction shared by the flash and HDD simulators.

Devices expose a flat array of logical pages (LBAs in page units).  All
operations charge simulated time to a :class:`~repro.common.clock.SimClock`
and are optionally recorded by a :class:`~repro.storage.trace.TraceRecorder`
(the repo's ``blktrace`` substitute).

Parallelism model
-----------------
Flash SSDs serve independent requests on parallel channels.  The simulator
models this with per-channel "busy until" horizons: a batch submitted via
:meth:`BlockDevice.read_pages` / :meth:`BlockDevice.write_pages` is spread
over the channels, and the caller's clock advances to the *latest* channel
completion — so a batch of N reads on C channels costs ~``ceil(N/C)`` service
times instead of N.  Single-page calls are synchronous and advance the clock
by the full service time, which is how a sequential scan experiences the
device.  The HDD has one channel (one arm), so batches degrade to sequential
service there, matching the paper's observation that only flash rewards the
parallel VIDmap access path.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.common.clock import SimClock
from repro.common.errors import InvalidAddressError
from repro.storage.trace import TraceOp, TraceRecorder


@dataclass
class DeviceStats:
    """Host-visible I/O counters (what ``blkparse`` would report)."""

    reads: int = 0
    writes: int = 0
    trims: int = 0
    read_bytes: int = 0
    write_bytes: int = 0
    busy_usec: int = 0

    def snapshot(self) -> "DeviceStats":
        """Return an independent copy of the counters."""
        return DeviceStats(self.reads, self.writes, self.trims,
                           self.read_bytes, self.write_bytes, self.busy_usec)

    def diff(self, earlier: "DeviceStats") -> "DeviceStats":
        """Counters accumulated since ``earlier`` (a prior snapshot)."""
        return DeviceStats(
            reads=self.reads - earlier.reads,
            writes=self.writes - earlier.writes,
            trims=self.trims - earlier.trims,
            read_bytes=self.read_bytes - earlier.read_bytes,
            write_bytes=self.write_bytes - earlier.write_bytes,
            busy_usec=self.busy_usec - earlier.busy_usec,
        )


@dataclass
class _ChannelSchedule:
    """Per-channel busy horizons for the batch parallelism model."""

    busy_until: list[int] = field(default_factory=list)

    def init(self, channels: int) -> None:
        self.busy_until = [0] * channels

    def dispatch(self, now: int, service_usec: int) -> int:
        """Place one request on the least-busy channel; return finish time."""
        idx = min(range(len(self.busy_until)), key=self.busy_until.__getitem__)
        start = max(now, self.busy_until[idx])
        finish = start + service_usec
        self.busy_until[idx] = finish
        return finish


class BlockDevice(ABC):
    """Abstract page-addressed device with simulated timing."""

    def __init__(self, clock: SimClock, total_pages: int, page_size: int,
                 channels: int, name: str,
                 trace: TraceRecorder | None = None) -> None:
        if total_pages <= 0:
            raise InvalidAddressError(f"device needs pages, got {total_pages}")
        self.clock = clock
        self.total_pages = total_pages
        self.page_size = page_size
        self.name = name
        self.trace = trace
        self.stats = DeviceStats()
        #: per-write service times (µs) — feeds latency-distribution
        #: analyses like the NoFTL predictability ablation
        self.write_service_log: list[int] = []
        self._schedule = _ChannelSchedule()
        self._schedule.init(max(1, channels))
        # One mutex per device serialises stats/schedule/backing-store
        # mutation.  Plain (non-reentrant): no device op calls another
        # public op of the *same* device.  Composite devices (RAID) call
        # member devices while holding their own mutex, but each member has
        # its own lock — a fixed parent→member order, so no cycles.
        self._mu = threading.Lock()

    # -- address checks ------------------------------------------------------

    def _check_lba(self, lba: int) -> None:
        if not 0 <= lba < self.total_pages:
            raise InvalidAddressError(
                f"{self.name}: LBA {lba} outside [0, {self.total_pages})")

    # -- service-time hooks (implemented by concrete devices) ----------------

    @abstractmethod
    def _service_read(self, lba: int) -> int:
        """Simulated service time of one page read, in microseconds."""

    @abstractmethod
    def _service_write(self, lba: int) -> int:
        """Simulated service time of one page write, in microseconds."""

    @abstractmethod
    def _store(self, lba: int, data: bytes) -> None:
        """Persist page data at ``lba`` (no timing)."""

    @abstractmethod
    def _load(self, lba: int) -> bytes:
        """Fetch page data at ``lba`` (no timing)."""

    def _discard(self, lba: int) -> None:
        """Drop page data at ``lba`` (no timing). Optional for devices."""

    def writable_hint(self, lba: int) -> bool:
        """Whether a write to ``lba`` would succeed right now.

        FTL-backed devices remap transparently, so everything is writable.
        Raw (NoFTL) flash overrides this: a page is writable only while its
        erase block is erased — the DBMS uses the hint to defer recycling
        page addresses whose block still holds live neighbours.
        """
        return True

    # -- public synchronous ops ----------------------------------------------

    def read_page(self, lba: int) -> bytes:
        """Read one page; the caller waits for completion.

        The request queues on the least-busy channel, so a read arriving
        while earlier (possibly asynchronous) requests are in flight waits
        behind them — device saturation backpressure.
        """
        self._check_lba(lba)
        with self._mu:
            service = self._service_read(lba)
            self._account(TraceOp.READ, lba, 1, service)
            self.clock.advance_to(self._schedule.dispatch(self.clock.now,
                                                          service))
            return self._load(lba)

    def write_page(self, lba: int, data: bytes) -> None:
        """Write one page; the caller waits for completion."""
        self._check_lba(lba)
        self._check_payload(data)
        with self._mu:
            service = self._service_write(lba)
            self._account(TraceOp.WRITE, lba, 1, service)
            self.clock.advance_to(self._schedule.dispatch(self.clock.now,
                                                          service))
            self._store(lba, data)

    def write_page_async(self, lba: int, data: bytes) -> None:
        """Write one page without waiting (DMA-style fire-and-forget).

        The service time occupies a channel — later synchronous requests
        queue behind it — but the caller's clock does not advance.  This is
        how background writers, checkpoints and SIAS-V page seals reach the
        device: the transaction path waits only for the WAL.
        """
        self._check_lba(lba)
        self._check_payload(data)
        with self._mu:
            service = self._service_write(lba)
            self._account(TraceOp.WRITE, lba, 1, service)
            self._schedule.dispatch(self.clock.now, service)
            self._store(lba, data)

    def trim(self, lba: int) -> None:
        """Tell the device a logical page is dead (free-page hint)."""
        self._check_lba(lba)
        with self._mu:
            self.stats.trims += 1
            if self.trace is not None:
                self.trace.record(self.clock.now, TraceOp.TRIM, lba, 1)
            self._discard(lba)

    # -- public batched (parallel) ops ----------------------------------------

    def read_pages(self, lbas: list[int]) -> list[bytes]:
        """Read a batch, exploiting channel parallelism.

        The clock advances to the completion of the *slowest* channel, so C
        channels serve a batch of N in roughly ``ceil(N/C)`` service times.
        """
        if not lbas:
            return []
        with self._mu:
            now = self.clock.now
            finish = now
            out: list[bytes] = []
            for lba in lbas:
                self._check_lba(lba)
                service = self._service_read(lba)
                self._account(TraceOp.READ, lba, 1, service)
                finish = max(finish, self._schedule.dispatch(now, service))
                out.append(self._load(lba))
            self.clock.advance_to(finish)
            return out

    def write_pages(self, writes: list[tuple[int, bytes]]) -> None:
        """Write a batch, exploiting channel parallelism (see read_pages)."""
        if not writes:
            return
        with self._mu:
            now = self.clock.now
            finish = now
            for lba, data in writes:
                self._check_lba(lba)
                self._check_payload(data)
                service = self._service_write(lba)
                self._account(TraceOp.WRITE, lba, 1, service)
                finish = max(finish, self._schedule.dispatch(now, service))
                self._store(lba, data)
            self.clock.advance_to(finish)

    # -- helpers ---------------------------------------------------------------

    def _check_payload(self, data: bytes) -> None:
        if len(data) != self.page_size:
            raise InvalidAddressError(
                f"{self.name}: payload {len(data)} B != page {self.page_size} B")

    def _account(self, op: TraceOp, lba: int, npages: int,
                 service_usec: int) -> None:
        nbytes = npages * self.page_size
        if op is TraceOp.READ:
            self.stats.reads += npages
            self.stats.read_bytes += nbytes
        elif op is TraceOp.WRITE:
            self.stats.writes += npages
            self.stats.write_bytes += nbytes
            self.write_service_log.append(service_usec)
        self.stats.busy_usec += service_usec
        if self.trace is not None:
            self.trace.record(self.clock.now, op, lba, npages)
