"""Fault injection: a wrapper device that corrupts or fails I/O.

Testing utility for the failure paths real storage forces on a database:
bit rot on reads (page checksums must catch it), transient read errors, and
torn (partially applied) writes.  The wrapper delegates everything to an
inner device and perturbs results according to a deterministic seeded plan,
so failing tests replay exactly.
"""

from __future__ import annotations

from repro.common.errors import StorageError
from repro.common.rng import make_rng
from repro.storage.device import BlockDevice


class TransientReadError(StorageError):
    """A read failed but may succeed on retry (injected)."""


class FaultyDevice:
    """Wraps a :class:`BlockDevice`, injecting faults on reads.

    Parameters are probabilities per page read: ``bitrot`` flips one byte of
    the returned data (the page checksum must detect it downstream);
    ``transient`` raises :class:`TransientReadError` instead of returning.
    Writes pass through untouched (torn writes are simulated by crashing
    before a seal; see the recovery tests).
    """

    def __init__(self, inner: BlockDevice, bitrot: float = 0.0,
                 transient: float = 0.0, seed: int = 42) -> None:
        if not 0.0 <= bitrot <= 1.0 or not 0.0 <= transient <= 1.0:
            raise ValueError("fault probabilities must be in [0, 1]")
        self._inner = inner
        self.bitrot = bitrot
        self.transient = transient
        self._rng = make_rng(seed, "faults", inner.name)
        self.injected_bitrot = 0
        self.injected_transient = 0

    # -- perturbed reads ----------------------------------------------------------

    def read_page(self, lba: int) -> bytes:
        """Read one page, possibly corrupted or failing."""
        data = self._inner.read_page(lba)
        return self._perturb(lba, data)

    def read_pages(self, lbas: list[int]) -> list[bytes]:
        """Batched read with per-page perturbation."""
        return [self._perturb(lba, data)
                for lba, data in zip(lbas, self._inner.read_pages(lbas))]

    def _perturb(self, lba: int, data: bytes) -> bytes:
        if self.transient and self._rng.random() < self.transient:
            self.injected_transient += 1
            raise TransientReadError(
                f"injected transient read failure at LBA {lba}")
        if self.bitrot and self._rng.random() < self.bitrot:
            self.injected_bitrot += 1
            position = self._rng.randrange(len(data))
            corrupted = bytearray(data)
            corrupted[position] ^= 0xFF
            return bytes(corrupted)
        return data

    # -- passthrough --------------------------------------------------------------

    def __getattr__(self, name: str):
        return getattr(self._inner, name)
