"""Fault injection: a wrapper device that corrupts or fails I/O.

Testing utility for the failure paths real storage forces on a database.
Read-side faults: bit rot (page checksums must catch it) and transient
read errors (the tablespace retries them, bounded).  Write-side faults:
torn writes (only a prefix of the page reaches the medium — the classic
partial-page write that power loss leaves behind), failed writes (the
device errors after persisting nothing or a torn prefix), and a
deterministic :class:`CrashPoint` that "cuts the power" at exactly the
k-th device write — the primitive the crash-sweep harness iterates over
every write of a workload.

The wrapper delegates everything to an inner device and perturbs results
according to a deterministic seeded plan, so failing tests replay exactly.
"""

from __future__ import annotations

from repro.common.errors import StorageError
from repro.common.rng import make_rng
from repro.storage.device import BlockDevice


class TransientReadError(StorageError):
    """A read failed but may succeed on retry (injected)."""


class InjectedWriteError(StorageError):
    """A write failed after persisting nothing or a torn prefix (injected)."""


class SimulatedCrash(StorageError):
    """The process-model lost power at an injected crash point.

    Raised by the device on the crash write and on every write after it
    (a dead machine accepts no more I/O) until :meth:`CrashPoint.disarm`
    models the reboot.  The crash-sweep harness catches this, simulates
    the crash at the database layer and runs recovery.
    """


class CrashPoint:
    """Deterministic crash trigger counting writes across devices.

    One :class:`CrashPoint` is shared by every :class:`FaultyDevice` of a
    database (data + WAL), so ``at_write=k`` means the k-th write the
    *system* issues, wherever it lands.  ``at_write=0`` never fires — the
    counting mode the sweep uses to size a workload's write footprint.

    ``torn=True`` persists the first half of the crash write before dying
    (a torn page the next read's checksum must catch); ``torn=False``
    loses the crash write entirely (power died before the program pulse).

    Once tripped the point stays tripped: later writes raise too, until
    :meth:`disarm` models the reboot (recovery then reads — and, once
    healed, writes — normally).
    """

    def __init__(self, at_write: int = 0, torn: bool = False) -> None:
        if at_write < 0:
            raise ValueError(f"at_write must be >= 0, got {at_write}")
        self.at_write = at_write
        self.torn = torn
        self.writes_seen = 0
        self.tripped = False
        self._armed = True

    def disarm(self) -> None:
        """Stop injecting (the reboot after the crash)."""
        self._armed = False

    def on_write(self) -> bool:
        """Count one write; returns True when this write is the crash.

        Raises :class:`SimulatedCrash` for every write *after* the crash
        write while still armed.
        """
        if not self._armed:
            return False
        if self.tripped:
            raise SimulatedCrash(
                f"device write after crash at write #{self.at_write}")
        self.writes_seen += 1
        if self.at_write and self.writes_seen == self.at_write:
            self.tripped = True
            return True
        return False


class FaultyDevice:
    """Wraps a :class:`BlockDevice`, injecting read and write faults.

    Read parameters are probabilities per page read: ``bitrot`` flips one
    byte of the returned data (the page checksum must detect it
    downstream); ``transient`` raises :class:`TransientReadError` instead
    of returning.  Write parameters are probabilities per page write:
    ``torn_write`` silently persists only a prefix of the page;
    ``failed_write`` raises :class:`InjectedWriteError` after persisting
    either nothing or a torn prefix (alternating, deterministically).
    ``crash_point`` attaches a shared :class:`CrashPoint`.

    ``retries_exhausted`` is bumped by the tablespace's bounded-retry
    read path when a transient fault outlives every retry.
    """

    def __init__(self, inner: BlockDevice, bitrot: float = 0.0,
                 transient: float = 0.0, seed: int = 42,
                 torn_write: float = 0.0, failed_write: float = 0.0,
                 crash_point: CrashPoint | None = None) -> None:
        for name, p in (("bitrot", bitrot), ("transient", transient),
                        ("torn_write", torn_write),
                        ("failed_write", failed_write)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(
                    f"fault probability {name} must be in [0, 1], got {p}")
        self._inner = inner
        self.bitrot = bitrot
        self.transient = transient
        self.torn_write = torn_write
        self.failed_write = failed_write
        self.crash_point = crash_point
        self._rng = make_rng(seed, "faults", inner.name)
        self.injected_bitrot = 0
        self.injected_transient = 0
        self.injected_torn = 0
        self.injected_write_fails = 0
        self.retries_exhausted = 0

    # -- perturbed reads ----------------------------------------------------------

    def read_page(self, lba: int) -> bytes:
        """Read one page, possibly corrupted or failing."""
        data = self._inner.read_page(lba)
        return self._perturb(lba, data)

    def read_pages(self, lbas: list[int]) -> list[bytes]:
        """Batched read with per-page perturbation."""
        return [self._perturb(lba, data)
                for lba, data in zip(lbas, self._inner.read_pages(lbas))]

    def _perturb(self, lba: int, data: bytes) -> bytes:
        if self.transient and self._rng.random() < self.transient:
            self.injected_transient += 1
            raise TransientReadError(
                f"injected transient read failure at LBA {lba}")
        if self.bitrot and self._rng.random() < self.bitrot:
            self.injected_bitrot += 1
            position = self._rng.randrange(len(data))
            corrupted = bytearray(data)
            corrupted[position] ^= 0xFF
            return bytes(corrupted)
        return data

    # -- perturbed writes ---------------------------------------------------------

    @property
    def _writes_faulty(self) -> bool:
        return bool(self.torn_write or self.failed_write
                    or (self.crash_point is not None))

    def write_page(self, lba: int, data: bytes) -> None:
        """Write one page, possibly torn, failed or crashing."""
        self._write_one(lba, data, sync=True)

    def write_page_async(self, lba: int, data: bytes) -> None:
        """Fire-and-forget write with the same fault model."""
        self._write_one(lba, data, sync=False)

    def write_pages(self, writes: list[tuple[int, bytes]]) -> None:
        """Batched write; a mid-batch crash persists the batch prefix.

        With no write faults configured the whole batch delegates to the
        inner device (keeping its channel-parallel timing); under fault
        injection pages are applied one at a time so a crash at the k-th
        write leaves exactly k-1 of them on the medium — the torn batch a
        real power loss produces.
        """
        if not self._writes_faulty:
            self._inner.write_pages(writes)
            return
        for lba, data in writes:
            self._write_one(lba, data, sync=True)

    def _write_one(self, lba: int, data: bytes, sync: bool) -> None:
        if self.crash_point is not None and self.crash_point.on_write():
            if self.crash_point.torn:
                self.injected_torn += 1
                self._persist_torn(lba, data, cut=len(data) // 2)
            raise SimulatedCrash(
                f"power lost on write #{self.crash_point.writes_seen} "
                f"(LBA {lba} of {self._inner.name})")
        if self.failed_write and self._rng.random() < self.failed_write:
            self.injected_write_fails += 1
            # alternate deterministically between zero and partial
            # persistence — both failure shapes stay covered
            if self.injected_write_fails % 2 == 0:
                self._persist_torn(lba, data,
                                   cut=self._rng.randrange(1, len(data)))
            raise InjectedWriteError(
                f"injected write failure at LBA {lba}")
        if self.torn_write and self._rng.random() < self.torn_write:
            self.injected_torn += 1
            self._persist_torn(lba, data,
                               cut=self._rng.randrange(1, len(data)))
            return
        if sync:
            self._inner.write_page(lba, data)
        else:
            self._inner.write_page_async(lba, data)

    def _persist_torn(self, lba: int, data: bytes, cut: int) -> None:
        """Persist ``data[:cut]`` over whatever the LBA held before.

        The tail keeps the old content (an in-place rewrite interrupted
        mid-page) or zeros (a never-written page) — either way the page
        checksum no longer matches and the next read must reject it.
        """
        from repro.common.errors import ReadUnwrittenError
        try:
            old = self._inner.read_page(lba)
        except ReadUnwrittenError:
            old = b"\x00" * len(data)
        self._inner.write_page(lba, data[:cut] + old[cut:])

    # -- passthrough --------------------------------------------------------------

    def __getattr__(self, name: str):
        return getattr(self._inner, name)
