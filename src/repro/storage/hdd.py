"""Simulated spinning disk (7200 rpm class).

The HDD is the paper's legacy-storage contrast: **symmetric** random access
costs (a random read is as expensive as a random write) and **no internal
parallelism** (one arm).  The cost model keeps a head position: accessing an
LBA within the current "track window" costs only transfer time; anything
further pays the average seek plus rotational latency.  Sequential appends —
the SIAS-V write pattern — are therefore nearly free on HDD too, which is why
the paper still observes wins there while the working set is cached.
"""

from __future__ import annotations

from repro.common.clock import SimClock
from repro.common.config import HddConfig
from repro.common.errors import ReadUnwrittenError
from repro.storage.device import BlockDevice
from repro.storage.trace import TraceRecorder


class HddDevice(BlockDevice):
    """A single spinning disk with a seek+rotation+transfer cost model."""

    def __init__(self, clock: SimClock, config: HddConfig | None = None,
                 trace: TraceRecorder | None = None,
                 name: str = "hdd0") -> None:
        self.config = config or HddConfig()
        self.config.validate()
        super().__init__(
            clock=clock,
            total_pages=self.config.total_pages,
            page_size=self.config.page_size,
            channels=1,  # one arm: batches gain nothing
            name=name,
            trace=trace,
        )
        self._head_lba = 0
        self._data: dict[int, bytes] = {}
        self.seeks = 0

    # -- cost model -------------------------------------------------------------

    def _access_cost(self, lba: int) -> int:
        """Positioning + transfer cost; symmetric for reads and writes."""
        cost = self.config.transfer_usec_per_page
        if abs(lba - self._head_lba) > self.config.track_pages:
            cost += self.config.avg_seek_usec
            cost += self.config.rotational_latency_usec
            self.seeks += 1
        self._head_lba = lba + 1  # head rests after the accessed page
        return cost

    # -- BlockDevice hooks --------------------------------------------------------

    def _service_read(self, lba: int) -> int:
        return self._access_cost(lba)

    def _service_write(self, lba: int) -> int:
        return self._access_cost(lba)

    def _store(self, lba: int, data: bytes) -> None:
        self._data[lba] = data

    def _load(self, lba: int) -> bytes:
        try:
            return self._data[lba]
        except KeyError:
            raise ReadUnwrittenError(
                f"{self.name}: LBA {lba} read before first write") from None

    def _discard(self, lba: int) -> None:
        self._data.pop(lba, None)
