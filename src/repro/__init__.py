"""SIAS-V reproduction: Snapshot Isolation Append Storage — Vectors on Flash.

A pure-Python reproduction of the SIAS-V system (EDBT 2014 demo): an
append-only multi-version storage engine for snapshot isolation, organised
around VID-mapping vectors and columnar append pages, evaluated against the
classical in-place-invalidation SI baseline on simulated flash and HDD
devices under a TPC-C-style workload.

Quick start::

    from repro import Database, EngineKind, IndexDef, Schema, ColType

    db = Database.on_flash(EngineKind.SIASV)
    schema = Schema.of(("id", ColType.INT), ("qty", ColType.INT))
    db.create_table("stock", schema,
                    indexes=[IndexDef("pk", ("id",), unique=True)])
    txn = db.begin()
    ref = db.insert(txn, "stock", (1, 10))
    db.commit(txn)

See DESIGN.md for the architecture and EXPERIMENTS.md for the regenerated
tables and figures.
"""

from repro.common import (
    BufferConfig,
    EngineConfig,
    FlashConfig,
    FlushThreshold,
    HddConfig,
    PageLayout,
    SimClock,
    SystemConfig,
)
from repro.db import ColType, Database, EngineKind, IndexDef, Schema

__version__ = "1.0.0"

__all__ = [
    "BufferConfig",
    "ColType",
    "Database",
    "EngineConfig",
    "EngineKind",
    "FlashConfig",
    "FlushThreshold",
    "HddConfig",
    "IndexDef",
    "PageLayout",
    "Schema",
    "SimClock",
    "SystemConfig",
    "__version__",
]
