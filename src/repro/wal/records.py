"""Write-ahead-log record formats.

The paper stresses that SIAS does not impinge on the MV-DBMS's inherent
recovery mechanisms: the WAL is identical for both engines.  Records carry
enough to replay logical modifications — the engines use them for recovery
tests and the experiments use WAL volume accounting to show both engines pay
the same logging cost.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import IntEnum

from repro.common.errors import PageCorruptError


class WalRecordType(IntEnum):
    """Logical record kinds."""

    INSERT = 1
    UPDATE = 2
    DELETE = 3
    COMMIT = 4
    ABORT = 5
    CHECKPOINT = 6
    PREPARE = 7


# type, relation_id, txid, item_id, payload length
_HEADER = struct.Struct("<BiqqI")


@dataclass(frozen=True)
class WalRecord:
    """One WAL entry: type, relation, transaction, item, opaque payload.

    ``relation_id`` plays the role of PostgreSQL's relfilenode: recovery
    partitions the log per relation with it (COMMIT/ABORT records use -1).
    """

    type: WalRecordType
    txid: int
    item_id: int
    payload: bytes = b""
    relation_id: int = -1

    @property
    def size(self) -> int:
        """Encoded size in bytes."""
        return _HEADER.size + len(self.payload)

    def pack(self) -> bytes:
        """Encode to bytes."""
        return _HEADER.pack(int(self.type), self.relation_id, self.txid,
                            self.item_id, len(self.payload)) + self.payload

    @staticmethod
    def unpack(data: bytes, offset: int = 0) -> tuple["WalRecord", int]:
        """Decode one record at ``offset``; returns ``(record, next_offset)``."""
        end = offset + _HEADER.size
        if end > len(data):
            raise PageCorruptError("WAL header extends past buffer end")
        rtype, rel, txid, item_id, plen = _HEADER.unpack(data[offset:end])
        if end + plen > len(data):
            raise PageCorruptError("WAL payload extends past buffer end")
        record = WalRecord(WalRecordType(rtype), txid, item_id,
                           bytes(data[end:end + plen]), rel)
        return record, end + plen
