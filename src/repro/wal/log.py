"""Sequential write-ahead log over a dedicated device.

Records accumulate in an in-memory segment buffer; a *force* (commit) writes
all complete-or-partial segment pages sequentially to the log device, exactly
like an ``fsync`` of the WAL tail.  The log device is separate from the data
device by default — mirroring the evaluated DBT2 setups, where blocktraces of
the data volume exclude WAL traffic — but any
:class:`~repro.storage.device.BlockDevice` works.

Concurrency: one append mutex serialises buffer mutation, and forces use
**group commit** — while a leader thread writes the tail to the device (with
the mutex released), other committers append their COMMIT records and wait
on a condition; the next force covers them all in one device write.  A
committer whose record was appended before the leader snapshotted the buffer
rides that very force and never touches the device (counted in
``group_commits``).
"""

from __future__ import annotations

import struct
import threading

from repro.common import units
from repro.storage.device import BlockDevice
from repro.wal.records import WalRecord, WalRecordType


class WriteAheadLog:
    """Append-only log with group-commit style forced flushes."""

    def __init__(self, device: BlockDevice,
                 page_size: int = units.DB_PAGE_SIZE,
                 max_retained_records: int | None = None) -> None:
        self.device = device
        self.page_size = page_size
        #: slot-retention budget: a replication slot that would force the
        #: log to retain more than this many records past its position is
        #: evicted at the next checkpoint instead of wedging truncation
        #: (None/0 = unlimited, the pre-budget behaviour).  The traded-off
        #: follower finds its slot gone, falls below the retained base on
        #: its next fetch, and recovers through a full resync.
        self.max_retained_records = max_retained_records
        self._buffer = bytearray()
        self._next_lba = 0
        self._flushed_upto = 0   # bytes in full pages durably on the device
        self._appended_upto = 0  # bytes ever appended (the LSN cursor)
        self._durable_upto = 0   # bytes durable incl. the partial tail page
        self._history: list[WalRecord] = []
        self._durable_count = 0  # records fully covered by the last force
        #: global sequence number of ``_history[0]`` — checkpoint
        #: truncation and recycling drop records from the front, and
        #: replication needs addresses that survive both
        self._base_seq = 0
        #: replication slots: follower id → lowest global seq the
        #: follower may still fetch; their minimum clamps truncation
        self._slots: dict[str, int] = {}
        #: slots evicted for blowing the retention budget, total and the
        #: per-follower positions they held when evicted (STATS surfacing)
        self.slots_evicted = 0
        self.evicted_slots: dict[str, int] = {}
        self.records_written = 0
        self.bytes_written = 0
        self.forces = 0
        #: commits made durable by another thread's force (group commit)
        self.group_commits = 0
        self._mu = threading.Lock()
        self._cond = threading.Condition(self._mu)
        self._forcing = False
        #: committers currently parked in ``_force_upto`` (mutex held);
        #: lets the leader skip ``notify_all`` when nobody waits
        self._waiters = 0

    # -- appending ------------------------------------------------------------

    def append(self, record: WalRecord) -> int:
        """Buffer a record; returns its LSN (byte offset in the log)."""
        with self._mu:
            return self._append_locked(record)

    def _append_locked(self, record: WalRecord) -> int:
        lsn = self._appended_upto
        packed = record.pack()
        self._buffer.extend(packed)
        self._appended_upto += len(packed)
        self._history.append(record)
        self.records_written += 1
        return lsn

    def log_commit(self, txid: int) -> None:
        """Append a commit record and force the log (durability point).

        Concurrent callers batch: whichever thread finds no force in
        progress becomes the *leader* and writes the tail for everyone;
        the rest wait and return once their record's LSN is durable.
        """
        with self._mu:
            self._append_locked(WalRecord(WalRecordType.COMMIT, txid, 0))
            self._force_upto(self._appended_upto, commit=True)

    def log_abort(self, txid: int) -> None:
        """Append an abort record (no force needed for aborts)."""
        self.append(WalRecord(WalRecordType.ABORT, txid, 0))

    def log_prepare(self, txid: int, gtxid: int) -> None:
        """Append a PREPARE record and force it (two-phase commit vote).

        The force *is* the vote: once a participant answers "prepared" the
        coordinator may decide commit, so the prepare — and with it every
        data record of the transaction, which precedes it in the log —
        must survive a crash.  ``gtxid`` (the coordinator's global txn id)
        rides in ``item_id`` so recovery can report in-doubt transactions
        back to the coordinator.
        """
        with self._mu:
            self._append_locked(WalRecord(WalRecordType.PREPARE, txid, gtxid))
            self._force_upto(self._appended_upto, commit=True)

    # -- durability ---------------------------------------------------------------

    def force(self) -> int:
        """Flush the buffered tail to the device; returns pages written.

        Tail pages are written sequentially.  A partial final page is
        written too (it will be rewritten by the next force — the usual WAL
        tail rewrite), so every force costs at least one page program.
        """
        with self._mu:
            return self._force_upto(self._appended_upto)

    def _force_upto(self, target_lsn: int, commit: bool = False) -> int:
        """Make every byte below ``target_lsn`` durable (mutex held).

        Leader/follower group commit: the leader snapshots the buffer,
        releases the mutex for the device write, then publishes the new
        durability horizon and wakes the followers.  A follower whose
        target is covered by the leader's snapshot never writes.
        """
        pages = 0
        waited = False
        while self._durable_upto < target_lsn:
            if self._forcing:
                waited = True
                self._waiters += 1
                try:
                    self._cond.wait()
                finally:
                    self._waiters -= 1
                continue
            self._forcing = True
            data = bytes(self._buffer)
            snapshot_lsn = self._appended_upto
            snapshot_count = len(self._history)
            self.forces += 1
            writes: list[tuple[int, bytes]] = []
            full_pages, remainder = divmod(len(data), self.page_size)
            for i in range(full_pages):
                writes.append((self._next_lba + i,
                               data[i * self.page_size:
                                    (i + 1) * self.page_size]))
            if remainder:
                tail = data[full_pages * self.page_size:]
                writes.append((self._next_lba + full_pages,
                               tail + b"\x00" * (self.page_size - remainder)))
                # note: the tail LBA is not consumed — the partial page
                # will be rewritten in place by the next force.
            self._mu.release()
            try:
                if writes:
                    self.device.write_pages(writes)
            finally:
                # Hand the leader role back and wake the followers even
                # when the device write raised: a parked follower re-checks
                # durability and becomes the new leader (or returns).  Were
                # the wakeup skipped on failure, followers in an untimed
                # wait would hang until some unrelated force signalled.
                # Nothing below the durability horizon moved: on failure
                # the buffer keeps every unflushed byte, ``_next_lba`` is
                # untouched (advanced only on success, under the mutex the
                # leader role guards), and the retry rewrites the same
                # LBAs — a mid-force device failure costs the caller an
                # exception, never a hole in the log.
                self._mu.acquire()
                self._forcing = False
                if self._waiters:
                    self._cond.notify_all()
            self._next_lba += full_pages
            del self._buffer[:full_pages * self.page_size]
            self._flushed_upto += full_pages * self.page_size
            self._durable_upto = snapshot_lsn
            self._durable_count = snapshot_count
            self.bytes_written += len(data)
            pages += len(writes)
        if commit and waited and pages == 0:
            self.group_commits += 1
        return pages

    def device_bytes(self) -> int:
        """On-device log footprint since the last recycle."""
        return self._next_lba * self.page_size

    # -- checkpoint integration ---------------------------------------------------

    def recycle(self) -> int:
        """Recycle the log after a checkpoint; returns pages trimmed.

        Once a checkpoint has made every data page (and sealed append page)
        durable, the log's history is no longer needed for crash recovery:
        segments are handed back to the device as trims and writing restarts
        from the beginning — PostgreSQL's WAL segment recycling.  Without
        this the log grows without bound and eventually fills its device.
        """
        with self._mu:
            self._force_upto(self._appended_upto)
            trimmed = 0
            for lba in range(self._next_lba + 1):
                self.device.trim(lba)
                trimmed += 1
            self._next_lba = 0
            self._flushed_upto = 0
            self._appended_upto = 0
            self._durable_upto = 0
            self._base_seq += len(self._history)
            self._buffer.clear()
            self._history.clear()
            self._durable_count = 0
            return trimmed

    def begin_checkpoint(self, active_txids: set[int]) -> int:
        """Snapshot the redo anchor for a checkpoint starting *now*.

        The anchor is the earliest history index still needed for crash
        recovery once the checkpoint completes: everything before it
        belongs to transactions that finished before the checkpoint began,
        whose versions the checkpoint itself makes durable (working pages
        sealed, dirty pages flushed).  Records of transactions still
        active when the checkpoint starts are *retained* — their versions
        may land in a working page that dies with the next crash, so redo
        must be able to replay them (ARIES's redo LSN, computed over the
        in-memory history this model replays from).
        """
        with self._mu:
            anchor = len(self._history)
            if active_txids:
                for index, record in enumerate(self._history):
                    if record.txid in active_txids:
                        return index
            return anchor

    def log_checkpoint(self, redo_index: int) -> int:
        """Complete a checkpoint: CHECKPOINT record, force, truncate.

        Appends a CHECKPOINT record carrying the redo anchor (item_id)
        and the durable LSN horizon (payload), forces it, then drops
        every record before ``redo_index`` from the in-memory history and
        rewrites the compacted log on the device — PostgreSQL's
        checkpoint-bounded redo plus segment recycling in one step.  The
        in-memory bookkeeping is updated *before* the device rewrite, so
        a device failure (or injected crash) mid-rewrite cannot corrupt
        the durable history the model recovers from.  Returns the number
        of records dropped.
        """
        with self._mu:
            # a concurrent recycle() may have emptied the history since
            # the anchor was snapshotted
            redo_index = min(redo_index, len(self._history))
            if self._slots and self.max_retained_records:
                # shed-don't-wedge: a slot so far behind that honouring it
                # would retain more than the budget is evicted — trading
                # that follower into a full resync instead of letting one
                # dead replica pin the leader's log forever
                horizon = self._base_seq + len(self._history)
                budget = self.max_retained_records
                for follower_id, seq in list(self._slots.items()):
                    if horizon - seq > budget:
                        del self._slots[follower_id]
                        self.slots_evicted += 1
                        self.evicted_slots[follower_id] = seq
            if self._slots:
                # retention floor: keep everything a subscribed follower
                # has not yet fetched, so the shipped stream never gaps
                floor = min(self._slots.values()) - self._base_seq
                redo_index = min(redo_index, max(0, floor))
            self._append_locked(WalRecord(
                WalRecordType.CHECKPOINT, -1, redo_index,
                payload=struct.pack("<q", self._appended_upto)))
            self._force_upto(self._appended_upto)
            return self._truncate_before(redo_index)

    def _truncate_before(self, redo_index: int) -> int:
        """Drop history below the anchor; compact the device log (mutex held).

        Followers may have appended (not yet durable) records while the
        completing force ran with the mutex released, so the retained
        tail can extend past the durable horizon: the durable prefix is
        rewritten to the device from LBA 0, the rest goes back into the
        in-memory segment buffer for the next force.
        """
        if redo_index <= 0:
            return 0
        retained = self._history[redo_index:]
        durable_retained = max(0, self._durable_count - redo_index)
        data = b"".join(r.pack() for r in retained)
        durable_len = sum(r.size for r in retained[:durable_retained])
        full_pages, _remainder = divmod(durable_len, self.page_size)
        old_footprint = self._next_lba
        self._history = retained
        self._base_seq += redo_index
        self._durable_count = durable_retained
        self._appended_upto = len(data)
        self._durable_upto = durable_len
        self._flushed_upto = full_pages * self.page_size
        self._buffer = bytearray(data[self._flushed_upto:])
        self._next_lba = full_pages
        for lba in range(old_footprint + 1):
            self.device.trim(lba)
        writes = [(i, data[i * self.page_size:(i + 1) * self.page_size])
                  for i in range(full_pages)]
        tail = data[self._flushed_upto:durable_len]
        if tail:
            writes.append((full_pages,
                           tail + b"\x00" * (self.page_size - len(tail))))
        if writes:
            self.device.write_pages(writes)
        return redo_index

    # -- recovery support -----------------------------------------------------------

    def lose_tail(self) -> int:
        """Simulate power loss: drop every record the last force missed.

        Crash simulation calls this — the unforced tail lives only in the
        in-memory segment buffer and dies with it.  Returns the number of
        records lost.
        """
        with self._mu:
            lost = len(self._history) - self._durable_count
            del self._history[self._durable_count:]
            # the segment buffer holds [_flushed_upto, _appended_upto);
            # keep the durable prefix of it — those bytes sit on the
            # device's partial tail page, which the next force rewrites
            # in place — and drop only the never-forced remainder
            keep = self._durable_upto - self._flushed_upto
            del self._buffer[keep:]
            self._appended_upto = self._durable_upto
            return lost

    def durable_records(self) -> list[WalRecord]:
        """Records that survive a crash: everything up to the last force.

        Records appended after the last force live only in the in-memory
        tail buffer and are lost with it.  Because a commit always forces,
        a committed transaction's records (appended before its COMMIT) are
        always durable.
        """
        with self._mu:
            return list(self._history[:self._durable_count])

    # -- replication (WAL shipping) -----------------------------------------------

    def durable_seq(self) -> int:
        """Global sequence number one past the last durable record.

        Unlike the byte LSN cursor, global sequence numbers survive
        checkpoint truncation and recycling: record ``i`` of the current
        in-memory history has global seq ``_base_seq + i``.
        """
        with self._mu:
            return self._base_seq + self._durable_count

    def records_since(self, seq: int,
                      limit: int = 512) -> tuple[list[WalRecord], int]:
        """Durable records starting at global seq ``seq`` (the ship unit).

        Returns ``(records, durable_seq)`` where ``records`` is at most
        ``limit`` records with global sequences ``seq, seq+1, ...`` and
        ``durable_seq`` is the current durable horizon (sampled under the
        same mutex, so a caller that reaches it has seen everything that
        was durable at sampling time).  ``seq`` below the retained base
        raises — the follower's slot should have prevented truncation
        past it, so a gap is a protocol violation, not a recoverable lag.
        """
        with self._mu:
            if seq < self._base_seq:
                raise ValueError(
                    f"WAL seq {seq} is below the retained base "
                    f"{self._base_seq}: the log was truncated past this "
                    f"follower (full resync required)")
            start = seq - self._base_seq
            end = min(self._durable_count, start + max(1, limit))
            records = (list(self._history[start:end])
                       if start < end else [])
            return records, self._base_seq + self._durable_count

    def redo_anchor_seq(self, closed_ts: int) -> int:
        """Global seq of the backup-cut redo anchor for ``closed_ts``.

        The earliest retained record owned by any transaction with
        ``txid > closed_ts``, or the end of the log when there is none.
        A backup image taken at ``closed_ts`` contains exactly the
        committed transactions at or below it; every transaction above
        it — still active, or already settled while an older one kept
        the closed timestamp back — must be re-shipped in full, and by
        this rule all of their records sit at or above the returned seq.
        (Active transactions always have ``txid > closed_ts``: the
        closed timestamp only covers settled fates.)
        """
        with self._mu:
            anchor = len(self._history)
            for index, record in enumerate(self._history):
                if record.txid > closed_ts:
                    anchor = index
                    break
            return self._base_seq + anchor

    def retained_records(self) -> int:
        """Records currently held in the retained (untruncated) history."""
        with self._mu:
            return len(self._history)

    def register_slot(self, follower_id: str, start_seq: int) -> None:
        """Create (or rewind) a replication slot pinned at ``start_seq``.

        While the slot exists, checkpoint truncation retains every record
        at or above the slot's position.
        """
        with self._mu:
            if start_seq < self._base_seq:
                raise ValueError(
                    f"cannot subscribe at seq {start_seq}: the log is "
                    f"truncated up to {self._base_seq} (full resync "
                    f"required)")
            self._slots[follower_id] = start_seq

    def advance_slot(self, follower_id: str, acked_seq: int) -> None:
        """Ratchet a slot forward: the follower has durably applied
        everything below ``acked_seq``."""
        with self._mu:
            current = self._slots.get(follower_id)
            if current is not None and acked_seq > current:
                self._slots[follower_id] = acked_seq

    def drop_slot(self, follower_id: str) -> None:
        """Remove a replication slot (unsubscribe)."""
        with self._mu:
            self._slots.pop(follower_id, None)

    def slots(self) -> dict[str, int]:
        """Current replication slots (follower id → retained seq floor)."""
        with self._mu:
            return dict(self._slots)

    def replay(self) -> list[WalRecord]:
        """Return the full logical record history (recovery tests).

        A real implementation would decode the device pages; the history is
        retained in memory as well and is byte-equivalent (tested), which
        keeps replay independent of partial-tail handling.
        """
        with self._mu:
            return list(self._history)

    def committed_txids(self) -> set[int]:
        """Transaction ids with a COMMIT record in the log."""
        with self._mu:
            return {r.txid for r in self._history
                    if r.type is WalRecordType.COMMIT}
