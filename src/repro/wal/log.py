"""Sequential write-ahead log over a dedicated device.

Records accumulate in an in-memory segment buffer; a *force* (commit) writes
all complete-or-partial segment pages sequentially to the log device, exactly
like an ``fsync`` of the WAL tail.  The log device is separate from the data
device by default — mirroring the evaluated DBT2 setups, where blocktraces of
the data volume exclude WAL traffic — but any
:class:`~repro.storage.device.BlockDevice` works.
"""

from __future__ import annotations

from repro.common import units
from repro.storage.device import BlockDevice
from repro.wal.records import WalRecord, WalRecordType


class WriteAheadLog:
    """Append-only log with group-commit style forced flushes."""

    def __init__(self, device: BlockDevice,
                 page_size: int = units.DB_PAGE_SIZE) -> None:
        self.device = device
        self.page_size = page_size
        self._buffer = bytearray()
        self._next_lba = 0
        self._flushed_upto = 0  # bytes durably on the device
        self._history: list[WalRecord] = []
        self._durable_count = 0  # records fully covered by the last force
        self.records_written = 0
        self.bytes_written = 0
        self.forces = 0

    # -- appending ------------------------------------------------------------

    def append(self, record: WalRecord) -> int:
        """Buffer a record; returns its LSN (byte offset in the log)."""
        lsn = self._flushed_upto + len(self._buffer)
        self._buffer.extend(record.pack())
        self._history.append(record)
        self.records_written += 1
        return lsn

    def log_commit(self, txid: int) -> None:
        """Append a commit record and force the log (durability point)."""
        self.append(WalRecord(WalRecordType.COMMIT, txid, 0))
        self.force()

    def log_abort(self, txid: int) -> None:
        """Append an abort record (no force needed for aborts)."""
        self.append(WalRecord(WalRecordType.ABORT, txid, 0))

    # -- durability ---------------------------------------------------------------

    def force(self) -> int:
        """Flush the buffered tail to the device; returns pages written.

        Tail pages are written sequentially.  A partial final page is
        written too (it will be rewritten by the next force — the usual WAL
        tail rewrite), so every force costs at least one page program.
        """
        if not self._buffer:
            return 0
        self.forces += 1
        writes: list[tuple[int, bytes]] = []
        data = bytes(self._buffer)
        full_pages, remainder = divmod(len(data), self.page_size)
        for i in range(full_pages):
            chunk = data[i * self.page_size:(i + 1) * self.page_size]
            writes.append((self._next_lba, chunk))
            self._next_lba += 1
        if remainder:
            tail = data[full_pages * self.page_size:]
            writes.append((self._next_lba,
                           tail + b"\x00" * (self.page_size - remainder)))
            # note: _next_lba not advanced — the tail page will be rewritten.
        self.device.write_pages(writes)
        self._flushed_upto += full_pages * self.page_size
        self._buffer = bytearray(data[full_pages * self.page_size:])
        self.bytes_written += len(data) - len(self._buffer) + remainder
        # the partial tail page was written too, so every appended record
        # is durable as of this force
        self._durable_count = len(self._history)
        return len(writes)

    def device_bytes(self) -> int:
        """On-device log footprint since the last recycle."""
        return self._next_lba * self.page_size

    # -- checkpoint integration ---------------------------------------------------

    def recycle(self) -> int:
        """Recycle the log after a checkpoint; returns pages trimmed.

        Once a checkpoint has made every data page (and sealed append page)
        durable, the log's history is no longer needed for crash recovery:
        segments are handed back to the device as trims and writing restarts
        from the beginning — PostgreSQL's WAL segment recycling.  Without
        this the log grows without bound and eventually fills its device.
        """
        self.force()
        trimmed = 0
        for lba in range(self._next_lba + 1):
            self.device.trim(lba)
            trimmed += 1
        self._next_lba = 0
        self._flushed_upto = 0
        self._buffer.clear()
        self._history.clear()
        self._durable_count = 0
        return trimmed

    # -- recovery support -----------------------------------------------------------

    def durable_records(self) -> list[WalRecord]:
        """Records that survive a crash: everything up to the last force.

        Records appended after the last force live only in the in-memory
        tail buffer and are lost with it.  Because a commit always forces,
        a committed transaction's records (appended before its COMMIT) are
        always durable.
        """
        return list(self._history[:self._durable_count])

    def replay(self) -> list[WalRecord]:
        """Return the full logical record history (recovery tests).

        A real implementation would decode the device pages; the history is
        retained in memory as well and is byte-equivalent (tested), which
        keeps replay independent of partial-tail handling.
        """
        return list(self._history)

    def committed_txids(self) -> set[int]:
        """Transaction ids with a COMMIT record in the log."""
        return {r.txid for r in self._history
                if r.type is WalRecordType.COMMIT}
