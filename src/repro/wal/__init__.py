"""Write-ahead logging (shared, unaffected by the storage algorithm)."""

from repro.wal.log import WriteAheadLog
from repro.wal.records import WalRecord, WalRecordType

__all__ = ["WalRecord", "WalRecordType", "WriteAheadLog"]
