"""Executor offload with admission control and per-command telemetry.

The storage engine underneath :class:`~repro.db.database.Database` is
synchronous; since the core latching work (txn mutex, per-frame buffer
latches, WAL append mutex, engine stripe latches) it is also thread-safe,
so the server runs commands on a *pool* of engine workers — by default
``min(4, cpu_count)`` — while the asyncio accept loop stays responsive.
The dispatcher still bounds the work the event loop is allowed to park in
front of the pool:

* ``max_in_flight`` commands may be submitted to the executor at once
  (an :class:`asyncio.Semaphore`);
* at most ``max_queue_depth`` further commands may wait for the semaphore.

A command arriving beyond both limits is **shed** with
:class:`~repro.common.errors.OverloadedError` before any work happens —
the retryable backpressure signal the client pool understands.  Shedding
instead of queueing without bound is what keeps an overloaded server
answering (the "tolerable load" lesson of the paper's Figure 5, applied to
the service layer).

Cleanup work (aborting a disconnected session's transactions) and cheap
control commands bypass admission via ``exempt=True`` but still count
against the in-flight bound, so the executor is never oversubscribed.

Two commands need more than thread safety: garbage collection and DDL
mutate structures that lock-free readers traverse without latches.  They
run on the **exclusive lane** (``exclusive=True``): the dispatcher drains
every executing command, runs the exclusive one alone, and only then
admits new work.  While an exclusive command waits, newly admitted
commands queue behind it (holding their in-flight slots), so a steady
stream of reads cannot starve maintenance.  The lane is implemented with
plain counters and :class:`asyncio.Event` — every mutation happens on the
event-loop thread, and the *leave* path is synchronous, so a cancelled
handler can never leak a gate token.
"""

from __future__ import annotations

import asyncio
import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, TypeVar

from repro.common.errors import DeadlineExceededError, OverloadedError

T = TypeVar("T")


def default_executor_workers() -> int:
    """The default engine-worker pool size: ``min(4, cpu_count)``."""
    return min(4, os.cpu_count() or 1)


@dataclass
class CommandCounter:
    """Latency / throughput / shedding counters for one command."""

    calls: int = 0
    ok: int = 0
    errors: int = 0
    shed: int = 0
    total_wall_sec: float = 0.0
    max_wall_sec: float = 0.0

    def observe(self, elapsed_sec: float) -> None:
        """Record one completed (admitted) call."""
        self.calls += 1
        self.total_wall_sec += elapsed_sec
        if elapsed_sec > self.max_wall_sec:
            self.max_wall_sec = elapsed_sec

    @property
    def mean_wall_sec(self) -> float:
        """Mean wall-clock latency of admitted calls."""
        return self.total_wall_sec / self.calls if self.calls else 0.0

    def as_dict(self) -> dict[str, float]:
        """Wire-friendly view."""
        return {"calls": self.calls, "ok": self.ok, "errors": self.errors,
                "shed": self.shed,
                "mean_wall_usec": round(self.mean_wall_sec * 1e6, 1),
                "max_wall_usec": round(self.max_wall_sec * 1e6, 1)}


@dataclass
class DispatchStats:
    """Aggregate admission-control counters plus the per-command map.

    ``deadline_rejected`` counts commands whose deadline had already
    passed when they arrived; ``deadline_shed`` counts commands that
    expired *while queued* for a worker slot — both rejected before any
    engine work, so both are retryable from the client's point of view.
    """

    admitted: int = 0
    shed_total: int = 0
    exclusive_runs: int = 0
    deadline_rejected: int = 0
    deadline_shed: int = 0
    commands: dict[str, CommandCounter] = field(default_factory=dict)

    def of(self, name: str) -> CommandCounter:
        """The (auto-created) counter for one command name."""
        counter = self.commands.get(name)
        if counter is None:
            counter = self.commands[name] = CommandCounter()
        return counter

    def per_command(self) -> dict[str, dict[str, float]]:
        """Wire-friendly per-command snapshot."""
        return {name: counter.as_dict()
                for name, counter in sorted(self.commands.items())}


class Dispatcher:
    """Admission-controlled bridge from the event loop to the engine."""

    def __init__(self, max_in_flight: int = 8, max_queue_depth: int = 64,
                 executor_workers: int | None = None) -> None:
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        if max_queue_depth < 0:
            raise ValueError("max_queue_depth must be >= 0")
        if executor_workers is None:
            executor_workers = default_executor_workers()
        if executor_workers < 1:
            raise ValueError("executor_workers must be >= 1")
        self.max_in_flight = max_in_flight
        self.max_queue_depth = max_queue_depth
        self.executor_workers = executor_workers
        self.stats = DispatchStats()
        self._sem = asyncio.Semaphore(max_in_flight)
        self._waiting = 0
        # Exclusive-lane state.  Touched only from the event-loop thread:
        # no lock needed, and _leave_gate is synchronous so cancellation
        # between enter and leave cannot strand the lane closed.
        self._executing = 0
        self._exclusive_active = False
        self._exclusive_pending = 0
        self._lane_open = asyncio.Event()   # no exclusive active or waiting
        self._lane_open.set()
        self._drained = asyncio.Event()     # _executing just reached zero
        self._executor = ThreadPoolExecutor(
            max_workers=executor_workers,
            thread_name_prefix="repro-engine")
        self._closed = False

    # -- introspection -------------------------------------------------------

    @property
    def executing(self) -> int:
        """Commands currently submitted to the executor."""
        return self._executing

    @property
    def queued(self) -> int:
        """Commands waiting for an in-flight slot."""
        return self._waiting

    # -- dispatch ------------------------------------------------------------

    async def run(self, name: str, fn: Callable[[], T], *,
                  exempt: bool = False, exclusive: bool = False,
                  deadline: float | None = None) -> T:
        """Run ``fn`` on the engine executor, or shed with ``OVERLOADED``.

        ``exempt`` skips the admission check (commit/abort, clock ticks,
        cleanup) but still occupies an in-flight slot.  ``exclusive``
        drains the executor and runs ``fn`` with no other command in
        flight — for work (GC, DDL) that restructures state lock-free
        readers traverse unlatched.  ``deadline`` is an absolute
        ``time.monotonic`` instant: work that expired on arrival is
        rejected outright, work that expires while waiting for a slot is
        shed when the slot frees up — in both cases *before* the engine
        sees it, so ``DEADLINE_EXCEEDED`` is always retryable.
        """
        if self._closed:
            raise OverloadedError("dispatcher is shut down")
        counter = self.stats.of(name)
        if deadline is not None and time.monotonic() >= deadline:
            self.stats.deadline_rejected += 1
            raise DeadlineExceededError(
                f"{name}: deadline passed before dispatch")
        if (not exempt and self._sem.locked()
                and self._waiting >= self.max_queue_depth):
            counter.shed += 1
            self.stats.shed_total += 1
            raise OverloadedError(
                f"{name}: {self._executing} in flight, {self._waiting} "
                f"queued (limit {self.max_in_flight}+"
                f"{self.max_queue_depth}); retry after backoff")
        start = time.monotonic()
        self._waiting += 1
        try:
            await self._sem.acquire()
        finally:
            self._waiting -= 1
        if deadline is not None and time.monotonic() >= deadline:
            # the deadline lapsed while this command sat in the queue:
            # shed it now rather than burn a worker on dead work
            self._sem.release()
            self.stats.deadline_shed += 1
            raise DeadlineExceededError(
                f"{name}: deadline passed while queued "
                f"({time.monotonic() - start:.3f}s)")
        try:
            await self._enter_gate(exclusive)
            self.stats.admitted += 1
            if exclusive:
                self.stats.exclusive_runs += 1
            try:
                loop = asyncio.get_running_loop()
                result = await loop.run_in_executor(self._executor, fn)
                counter.ok += 1
                return result
            except Exception:
                counter.errors += 1
                raise
            finally:
                self._leave_gate(exclusive)
        finally:
            self._sem.release()
            counter.observe(time.monotonic() - start)

    async def _enter_gate(self, exclusive: bool) -> None:
        if exclusive:
            self._exclusive_pending += 1
            self._lane_open.clear()
            try:
                while self._exclusive_active or self._executing > 0:
                    self._drained.clear()
                    await self._drained.wait()
                self._exclusive_active = True
            finally:
                # on success the active flag keeps the lane closed; on
                # cancellation this reopens it if we were the last waiter
                self._exclusive_pending -= 1
                if (not self._exclusive_active
                        and self._exclusive_pending == 0):
                    self._lane_open.set()
        else:
            while not self._lane_open.is_set():
                await self._lane_open.wait()
        self._executing += 1

    def _leave_gate(self, exclusive: bool) -> None:
        self._executing -= 1
        if exclusive:
            self._exclusive_active = False
            if self._exclusive_pending == 0:
                self._lane_open.set()
        if self._executing == 0:
            self._drained.set()

    def close(self) -> None:
        """Stop accepting work and drain the executor."""
        if not self._closed:
            self._closed = True
            self._executor.shutdown(wait=True)
