"""Executor offload with admission control and per-command telemetry.

The storage engine underneath :class:`~repro.db.database.Database` is
synchronous and **not** thread-safe, so the server must never run two
commands against it concurrently — yet the asyncio accept loop must stay
responsive while a scan chews through pages.  The dispatcher resolves this
by running every database command on a dedicated
:class:`~concurrent.futures.ThreadPoolExecutor` (one worker by default,
which *is* the engine's concurrency contract) and bounding the work the
event loop is allowed to park in front of it:

* ``max_in_flight`` commands may be submitted to the executor at once
  (an :class:`asyncio.Semaphore`);
* at most ``max_queue_depth`` further commands may wait for the semaphore.

A command arriving beyond both limits is **shed** with
:class:`~repro.common.errors.OverloadedError` before any work happens —
the retryable backpressure signal the client pool understands.  Shedding
instead of queueing without bound is what keeps an overloaded server
answering (the "tolerable load" lesson of the paper's Figure 5, applied to
the service layer).

Cleanup work (aborting a disconnected session's transactions) and cheap
control commands bypass admission via ``exempt=True`` but still serialise
through the executor, so engine single-threading holds even under load.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, TypeVar

from repro.common.errors import OverloadedError

T = TypeVar("T")


@dataclass
class CommandCounter:
    """Latency / throughput / shedding counters for one command."""

    calls: int = 0
    ok: int = 0
    errors: int = 0
    shed: int = 0
    total_wall_sec: float = 0.0
    max_wall_sec: float = 0.0

    def observe(self, elapsed_sec: float) -> None:
        """Record one completed (admitted) call."""
        self.calls += 1
        self.total_wall_sec += elapsed_sec
        if elapsed_sec > self.max_wall_sec:
            self.max_wall_sec = elapsed_sec

    @property
    def mean_wall_sec(self) -> float:
        """Mean wall-clock latency of admitted calls."""
        return self.total_wall_sec / self.calls if self.calls else 0.0

    def as_dict(self) -> dict[str, float]:
        """Wire-friendly view."""
        return {"calls": self.calls, "ok": self.ok, "errors": self.errors,
                "shed": self.shed,
                "mean_wall_usec": round(self.mean_wall_sec * 1e6, 1),
                "max_wall_usec": round(self.max_wall_sec * 1e6, 1)}


@dataclass
class DispatchStats:
    """Aggregate admission-control counters plus the per-command map."""

    admitted: int = 0
    shed_total: int = 0
    commands: dict[str, CommandCounter] = field(default_factory=dict)

    def of(self, name: str) -> CommandCounter:
        """The (auto-created) counter for one command name."""
        counter = self.commands.get(name)
        if counter is None:
            counter = self.commands[name] = CommandCounter()
        return counter

    def per_command(self) -> dict[str, dict[str, float]]:
        """Wire-friendly per-command snapshot."""
        return {name: counter.as_dict()
                for name, counter in sorted(self.commands.items())}


class Dispatcher:
    """Admission-controlled bridge from the event loop to the engine."""

    def __init__(self, max_in_flight: int = 8, max_queue_depth: int = 64,
                 executor_workers: int = 1) -> None:
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        if max_queue_depth < 0:
            raise ValueError("max_queue_depth must be >= 0")
        self.max_in_flight = max_in_flight
        self.max_queue_depth = max_queue_depth
        self.stats = DispatchStats()
        self._sem = asyncio.Semaphore(max_in_flight)
        self._waiting = 0
        self._executing = 0
        self._executor = ThreadPoolExecutor(
            max_workers=executor_workers,
            thread_name_prefix="repro-engine")
        self._closed = False

    # -- introspection -------------------------------------------------------

    @property
    def executing(self) -> int:
        """Commands currently submitted to the executor."""
        return self._executing

    @property
    def queued(self) -> int:
        """Commands waiting for an in-flight slot."""
        return self._waiting

    # -- dispatch ------------------------------------------------------------

    async def run(self, name: str, fn: Callable[[], T], *,
                  exempt: bool = False) -> T:
        """Run ``fn`` on the engine executor, or shed with ``OVERLOADED``.

        ``exempt`` skips the admission check (commit/abort, clock ticks,
        cleanup) but still serialises through the executor.
        """
        if self._closed:
            raise OverloadedError("dispatcher is shut down")
        counter = self.stats.of(name)
        if (not exempt and self._sem.locked()
                and self._waiting >= self.max_queue_depth):
            counter.shed += 1
            self.stats.shed_total += 1
            raise OverloadedError(
                f"{name}: {self._executing} in flight, {self._waiting} "
                f"queued (limit {self.max_in_flight}+"
                f"{self.max_queue_depth}); retry after backoff")
        start = time.monotonic()
        self._waiting += 1
        try:
            await self._sem.acquire()
        finally:
            self._waiting -= 1
        self._executing += 1
        self.stats.admitted += 1
        try:
            loop = asyncio.get_running_loop()
            result = await loop.run_in_executor(self._executor, fn)
            counter.ok += 1
            return result
        except Exception:
            counter.errors += 1
            raise
        finally:
            self._executing -= 1
            self._sem.release()
            counter.observe(time.monotonic() - start)

    def close(self) -> None:
        """Stop accepting work and drain the executor."""
        if not self._closed:
            self._closed = True
            self._executor.shutdown(wait=True)
