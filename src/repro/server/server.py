"""The asyncio TCP server exposing a :class:`Database` over the wire.

One :class:`DatabaseServer` binds one database instance to a listening
socket.  Each accepted connection gets a :class:`~repro.server.session.
Session`; each request frame is decoded, admission-checked and executed on
the engine executor by the :class:`~repro.server.dispatch.Dispatcher`; the
response frame echoes the client's request id with a status code.

Lifecycle contracts:

* a connection's transactions never outlive it — disconnect, reset and
  idle timeout all abort the session's in-flight transactions (undo runs,
  locks release) before the session is forgotten;
* overload never kills the server — excess load is shed per-command with
  the retryable ``OVERLOADED`` status while commit/abort, clock and stats
  commands stay admissible;
* expired work never reaches the engine — a request carrying a deadline
  that has already passed (or that lapses while queued) is rejected with
  the retryable ``DEADLINE_EXCEEDED`` status;
* ``SHUTDOWN`` (or SIGINT/SIGTERM under :meth:`DatabaseServer.run`) puts
  the server into **graceful drain**: new sessions are refused with
  ``SHUTTING_DOWN``, existing sessions may finish their in-flight
  transactions (and nothing else) until ``drain_timeout_sec``, stragglers
  are aborted (locks release), and only then do the sockets close.

The server can run in the foreground (:meth:`run`, used by ``repro
serve``) or on a background thread with its own event loop
(:meth:`start_in_background`, used by tests and the networked example).
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import signal
import threading
import time
from dataclasses import dataclass

from repro.common.errors import (
    ProtocolError,
    ReplicationError,
    TxnStateError,
)
from repro.db.catalog import IndexDef, IndexKind
from repro.db.database import Database
from repro.db.schema import ColType, Schema
from repro.pages.layout import Tid
from repro.server.dispatch import Dispatcher
from repro.server.protocol import (
    Command,
    Status,
    decode_request,
    encode_response,
    error_payload,
    frame_length,
    status_for_exception,
)
from repro.server.session import Session, SessionManager
from repro.txn.commitlog import TxnState
from repro.txn.manager import Transaction, TxnPhase


@dataclass(frozen=True)
class ServerConfig:
    """Service-layer knobs (the engine's own config lives on the Database).

    ``port=0`` binds an ephemeral port; read the real one from
    :attr:`DatabaseServer.address` after start.  ``idle_timeout_sec <= 0``
    disables idle reaping.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_in_flight: int = 8
    max_queue_depth: int = 64
    #: engine worker threads; 0 means auto (``min(4, cpu_count)``)
    executor_workers: int = 0
    idle_timeout_sec: float = 60.0
    reaper_interval_sec: float = 1.0
    #: how long a writer blocks on a held item lock before aborting with
    #: ``SerializationError``; applied when more than one worker runs
    lock_wait_timeout_sec: float = 0.2
    #: run crash recovery on the attached database before serving — for
    #: databases whose device state outlived an unclean stop
    recover_on_start: bool = False
    #: how long a stopping server lets in-flight transactions finish
    #: before aborting them (0 = abort stragglers immediately)
    drain_timeout_sec: float = 5.0
    #: a :class:`repro.server.chaos.ChaosPlan` faulting *response* frames;
    #: None (the default) installs no wrapper — the fault-free fast path
    #: is the plain asyncio stream code
    chaos: object | None = None

    def validate(self) -> None:
        """Raise on inconsistent settings."""
        if self.max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        if self.max_queue_depth < 0:
            raise ValueError("max_queue_depth must be >= 0")
        if self.executor_workers < 0:
            raise ValueError("executor_workers must be >= 0")
        if self.lock_wait_timeout_sec < 0:
            raise ValueError("lock_wait_timeout_sec must be >= 0")
        if self.drain_timeout_sec < 0:
            raise ValueError("drain_timeout_sec must be >= 0")


#: Commands that bypass admission control: finishing work (commit/abort
#: must never be shed once a txn is open), cheap control-plane traffic,
#: and observability that must answer precisely when the server is busy.
_EXEMPT = frozenset({
    Command.PING, Command.COMMIT, Command.ABORT, Command.TICK,
    Command.CLOCK_NOW, Command.CLOCK_ADVANCE, Command.CLOCK_ADVANCE_TO,
    Command.STATS, Command.TXN_STATUS, Command.SHUTDOWN,
    Command.PREPARE_TXN, Command.COMMIT_PREPARED, Command.ABORT_PREPARED,
    Command.CLOSED_TS, Command.WAL_SUBSCRIBE, Command.WAL_FETCH,
    Command.WAL_UNSUBSCRIBE, Command.BACKUP_BEGIN, Command.BACKUP_FETCH,
    Command.BACKUP_END,
})

#: Commands a *draining* server still serves unconditionally: finishing
#: work, fate queries for ambiguous commits, liveness and observability.
#: DML is additionally allowed when it references a transaction the
#: session already has in flight (see :meth:`DatabaseServer._execute`) —
#: the drain contract is "finish what you started, start nothing new".
_DRAIN_ALLOWED = frozenset({
    Command.PING, Command.COMMIT, Command.ABORT, Command.TXN_STATUS,
    Command.STATS, Command.SHUTDOWN,
    Command.PREPARE_TXN, Command.COMMIT_PREPARED, Command.ABORT_PREPARED,
    Command.CLOSED_TS, Command.WAL_SUBSCRIBE, Command.WAL_FETCH,
    Command.WAL_UNSUBSCRIBE, Command.BACKUP_BEGIN, Command.BACKUP_FETCH,
    Command.BACKUP_END,
})

#: Commands that mutate data or the catalog: a node whose replication
#: role is not "leader" refuses these with the FENCED status.
_WRITE_COMMANDS = frozenset({
    Command.INSERT, Command.BULK_INSERT, Command.UPDATE, Command.DELETE,
    Command.CREATE_TABLE,
})

#: Commands that run on the dispatcher's exclusive lane: they restructure
#: state (GC page reclaim, catalog growth) that lock-free read paths
#: traverse without latches, so no other command may be in flight.
_EXCLUSIVE = frozenset({Command.MAINTENANCE, Command.CREATE_TABLE})


def _arity(args: tuple, n: int) -> tuple:
    if len(args) != n:
        raise ProtocolError(f"expected {n} argument(s), got {len(args)}")
    return args


def _as_int(value: object, what: str = "integer") -> int:
    if not isinstance(value, int) or isinstance(value, bool):
        raise ProtocolError(f"expected {what}, got {value!r}")
    return value


def _as_str(value: object, what: str = "string") -> str:
    if not isinstance(value, str):
        raise ProtocolError(f"expected {what}, got {value!r}")
    return value


def _as_row(value: object) -> tuple:
    if not isinstance(value, tuple):
        raise ProtocolError(f"expected row tuple, got {value!r}")
    return value


def _as_ref(value: object) -> object:
    if isinstance(value, bool) or not isinstance(value, (int, Tid)):
        raise ProtocolError(f"expected item handle, got {value!r}")
    return value


def _as_predicate(value: object) -> tuple | None:
    if value is None:
        return None
    if (not isinstance(value, tuple) or len(value) != 3
            or not isinstance(value[0], str)
            or not isinstance(value[1], str)):
        raise ProtocolError(
            f"expected (column, op, value) predicate, got {value!r}")
    return value


class DatabaseServer:
    """Serves one :class:`Database` over length-prefixed TCP frames."""

    def __init__(self, db: Database, config: ServerConfig | None = None,
                 replication: object | None = None) -> None:
        self.db = db
        #: a :class:`repro.replication.leader.ReplicationHub` or
        #: :class:`repro.replication.follower.WalFollower` (or None for a
        #: standalone node).  Drives role-based write fencing, replica
        #: read pinning and the WAL_SUBSCRIBE/WAL_FETCH commands.
        self.replication = replication
        self.config = config or ServerConfig()
        self.config.validate()
        self.sessions = SessionManager(self.config.idle_timeout_sec)
        self.dispatch = Dispatcher(self.config.max_in_flight,
                                   self.config.max_queue_depth,
                                   self.config.executor_workers or None)
        # With several engine workers, writers contending for the same
        # item wait (bounded) instead of aborting on first touch — the
        # single-worker default (0.0: immediate first-updater-wins abort)
        # stays untouched so embedded/one-worker behaviour is unchanged.
        if (self.dispatch.executor_workers > 1
                and db.txn_mgr.locks.wait_timeout_sec <= 0):
            db.txn_mgr.locks.wait_timeout_sec = (
                self.config.lock_wait_timeout_sec)
        self.address: tuple[str, int] | None = None
        self._server: asyncio.Server | None = None
        self._stop_event: asyncio.Event | None = None
        #: drain phase: refuse new sessions, let in-flight txns finish
        self._draining = False
        #: final teardown: connection loops exit, sockets close
        self._closing = False
        self._loop: asyncio.AbstractEventLoop | None = None
        self._reaper_task: asyncio.Task | None = None
        self._writers: dict[int, asyncio.StreamWriter] = {}
        self._handler_tasks: set[asyncio.Task] = set()
        self._thread: threading.Thread | None = None
        self._started_monotonic = 0.0
        #: set when ``recover_on_start`` ran: what recovery found/redid
        self.recovery_report = None
        if self.config.recover_on_start:
            from repro.db.recovery import crash, recover
            # Re-derive every volatile structure from durable state, as a
            # restart after power loss would: drop whatever in-memory
            # state the handed-in Database object carries, then recover.
            crash(db)
            self.recovery_report = recover(db)
        self._handlers = {
            Command.PING: self._cmd_ping,
            Command.BEGIN: self._cmd_begin,
            Command.COMMIT: self._cmd_commit,
            Command.ABORT: self._cmd_abort,
            Command.CREATE_TABLE: self._cmd_create_table,
            Command.INSERT: self._cmd_insert,
            Command.BULK_INSERT: self._cmd_bulk_insert,
            Command.READ: self._cmd_read,
            Command.UPDATE: self._cmd_update,
            Command.DELETE: self._cmd_delete,
            Command.LOOKUP: self._cmd_lookup,
            Command.RANGE_LOOKUP: self._cmd_range_lookup,
            Command.SCAN: self._cmd_scan,
            Command.SCAN_BATCH: self._cmd_scan_batch,
            Command.AGGREGATE: self._cmd_aggregate,
            Command.SCAN_VID_RANGE: self._cmd_scan_vid_range,
            Command.TICK: self._cmd_tick,
            Command.MAINTENANCE: self._cmd_maintenance,
            Command.SNAPSHOT: self._cmd_snapshot,
            Command.STATS: self._cmd_stats,
            Command.CLOCK_NOW: self._cmd_clock_now,
            Command.CLOCK_ADVANCE: self._cmd_clock_advance,
            Command.CLOCK_ADVANCE_TO: self._cmd_clock_advance_to,
            Command.TXN_STATUS: self._cmd_txn_status,
            Command.PREPARE_TXN: self._cmd_prepare_txn,
            Command.COMMIT_PREPARED: self._cmd_commit_prepared,
            Command.ABORT_PREPARED: self._cmd_abort_prepared,
            Command.CLOSED_TS: self._cmd_closed_ts,
            Command.WAL_SUBSCRIBE: self._cmd_wal_subscribe,
            Command.WAL_FETCH: self._cmd_wal_fetch,
            Command.WAL_UNSUBSCRIBE: self._cmd_wal_unsubscribe,
            Command.BACKUP_BEGIN: self._cmd_backup_begin,
            Command.BACKUP_FETCH: self._cmd_backup_fetch,
            Command.BACKUP_END: self._cmd_backup_end,
            Command.SHUTDOWN: self._cmd_shutdown,
        }

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind the listening socket; returns the bound ``(host, port)``."""
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._started_monotonic = time.monotonic()
        self._server = await asyncio.start_server(
            self._handle, self.config.host, self.config.port)
        sock = self._server.sockets[0].getsockname()
        self.address = (sock[0], sock[1])
        self._reaper_task = asyncio.create_task(self._reaper())
        return self.address

    def request_stop(self) -> None:
        """Ask the serve loop to wind down (safe from the loop thread).

        Flips the server into the *draining* phase immediately: new
        sessions are refused, existing ones may only finish what they
        started.  The actual teardown happens in :meth:`stop`.
        """
        self._draining = True
        if self._stop_event is not None:
            self._stop_event.set()

    async def serve_until_stopped(self) -> None:
        """Block until :meth:`request_stop`, then tear everything down."""
        assert self._stop_event is not None, "start() first"
        await self._stop_event.wait()
        await self.stop()

    async def stop(self) -> None:
        """Drain gracefully, abort stragglers, then close everything.

        The listener stays **open** during the drain so a late-arriving
        client gets a ``SHUTTING_DOWN`` wire status (a signal it can act
        on) instead of a bare connection refusal.
        """
        if self._server is None:
            return
        self.request_stop()
        await self._drain()
        self._closing = True
        self._server.close()
        await self._server.wait_closed()
        self._server = None
        if self._reaper_task is not None:
            self._reaper_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._reaper_task
            self._reaper_task = None
        for writer in list(self._writers.values()):
            writer.close()
        if self._handler_tasks:
            # handlers abort their orphaned transactions on the way out
            await asyncio.wait(self._handler_tasks, timeout=5.0)
        self.dispatch.close()

    async def _drain(self) -> None:
        """Wait for in-flight transactions to finish; abort the rest.

        "In flight" means both open transactions (a session may be
        between commands of one) and commands currently executing.  The
        wait is bounded by ``drain_timeout_sec``; whatever remains is
        aborted so locks release and undo runs before the sockets close.
        """
        deadline = time.monotonic() + self.config.drain_timeout_sec
        while time.monotonic() < deadline:
            if (self.sessions.in_flight_txns() == 0
                    and self.dispatch.executing == 0):
                return
            await asyncio.sleep(0.02)
        for session in list(self.sessions):
            if session.txns:
                self.sessions.stats.drain_aborts += len(session.txns)
                writer = self._writers.pop(session.session_id, None)
                if writer is not None:
                    writer.close()
                await self._abort_orphans(self.sessions.close(session))

    def run(self) -> int:
        """Foreground serve loop (``repro serve``); returns 0 on clean stop."""
        async def main() -> None:
            await self.start()
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGINT, signal.SIGTERM):
                with contextlib.suppress(NotImplementedError):
                    loop.add_signal_handler(signum, self.request_stop)
            host, port = self.address  # type: ignore[misc]
            print(f"repro server listening on {host}:{port}", flush=True)
            await self.serve_until_stopped()

        asyncio.run(main())
        return 0

    def start_in_background(self) -> tuple[str, int]:
        """Serve from a dedicated thread; returns once the port is bound.

        For embedding (tests, examples): the caller's thread stays free to
        run clients against :attr:`address`.  Pair with
        :meth:`stop_in_background`.
        """
        ready = threading.Event()
        failure: list[BaseException] = []

        def runner() -> None:
            async def main() -> None:
                await self.start()
                ready.set()
                await self.serve_until_stopped()
            try:
                asyncio.run(main())
            except BaseException as exc:  # surfaced to the caller below
                failure.append(exc)
            finally:
                ready.set()

        self._thread = threading.Thread(target=runner, name="repro-server",
                                        daemon=True)
        self._thread.start()
        if not ready.wait(timeout=10.0):
            raise TimeoutError("server did not start within 10s")
        if failure:
            raise failure[0]
        assert self.address is not None
        return self.address

    def stop_in_background(self, timeout: float = 10.0) -> None:
        """Stop a :meth:`start_in_background` server and join its thread."""
        if self._thread is None:
            return
        if self._loop is not None and not self._loop.is_closed():
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self.request_stop)
        self._thread.join(timeout)
        self._thread = None

    # -- monitoring ----------------------------------------------------------

    def command_stats(self) -> tuple:
        """Per-command counters in :mod:`repro.db.monitor` shape."""
        # imported here, not at module top: repro.db.monitor reaches the
        # experiments package (for rendering), which reaches back into the
        # service layer via the chaos sweep — a top-level import would be
        # circular
        from repro.db.monitor import CommandStat

        out = []
        for name, counter in sorted(self.dispatch.stats.commands.items()):
            out.append(CommandStat(
                command=name, calls=counter.calls, ok=counter.ok,
                errors=counter.errors, shed=counter.shed,
                mean_wall_usec=round(counter.mean_wall_sec * 1e6, 1),
                max_wall_usec=round(counter.max_wall_sec * 1e6, 1)))
        return tuple(out)

    def stats_payload(self) -> dict:
        """The ``STATS`` command's response body."""
        return {
            "uptime_sec": round(time.monotonic() - self._started_monotonic,
                                3),
            "in_flight": self.dispatch.executing,
            "queued": self.dispatch.queued,
            "admitted": self.dispatch.stats.admitted,
            "shed_total": self.dispatch.stats.shed_total,
            "deadline_rejected": self.dispatch.stats.deadline_rejected,
            "deadline_shed": self.dispatch.stats.deadline_shed,
            "draining": self._draining,
            "max_in_flight": self.config.max_in_flight,
            "max_queue_depth": self.config.max_queue_depth,
            "executor_workers": self.dispatch.executor_workers,
            "exclusive_runs": self.dispatch.stats.exclusive_runs,
            "sessions": {"live": self.sessions.count(),
                         "in_flight_txns": self.sessions.in_flight_txns(),
                         **self.sessions.stats.as_dict()},
            "engine": self._engine_payload(),
            "replication": (self.replication.status()
                            if self.replication is not None else {}),
            "commands": self.dispatch.stats.per_command(),
        }

    def _engine_payload(self) -> dict:
        """Engine-core counters (txn + lock table) for ``STATS``.

        Lets clients and the CI smoke assert engine invariants over the
        wire — e.g. that the lock table drained after a workload.
        """
        commits, aborts, active = self.db.txn_mgr.counters()
        locks = self.db.txn_mgr.locks
        mgr = self.db.txn_mgr
        return {
            "txns": {"commits": commits, "aborts": aborts,
                     "active": active,
                     "prepares": mgr.prepares,
                     "prepared_commits": mgr.prepared_commits,
                     "prepared_aborts": mgr.prepared_aborts,
                     "in_doubt": len(mgr.prepared),
                     "in_doubt_txns": tuple(mgr.in_doubt()),
                     "closed_ts": mgr.closed_ts(),
                     "begin_at": mgr.begin_at},
            "locks": {"held": locks.held_count(),
                      "acquired": locks.stats.acquired,
                      "conflicts": locks.stats.conflicts,
                      "waits": locks.stats.waits,
                      "wait_timeouts": locks.stats.wait_timeouts},
        }

    # -- connection handling -------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handler_tasks.add(task)
        if self._draining:
            await self._refuse_connection(reader, writer)
            if task is not None:
                self._handler_tasks.discard(task)
            return
        if self.config.chaos is not None:
            writer = self.config.chaos.wrap_stream_writer(writer)
        peer = writer.get_extra_info("peername")
        session = self.sessions.open(str(peer), time.monotonic())
        self._writers[session.session_id] = writer
        try:
            await self._serve_connection(session, reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer vanished mid-frame: treated as a disconnect
        finally:
            self._writers.pop(session.session_id, None)
            self._drop_follower_slots(session)
            await self._abort_orphans(self.sessions.close(session))
            writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await writer.wait_closed()
            if task is not None:
                self._handler_tasks.discard(task)

    async def _refuse_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        """Tell a client arriving during drain to go away, politely.

        Reads the first frame (briefly) so the refusal can echo its
        request id — giving the client pool a typed, retryable-elsewhere
        ``SHUTTING_DOWN`` instead of a connection reset.
        """
        self.sessions.stats.drain_refused += 1
        request_id = 0
        with contextlib.suppress(ConnectionError, ProtocolError,
                                 asyncio.IncompleteReadError,
                                 asyncio.TimeoutError):
            payload = await asyncio.wait_for(self._read_frame(reader),
                                             timeout=1.0)
            if payload is not None:
                request_id = decode_request(payload)[0]
        with contextlib.suppress(ConnectionError, OSError):
            writer.write(encode_response(request_id, Status.SHUTTING_DOWN,
                                         "server is draining"))
            await writer.drain()
        writer.close()
        with contextlib.suppress(ConnectionError, OSError):
            await writer.wait_closed()

    async def _serve_connection(self, session: Session,
                                reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        while not self._closing:
            payload = await self._read_frame(reader)
            if payload is None:
                return
            now = time.monotonic()
            try:
                request_id, command, args, deadline_ms = (
                    decode_request(payload))
            except ProtocolError as exc:
                writer.write(encode_response(0, Status.BAD_REQUEST,
                                             error_payload(exc)))
                await writer.drain()
                return  # a desynchronised stream cannot be resumed
            # One request at a time per connection, so the session can
            # carry the in-flight command's absolute deadline.
            session.deadline = (None if deadline_ms is None
                                else now + deadline_ms / 1000.0)
            session.begin_command(now)
            try:
                status, result = await self._execute(session, command, args)
            finally:
                session.end_command(time.monotonic())
                session.deadline = None
            writer.write(encode_response(request_id, status, result))
            await writer.drain()
            if command == Command.SHUTDOWN and status == Status.OK:
                self.request_stop()
                return
            if self._draining and not session.txns:
                # drained: this session has nothing left to finish
                return

    @staticmethod
    async def _read_frame(reader: asyncio.StreamReader) -> bytes | None:
        """One frame payload, or None on clean EOF between frames."""
        try:
            header = await reader.readexactly(4)
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None
            raise
        return await reader.readexactly(frame_length(header))

    async def _execute(self, session: Session, command: int,
                       args: tuple) -> tuple[Status, object]:
        handler = self._handlers.get(command)
        if handler is None:
            return Status.BAD_REQUEST, f"unknown command {command}"
        if (session.deadline is not None
                and time.monotonic() >= session.deadline):
            # Checked here — not only inside the dispatcher — so commands
            # that never reach a worker slot (PING, STATS) still honour
            # the caller's budget.
            self.dispatch.stats.deadline_rejected += 1
            return (Status.DEADLINE_EXCEEDED,
                    f"{Command(command).name}: deadline passed on arrival")
        repl = self.replication
        if repl is not None and repl.role != "leader":
            # role-based write fencing: a replica serves reads only; a
            # fenced (deposed) leader may not ack anything that could
            # make a write durable — not even a commit of older work
            refused = command in _WRITE_COMMANDS or (
                repl.role == "fenced"
                and command in (Command.COMMIT, Command.PREPARE_TXN,
                                Command.COMMIT_PREPARED))
            if refused:
                exc = ReplicationError(
                    f"{Command(command).name} refused: node role is "
                    f"{repl.role} (epoch {repl.epoch}), not leader")
                return status_for_exception(exc), error_payload(exc)
        if self._draining and command not in _DRAIN_ALLOWED:
            # DML against a transaction this session already has in
            # flight may still run — "finish what you started".  Every
            # txn-scoped command carries the txid first; bool is excluded
            # because BEGIN's first argument is a flag, not a txid.
            owned = (args and isinstance(args[0], int)
                     and not isinstance(args[0], bool)
                     and args[0] in session.txns)
            if not owned:
                return Status.SHUTTING_DOWN, "server is draining"
        try:
            return Status.OK, await handler(session, args)
        except asyncio.CancelledError:
            raise
        except BaseException as exc:
            return status_for_exception(exc), error_payload(exc)

    async def _run(self, session: Session, command: Command, fn) -> object:
        return await self.dispatch.run(command.name, fn,
                                       exempt=command in _EXEMPT,
                                       exclusive=command in _EXCLUSIVE,
                                       deadline=session.deadline)

    async def _abort_orphans(self, orphans: list[Transaction]) -> None:
        """Abort a closed session's in-flight transactions on the engine."""
        for txn in orphans:
            def work(txn: Transaction = txn) -> bool:
                if txn.phase is TxnPhase.ACTIVE:
                    self.db.abort(txn)
                    return True
                return False
            with contextlib.suppress(Exception):
                if await self.dispatch.run("ABORT_ORPHAN", work,
                                           exempt=True):
                    self.sessions.stats.orphans_aborted += 1

    async def _reaper(self) -> None:
        """Close sessions that out-idled the timeout (aborting their txns)."""
        interval = self.config.reaper_interval_sec
        if self.config.idle_timeout_sec > 0:
            interval = min(interval, self.config.idle_timeout_sec / 4)
        interval = max(interval, 0.02)
        while True:
            await asyncio.sleep(interval)
            now = time.monotonic()
            for session in self.sessions.idle_sessions(now):
                self.sessions.stats.idle_closed += 1
                self._drop_follower_slots(session)
                await self._abort_orphans(self.sessions.close(session))
                writer = self._writers.pop(session.session_id, None)
                if writer is not None:
                    writer.close()

    # -- command handlers ----------------------------------------------------

    async def _cmd_ping(self, _session: Session, args: tuple) -> str:
        _arity(args, 0)
        return "pong"

    async def _cmd_begin(self, session: Session, args: tuple) -> int:
        """Start a transaction.  Wire-compatible arity growth: the
        original single-operand form ``(serializable,)`` keeps today's
        behaviour; a second operand pins the snapshot to an externally
        supplied closed read timestamp (``None`` ⇒ fresh snapshot)."""
        if len(args) == 1:
            (serializable,) = args
            at_ts = None
        else:
            serializable, raw_at = _arity(args, 2)
            at_ts = None if raw_at is None else _as_int(raw_at, "at_ts")
        repl = self.replication
        if repl is not None and repl.role == "replica" and at_ts is None:
            if serializable:
                raise ReplicationError(
                    "replica reads are snapshot-pinned; serializable "
                    "transactions must run on the leader")
            # pin the snapshot at the replay watermark: stale-bounded,
            # never fractured (see repro.replication.follower)
            at_ts = repl.read_ts()
        txn = await self._run(
            session, Command.BEGIN,
            lambda: self.db.begin(serializable=bool(serializable),
                                  at_ts=at_ts))
        session.register(txn)
        return txn.txid

    async def _cmd_commit(self, session: Session, args: tuple) -> None:
        (txid,) = _arity(args, 1)
        txn = session.claim(_as_int(txid, "txid"))

        def work() -> None:
            try:
                self.db.commit(txn)
            except BaseException:
                # an SSI commit-time abort must still release locks
                if txn.phase is TxnPhase.ACTIVE:
                    self.db.abort(txn)
                raise
        try:
            await self._run(session, Command.COMMIT, work)
        finally:
            if txn.phase is not TxnPhase.ACTIVE:
                session.forget(txn.txid)

    async def _cmd_abort(self, session: Session, args: tuple) -> None:
        (txid,) = _arity(args, 1)
        txn = session.claim(_as_int(txid, "txid"))
        try:
            await self._run(session, Command.ABORT, lambda: self.db.abort(txn))
        finally:
            if txn.phase is not TxnPhase.ACTIVE:
                session.forget(txn.txid)

    async def _cmd_create_table(self, session: Session,
                                args: tuple) -> None:
        name, columns, indexes = _arity(args, 3)
        table = _as_str(name, "table name")
        try:
            schema = Schema.of(*[(_as_str(cn), ColType(ct))
                                 for cn, ct in columns])
            defs = [IndexDef(_as_str(iname), tuple(cols), bool(unique),
                             IndexKind(kind))
                    for iname, cols, unique, kind in indexes]
        except (ValueError, TypeError) as exc:
            raise ProtocolError(f"bad table definition: {exc}") from None
        await self._run(
            session, Command.CREATE_TABLE,
            lambda: self.db.create_table(table, schema, indexes=defs))

    async def _cmd_insert(self, session: Session, args: tuple) -> object:
        txid, table, row = _arity(args, 3)
        txn = session.claim(_as_int(txid, "txid"))
        return await self._run(
            session, Command.INSERT,
            lambda: self.db.insert(txn, _as_str(table), _as_row(row)))

    async def _cmd_bulk_insert(self, session: Session,
                               args: tuple) -> tuple:
        txid, table, rows = _arity(args, 3)
        txn = session.claim(_as_int(txid, "txid"))
        if not isinstance(rows, tuple):
            raise ProtocolError(f"expected rows tuple, got {rows!r}")
        payload = [_as_row(row) for row in rows]
        return tuple(await self._run(
            session, Command.BULK_INSERT,
            lambda: self.db.bulk_insert(txn, _as_str(table), payload)))

    async def _cmd_read(self, session: Session, args: tuple) -> object:
        txid, table, ref = _arity(args, 3)
        txn = session.claim(_as_int(txid, "txid"))
        return await self._run(
            session, Command.READ,
            lambda: self.db.read(txn, _as_str(table), _as_ref(ref)))

    async def _cmd_update(self, session: Session, args: tuple) -> object:
        txid, table, ref, row = _arity(args, 4)
        txn = session.claim(_as_int(txid, "txid"))
        return await self._run(
            session, Command.UPDATE,
            lambda: self.db.update(txn, _as_str(table), _as_ref(ref),
                                   _as_row(row)))

    async def _cmd_delete(self, session: Session, args: tuple) -> None:
        txid, table, ref = _arity(args, 3)
        txn = session.claim(_as_int(txid, "txid"))
        await self._run(
            session, Command.DELETE,
            lambda: self.db.delete(txn, _as_str(table), _as_ref(ref)))

    async def _cmd_lookup(self, session: Session, args: tuple) -> tuple:
        txid, table, index, key = _arity(args, 4)
        txn = session.claim(_as_int(txid, "txid"))
        return tuple(await self._run(
            session, Command.LOOKUP,
            lambda: self.db.lookup(txn, _as_str(table), _as_str(index),
                                   key)))

    async def _cmd_range_lookup(self, session: Session,
                                args: tuple) -> tuple:
        txid, table, index, lo, hi = _arity(args, 5)
        txn = session.claim(_as_int(txid, "txid"))
        return tuple(await self._run(
            session, Command.RANGE_LOOKUP,
            lambda: self.db.range_lookup(txn, _as_str(table),
                                         _as_str(index), lo, hi)))

    async def _cmd_scan(self, session: Session, args: tuple) -> tuple:
        txid, table = _arity(args, 2)
        txn = session.claim(_as_int(txid, "txid"))
        return tuple(await self._run(
            session, Command.SCAN,
            lambda: list(self.db.scan(txn, _as_str(table)))))

    async def _cmd_scan_batch(self, session: Session, args: tuple) -> tuple:
        txid, table, columns, where, after, limit = _arity(args, 6)
        txn = session.claim(_as_int(txid, "txid"))
        cols = (None if columns is None
                else [_as_str(c, "column") for c in columns])

        def work() -> tuple:
            rows, cursor = self.db.scan_batch(
                txn, _as_str(table), columns=cols,
                where=_as_predicate(where),
                after=None if after is None else _as_int(after, "cursor"),
                limit=_as_int(limit, "limit"))
            return tuple(rows), cursor
        return await self._run(session, Command.SCAN_BATCH, work)

    async def _cmd_aggregate(self, session: Session, args: tuple) -> object:
        txid, table, op, column, where = _arity(args, 5)
        txn = session.claim(_as_int(txid, "txid"))
        return await self._run(
            session, Command.AGGREGATE,
            lambda: self.db.aggregate(
                txn, _as_str(table), _as_str(op, "aggregate op"),
                column=None if column is None else _as_str(column, "column"),
                where=_as_predicate(where)))

    async def _cmd_scan_vid_range(self, session: Session,
                                  args: tuple) -> tuple:
        txid, table, lo, hi = _arity(args, 4)
        txn = session.claim(_as_int(txid, "txid"))
        return tuple(await self._run(
            session, Command.SCAN_VID_RANGE,
            lambda: self.db.scan_vid_range(txn, _as_str(table),
                                           _as_int(lo), _as_int(hi))))

    async def _cmd_tick(self, session: Session, args: tuple) -> None:
        _arity(args, 0)
        await self._run(session, Command.TICK, self.db.tick)

    async def _cmd_maintenance(self, session: Session,
                               args: tuple) -> dict:
        _arity(args, 0)

        def work() -> dict:
            out: dict[str, dict[str, int]] = {}
            for table, report in self.db.maintenance().items():
                summary: dict[str, int] = {}
                for attr in ("records_discarded", "pages_reclaimed"):
                    if hasattr(report, attr):
                        summary[attr] = int(getattr(report, attr))
                if hasattr(report, "killed"):
                    summary["killed"] = len(report.killed)
                out[table] = summary
            return out
        return await self._run(session, Command.MAINTENANCE, work)

    async def _cmd_snapshot(self, session: Session, args: tuple) -> dict:
        from repro.db.monitor import snapshot

        _arity(args, 0)
        return await self._run(
            session, Command.SNAPSHOT,
            lambda: dataclasses.asdict(snapshot(self.db, server=self)))

    async def _cmd_stats(self, _session: Session, args: tuple) -> dict:
        _arity(args, 0)
        return self.stats_payload()

    async def _cmd_clock_now(self, session: Session, args: tuple) -> int:
        _arity(args, 0)
        return await self._run(session, Command.CLOCK_NOW,
                               lambda: self.db.clock.now)

    async def _cmd_clock_advance(self, session: Session,
                                 args: tuple) -> int:
        (usec,) = _arity(args, 1)
        delta = _as_int(usec, "microseconds")

        def work() -> int:
            self.db.clock.advance(delta)
            return self.db.clock.now
        return await self._run(session, Command.CLOCK_ADVANCE, work)

    async def _cmd_clock_advance_to(self, session: Session,
                                    args: tuple) -> int:
        (usec,) = _arity(args, 1)
        target = _as_int(usec, "microseconds")

        def work() -> int:
            self.db.clock.advance_to(target)
            return self.db.clock.now
        return await self._run(session, Command.CLOCK_ADVANCE_TO, work)

    async def _cmd_txn_status(self, session: Session, args: tuple) -> str:
        """The authoritative fate of a txid — how an ambiguous commit
        (acked-but-unread, see ``AmbiguousResultError``) is resolved.

        ``"committed"``/``"aborted"`` are final; ``"active"`` means the
        transaction is still open somewhere (its owning session may not
        have noticed its client died yet); ``"unknown"`` means the txid
        was never allocated.
        """
        (txid,) = _arity(args, 1)
        wanted = _as_int(txid, "txid")

        def work() -> str:
            try:
                state = self.db.txn_mgr.state_of(wanted)
            except TxnStateError:
                return "unknown"
            if state is TxnState.COMMITTED:
                return "committed"
            if state is TxnState.ABORTED:
                return "aborted"
            if state is TxnState.PREPARED:
                return "prepared"
            return "active"
        return await self._run(session, Command.TXN_STATUS, work)

    async def _cmd_prepare_txn(self, session: Session, args: tuple) -> None:
        """2PC phase 1: durably prepare a session-owned transaction.

        On success the session *forgets* the transaction: a prepared txn
        must survive its client's disconnect (the router may crash between
        phases) — only the coordinator's decision, delivered over any
        session via COMMIT_PREPARED/ABORT_PREPARED, settles it.  A failed
        prepare aborts, exactly like a failed COMMIT.
        """
        txid, gtxid = _arity(args, 2)
        txn = session.claim(_as_int(txid, "txid"))
        wanted_gtxid = _as_int(gtxid, "gtxid")

        def work() -> None:
            try:
                self.db.prepare(txn, wanted_gtxid)
            except BaseException:
                if txn.phase is TxnPhase.ACTIVE:
                    self.db.abort(txn)
                raise
        try:
            await self._run(session, Command.PREPARE_TXN, work)
        finally:
            if txn.phase is not TxnPhase.ACTIVE:
                session.forget(txn.txid)

    async def _cmd_commit_prepared(self, session: Session,
                                   args: tuple) -> bool:
        """2PC phase 2, commit decision (idempotent, session-free)."""
        (txid,) = _arity(args, 1)
        wanted = _as_int(txid, "txid")
        return await self._run(session, Command.COMMIT_PREPARED,
                               lambda: self.db.commit_prepared(wanted))

    async def _cmd_abort_prepared(self, session: Session,
                                  args: tuple) -> bool:
        """2PC phase 2, abort decision (idempotent, session-free)."""
        (txid,) = _arity(args, 1)
        wanted = _as_int(txid, "txid")
        return await self._run(session, Command.ABORT_PREPARED,
                               lambda: self.db.abort_prepared(wanted))

    async def _cmd_closed_ts(self, session: Session, args: tuple) -> int:
        """The closed-timestamp watermark, optionally ratcheting first.

        With no operand, returns the engine's current watermark.  With a
        timestamp operand, ratchets the txid space forward to it (a no-op
        when already past — the :meth:`SimClock.advance_to` contract) and
        returns the resulting watermark.  The cluster router uses the
        ratcheting form while refreshing its cluster-wide read timestamp,
        so a quiet shard cannot drag the global minimum into the past.
        """
        repl = self.replication
        if not args:
            if repl is not None and repl.role == "replica":
                # a replica's closed timestamp is its replay watermark:
                # the highest snapshot it can serve without fracturing
                return await self._run(session, Command.CLOSED_TS,
                                       repl.read_ts)
            return await self._run(session, Command.CLOSED_TS,
                                   self.db.closed_ts)
        (raw,) = _arity(args, 1)
        target = _as_int(raw, "timestamp")
        return await self._run(session, Command.CLOSED_TS,
                               lambda: self.db.advance_to(target))

    async def _cmd_wal_subscribe(self, session: Session,
                                 args: tuple) -> tuple:
        """Register a follower's replication slot; returns
        ``(epoch, durable_seq)``."""
        follower_id, start_seq = _arity(args, 2)
        fid = _as_str(follower_id, "follower id")
        seq = _as_int(start_seq, "start seq")

        def work() -> tuple:
            info = self._replication_source().subscribe(fid, seq)
            # the slot now belongs to this connection: when the session
            # dies (disconnect, idle reap) the slot dies with it instead
            # of pinning WAL retention until process death
            session.slots.add(fid)
            return info["epoch"], info["durable_seq"]
        return await self._run(session, Command.WAL_SUBSCRIBE, work)

    async def _cmd_wal_unsubscribe(self, session: Session,
                                   args: tuple) -> None:
        """Drop a follower's replication slot (releases its retention)."""
        (follower_id,) = _arity(args, 1)
        fid = _as_str(follower_id, "follower id")

        def work() -> None:
            self._replication_source().unsubscribe(fid)
            session.slots.discard(fid)
        return await self._run(session, Command.WAL_UNSUBSCRIBE, work)

    async def _cmd_backup_begin(self, session: Session,
                                args: tuple) -> dict:
        """Cut an online base backup; returns the backup handle."""
        (follower_id,) = _arity(args, 1)
        fid = _as_str(follower_id, "follower id")

        def work() -> dict:
            handle = self._replication_source().backup_begin(fid)
            session.slots.add(fid)
            session.backups.add(handle["backup_id"])
            return handle
        return await self._run(session, Command.BACKUP_BEGIN, work)

    async def _cmd_backup_fetch(self, session: Session,
                                args: tuple) -> list:
        """One backup image chunk."""
        backup_id, epoch, chunk_index = _arity(args, 3)
        bid = _as_str(backup_id, "backup id")
        ep = _as_int(epoch, "epoch")
        index = _as_int(chunk_index, "chunk index")
        return await self._run(
            session, Command.BACKUP_FETCH,
            lambda: self._replication_source().backup_fetch(bid, ep, index))

    async def _cmd_backup_end(self, session: Session, args: tuple) -> None:
        """Release a backup handle."""
        (backup_id,) = _arity(args, 1)
        bid = _as_str(backup_id, "backup id")

        def work() -> None:
            self._replication_source().backup_end(bid)
            session.backups.discard(bid)
        return await self._run(session, Command.BACKUP_END, work)

    async def _cmd_wal_fetch(self, session: Session, args: tuple) -> tuple:
        """One shipped WAL frame:
        ``(epoch, since_seq, blob, durable_seq, closed_ts)``."""
        follower_id, epoch, since_seq, acked_seq, limit = _arity(args, 5)
        fid = _as_str(follower_id, "follower id")
        ep = _as_int(epoch, "epoch")
        since = _as_int(since_seq, "since seq")
        acked = _as_int(acked_seq, "acked seq")
        lim = _as_int(limit, "limit")
        return await self._run(
            session, Command.WAL_FETCH,
            lambda: self._replication_source().fetch(fid, ep, since,
                                                     acked, lim))

    def _replication_source(self):
        if self.replication is None:
            raise ReplicationError(
                "this node has no replication hub attached")
        return self.replication

    def _drop_follower_slots(self, session: Session) -> None:
        """Release slots and backup handles owned by a dying session.

        A follower that vanishes without ``WAL_UNSUBSCRIBE`` must not
        pin WAL retention (or a materialized backup image) until process
        death — the session is the slot's lease.
        """
        if self.replication is None:
            return
        if not session.slots and not session.backups:
            return
        for backup_id in list(session.backups):
            with contextlib.suppress(Exception):
                self.replication.backup_end(backup_id)
        session.backups.clear()
        for follower_id in list(session.slots):
            with contextlib.suppress(Exception):
                self.replication.unsubscribe(follower_id)
            self.sessions.stats.slots_dropped += 1
        session.slots.clear()

    async def _cmd_shutdown(self, _session: Session, args: tuple) -> None:
        _arity(args, 0)
        return None
