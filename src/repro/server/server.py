"""The asyncio TCP server exposing a :class:`Database` over the wire.

One :class:`DatabaseServer` binds one database instance to a listening
socket.  Each accepted connection gets a :class:`~repro.server.session.
Session`; each request frame is decoded, admission-checked and executed on
the engine executor by the :class:`~repro.server.dispatch.Dispatcher`; the
response frame echoes the client's request id with a status code.

Lifecycle contracts:

* a connection's transactions never outlive it — disconnect, reset and
  idle timeout all abort the session's in-flight transactions (undo runs,
  locks release) before the session is forgotten;
* overload never kills the server — excess load is shed per-command with
  the retryable ``OVERLOADED`` status while commit/abort, clock and stats
  commands stay admissible;
* ``SHUTDOWN`` (or SIGINT/SIGTERM under :meth:`DatabaseServer.run`) stops
  accepting, closes every connection, drains the executor and returns.

The server can run in the foreground (:meth:`run`, used by ``repro
serve``) or on a background thread with its own event loop
(:meth:`start_in_background`, used by tests and the networked example).
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import signal
import threading
import time
from dataclasses import dataclass

from repro.common.errors import ProtocolError
from repro.db.catalog import IndexDef, IndexKind
from repro.db.database import Database
from repro.db.monitor import CommandStat, snapshot
from repro.db.schema import ColType, Schema
from repro.pages.layout import Tid
from repro.server.dispatch import Dispatcher
from repro.server.protocol import (
    Command,
    Status,
    decode_request,
    encode_response,
    error_payload,
    frame_length,
    status_for_exception,
)
from repro.server.session import Session, SessionManager
from repro.txn.manager import Transaction, TxnPhase


@dataclass(frozen=True)
class ServerConfig:
    """Service-layer knobs (the engine's own config lives on the Database).

    ``port=0`` binds an ephemeral port; read the real one from
    :attr:`DatabaseServer.address` after start.  ``idle_timeout_sec <= 0``
    disables idle reaping.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_in_flight: int = 8
    max_queue_depth: int = 64
    #: engine worker threads; 0 means auto (``min(4, cpu_count)``)
    executor_workers: int = 0
    idle_timeout_sec: float = 60.0
    reaper_interval_sec: float = 1.0
    #: how long a writer blocks on a held item lock before aborting with
    #: ``SerializationError``; applied when more than one worker runs
    lock_wait_timeout_sec: float = 0.2
    #: run crash recovery on the attached database before serving — for
    #: databases whose device state outlived an unclean stop
    recover_on_start: bool = False

    def validate(self) -> None:
        """Raise on inconsistent settings."""
        if self.max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        if self.max_queue_depth < 0:
            raise ValueError("max_queue_depth must be >= 0")
        if self.executor_workers < 0:
            raise ValueError("executor_workers must be >= 0")
        if self.lock_wait_timeout_sec < 0:
            raise ValueError("lock_wait_timeout_sec must be >= 0")


#: Commands that bypass admission control: finishing work (commit/abort
#: must never be shed once a txn is open), cheap control-plane traffic,
#: and observability that must answer precisely when the server is busy.
_EXEMPT = frozenset({
    Command.PING, Command.COMMIT, Command.ABORT, Command.TICK,
    Command.CLOCK_NOW, Command.CLOCK_ADVANCE, Command.CLOCK_ADVANCE_TO,
    Command.STATS, Command.SHUTDOWN,
})

#: Commands that run on the dispatcher's exclusive lane: they restructure
#: state (GC page reclaim, catalog growth) that lock-free read paths
#: traverse without latches, so no other command may be in flight.
_EXCLUSIVE = frozenset({Command.MAINTENANCE, Command.CREATE_TABLE})


def _arity(args: tuple, n: int) -> tuple:
    if len(args) != n:
        raise ProtocolError(f"expected {n} argument(s), got {len(args)}")
    return args


def _as_int(value: object, what: str = "integer") -> int:
    if not isinstance(value, int) or isinstance(value, bool):
        raise ProtocolError(f"expected {what}, got {value!r}")
    return value


def _as_str(value: object, what: str = "string") -> str:
    if not isinstance(value, str):
        raise ProtocolError(f"expected {what}, got {value!r}")
    return value


def _as_row(value: object) -> tuple:
    if not isinstance(value, tuple):
        raise ProtocolError(f"expected row tuple, got {value!r}")
    return value


def _as_ref(value: object) -> object:
    if isinstance(value, bool) or not isinstance(value, (int, Tid)):
        raise ProtocolError(f"expected item handle, got {value!r}")
    return value


class DatabaseServer:
    """Serves one :class:`Database` over length-prefixed TCP frames."""

    def __init__(self, db: Database,
                 config: ServerConfig | None = None) -> None:
        self.db = db
        self.config = config or ServerConfig()
        self.config.validate()
        self.sessions = SessionManager(self.config.idle_timeout_sec)
        self.dispatch = Dispatcher(self.config.max_in_flight,
                                   self.config.max_queue_depth,
                                   self.config.executor_workers or None)
        # With several engine workers, writers contending for the same
        # item wait (bounded) instead of aborting on first touch — the
        # single-worker default (0.0: immediate first-updater-wins abort)
        # stays untouched so embedded/one-worker behaviour is unchanged.
        if (self.dispatch.executor_workers > 1
                and db.txn_mgr.locks.wait_timeout_sec <= 0):
            db.txn_mgr.locks.wait_timeout_sec = (
                self.config.lock_wait_timeout_sec)
        self.address: tuple[str, int] | None = None
        self._server: asyncio.Server | None = None
        self._stop_event: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._reaper_task: asyncio.Task | None = None
        self._writers: dict[int, asyncio.StreamWriter] = {}
        self._handler_tasks: set[asyncio.Task] = set()
        self._thread: threading.Thread | None = None
        self._started_monotonic = 0.0
        #: set when ``recover_on_start`` ran: what recovery found/redid
        self.recovery_report = None
        if self.config.recover_on_start:
            from repro.db.recovery import crash, recover
            # Re-derive every volatile structure from durable state, as a
            # restart after power loss would: drop whatever in-memory
            # state the handed-in Database object carries, then recover.
            crash(db)
            self.recovery_report = recover(db)
        self._handlers = {
            Command.PING: self._cmd_ping,
            Command.BEGIN: self._cmd_begin,
            Command.COMMIT: self._cmd_commit,
            Command.ABORT: self._cmd_abort,
            Command.CREATE_TABLE: self._cmd_create_table,
            Command.INSERT: self._cmd_insert,
            Command.BULK_INSERT: self._cmd_bulk_insert,
            Command.READ: self._cmd_read,
            Command.UPDATE: self._cmd_update,
            Command.DELETE: self._cmd_delete,
            Command.LOOKUP: self._cmd_lookup,
            Command.RANGE_LOOKUP: self._cmd_range_lookup,
            Command.SCAN: self._cmd_scan,
            Command.SCAN_VID_RANGE: self._cmd_scan_vid_range,
            Command.TICK: self._cmd_tick,
            Command.MAINTENANCE: self._cmd_maintenance,
            Command.SNAPSHOT: self._cmd_snapshot,
            Command.STATS: self._cmd_stats,
            Command.CLOCK_NOW: self._cmd_clock_now,
            Command.CLOCK_ADVANCE: self._cmd_clock_advance,
            Command.CLOCK_ADVANCE_TO: self._cmd_clock_advance_to,
            Command.SHUTDOWN: self._cmd_shutdown,
        }

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind the listening socket; returns the bound ``(host, port)``."""
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._started_monotonic = time.monotonic()
        self._server = await asyncio.start_server(
            self._handle, self.config.host, self.config.port)
        sock = self._server.sockets[0].getsockname()
        self.address = (sock[0], sock[1])
        self._reaper_task = asyncio.create_task(self._reaper())
        return self.address

    def request_stop(self) -> None:
        """Ask the serve loop to wind down (safe from the loop thread)."""
        if self._stop_event is not None:
            self._stop_event.set()

    async def serve_until_stopped(self) -> None:
        """Block until :meth:`request_stop`, then tear everything down."""
        assert self._stop_event is not None, "start() first"
        await self._stop_event.wait()
        await self.stop()

    async def stop(self) -> None:
        """Stop accepting, close connections, drain the executor."""
        if self._server is None:
            return
        self.request_stop()
        self._server.close()
        await self._server.wait_closed()
        self._server = None
        if self._reaper_task is not None:
            self._reaper_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._reaper_task
            self._reaper_task = None
        for writer in list(self._writers.values()):
            writer.close()
        if self._handler_tasks:
            # handlers abort their orphaned transactions on the way out
            await asyncio.wait(self._handler_tasks, timeout=5.0)
        self.dispatch.close()

    def run(self) -> int:
        """Foreground serve loop (``repro serve``); returns 0 on clean stop."""
        async def main() -> None:
            await self.start()
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGINT, signal.SIGTERM):
                with contextlib.suppress(NotImplementedError):
                    loop.add_signal_handler(signum, self.request_stop)
            host, port = self.address  # type: ignore[misc]
            print(f"repro server listening on {host}:{port}", flush=True)
            await self.serve_until_stopped()

        asyncio.run(main())
        return 0

    def start_in_background(self) -> tuple[str, int]:
        """Serve from a dedicated thread; returns once the port is bound.

        For embedding (tests, examples): the caller's thread stays free to
        run clients against :attr:`address`.  Pair with
        :meth:`stop_in_background`.
        """
        ready = threading.Event()
        failure: list[BaseException] = []

        def runner() -> None:
            async def main() -> None:
                await self.start()
                ready.set()
                await self.serve_until_stopped()
            try:
                asyncio.run(main())
            except BaseException as exc:  # surfaced to the caller below
                failure.append(exc)
            finally:
                ready.set()

        self._thread = threading.Thread(target=runner, name="repro-server",
                                        daemon=True)
        self._thread.start()
        if not ready.wait(timeout=10.0):
            raise TimeoutError("server did not start within 10s")
        if failure:
            raise failure[0]
        assert self.address is not None
        return self.address

    def stop_in_background(self, timeout: float = 10.0) -> None:
        """Stop a :meth:`start_in_background` server and join its thread."""
        if self._thread is None:
            return
        if self._loop is not None and not self._loop.is_closed():
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self.request_stop)
        self._thread.join(timeout)
        self._thread = None

    # -- monitoring ----------------------------------------------------------

    def command_stats(self) -> tuple[CommandStat, ...]:
        """Per-command counters in :mod:`repro.db.monitor` shape."""
        out = []
        for name, counter in sorted(self.dispatch.stats.commands.items()):
            out.append(CommandStat(
                command=name, calls=counter.calls, ok=counter.ok,
                errors=counter.errors, shed=counter.shed,
                mean_wall_usec=round(counter.mean_wall_sec * 1e6, 1),
                max_wall_usec=round(counter.max_wall_sec * 1e6, 1)))
        return tuple(out)

    def stats_payload(self) -> dict:
        """The ``STATS`` command's response body."""
        return {
            "uptime_sec": round(time.monotonic() - self._started_monotonic,
                                3),
            "in_flight": self.dispatch.executing,
            "queued": self.dispatch.queued,
            "admitted": self.dispatch.stats.admitted,
            "shed_total": self.dispatch.stats.shed_total,
            "max_in_flight": self.config.max_in_flight,
            "max_queue_depth": self.config.max_queue_depth,
            "executor_workers": self.dispatch.executor_workers,
            "exclusive_runs": self.dispatch.stats.exclusive_runs,
            "sessions": {"live": self.sessions.count(),
                         "in_flight_txns": self.sessions.in_flight_txns(),
                         **self.sessions.stats.as_dict()},
            "engine": self._engine_payload(),
            "commands": self.dispatch.stats.per_command(),
        }

    def _engine_payload(self) -> dict:
        """Engine-core counters (txn + lock table) for ``STATS``.

        Lets clients and the CI smoke assert engine invariants over the
        wire — e.g. that the lock table drained after a workload.
        """
        commits, aborts, active = self.db.txn_mgr.counters()
        locks = self.db.txn_mgr.locks
        return {
            "txns": {"commits": commits, "aborts": aborts,
                     "active": active},
            "locks": {"held": locks.held_count(),
                      "acquired": locks.stats.acquired,
                      "conflicts": locks.stats.conflicts,
                      "waits": locks.stats.waits,
                      "wait_timeouts": locks.stats.wait_timeouts},
        }

    # -- connection handling -------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handler_tasks.add(task)
        peer = writer.get_extra_info("peername")
        session = self.sessions.open(str(peer), time.monotonic())
        self._writers[session.session_id] = writer
        try:
            await self._serve_connection(session, reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer vanished mid-frame: treated as a disconnect
        finally:
            self._writers.pop(session.session_id, None)
            await self._abort_orphans(self.sessions.close(session))
            writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await writer.wait_closed()
            if task is not None:
                self._handler_tasks.discard(task)

    async def _serve_connection(self, session: Session,
                                reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        while self._stop_event is not None and not self._stop_event.is_set():
            payload = await self._read_frame(reader)
            if payload is None:
                return
            session.touch(time.monotonic())
            try:
                request_id, command, args = decode_request(payload)
            except ProtocolError as exc:
                writer.write(encode_response(0, Status.BAD_REQUEST,
                                             error_payload(exc)))
                await writer.drain()
                return  # a desynchronised stream cannot be resumed
            status, result = await self._execute(session, command, args)
            writer.write(encode_response(request_id, status, result))
            await writer.drain()
            if command == Command.SHUTDOWN and status == Status.OK:
                self.request_stop()
                return

    @staticmethod
    async def _read_frame(reader: asyncio.StreamReader) -> bytes | None:
        """One frame payload, or None on clean EOF between frames."""
        try:
            header = await reader.readexactly(4)
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None
            raise
        return await reader.readexactly(frame_length(header))

    async def _execute(self, session: Session, command: int,
                       args: tuple) -> tuple[Status, object]:
        handler = self._handlers.get(command)
        if handler is None:
            return Status.BAD_REQUEST, f"unknown command {command}"
        if (self._stop_event is not None and self._stop_event.is_set()
                and command != Command.SHUTDOWN):
            return Status.SHUTTING_DOWN, "server is stopping"
        try:
            return Status.OK, await handler(session, args)
        except asyncio.CancelledError:
            raise
        except BaseException as exc:
            return status_for_exception(exc), error_payload(exc)

    async def _run(self, command: Command, fn) -> object:
        return await self.dispatch.run(command.name, fn,
                                       exempt=command in _EXEMPT,
                                       exclusive=command in _EXCLUSIVE)

    async def _abort_orphans(self, orphans: list[Transaction]) -> None:
        """Abort a closed session's in-flight transactions on the engine."""
        for txn in orphans:
            def work(txn: Transaction = txn) -> bool:
                if txn.phase is TxnPhase.ACTIVE:
                    self.db.abort(txn)
                    return True
                return False
            with contextlib.suppress(Exception):
                if await self.dispatch.run("ABORT_ORPHAN", work,
                                           exempt=True):
                    self.sessions.stats.orphans_aborted += 1

    async def _reaper(self) -> None:
        """Close sessions that out-idled the timeout (aborting their txns)."""
        interval = self.config.reaper_interval_sec
        if self.config.idle_timeout_sec > 0:
            interval = min(interval, self.config.idle_timeout_sec / 4)
        interval = max(interval, 0.02)
        while True:
            await asyncio.sleep(interval)
            now = time.monotonic()
            for session in self.sessions.idle_sessions(now):
                self.sessions.stats.idle_closed += 1
                await self._abort_orphans(self.sessions.close(session))
                writer = self._writers.pop(session.session_id, None)
                if writer is not None:
                    writer.close()

    # -- command handlers ----------------------------------------------------

    async def _cmd_ping(self, _session: Session, args: tuple) -> str:
        _arity(args, 0)
        return "pong"

    async def _cmd_begin(self, session: Session, args: tuple) -> int:
        (serializable,) = _arity(args, 1)
        txn = await self._run(
            Command.BEGIN,
            lambda: self.db.begin(serializable=bool(serializable)))
        session.register(txn)
        return txn.txid

    async def _cmd_commit(self, session: Session, args: tuple) -> None:
        (txid,) = _arity(args, 1)
        txn = session.claim(_as_int(txid, "txid"))

        def work() -> None:
            try:
                self.db.commit(txn)
            except BaseException:
                # an SSI commit-time abort must still release locks
                if txn.phase is TxnPhase.ACTIVE:
                    self.db.abort(txn)
                raise
        try:
            await self._run(Command.COMMIT, work)
        finally:
            if txn.phase is not TxnPhase.ACTIVE:
                session.forget(txn.txid)

    async def _cmd_abort(self, session: Session, args: tuple) -> None:
        (txid,) = _arity(args, 1)
        txn = session.claim(_as_int(txid, "txid"))
        try:
            await self._run(Command.ABORT, lambda: self.db.abort(txn))
        finally:
            if txn.phase is not TxnPhase.ACTIVE:
                session.forget(txn.txid)

    async def _cmd_create_table(self, _session: Session,
                                args: tuple) -> None:
        name, columns, indexes = _arity(args, 3)
        table = _as_str(name, "table name")
        try:
            schema = Schema.of(*[(_as_str(cn), ColType(ct))
                                 for cn, ct in columns])
            defs = [IndexDef(_as_str(iname), tuple(cols), bool(unique),
                             IndexKind(kind))
                    for iname, cols, unique, kind in indexes]
        except (ValueError, TypeError) as exc:
            raise ProtocolError(f"bad table definition: {exc}") from None
        await self._run(
            Command.CREATE_TABLE,
            lambda: self.db.create_table(table, schema, indexes=defs))

    async def _cmd_insert(self, session: Session, args: tuple) -> object:
        txid, table, row = _arity(args, 3)
        txn = session.claim(_as_int(txid, "txid"))
        return await self._run(
            Command.INSERT,
            lambda: self.db.insert(txn, _as_str(table), _as_row(row)))

    async def _cmd_bulk_insert(self, session: Session,
                               args: tuple) -> tuple:
        txid, table, rows = _arity(args, 3)
        txn = session.claim(_as_int(txid, "txid"))
        if not isinstance(rows, tuple):
            raise ProtocolError(f"expected rows tuple, got {rows!r}")
        payload = [_as_row(row) for row in rows]
        return tuple(await self._run(
            Command.BULK_INSERT,
            lambda: self.db.bulk_insert(txn, _as_str(table), payload)))

    async def _cmd_read(self, session: Session, args: tuple) -> object:
        txid, table, ref = _arity(args, 3)
        txn = session.claim(_as_int(txid, "txid"))
        return await self._run(
            Command.READ,
            lambda: self.db.read(txn, _as_str(table), _as_ref(ref)))

    async def _cmd_update(self, session: Session, args: tuple) -> object:
        txid, table, ref, row = _arity(args, 4)
        txn = session.claim(_as_int(txid, "txid"))
        return await self._run(
            Command.UPDATE,
            lambda: self.db.update(txn, _as_str(table), _as_ref(ref),
                                   _as_row(row)))

    async def _cmd_delete(self, session: Session, args: tuple) -> None:
        txid, table, ref = _arity(args, 3)
        txn = session.claim(_as_int(txid, "txid"))
        await self._run(
            Command.DELETE,
            lambda: self.db.delete(txn, _as_str(table), _as_ref(ref)))

    async def _cmd_lookup(self, session: Session, args: tuple) -> tuple:
        txid, table, index, key = _arity(args, 4)
        txn = session.claim(_as_int(txid, "txid"))
        return tuple(await self._run(
            Command.LOOKUP,
            lambda: self.db.lookup(txn, _as_str(table), _as_str(index),
                                   key)))

    async def _cmd_range_lookup(self, session: Session,
                                args: tuple) -> tuple:
        txid, table, index, lo, hi = _arity(args, 5)
        txn = session.claim(_as_int(txid, "txid"))
        return tuple(await self._run(
            Command.RANGE_LOOKUP,
            lambda: self.db.range_lookup(txn, _as_str(table),
                                         _as_str(index), lo, hi)))

    async def _cmd_scan(self, session: Session, args: tuple) -> tuple:
        txid, table = _arity(args, 2)
        txn = session.claim(_as_int(txid, "txid"))
        return tuple(await self._run(
            Command.SCAN,
            lambda: list(self.db.scan(txn, _as_str(table)))))

    async def _cmd_scan_vid_range(self, session: Session,
                                  args: tuple) -> tuple:
        txid, table, lo, hi = _arity(args, 4)
        txn = session.claim(_as_int(txid, "txid"))
        return tuple(await self._run(
            Command.SCAN_VID_RANGE,
            lambda: self.db.scan_vid_range(txn, _as_str(table),
                                           _as_int(lo), _as_int(hi))))

    async def _cmd_tick(self, _session: Session, args: tuple) -> None:
        _arity(args, 0)
        await self._run(Command.TICK, self.db.tick)

    async def _cmd_maintenance(self, _session: Session,
                               args: tuple) -> dict:
        _arity(args, 0)

        def work() -> dict:
            out: dict[str, dict[str, int]] = {}
            for table, report in self.db.maintenance().items():
                summary: dict[str, int] = {}
                for attr in ("records_discarded", "pages_reclaimed"):
                    if hasattr(report, attr):
                        summary[attr] = int(getattr(report, attr))
                if hasattr(report, "killed"):
                    summary["killed"] = len(report.killed)
                out[table] = summary
            return out
        return await self._run(Command.MAINTENANCE, work)

    async def _cmd_snapshot(self, _session: Session, args: tuple) -> dict:
        _arity(args, 0)
        return await self._run(
            Command.SNAPSHOT,
            lambda: dataclasses.asdict(snapshot(self.db, server=self)))

    async def _cmd_stats(self, _session: Session, args: tuple) -> dict:
        _arity(args, 0)
        return self.stats_payload()

    async def _cmd_clock_now(self, _session: Session, args: tuple) -> int:
        _arity(args, 0)
        return await self._run(Command.CLOCK_NOW,
                               lambda: self.db.clock.now)

    async def _cmd_clock_advance(self, _session: Session,
                                 args: tuple) -> int:
        (usec,) = _arity(args, 1)
        delta = _as_int(usec, "microseconds")

        def work() -> int:
            self.db.clock.advance(delta)
            return self.db.clock.now
        return await self._run(Command.CLOCK_ADVANCE, work)

    async def _cmd_clock_advance_to(self, _session: Session,
                                    args: tuple) -> int:
        (usec,) = _arity(args, 1)
        target = _as_int(usec, "microseconds")

        def work() -> int:
            self.db.clock.advance_to(target)
            return self.db.clock.now
        return await self._run(Command.CLOCK_ADVANCE_TO, work)

    async def _cmd_shutdown(self, _session: Session, args: tuple) -> None:
        _arity(args, 0)
        return None
