"""Wire-protocol service layer: serve a :class:`Database` over TCP.

Public surface::

    from repro.server import DatabaseServer, ServerConfig

    db = Database.on_flash(EngineKind.SIASV)
    server = DatabaseServer(db, ServerConfig(port=7654))
    server.run()                      # foreground (repro serve)
    # or: host, port = server.start_in_background()

Protocol details (frame layout, command codes, error codes, backpressure
contract) are documented in ``docs/SERVER.md`` and implemented in
:mod:`repro.server.protocol`.
"""

from repro.server.chaos import (
    ChaosConfig,
    ChaosPlan,
    NetCrashPoint,
    NetFaultKind,
)
from repro.server.dispatch import Dispatcher
from repro.server.protocol import Command, Status
from repro.server.server import DatabaseServer, ServerConfig
from repro.server.session import Session, SessionManager

__all__ = [
    "ChaosConfig",
    "ChaosPlan",
    "Command",
    "DatabaseServer",
    "Dispatcher",
    "NetCrashPoint",
    "NetFaultKind",
    "ServerConfig",
    "Session",
    "SessionManager",
    "Status",
]
