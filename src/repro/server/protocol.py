"""Wire protocol: msgpack-style value codec, frame layout, command codes.

Both halves of the service layer (the asyncio server and the synchronous
client) speak the same format, defined entirely here:

* **Values** are encoded with a self-contained subset of the msgpack spec
  (nil/bool/int/float64/str/bin/array/map, plus one ``ext`` type carrying a
  :class:`~repro.pages.layout.Tid` so SI item handles survive the wire).
  Arrays decode as *tuples* — rows, keys and item-handle lists keep the
  exact shape the in-process :class:`~repro.db.database.Database` API uses.
* **Frames** are length-prefixed: a 4-byte big-endian unsigned length
  followed by that many payload bytes.  Frames above :data:`MAX_FRAME_BYTES`
  are a protocol violation (a corrupt prefix must not make a peer try to
  buffer gigabytes).
* **Requests** are ``(request_id, command, args)`` triples; **responses**
  are ``(request_id, status, payload)``.  The request id is an opaque
  client-chosen integer echoed back verbatim, so a client can detect
  desynchronised streams.

See ``docs/SERVER.md`` for the command-by-command argument layout.
"""

from __future__ import annotations

import struct
from enum import IntEnum

from repro.common.errors import (
    AmbiguousResultError,
    CommitUncertainError,
    DeadlineExceededError,
    OverloadedError,
    ProtocolError,
    RemoteError,
    ReplicationError,
    SchemaError,
    SerializationError,
    SessionError,
    TxnStateError,
)
from repro.pages.layout import Tid

#: Hard ceiling on one frame's payload (protects both peers from a corrupt
#: or hostile length prefix).
MAX_FRAME_BYTES = 16 * 1024 * 1024

#: Frame header: payload length, 4-byte big-endian unsigned.
FRAME_HEADER = struct.Struct(">I")

#: msgpack ``ext`` type code carrying a packed 6-byte TID.
EXT_TID = 0x01

#: Maximum container nesting in one value.  Deep enough for any real
#: payload; shallow enough that a hostile frame of nested array headers
#: raises :class:`ProtocolError` instead of :class:`RecursionError`.
MAX_NESTING_DEPTH = 64

_F64 = struct.Struct(">d")
_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")
_I8 = struct.Struct(">b")
_I16 = struct.Struct(">h")
_I32 = struct.Struct(">i")
_I64 = struct.Struct(">q")

_INT64_MIN = -(1 << 63)
_UINT64_MAX = (1 << 64) - 1


class Command(IntEnum):
    """Request opcodes (the wire ABI — append only, never renumber)."""

    PING = 1
    BEGIN = 2
    COMMIT = 3
    ABORT = 4
    CREATE_TABLE = 5
    INSERT = 6
    BULK_INSERT = 7
    READ = 8
    UPDATE = 9
    DELETE = 10
    LOOKUP = 11
    RANGE_LOOKUP = 12
    SCAN = 13
    SCAN_VID_RANGE = 14
    TICK = 15
    MAINTENANCE = 16
    SNAPSHOT = 17
    STATS = 18
    CLOCK_NOW = 19
    CLOCK_ADVANCE = 20
    CLOCK_ADVANCE_TO = 21
    TXN_STATUS = 22
    SCAN_BATCH = 23
    AGGREGATE = 24
    PREPARE_TXN = 25
    COMMIT_PREPARED = 26
    ABORT_PREPARED = 27
    CLOSED_TS = 28
    WAL_SUBSCRIBE = 29
    WAL_FETCH = 30
    WAL_UNSUBSCRIBE = 31
    BACKUP_BEGIN = 32
    BACKUP_FETCH = 33
    BACKUP_END = 34
    SHUTDOWN = 99


class Status(IntEnum):
    """Response status codes (``OK`` carries a payload, the rest a message)."""

    OK = 0
    OVERLOADED = 1       # shed by admission control; retryable
    SERIALIZATION = 2    # first-updater-wins / SSI abort
    SCHEMA = 3           # unknown table/index, row-shape violation
    TXN_STATE = 4        # operation invalid for the txn's phase
    NO_SUCH_TXN = 5      # txid not owned by this session
    BAD_REQUEST = 6      # malformed args or unknown command
    SHUTTING_DOWN = 7    # server is stopping; session is going away
    INTERNAL = 8         # unexpected server-side failure
    DEADLINE_EXCEEDED = 9  # rejected before execution: deadline passed
    AMBIGUOUS = 10       # fate unresolved (e.g. a router lost its shard
    #                      mid-commit); never blindly retried — resolve
    #                      via TXN_STATUS
    FENCED = 11          # replication fencing: stale epoch, not the
    #                      leader, or a truncated-gap fetch; fail over
    #                      instead of retrying


#: Statuses a client may transparently retry (the command did not execute).
RETRYABLE_STATUSES = frozenset({Status.OVERLOADED,
                                Status.DEADLINE_EXCEEDED})


def status_for_exception(exc: BaseException) -> Status:
    """Map a server-side exception onto its wire status."""
    if isinstance(exc, (AmbiguousResultError, CommitUncertainError)):
        return Status.AMBIGUOUS
    if isinstance(exc, OverloadedError):
        return Status.OVERLOADED
    if isinstance(exc, DeadlineExceededError):
        return Status.DEADLINE_EXCEEDED
    if isinstance(exc, SerializationError):
        return Status.SERIALIZATION
    if isinstance(exc, SchemaError):
        return Status.SCHEMA
    if isinstance(exc, TxnStateError):
        return Status.TXN_STATE
    if isinstance(exc, SessionError):
        return Status.NO_SUCH_TXN
    if isinstance(exc, ProtocolError):
        return Status.BAD_REQUEST
    if isinstance(exc, ReplicationError):
        return Status.FENCED
    return Status.INTERNAL


def raise_for_status(status: int, message: str) -> None:
    """Client side: re-raise a non-OK response as the matching exception."""
    if status == Status.OK:
        return
    if status == Status.OVERLOADED:
        raise OverloadedError(message)
    if status == Status.SERIALIZATION:
        raise SerializationError(message)
    if status == Status.SCHEMA:
        raise SchemaError(message)
    if status == Status.TXN_STATE:
        raise TxnStateError(message)
    if status == Status.NO_SUCH_TXN:
        raise SessionError(message)
    if status == Status.BAD_REQUEST:
        raise ProtocolError(message)
    if status == Status.SHUTTING_DOWN:
        raise SessionError(f"server shutting down: {message}")
    if status == Status.DEADLINE_EXCEEDED:
        raise DeadlineExceededError(message)
    if status == Status.AMBIGUOUS:
        # the txid is embedded in the message only; callers that know it
        # (RemoteDatabase.commit) re-wrap with the structured txid
        raise CommitUncertainError(message, txid=-1)
    if status == Status.FENCED:
        raise ReplicationError(message)
    raise RemoteError(message)


# ---------------------------------------------------------------------------
# value codec (msgpack subset)
# ---------------------------------------------------------------------------

def packb(obj: object) -> bytes:
    """Encode one value into msgpack bytes."""
    parts: list[bytes] = []
    _pack_into(obj, parts)
    return b"".join(parts)


def _pack_into(obj: object, parts: list[bytes]) -> None:
    if obj is None:
        parts.append(b"\xc0")
    elif obj is True:
        parts.append(b"\xc3")
    elif obj is False:
        parts.append(b"\xc2")
    elif isinstance(obj, int):
        _pack_int(obj, parts)
    elif isinstance(obj, float):
        parts.append(b"\xcb" + _F64.pack(obj))
    elif isinstance(obj, str):
        _pack_str(obj, parts)
    elif isinstance(obj, (bytes, bytearray, memoryview)):
        _pack_bin(bytes(obj), parts)
    elif isinstance(obj, Tid):
        # ext8: 0xc7, length, type code, payload
        parts.append(b"\xc7\x06" + bytes([EXT_TID]) + obj.pack())
    elif isinstance(obj, (list, tuple)):
        _pack_array_header(len(obj), parts)
        for item in obj:
            _pack_into(item, parts)
    elif isinstance(obj, dict):
        _pack_map_header(len(obj), parts)
        for key, value in obj.items():
            _pack_into(key, parts)
            _pack_into(value, parts)
    else:
        raise ProtocolError(f"cannot encode {type(obj).__name__}: {obj!r}")


def _pack_int(n: int, parts: list[bytes]) -> None:
    if 0 <= n <= 0x7F:
        parts.append(bytes([n]))
    elif -32 <= n < 0:
        parts.append(bytes([n & 0xFF]))
    elif 0 < n <= 0xFF:
        parts.append(bytes([0xCC, n]))
    elif 0 < n <= 0xFFFF:
        parts.append(b"\xcd" + _U16.pack(n))
    elif 0 < n <= 0xFFFFFFFF:
        parts.append(b"\xce" + _U32.pack(n))
    elif 0 < n <= _UINT64_MAX:
        parts.append(b"\xcf" + _U64.pack(n))
    elif -0x80 <= n < 0:
        parts.append(b"\xd0" + _I8.pack(n))
    elif -0x8000 <= n < 0:
        parts.append(b"\xd1" + _I16.pack(n))
    elif -0x80000000 <= n < 0:
        parts.append(b"\xd2" + _I32.pack(n))
    elif _INT64_MIN <= n < 0:
        parts.append(b"\xd3" + _I64.pack(n))
    else:
        raise ProtocolError(f"integer out of 64-bit range: {n}")


def _pack_str(s: str, parts: list[bytes]) -> None:
    data = s.encode("utf-8")
    n = len(data)
    if n <= 31:
        parts.append(bytes([0xA0 | n]) + data)
    elif n <= 0xFF:
        parts.append(bytes([0xD9, n]) + data)
    elif n <= 0xFFFF:
        parts.append(b"\xda" + _U16.pack(n) + data)
    else:
        parts.append(b"\xdb" + _U32.pack(n) + data)


def _pack_bin(data: bytes, parts: list[bytes]) -> None:
    n = len(data)
    if n <= 0xFF:
        parts.append(bytes([0xC4, n]) + data)
    elif n <= 0xFFFF:
        parts.append(b"\xc5" + _U16.pack(n) + data)
    else:
        parts.append(b"\xc6" + _U32.pack(n) + data)


def _pack_array_header(n: int, parts: list[bytes]) -> None:
    if n <= 15:
        parts.append(bytes([0x90 | n]))
    elif n <= 0xFFFF:
        parts.append(b"\xdc" + _U16.pack(n))
    else:
        parts.append(b"\xdd" + _U32.pack(n))


def _pack_map_header(n: int, parts: list[bytes]) -> None:
    if n <= 15:
        parts.append(bytes([0x80 | n]))
    elif n <= 0xFFFF:
        parts.append(b"\xde" + _U16.pack(n))
    else:
        parts.append(b"\xdf" + _U32.pack(n))


def unpackb(data: bytes) -> object:
    """Decode one value; raises :class:`ProtocolError` on trailing bytes."""
    value, offset = _unpack_one(memoryview(data), 0)
    if offset != len(data):
        raise ProtocolError(
            f"{len(data) - offset} trailing byte(s) after value")
    return value


def _unpack_one(buf: memoryview, offset: int,
                depth: int = 0) -> tuple[object, int]:
    if depth > MAX_NESTING_DEPTH:
        raise ProtocolError(
            f"value nested deeper than {MAX_NESTING_DEPTH}")
    try:
        tag = buf[offset]
    except IndexError:
        raise ProtocolError("truncated value") from None
    offset += 1
    if tag <= 0x7F:                      # positive fixint
        return tag, offset
    if tag >= 0xE0:                      # negative fixint
        return tag - 0x100, offset
    if 0xA0 <= tag <= 0xBF:              # fixstr
        return _take_str(buf, offset, tag & 0x1F)
    if 0x90 <= tag <= 0x9F:              # fixarray
        return _take_array(buf, offset, tag & 0x0F, depth)
    if 0x80 <= tag <= 0x8F:              # fixmap
        return _take_map(buf, offset, tag & 0x0F, depth)
    if tag == 0xC0:
        return None, offset
    if tag == 0xC2:
        return False, offset
    if tag == 0xC3:
        return True, offset
    if tag == 0xCB:                      # float64
        _need(buf, offset, 8)
        return _F64.unpack_from(buf, offset)[0], offset + 8
    if tag == 0xCC:                      # uint8
        _need(buf, offset, 1)
        return buf[offset], offset + 1
    if tag == 0xCD:
        _need(buf, offset, 2)
        return _U16.unpack_from(buf, offset)[0], offset + 2
    if tag == 0xCE:
        _need(buf, offset, 4)
        return _U32.unpack_from(buf, offset)[0], offset + 4
    if tag == 0xCF:
        _need(buf, offset, 8)
        return _U64.unpack_from(buf, offset)[0], offset + 8
    if tag == 0xD0:                      # int8
        _need(buf, offset, 1)
        return _I8.unpack_from(buf, offset)[0], offset + 1
    if tag == 0xD1:
        _need(buf, offset, 2)
        return _I16.unpack_from(buf, offset)[0], offset + 2
    if tag == 0xD2:
        _need(buf, offset, 4)
        return _I32.unpack_from(buf, offset)[0], offset + 4
    if tag == 0xD3:
        _need(buf, offset, 8)
        return _I64.unpack_from(buf, offset)[0], offset + 8
    if tag == 0xD9:                      # str8
        _need(buf, offset, 1)
        return _take_str(buf, offset + 1, buf[offset])
    if tag == 0xDA:
        _need(buf, offset, 2)
        return _take_str(buf, offset + 2, _U16.unpack_from(buf, offset)[0])
    if tag == 0xDB:
        _need(buf, offset, 4)
        return _take_str(buf, offset + 4, _U32.unpack_from(buf, offset)[0])
    if tag == 0xC4:                      # bin8
        _need(buf, offset, 1)
        return _take_bin(buf, offset + 1, buf[offset])
    if tag == 0xC5:
        _need(buf, offset, 2)
        return _take_bin(buf, offset + 2, _U16.unpack_from(buf, offset)[0])
    if tag == 0xC6:
        _need(buf, offset, 4)
        return _take_bin(buf, offset + 4, _U32.unpack_from(buf, offset)[0])
    if tag == 0xDC:                      # array16
        _need(buf, offset, 2)
        return _take_array(buf, offset + 2,
                           _U16.unpack_from(buf, offset)[0], depth)
    if tag == 0xDD:
        _need(buf, offset, 4)
        return _take_array(buf, offset + 4,
                           _U32.unpack_from(buf, offset)[0], depth)
    if tag == 0xDE:                      # map16
        _need(buf, offset, 2)
        return _take_map(buf, offset + 2, _U16.unpack_from(buf, offset)[0],
                         depth)
    if tag == 0xDF:
        _need(buf, offset, 4)
        return _take_map(buf, offset + 4, _U32.unpack_from(buf, offset)[0],
                         depth)
    if tag == 0xC7:                      # ext8
        _need(buf, offset, 2)
        length, ext_type = buf[offset], buf[offset + 1]
        offset += 2
        _need(buf, offset, length)
        payload = bytes(buf[offset:offset + length])
        return _decode_ext(ext_type, payload), offset + length
    raise ProtocolError(f"unsupported type tag 0x{tag:02x}")


def _decode_ext(ext_type: int, payload: bytes) -> object:
    if ext_type == EXT_TID:
        if len(payload) != 6:
            raise ProtocolError(f"TID ext must be 6 bytes, got {len(payload)}")
        tid = Tid.unpack(payload)
        if tid is None:
            raise ProtocolError("null TID pattern on the wire")
        return tid
    raise ProtocolError(f"unknown ext type 0x{ext_type:02x}")


def _need(buf: memoryview, offset: int, n: int) -> None:
    if offset + n > len(buf):
        raise ProtocolError("truncated value")


def _take_str(buf: memoryview, offset: int, n: int) -> tuple[str, int]:
    _need(buf, offset, n)
    try:
        return str(buf[offset:offset + n], "utf-8"), offset + n
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"invalid utf-8 string: {exc}") from None


def _take_bin(buf: memoryview, offset: int, n: int) -> tuple[bytes, int]:
    _need(buf, offset, n)
    return bytes(buf[offset:offset + n]), offset + n


def _take_array(buf: memoryview, offset: int, n: int,
                depth: int) -> tuple[tuple, int]:
    items = []
    for _ in range(n):
        value, offset = _unpack_one(buf, offset, depth + 1)
        items.append(value)
    return tuple(items), offset


def _take_map(buf: memoryview, offset: int, n: int,
              depth: int) -> tuple[dict, int]:
    out: dict = {}
    for _ in range(n):
        key, offset = _unpack_one(buf, offset, depth + 1)
        try:
            hash(key)
        except TypeError:
            raise ProtocolError(
                f"unhashable map key {type(key).__name__}") from None
        value, offset = _unpack_one(buf, offset, depth + 1)
        out[key] = value
    return out, offset


# ---------------------------------------------------------------------------
# framing
# ---------------------------------------------------------------------------

def encode_frame(payload: bytes) -> bytes:
    """Prefix a payload with its 4-byte length."""
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds {MAX_FRAME_BYTES}")
    return FRAME_HEADER.pack(len(payload)) + payload


def frame_length(header: bytes) -> int:
    """Validate a 4-byte header, returning the payload length."""
    (length,) = FRAME_HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
    return length


def encode_request(request_id: int, command: int, args: tuple,
                   deadline_ms: int | None = None) -> bytes:
    """One request frame, ready for the socket.

    ``deadline_ms`` is the client's *remaining* time budget in whole
    milliseconds (relative, so peers need no clock agreement).  ``None``
    keeps the original 3-tuple layout — the fault-free fast path and old
    peers are byte-identical.
    """
    if deadline_ms is None:
        return encode_frame(packb((request_id, int(command), args)))
    return encode_frame(packb((request_id, int(command), args,
                               int(deadline_ms))))


def decode_request(payload: bytes) -> tuple[int, int, tuple, int | None]:
    """Split a request frame into ``(request_id, command, args, deadline)``.

    ``deadline`` is the remaining budget in milliseconds or ``None`` when
    the client sent the 3-tuple form (no deadline).
    """
    message = unpackb(payload)
    if (not isinstance(message, tuple) or len(message) not in (3, 4)
            or not isinstance(message[0], int)
            or isinstance(message[0], bool)
            or not isinstance(message[1], int)
            or isinstance(message[1], bool)
            or not isinstance(message[2], tuple)):
        raise ProtocolError(f"malformed request: {message!r}")
    deadline_ms: int | None = None
    if len(message) == 4:
        deadline_ms = message[3]
        if deadline_ms is not None and (
                not isinstance(deadline_ms, int)
                or isinstance(deadline_ms, bool)):
            raise ProtocolError(
                f"malformed deadline: {deadline_ms!r}")
    return message[0], message[1], message[2], deadline_ms


def encode_response(request_id: int, status: int, payload: object) -> bytes:
    """One response frame, ready for the socket."""
    return encode_frame(packb((request_id, int(status), payload)))


def decode_response(payload: bytes) -> tuple[int, int, object]:
    """Split a response frame into ``(request_id, status, payload)``."""
    message = unpackb(payload)
    if (not isinstance(message, tuple) or len(message) != 3
            or not isinstance(message[0], int)
            or not isinstance(message[1], int)):
        raise ProtocolError(f"malformed response: {message!r}")
    return message  # type: ignore[return-value]


def error_payload(exc: BaseException) -> str:
    """Human-readable error message relayed inside a non-OK response."""
    return f"{type(exc).__name__}: {exc}"
