"""Per-connection sessions: transaction ownership and idle reaping.

A *session* is the server-side shadow of one client connection.  It owns
every transaction the connection began and has not yet finished, so the
server can uphold the contract a crashing client cannot: **no transaction
outlives its connection**.  On disconnect (clean close, reset, or idle
timeout) the server aborts the session's in-flight transactions, which runs
their undo actions and releases their locks — exactly what PostgreSQL does
when a backend loses its client.

All bookkeeping here runs on the event-loop thread; only the actual aborts
go through the executor (see :mod:`repro.server.dispatch`), so no locking
is needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.common.errors import SessionError
from repro.txn.manager import Transaction


@dataclass
class SessionStats:
    """Counters the ``STATS`` command reports for the session layer."""

    opened: int = 0
    closed: int = 0
    idle_closed: int = 0
    orphans_aborted: int = 0
    #: sessions refused because the server was draining
    drain_refused: int = 0
    #: transactions aborted because the drain timeout expired on them
    drain_aborts: int = 0
    #: replication slots dropped because their owning session went away
    #: (disconnect or idle reap) — the leader-side slot-leak fix
    slots_dropped: int = 0

    def as_dict(self) -> dict[str, int]:
        """Wire-friendly view."""
        return {"opened": self.opened, "closed": self.closed,
                "idle_closed": self.idle_closed,
                "orphans_aborted": self.orphans_aborted,
                "drain_refused": self.drain_refused,
                "drain_aborts": self.drain_aborts,
                "slots_dropped": self.slots_dropped}


@dataclass
class Session:
    """One connection's server-side state."""

    session_id: int
    peer: str
    last_active: float
    txns: dict[int, Transaction] = field(default_factory=dict)
    closed: bool = False
    #: commands this session currently has executing (or queued) in the
    #: dispatcher — the idle reaper must not close the session under them
    in_flight: int = 0
    #: the in-flight command's absolute monotonic deadline (None = none);
    #: valid because a connection processes one request at a time
    deadline: float | None = None
    #: replication slots registered through this connection — dropped on
    #: disconnect / idle reap so a vanished follower cannot pin the
    #: leader's WAL retention forever
    slots: set[str] = field(default_factory=set)
    #: base-backup handles opened through this connection — released with
    #: the session for the same reason
    backups: set[str] = field(default_factory=set)

    def touch(self, now: float) -> None:
        """Record activity (resets the idle clock)."""
        self.last_active = now

    def begin_command(self, now: float) -> None:
        """A command arrived and is about to execute."""
        self.last_active = now
        self.in_flight += 1

    def end_command(self, now: float) -> None:
        """A command finished; the idle clock restarts *now*.

        Touching on completion (not only on arrival) is what keeps a
        long-running command's session alive: idleness is measured from
        the last time the server finished work for the connection, not
        from when the work was requested.
        """
        self.in_flight -= 1
        self.last_active = now

    def register(self, txn: Transaction) -> None:
        """Adopt a transaction this session began."""
        self.txns[txn.txid] = txn

    def claim(self, txid: int) -> Transaction:
        """The session's transaction with ``txid`` (raises if not owned)."""
        try:
            return self.txns[txid]
        except KeyError:
            raise SessionError(
                f"txn {txid} is not owned by session {self.session_id}"
            ) from None

    def forget(self, txid: int) -> None:
        """Drop a finished transaction (no-op if already gone)."""
        self.txns.pop(txid, None)


class SessionManager:
    """Owns every live session and decides which ones have gone idle."""

    def __init__(self, idle_timeout_sec: float) -> None:
        self.idle_timeout_sec = idle_timeout_sec
        self.stats = SessionStats()
        self._sessions: dict[int, Session] = {}
        self._next_id = 1

    def open(self, peer: str, now: float) -> Session:
        """Create the session for a freshly accepted connection."""
        session = Session(session_id=self._next_id, peer=peer,
                          last_active=now)
        self._next_id += 1
        self._sessions[session.session_id] = session
        self.stats.opened += 1
        return session

    def close(self, session: Session) -> list[Transaction]:
        """Retire a session; returns its orphaned (still-active) txns.

        Idempotent: the idle reaper and the connection handler may both
        try to close the same session, and only the first call collects
        the orphans.
        """
        if session.closed:
            return []
        session.closed = True
        self._sessions.pop(session.session_id, None)
        self.stats.closed += 1
        orphans = list(session.txns.values())
        session.txns.clear()
        return orphans

    def idle_sessions(self, now: float) -> list[Session]:
        """Sessions whose idle time exceeded the timeout.

        A session with a command in flight is never idle, however long
        the command takes: reaping it would abort a transaction the
        dispatcher is actively working on.
        """
        if self.idle_timeout_sec <= 0:
            return []
        return [s for s in self._sessions.values()
                if s.in_flight == 0
                and now - s.last_active > self.idle_timeout_sec]

    def __iter__(self) -> Iterator[Session]:
        return iter(list(self._sessions.values()))

    def count(self) -> int:
        """Number of live sessions."""
        return len(self._sessions)

    def in_flight_txns(self) -> int:
        """Transactions currently owned by any session."""
        return sum(len(s.txns) for s in self._sessions.values())
