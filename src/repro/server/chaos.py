"""Network fault injection: a deterministic chaos transport wrapper.

The service layer's adversary, mirroring :mod:`repro.storage.faults` for
the wire: where the storage crash sweep kills the process at the k-th
*device write*, the chaos layer breaks the *connection* at the k-th
network frame — torn mid-frame, reset before the bytes leave, reset after
they arrive (the lost-ack window), or a slow-loris stall.  Everything is
seeded and counted, so a failing sweep point replays exactly.

Two adapters speak the same :class:`ChaosPlan`:

* :class:`ChaosSocket` wraps the synchronous client socket
  (:class:`~repro.client.connection.ClientConnection` installs it when a
  plan is armed);
* :class:`ChaosStreamWriter` / :meth:`chaos_readexactly` wrap the server's
  asyncio stream pair (:class:`~repro.server.server.DatabaseServer`
  installs them when ``ServerConfig.chaos`` is set).

When no plan is armed neither side constructs a wrapper — the fault-free
fast path is the plain socket / stream code, byte for byte.

:class:`NetCrashPoint` mirrors :class:`repro.storage.faults.CrashPoint`:
one instance is shared by every wrapped endpoint of a run, counting frame
transmissions globally, so ``at_event=k`` means the k-th frame the
*conversation* moves, wherever it happens.  ``at_event=0`` never fires —
the counting mode the chaos sweep uses to size a workload's network
footprint.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from enum import Enum

from repro.common.rng import make_rng


class NetFaultKind(Enum):
    """What happens to one network frame."""

    DELAY = "delay"               # late, but intact
    SPLIT = "split"               # byte-level fragmentation (reassembly)
    TORN = "torn"                 # a prefix leaves, then the line dies
    RESET_BEFORE = "reset_before"  # dies before any byte leaves
    RESET_AFTER = "reset_after"    # frame arrives, then the line dies
    STALL = "stall"               # slow-loris: partial header, then silence


#: Crash-point kinds the sweep cycles through (DELAY/SPLIT are benign —
#: they perturb timing and framing but never lose a frame).
DISRUPTIVE_KINDS = (NetFaultKind.TORN, NetFaultKind.RESET_BEFORE,
                    NetFaultKind.RESET_AFTER)


class NetCrashPoint:
    """Deterministic network-fault trigger counting frames across endpoints.

    The wire twin of :class:`repro.storage.faults.CrashPoint`: share one
    instance between every :class:`ChaosPlan` of a run (client and server
    side) and the k-th frame transmission anywhere fires ``kind``.  Once
    tripped the point stays inert — the connection it killed is gone, and
    the interesting question is whether the *rest* of the system settles;
    later frames (new connections, other sessions) pass untouched.
    """

    def __init__(self, at_event: int = 0,
                 kind: NetFaultKind = NetFaultKind.RESET_BEFORE) -> None:
        if at_event < 0:
            raise ValueError(f"at_event must be >= 0, got {at_event}")
        self.at_event = at_event
        self.kind = kind
        self.events_seen = 0
        self.tripped = False
        self._armed = True

    def disarm(self) -> None:
        """Stop injecting (and stop counting)."""
        self._armed = False

    def arm(self) -> None:
        """Resume injecting and counting (sweeps disarm around setup
        traffic so frame numbering covers only the workload under test)."""
        self._armed = True

    def on_event(self) -> NetFaultKind | None:
        """Count one frame; returns the fault kind iff this frame is it."""
        if not self._armed:
            return None
        self.events_seen += 1
        if (not self.tripped and self.at_event
                and self.events_seen == self.at_event):
            self.tripped = True
            return self.kind
        return None


@dataclass(frozen=True)
class ChaosConfig:
    """Seeded per-frame fault probabilities (all default off).

    Probabilities apply independently per frame, checked in the order
    ``reset``, ``torn``, ``stall``, ``delay``, ``split`` — at most one
    fault fires per frame.  ``delay_sec``/``stall_sec`` are real
    wall-clock sleeps (the service layer runs on wall time, unlike the
    storage stack's simulated clock).
    """

    seed: int = 42
    delay_prob: float = 0.0
    delay_sec: float = 0.002
    split_prob: float = 0.0
    torn_prob: float = 0.0
    reset_prob: float = 0.0
    stall_prob: float = 0.0
    stall_sec: float = 0.25

    def validate(self) -> None:
        """Raise on out-of-range settings."""
        for name in ("delay_prob", "split_prob", "torn_prob",
                     "reset_prob", "stall_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(
                    f"fault probability {name} must be in [0, 1], got {p}")
        if self.delay_sec < 0 or self.stall_sec < 0:
            raise ValueError("delay_sec / stall_sec must be >= 0")


class ChaosPlan:
    """One run's fault decisions, shared by every wrapped endpoint.

    Per-frame the plan asks the crash point first (deterministic
    sweeps), then the seeded probability table (randomised soak runs).
    Thread-safety note: the counters are bumped under the GIL from
    whatever thread moves the frame; they are telemetry, not control
    flow.
    """

    def __init__(self, config: ChaosConfig | None = None,
                 crash_point: NetCrashPoint | None = None) -> None:
        self.config = config or ChaosConfig()
        self.config.validate()
        self.crash_point = crash_point
        self._rng = make_rng(self.config.seed, "chaos", "plan")
        self.injected: dict[str, int] = {k.value: 0 for k in NetFaultKind}

    @property
    def events_seen(self) -> int:
        """Frames counted by the crash point (0 without one)."""
        return self.crash_point.events_seen if self.crash_point else 0

    def on_frame(self) -> NetFaultKind | None:
        """Decide one frame's fate; counts it against the crash point."""
        kind: NetFaultKind | None = None
        if self.crash_point is not None:
            kind = self.crash_point.on_event()
        if kind is None:
            kind = self._roll()
        if kind is not None:
            self.injected[kind.value] += 1
        return kind

    def _roll(self) -> NetFaultKind | None:
        cfg = self.config
        if not (cfg.reset_prob or cfg.torn_prob or cfg.stall_prob
                or cfg.delay_prob or cfg.split_prob):
            return None
        draw = self._rng.random()
        for prob, kind in ((cfg.reset_prob, NetFaultKind.RESET_BEFORE),
                           (cfg.torn_prob, NetFaultKind.TORN),
                           (cfg.stall_prob, NetFaultKind.STALL),
                           (cfg.delay_prob, NetFaultKind.DELAY),
                           (cfg.split_prob, NetFaultKind.SPLIT)):
            if draw < prob:
                return kind
            draw -= prob
        return None

    def split_points(self, n: int) -> list[int]:
        """Deterministic byte-level cut positions for a SPLIT of size n."""
        if n <= 1:
            return []
        cuts = sorted({self._rng.randrange(1, n)
                       for _ in range(min(3, n - 1))})
        return cuts

    def torn_cut(self, n: int) -> int:
        """Where a TORN frame is severed (at least one byte short)."""
        if n <= 1:
            return 0
        return self._rng.randrange(1, n)

    def wrap_socket(self, sock) -> "ChaosSocket":
        """The synchronous-client adapter."""
        return ChaosSocket(sock, self)

    def wrap_stream_writer(self, writer) -> "ChaosStreamWriter":
        """The asyncio-server adapter (faults *response* frames)."""
        return ChaosStreamWriter(writer, self)


class ChaosSocket:
    """Synchronous socket wrapper: the client half of the chaos layer.

    Presents exactly the surface :class:`ClientConnection` touches
    (``sendall``/``recv``/``close`` plus passthrough).  Each ``sendall``
    is one frame event; read-side failures are modelled by
    ``RESET_AFTER`` — the frame departs intact, then the socket dies, so
    the *response* is what the caller loses (the ambiguous-ack window).
    """

    def __init__(self, sock, plan: ChaosPlan) -> None:
        self._sock = sock
        self._plan = plan

    def sendall(self, data: bytes) -> None:
        """Send one frame through the fault plan."""
        kind = self._plan.on_frame()
        if kind is None:
            self._sock.sendall(data)
            return
        if kind is NetFaultKind.DELAY:
            time.sleep(self._plan.config.delay_sec)
            self._sock.sendall(data)
            return
        if kind is NetFaultKind.SPLIT:
            prev = 0
            for cut in self._plan.split_points(len(data)) + [len(data)]:
                self._sock.sendall(data[prev:cut])
                prev = cut
            return
        if kind is NetFaultKind.TORN:
            cut = self._plan.torn_cut(len(data))
            if cut:
                self._sock.sendall(data[:cut])
            self.close()
            raise ConnectionResetError(
                f"chaos: frame torn after {cut}/{len(data)} bytes")
        if kind is NetFaultKind.RESET_BEFORE:
            self.close()
            raise ConnectionResetError("chaos: connection reset before send")
        if kind is NetFaultKind.RESET_AFTER:
            self._sock.sendall(data)
            self.close()
            # no raise: the frame arrived — the caller discovers the dead
            # line only when it reads for the response (ambiguous ack)
            return
        if kind is NetFaultKind.STALL:
            # slow-loris: a sliver of the frame, then silence, then death
            self._sock.sendall(data[:min(2, len(data))])
            time.sleep(self._plan.config.stall_sec)
            self.close()
            raise ConnectionResetError(
                f"chaos: stalled {self._plan.config.stall_sec}s mid-frame")
        raise AssertionError(f"unhandled fault kind {kind}")

    def recv(self, n: int) -> bytes:
        """Receive (reads fail via the socket the send-side fault killed)."""
        return self._sock.recv(n)

    def close(self) -> None:
        """Close the underlying socket (idempotent)."""
        try:
            self._sock.close()
        except OSError:
            pass

    def __getattr__(self, name: str):
        return getattr(self._sock, name)


class ChaosStreamWriter:
    """Asyncio writer wrapper: the server half of the chaos layer.

    Drop-in for the ``StreamWriter`` surface the server uses (``write``
    buffers, ``drain`` moves one frame through the fault plan).  A fault
    on a response frame aborts the transport, so the client observes a
    dead connection exactly as it would from a crashed server.
    """

    def __init__(self, writer: asyncio.StreamWriter,
                 plan: ChaosPlan) -> None:
        self._writer = writer
        self._plan = plan
        self._pending: list[bytes] = []

    def write(self, data: bytes) -> None:
        """Buffer one frame until :meth:`drain` decides its fate."""
        self._pending.append(data)

    async def drain(self) -> None:
        """Flush the buffered frame through the fault plan."""
        data = b"".join(self._pending)
        self._pending.clear()
        if not data:
            await self._writer.drain()
            return
        kind = self._plan.on_frame()
        if kind is NetFaultKind.DELAY:
            await asyncio.sleep(self._plan.config.delay_sec)
            kind = None
        if kind is NetFaultKind.SPLIT:
            prev = 0
            for cut in self._plan.split_points(len(data)) + [len(data)]:
                self._writer.write(data[prev:cut])
                await self._writer.drain()
                prev = cut
            return
        if kind is None or kind is NetFaultKind.RESET_AFTER:
            self._writer.write(data)
            await self._writer.drain()
            if kind is NetFaultKind.RESET_AFTER:
                self._abort()
                raise ConnectionResetError(
                    "chaos: reset after response frame")
            return
        if kind is NetFaultKind.TORN:
            cut = self._plan.torn_cut(len(data))
            if cut:
                self._writer.write(data[:cut])
                await self._writer.drain()
            self._abort()
            raise ConnectionResetError(
                f"chaos: response torn after {cut}/{len(data)} bytes")
        if kind is NetFaultKind.STALL:
            self._writer.write(data[:min(2, len(data))])
            await self._writer.drain()
            await asyncio.sleep(self._plan.config.stall_sec)
            self._abort()
            raise ConnectionResetError("chaos: response stalled mid-frame")
        # RESET_BEFORE
        self._abort()
        raise ConnectionResetError("chaos: reset before response frame")

    def _abort(self) -> None:
        transport = self._writer.transport
        if transport is not None:
            transport.abort()

    def close(self) -> None:
        """Close the underlying writer."""
        self._writer.close()

    async def wait_closed(self) -> None:
        """Wait for the underlying writer to close."""
        await self._writer.wait_closed()

    def get_extra_info(self, name: str, default=None):
        """Passthrough to the underlying transport."""
        return self._writer.get_extra_info(name, default)

    def __getattr__(self, name: str):
        return getattr(self._writer, name)
