"""Extendible-hash index — the paper's alternative access path.

The paper notes that hash-based index structures adapt to SIAS-V exactly
like the B⁺ tree: records become ``⟨key, VID⟩`` and the VIDmap mediates to
the entrypoint.  This implementation is a classic extendible hash table:
a directory of 2^global_depth pointers to buckets, each bucket holding up
to ``bucket_capacity`` distinct keys with their value lists; a bucket
overflow splits the bucket (doubling the directory when the bucket's local
depth equals the global depth).

It intentionally mirrors the subset of :class:`~repro.index.btree.BPlusTree`
the catalog uses — ``insert`` / ``delete`` / ``search`` / ``contains`` /
``items`` / ``__len__`` — so the two are interchangeable for equality
lookups; hash indexes reject range scans, exactly like real systems.
"""

from __future__ import annotations

from typing import Hashable, Iterator

from repro.common.errors import DuplicateKeyError, IndexError_


class _Bucket:
    """One hash bucket: key → list of values, with a local depth."""

    __slots__ = ("local_depth", "entries")

    def __init__(self, local_depth: int) -> None:
        self.local_depth = local_depth
        self.entries: dict[object, list[Hashable]] = {}


class ExtendibleHashIndex:
    """Extendible hashing with duplicate-key support."""

    def __init__(self, bucket_capacity: int = 32,
                 unique: bool = False) -> None:
        if bucket_capacity < 2:
            raise ValueError(
                f"bucket_capacity must be >= 2, got {bucket_capacity}")
        self.bucket_capacity = bucket_capacity
        self.unique = unique
        self._global_depth = 1
        bucket0, bucket1 = _Bucket(1), _Bucket(1)
        self._directory: list[_Bucket] = [bucket0, bucket1]
        self._size = 0

    # -- hashing ------------------------------------------------------------------

    def _slot(self, key) -> int:
        return hash(key) & ((1 << self._global_depth) - 1)

    def _bucket(self, key) -> _Bucket:
        return self._directory[self._slot(key)]

    @property
    def global_depth(self) -> int:
        """Current directory depth (directory size is 2^depth)."""
        return self._global_depth

    @property
    def bucket_count(self) -> int:
        """Number of distinct buckets."""
        return len({id(b) for b in self._directory})

    # -- queries --------------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def search(self, key) -> list[Hashable]:
        """All values stored under ``key`` (empty list if absent)."""
        return list(self._bucket(key).entries.get(key, ()))

    def contains(self, key, value: Hashable) -> bool:
        """Whether the exact pair is present."""
        return value in self._bucket(key).entries.get(key, ())

    def items(self) -> Iterator[tuple[object, Hashable]]:
        """All pairs, in no particular order (hash indexes are unordered)."""
        seen: set[int] = set()
        for bucket in self._directory:
            if id(bucket) in seen:
                continue
            seen.add(id(bucket))
            for key, values in bucket.entries.items():
                for value in values:
                    yield key, value

    def range(self, lo=None, hi=None, **_kwargs):
        """Hash indexes do not support range scans."""
        raise IndexError_("hash index does not support range scans")

    # -- mutation ---------------------------------------------------------------------

    def insert(self, key, value: Hashable) -> None:
        """Insert one pair (splitting buckets / doubling as needed)."""
        bucket = self._bucket(key)
        values = bucket.entries.get(key)
        if values is not None:
            if self.unique:
                raise DuplicateKeyError(f"key {key!r} already indexed")
            if value in values:
                raise DuplicateKeyError(
                    f"pair ({key!r}, {value!r}) already indexed")
            values.append(value)
            self._size += 1
            return
        while len(bucket.entries) >= self.bucket_capacity:
            self._split(bucket)
            bucket = self._bucket(key)
        bucket.entries[key] = [value]
        self._size += 1

    def delete(self, key, value: Hashable) -> bool:
        """Remove one exact pair; returns True if it was present."""
        bucket = self._bucket(key)
        values = bucket.entries.get(key)
        if values is None or value not in values:
            return False
        values.remove(value)
        if not values:
            del bucket.entries[key]
        self._size -= 1
        return True

    # -- splitting ----------------------------------------------------------------------

    def _split(self, bucket: _Bucket) -> None:
        if bucket.local_depth == self._global_depth:
            self._directory = self._directory + self._directory
            self._global_depth += 1
        bucket.local_depth += 1
        sibling = _Bucket(bucket.local_depth)
        high_bit = 1 << (bucket.local_depth - 1)
        moved = [key for key in bucket.entries
                 if hash(key) & high_bit]
        for key in moved:
            sibling.entries[key] = bucket.entries.pop(key)
        for slot in range(len(self._directory)):
            if self._directory[slot] is bucket and slot & high_bit:
                self._directory[slot] = sibling

    # -- invariants (property tests) --------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise AssertionError if any extendible-hash invariant breaks."""
        assert len(self._directory) == 1 << self._global_depth
        pairs = 0
        seen: set[int] = set()
        for slot, bucket in enumerate(self._directory):
            assert bucket.local_depth <= self._global_depth
            mask = (1 << bucket.local_depth) - 1
            for key, values in bucket.entries.items():
                assert values, f"key {key!r} with no values"
                # every key lives in a slot matching its hash prefix
                assert hash(key) & mask == slot & mask, \
                    f"key {key!r} in wrong bucket"
            if id(bucket) not in seen:
                seen.add(id(bucket))
                pairs += sum(len(v) for v in bucket.entries.values())
            # each bucket is referenced by exactly 2^(g-l) slots
        for bucket_id in seen:
            refs = sum(1 for b in self._directory if id(b) == bucket_id)
            bucket = next(b for b in self._directory if id(b) == bucket_id)
            assert refs == 1 << (self._global_depth - bucket.local_depth)
        assert pairs == self._size
