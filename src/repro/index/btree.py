"""B⁺-tree index with duplicate-key support.

Both engines index through this structure; only the *record type* differs:

* SIAS-V stores ``⟨key, VID⟩`` — all versions of a data item share one index
  entry, so updates that do not change the key never touch the index (the
  indexing contribution of the paper).
* The SI baseline stores ``⟨key, TID⟩`` — every new tuple version gets its
  own entry (classical pre-HOT PostgreSQL behaviour), removed later by
  VACUUM.

The tree is an in-memory B⁺ tree with linked leaves: fixed fan-out,
standard split/borrow/merge rebalancing, range scans via the leaf chain and
an invariant checker used by the property-based tests.  Keys are any
mutually comparable Python values (ints, strings, tuples); values are
hashable and duplicate ``(key, value)`` pairs are rejected while duplicate
keys are allowed.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Hashable, Iterator

from repro.common.errors import DuplicateKeyError


class _Node:
    """Internal or leaf node."""

    __slots__ = ("keys", "children", "values", "next_leaf")

    def __init__(self, leaf: bool) -> None:
        self.keys: list = []
        self.children: list["_Node"] | None = None if leaf else []
        # leaf: values[i] is the list of values for keys[i]
        self.values: list[list[Hashable]] | None = [] if leaf else None
        self.next_leaf: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class BPlusTree:
    """A B⁺ tree mapping comparable keys to sets of hashable values."""

    def __init__(self, order: int = 64, unique: bool = False) -> None:
        if order < 4:
            raise ValueError(f"order must be >= 4, got {order}")
        self.order = order
        self.unique = unique
        self._root = _Node(leaf=True)
        self._size = 0  # number of (key, value) pairs

    # -- queries ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def search(self, key) -> list[Hashable]:
        """All values stored under ``key`` (empty list if absent)."""
        leaf = self._descend(key)
        idx = bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return list(leaf.values[idx])
        return []

    def contains(self, key, value: Hashable) -> bool:
        """Whether the exact ``(key, value)`` pair is present."""
        return value in self.search(key)

    def range(self, lo=None, hi=None, *,
              inclusive: tuple[bool, bool] = (True, True),
              ) -> Iterator[tuple[object, Hashable]]:
        """Yield ``(key, value)`` pairs with lo ≤/< key ≤/< hi, in key order."""
        leaf = self._leftmost() if lo is None else self._descend(lo)
        lo_inc, hi_inc = inclusive
        while leaf is not None:
            for i, key in enumerate(leaf.keys):
                if lo is not None:
                    if key < lo or (not lo_inc and key == lo):
                        continue
                if hi is not None:
                    if key > hi or (not hi_inc and key == hi):
                        return
                for value in leaf.values[i]:
                    yield key, value
            leaf = leaf.next_leaf

    def items(self) -> Iterator[tuple[object, Hashable]]:
        """All pairs in key order."""
        return self.range()

    def keys(self) -> Iterator[object]:
        """Distinct keys in order."""
        leaf = self._leftmost()
        while leaf is not None:
            yield from leaf.keys
            leaf = leaf.next_leaf

    def min_key(self):
        """Smallest key (None when empty)."""
        leaf = self._leftmost()
        return leaf.keys[0] if leaf.keys else None

    # -- mutation -------------------------------------------------------------------

    def insert(self, key, value: Hashable) -> None:
        """Insert one ``(key, value)`` pair.

        Raises :class:`DuplicateKeyError` for a duplicate pair, or for a
        duplicate key when the index was created ``unique=True``.
        """
        split = self._insert(self._root, key, value)
        if split is not None:
            sep_key, right = split
            new_root = _Node(leaf=False)
            new_root.keys = [sep_key]
            new_root.children = [self._root, right]
            self._root = new_root
        self._size += 1

    def delete(self, key, value: Hashable) -> bool:
        """Remove one exact pair; returns True if it was present."""
        removed = self._delete(self._root, key, value)
        if removed:
            self._size -= 1
            if not self._root.is_leaf and len(self._root.children) == 1:
                self._root = self._root.children[0]
        return removed

    # -- insertion internals ------------------------------------------------------------

    def _insert(self, node: _Node, key, value) -> tuple[object, _Node] | None:
        if node.is_leaf:
            idx = bisect_left(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                if self.unique:
                    raise DuplicateKeyError(f"key {key!r} already indexed")
                if value in node.values[idx]:
                    raise DuplicateKeyError(
                        f"pair ({key!r}, {value!r}) already indexed")
                node.values[idx].append(value)
                return None
            node.keys.insert(idx, key)
            node.values.insert(idx, [value])
            if len(node.keys) > self.order:
                return self._split_leaf(node)
            return None
        idx = bisect_right(node.keys, key)
        split = self._insert(node.children[idx], key, value)
        if split is None:
            return None
        sep_key, right = split
        node.keys.insert(idx, sep_key)
        node.children.insert(idx + 1, right)
        if len(node.children) > self.order:
            return self._split_internal(node)
        return None

    def _split_leaf(self, node: _Node) -> tuple[object, _Node]:
        mid = len(node.keys) // 2
        right = _Node(leaf=True)
        right.keys = node.keys[mid:]
        right.values = node.values[mid:]
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        right.next_leaf = node.next_leaf
        node.next_leaf = right
        return right.keys[0], right

    def _split_internal(self, node: _Node) -> tuple[object, _Node]:
        mid = len(node.keys) // 2
        sep_key = node.keys[mid]
        right = _Node(leaf=False)
        right.keys = node.keys[mid + 1:]
        right.children = node.children[mid + 1:]
        node.keys = node.keys[:mid]
        node.children = node.children[:mid + 1]
        return sep_key, right

    # -- deletion internals ----------------------------------------------------------------

    def _min_fill(self) -> int:
        return self.order // 2

    def _delete(self, node: _Node, key, value) -> bool:
        if node.is_leaf:
            idx = bisect_left(node.keys, key)
            if idx >= len(node.keys) or node.keys[idx] != key:
                return False
            try:
                node.values[idx].remove(value)
            except ValueError:
                return False
            if not node.values[idx]:
                node.keys.pop(idx)
                node.values.pop(idx)
            return True
        idx = bisect_right(node.keys, key)
        child = node.children[idx]
        removed = self._delete(child, key, value)
        if removed:
            self._rebalance(node, idx)
        return removed

    def _rebalance(self, parent: _Node, idx: int) -> None:
        child = parent.children[idx]
        underfull = (len(child.keys) < self._min_fill() if child.is_leaf
                     else len(child.children) < self._min_fill())
        if not underfull:
            return
        left = parent.children[idx - 1] if idx > 0 else None
        right = (parent.children[idx + 1]
                 if idx + 1 < len(parent.children) else None)
        if left is not None and self._can_lend(left):
            self._borrow_from_left(parent, idx)
        elif right is not None and self._can_lend(right):
            self._borrow_from_right(parent, idx)
        elif left is not None:
            self._merge(parent, idx - 1)
        elif right is not None:
            self._merge(parent, idx)

    def _can_lend(self, node: _Node) -> bool:
        if node.is_leaf:
            return len(node.keys) > self._min_fill()
        return len(node.children) > self._min_fill()

    def _borrow_from_left(self, parent: _Node, idx: int) -> None:
        child, left = parent.children[idx], parent.children[idx - 1]
        if child.is_leaf:
            child.keys.insert(0, left.keys.pop())
            child.values.insert(0, left.values.pop())
            parent.keys[idx - 1] = child.keys[0]
        else:
            child.keys.insert(0, parent.keys[idx - 1])
            parent.keys[idx - 1] = left.keys.pop()
            child.children.insert(0, left.children.pop())

    def _borrow_from_right(self, parent: _Node, idx: int) -> None:
        child, right = parent.children[idx], parent.children[idx + 1]
        if child.is_leaf:
            child.keys.append(right.keys.pop(0))
            child.values.append(right.values.pop(0))
            parent.keys[idx] = right.keys[0]
        else:
            child.keys.append(parent.keys[idx])
            parent.keys[idx] = right.keys.pop(0)
            child.children.append(right.children.pop(0))

    def _merge(self, parent: _Node, left_idx: int) -> None:
        left = parent.children[left_idx]
        right = parent.children[left_idx + 1]
        if left.is_leaf:
            left.keys.extend(right.keys)
            left.values.extend(right.values)
            left.next_leaf = right.next_leaf
        else:
            left.keys.append(parent.keys[left_idx])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        parent.keys.pop(left_idx)
        parent.children.pop(left_idx + 1)

    # -- traversal helpers ---------------------------------------------------------------------

    def _descend(self, key) -> _Node:
        node = self._root
        while not node.is_leaf:
            node = node.children[bisect_right(node.keys, key)]
        return node

    def _leftmost(self) -> _Node:
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        return node

    @property
    def height(self) -> int:
        """Levels from root to leaf (1 for a single-leaf tree)."""
        levels, node = 1, self._root
        while not node.is_leaf:
            node = node.children[0]
            levels += 1
        return levels

    # -- invariant checking (used by property tests) -----------------------------------------------

    def check_invariants(self) -> None:
        """Raise AssertionError if any B⁺-tree invariant is violated."""
        leaves: list[_Node] = []
        self._check_node(self._root, None, None, is_root=True,
                         leaves=leaves)
        # leaf chain covers exactly the leaves, left to right
        chain: list[_Node] = []
        node = self._leftmost()
        while node is not None:
            chain.append(node)
            node = node.next_leaf
        assert chain == leaves, "leaf chain does not match tree order"
        flat = [k for leaf in leaves for k in leaf.keys]
        assert flat == sorted(flat), "keys not globally sorted"
        assert len(flat) == len(set(flat)), "duplicate key in leaves"
        pairs = sum(len(v) for leaf in leaves for v in leaf.values)
        assert pairs == self._size, f"size {self._size} != stored {pairs}"

    def _check_node(self, node: _Node, lo, hi, *, is_root: bool,
                    leaves: list[_Node]) -> int:
        for key in node.keys:
            assert lo is None or key >= lo, "key below subtree bound"
            assert hi is None or key < hi, "key above subtree bound"
        assert node.keys == sorted(node.keys), "node keys unsorted"
        if node.is_leaf:
            if not is_root:
                assert len(node.keys) >= 1, "empty non-root leaf"
            for values in node.values:
                assert values, "key with no values"
            leaves.append(node)
            return 0
        assert len(node.children) == len(node.keys) + 1, "fanout mismatch"
        if not is_root:
            assert len(node.children) >= 2, "underfull internal node"
        depths = set()
        bounds = [lo, *node.keys, hi]
        for i, child in enumerate(node.children):
            depths.add(self._check_node(child, bounds[i], bounds[i + 1],
                                        is_root=False, leaves=leaves))
        assert len(depths) == 1, "leaves at different depths"
        return depths.pop() + 1
