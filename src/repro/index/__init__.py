"""Indexing: B⁺ tree and extendible hash (⟨key,VID⟩ vs ⟨key,TID⟩)."""

from repro.index.btree import BPlusTree
from repro.index.hashindex import ExtendibleHashIndex

__all__ = ["BPlusTree", "ExtendibleHashIndex"]
