"""Exception hierarchy for the SIAS-V reproduction.

Every error raised by the library derives from :class:`ReproError`, so a
caller embedding the engine can catch one base class.  Sub-hierarchies mirror
the package layout: storage devices, buffer manager, transactions, pages,
indexes and the workload driver each get their own branch.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


# ---------------------------------------------------------------------------
# configuration
# ---------------------------------------------------------------------------

class ConfigError(ReproError):
    """Invalid or inconsistent configuration value."""


# ---------------------------------------------------------------------------
# storage devices
# ---------------------------------------------------------------------------

class StorageError(ReproError):
    """Base class for device-level failures."""


class OutOfSpaceError(StorageError):
    """The device (or FTL over-provisioning pool) has no free space left."""


class InvalidAddressError(StorageError):
    """A logical or physical address is outside the device's range."""


class ReadUnwrittenError(StorageError):
    """A logical page was read before it was ever written."""


class WornOutError(StorageError):
    """A flash block exceeded its erase endurance budget."""


# ---------------------------------------------------------------------------
# pages
# ---------------------------------------------------------------------------

class PageError(ReproError):
    """Base class for page-format violations."""


class PageFullError(PageError):
    """No room left in the page for the requested record."""


class PageCorruptError(PageError):
    """A page failed checksum or structural validation on deserialisation."""


class SlotError(PageError):
    """A slot number is invalid, dead, or out of range for the page."""


# ---------------------------------------------------------------------------
# buffer manager
# ---------------------------------------------------------------------------

class BufferError_(ReproError):
    """Base class for buffer-manager failures.

    Named with a trailing underscore to avoid shadowing the built-in
    :class:`BufferError`.
    """


class NoFreeFrameError(BufferError_):
    """Every frame in the buffer pool is pinned; eviction is impossible."""


class PinError(BufferError_):
    """Unpin without a matching pin, or eviction of a pinned frame."""


# ---------------------------------------------------------------------------
# transactions
# ---------------------------------------------------------------------------

class TxnError(ReproError):
    """Base class for transaction-layer failures."""


class TxnStateError(TxnError):
    """Operation invalid for the transaction's current state."""


class SerializationError(TxnError):
    """First-updater-wins conflict: concurrent update of the same item.

    Mirrors PostgreSQL's ``could not serialize access due to concurrent
    update`` error under snapshot isolation.
    """


class LockTimeoutError(TxnError):
    """A transactional lock could not be acquired within the wait budget."""


class DeadlockError(TxnError):
    """A wait-for cycle was detected between transactions."""


# ---------------------------------------------------------------------------
# engines
# ---------------------------------------------------------------------------

class EngineError(ReproError):
    """Base class for storage-engine level failures."""


class NoSuchItemError(EngineError):
    """A VID / TID does not name a live data item."""


class TombstoneError(EngineError):
    """The data item was deleted (its entrypoint is a tombstone)."""


class IndexError_(ReproError):
    """Base class for index failures (trailing underscore: builtin clash)."""


class DuplicateKeyError(IndexError_):
    """A unique index rejected a duplicate key."""


# ---------------------------------------------------------------------------
# workload
# ---------------------------------------------------------------------------

class WorkloadError(ReproError):
    """Base class for workload generator / driver failures."""


class SchemaError(WorkloadError):
    """A row does not match its relation's declared schema."""


# ---------------------------------------------------------------------------
# service layer (repro.server / repro.client)
# ---------------------------------------------------------------------------

class ServiceError(ReproError):
    """Base class for wire-protocol service failures."""


class ProtocolError(ServiceError):
    """Malformed frame, unknown command, or a codec violation."""


class OverloadedError(ServiceError):
    """The server shed this request (admission control).

    Retryable by contract: the command was rejected *before* execution, so
    a client may safely resend it after backing off.
    """


class SessionError(ServiceError):
    """A command referenced a transaction its session does not own, or the
    session was closed (idle timeout / server shutdown)."""


class RemoteError(ServiceError):
    """An unexpected server-side failure relayed to the client."""


class DeadlineExceededError(ServiceError):
    """The command's deadline passed before the server executed it.

    Retryable by contract: the server rejects expired work *before* it
    touches the engine (on arrival, or while still queued for a worker),
    so resending with a fresh budget can never double-execute.
    """


class CircuitOpenError(ServiceError):
    """The client's circuit breaker is open for this endpoint.

    Raised without any network I/O: the endpoint failed enough consecutive
    times that the breaker fast-fails calls until a half-open probe
    succeeds.  Carries the breaker so callers can inspect state.
    """

    def __init__(self, message: str, breaker: object | None = None) -> None:
        super().__init__(message)
        self.breaker = breaker


class AmbiguousResultError(ServiceError, ConnectionError):
    """The connection died after the request was (possibly) sent.

    The server may or may not have executed the command — the classic
    lost-ack window.  Subclasses :class:`ConnectionError` so existing
    disconnect handling still applies, but stays distinguishable: a
    command that provably never left the client raises a plain
    :class:`ConnectionError` instead and is safe to resend.
    """


class ReplicationError(ServiceError):
    """A replication-protocol violation: epoch fencing or a gapped log.

    Raised when a shipped batch carries a stale epoch token (a fenced or
    zombie leader), when a write reaches a node that is not the current
    leader, or when a follower asks for records the leader no longer
    retains.  Deliberately **not** retryable: retrying a fenced request
    against the same node can only re-fail — the caller must fail over.
    """


class CommitUncertainError(ServiceError):
    """A ``COMMIT``'s ack was lost: the transaction's fate is unknown.

    Never blindly retried — a resent commit could double-apply.  Carries
    the txid so the caller can resolve the fate with ``TXN_STATUS``
    (:meth:`repro.client.remote.RemoteDatabase.txn_status`).
    """

    def __init__(self, message: str, txid: int) -> None:
        super().__init__(message)
        self.txid = txid
