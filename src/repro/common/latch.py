"""Striped latches: a fixed array of locks addressed by hashable key.

The engines protect shared mutable structures (VIDmap entrypoints, heap
pages, the FSM) with *striped* latches: a key — ``(relation_id, vid)`` or
``(relation_id, page_no)`` — hashes to one of ``n`` mutexes, so unrelated
items proceed in parallel while two writers touching the same item
serialise.  Stripes are reentrant (``RLock``) because an engine call that
holds a stripe may re-enter it through an undo action registered under the
same latch.

``acquire_all`` takes every stripe in index order; it is the quiesce
primitive for structure-wide operations (GC swinging many entrypoints,
chain severing).  Because per-key users also map to a single stripe and
never hold two stripes at once, index-ordered acquisition cannot deadlock
against them.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator


class LatchStripes:
    """A fixed pool of reentrant locks addressed by hashable key."""

    __slots__ = ("_stripes",)

    def __init__(self, n: int = 16) -> None:
        if n < 1:
            raise ValueError(f"need at least one stripe, got {n}")
        self._stripes = tuple(threading.RLock() for _ in range(n))

    def __len__(self) -> int:
        return len(self._stripes)

    def of(self, key: object) -> threading.RLock:
        """The stripe responsible for ``key``."""
        return self._stripes[hash(key) % len(self._stripes)]

    @contextmanager
    def holding(self, key: object) -> Iterator[None]:
        """Context manager: hold ``key``'s stripe for the block."""
        stripe = self.of(key)
        stripe.acquire()
        try:
            yield
        finally:
            stripe.release()

    @contextmanager
    def holding_all(self) -> Iterator[None]:
        """Hold *every* stripe, acquired in index order (quiesce).

        Single-stripe users acquire exactly one stripe, so ordered
        acquisition here cannot form a cycle with them; two concurrent
        ``holding_all`` calls serialise on stripe 0.
        """
        acquired = 0
        try:
            for stripe in self._stripes:
                stripe.acquire()
                acquired += 1
            yield
        finally:
            for stripe in reversed(self._stripes[:acquired]):
                stripe.release()
