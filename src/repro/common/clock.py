"""Simulated clock for the discrete-time performance model.

The reproduction never measures wall-clock time for the *experiments* (the
paper's absolute numbers came from real SSD hardware, which is out of reach
per the reproduction protocol).  Instead, every component charges its cost to
a :class:`SimClock` in integer microseconds: device service times, queueing
delay, CPU costs.  The workload driver reads the clock to compute
transactions-per-minute and response times.

The clock is deliberately tiny: a monotone integer with ``advance`` and
``advance_to``.  Components that model *parallel* resources (flash channels,
RAID members) keep their own per-resource "busy until" horizons and push the
global clock only by the critical path; see :mod:`repro.storage.device`.

``advance_to`` is the repo's canonical *ratchet*: forward-only, idempotent,
no-op when already past the target.  The transactional timestamp domain
reuses the same contract — :meth:`repro.txn.ids.TxidAllocator.advance_to`
is the shard-side ratchet the cluster router drives while refreshing its
cluster-wide read timestamp (``docs/CLUSTER.md``, "Cluster-wide
snapshots"), keeping a quiet shard's txid space comparable to its peers'.
"""

from __future__ import annotations

import threading

from repro.common import units


class SimClock:
    """A monotone simulated clock counting integer microseconds.

    ``advance``/``advance_to`` are read-modify-write, so they serialise on
    an internal mutex; multi-worker executors charge device service times
    from several threads at once.  Reads stay lock-free — a single int
    load is atomic and monotonicity makes a stale read harmless.
    """

    __slots__ = ("_now", "_mu")

    def __init__(self, start_usec: int = 0) -> None:
        if start_usec < 0:
            raise ValueError(f"clock cannot start negative: {start_usec}")
        self._now = int(start_usec)
        self._mu = threading.Lock()

    @property
    def now(self) -> int:
        """Current simulated time in microseconds."""
        return self._now

    @property
    def now_sec(self) -> float:
        """Current simulated time in seconds."""
        return units.sec_from_usec(self._now)

    def advance(self, delta_usec: int) -> int:
        """Move the clock forward by ``delta_usec``; returns the new time.

        A zero delta is allowed (events with no modelled cost); negative
        deltas are programming errors.
        """
        if delta_usec < 0:
            raise ValueError(f"cannot advance clock by {delta_usec} us")
        with self._mu:
            self._now += int(delta_usec)
            return self._now

    def advance_to(self, when_usec: int) -> int:
        """Move the clock forward to an absolute time, never backwards.

        Lock-free when the clock is already past ``when_usec``: the clock
        is monotone, so a stale read that says "already there" stays true.
        """
        if when_usec <= self._now:
            return self._now
        with self._mu:
            if when_usec > self._now:
                self._now = int(when_usec)
            return self._now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimClock(now={units.fmt_usec(self._now)})"
