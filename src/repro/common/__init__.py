"""Shared kernel: errors, units, simulated clock, deterministic RNG, config."""

from repro.common.clock import SimClock
from repro.common.config import (
    BufferConfig,
    EngineConfig,
    FlashConfig,
    FlushThreshold,
    HddConfig,
    PageLayout,
    SystemConfig,
)
from repro.common.rng import NURand, make_rng

__all__ = [
    "BufferConfig",
    "EngineConfig",
    "FlashConfig",
    "FlushThreshold",
    "HddConfig",
    "NURand",
    "PageLayout",
    "SimClock",
    "SystemConfig",
    "make_rng",
]
