"""Deterministic random-number helpers.

Every stochastic component (workload generator, device variance, driver
think-times) receives an explicit seeded :class:`random.Random` so that runs
are reproducible bit-for-bit.  The helpers here derive independent child
streams from a root seed so subsystems do not perturb each other's sequences
when one of them draws a different number of variates.
"""

from __future__ import annotations

import random
import zlib


def make_rng(seed: int | str, *scope: object) -> random.Random:
    """Create an independent RNG stream for ``scope`` derived from ``seed``.

    ``scope`` components (e.g. ``("tpcc", warehouse_id)``) are folded into the
    seed with CRC32 so two subsystems sharing a root seed still get
    uncorrelated streams.
    """
    text = repr((seed, *scope)).encode("utf-8")
    derived = zlib.crc32(text) ^ (zlib.adler32(text) << 32)
    return random.Random(derived)


class NURand:
    """TPC-C's non-uniform random distribution (clause 2.1.6).

    ``NURand(A, x, y) = (((random(0,A) | random(x,y)) + C) % (y-x+1)) + x``

    The constant ``C`` is chosen once per run per ``A`` as the spec requires.
    """

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self._c255 = rng.randint(0, 255)
        self._c1023 = rng.randint(0, 1023)
        self._c8191 = rng.randint(0, 8191)

    def _c_for(self, a: int) -> int:
        if a == 255:
            return self._c255
        if a == 1023:
            return self._c1023
        if a == 8191:
            return self._c8191
        raise ValueError(f"NURand A must be 255, 1023 or 8191, got {a}")

    def __call__(self, a: int, x: int, y: int) -> int:
        """Draw one non-uniform variate in ``[x, y]``."""
        if x > y:
            raise ValueError(f"empty NURand range [{x}, {y}]")
        rand_a = self._rng.randint(0, a)
        rand_xy = self._rng.randint(x, y)
        return (((rand_a | rand_xy) + self._c_for(a)) % (y - x + 1)) + x
