"""Central configuration objects.

Each subsystem takes a small frozen dataclass; :class:`SystemConfig` bundles
them for the database facade.  Defaults reproduce the prototype configuration
described for the SIAS line (8 KiB pages, 1024 VIDmap slots per bucket) and
plausible enterprise-SLC flash timings for the simulated device.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum

from repro.common import units
from repro.common.errors import ConfigError


class PageLayout(Enum):
    """Physical layout of tuple versions inside an append page.

    ``NSM`` packs whole version records contiguously (row store).  ``VECTOR``
    stores the versions of a page decomposed into per-field column vectors
    (PAX-style mini-columns) — the "V" of SIAS-V: visibility checks then touch
    only the metadata vectors instead of whole records.
    """

    NSM = "nsm"
    VECTOR = "vector"


class Colocation(Enum):
    """Which tuple versions share an append page.

    ``RECENCY`` (SIAS-V): one working page per relation — versions created
    around the same time are co-located.  ``TRANSACTION`` (SI-CV, Gottstein
    et al., TPC-TC 2012): one working page per active transaction —
    a transaction's versions are co-located, at the cost of more open pages
    and (for small transactions) page sharing with later transactions.
    """

    RECENCY = "recency"
    TRANSACTION = "transaction"


class FlushThreshold(Enum):
    """When an in-memory append page is persisted to the device.

    ``T1`` models the PostgreSQL background-writer default: pages are flushed
    eagerly on a short interval even if sparsely filled.  ``T2`` piggy-backs
    on checkpoints: a page is flushed only when full (or at checkpoint), so
    pages reach the device densely packed.
    """

    T1 = "t1"
    T2 = "t2"


@dataclass(frozen=True)
class FlashConfig:
    """Parameters of the simulated flash SSD.

    Timings follow published characterisations of enterprise SLC flash of the
    X25-E era: reads are an order of magnitude cheaper than programs, erases
    an order of magnitude above that, and the device exposes internal channel
    parallelism.
    """

    capacity_bytes: int = 16 * units.GIB
    page_size: int = units.DB_PAGE_SIZE
    pages_per_block: int = 64
    read_latency_usec: int = 50
    program_latency_usec: int = 400
    erase_latency_usec: int = 1500
    channels: int = 8
    overprovision_ratio: float = 0.10
    erase_endurance: int = 100_000
    gc_free_block_low_watermark: int = 4

    def validate(self) -> None:
        """Raise :class:`ConfigError` on inconsistent parameters."""
        if self.capacity_bytes % (self.page_size * self.pages_per_block):
            raise ConfigError("capacity must be a whole number of blocks")
        if not 0.0 <= self.overprovision_ratio < 0.9:
            raise ConfigError(
                f"overprovision_ratio out of range: {self.overprovision_ratio}")
        if self.channels < 1:
            raise ConfigError("flash device needs at least one channel")
        if min(self.read_latency_usec, self.program_latency_usec,
               self.erase_latency_usec) <= 0:
            raise ConfigError("flash latencies must be positive")

    @property
    def block_size(self) -> int:
        """Bytes per erase block."""
        return self.page_size * self.pages_per_block

    @property
    def total_pages(self) -> int:
        """Logical page capacity exposed to the host."""
        return self.capacity_bytes // self.page_size


@dataclass(frozen=True)
class HddConfig:
    """Parameters of the simulated spinning disk (7200 rpm class).

    Random access pays an average seek plus half a rotation; sequential
    access pays only transfer time.  Reads and writes are symmetric, which is
    exactly the asymmetry-free contrast the paper draws against flash.
    """

    capacity_bytes: int = 64 * units.GIB
    page_size: int = units.DB_PAGE_SIZE
    avg_seek_usec: int = 8500
    rotational_latency_usec: int = 4170  # half a revolution at 7200 rpm
    transfer_usec_per_page: int = 65     # ~125 MB/s sustained
    track_pages: int = 256               # pages reachable without a new seek

    def validate(self) -> None:
        """Raise :class:`ConfigError` on inconsistent parameters."""
        if self.capacity_bytes % self.page_size:
            raise ConfigError("capacity must be a whole number of pages")
        if self.track_pages < 1:
            raise ConfigError("track_pages must be positive")

    @property
    def total_pages(self) -> int:
        """Logical page capacity exposed to the host."""
        return self.capacity_bytes // self.page_size


@dataclass(frozen=True)
class BufferConfig:
    """Buffer-pool and writeback policy parameters."""

    pool_pages: int = 2048               # 16 MiB with 8 KiB pages
    bgwriter_interval_usec: int = 200 * units.MSEC
    bgwriter_batch_pages: int = 100
    checkpoint_interval_usec: int = 30 * units.SEC
    max_wal_bytes: int = 16 * units.MIB  # size-triggered checkpoint
    page_size: int = units.DB_PAGE_SIZE

    def validate(self) -> None:
        """Raise :class:`ConfigError` on inconsistent parameters."""
        if self.pool_pages < 8:
            raise ConfigError("buffer pool must hold at least 8 pages")
        if self.bgwriter_interval_usec <= 0:
            raise ConfigError("bgwriter interval must be positive")
        if self.checkpoint_interval_usec <= 0:
            raise ConfigError("checkpoint interval must be positive")
        if self.max_wal_bytes < self.page_size:
            raise ConfigError("max_wal_bytes must hold at least one page")


@dataclass(frozen=True)
class EngineConfig:
    """Knobs of the SIAS-V storage engine (and baseline where shared)."""

    page_size: int = units.DB_PAGE_SIZE
    layout: PageLayout = PageLayout.VECTOR
    flush_threshold: FlushThreshold = FlushThreshold.T2
    colocation: Colocation = Colocation.RECENCY
    vidmap_slots_per_bucket: int = 1024
    append_fill_target: float = 0.95     # T2 flushes at this fill degree
    gc_dead_ratio_trigger: float = 0.60  # victim pages above this dead ratio
    heap_fillfactor: float = 0.90        # baseline heap insert fill limit
    recycle_pages: bool = True           # reuse GC-reclaimed page numbers
    # (disable on NoFTL raw flash: a logical address maps 1:1 to a physical
    # page there, so a recycled address would program a non-erased page
    # unless its whole erase block died first)

    def validate(self) -> None:
        """Raise :class:`ConfigError` on inconsistent parameters."""
        if self.vidmap_slots_per_bucket < 1:
            raise ConfigError("VIDmap bucket must hold at least one slot")
        if not 0.0 < self.append_fill_target <= 1.0:
            raise ConfigError(
                f"append_fill_target out of (0,1]: {self.append_fill_target}")
        if not 0.0 < self.heap_fillfactor <= 1.0:
            raise ConfigError(
                f"heap_fillfactor out of (0,1]: {self.heap_fillfactor}")
        if not 0.0 <= self.gc_dead_ratio_trigger <= 1.0:
            raise ConfigError("gc_dead_ratio_trigger out of [0,1]")


@dataclass(frozen=True)
class SystemConfig:
    """Everything the :class:`repro.db.database.Database` facade needs."""

    engine: EngineConfig = field(default_factory=EngineConfig)
    buffer: BufferConfig = field(default_factory=BufferConfig)
    flash: FlashConfig = field(default_factory=FlashConfig)
    hdd: HddConfig = field(default_factory=HddConfig)
    extent_pages: int = 256  # tablespace growth granularity
    seed: int = 42

    def validate(self) -> None:
        """Validate every nested config."""
        self.engine.validate()
        self.buffer.validate()
        self.flash.validate()
        self.hdd.validate()
        if self.extent_pages < 1:
            raise ConfigError(
                f"extent_pages must be >= 1, got {self.extent_pages}")

    def with_engine(self, **changes: object) -> "SystemConfig":
        """Return a copy with engine knobs replaced (convenience)."""
        return replace(self, engine=replace(self.engine, **changes))

    def with_buffer(self, **changes: object) -> "SystemConfig":
        """Return a copy with buffer knobs replaced (convenience)."""
        return replace(self, buffer=replace(self.buffer, **changes))
