"""Size and time units used throughout the simulator.

All simulated time is kept in **microseconds** as integers, which keeps the
discrete-event arithmetic exact; helpers convert to and from seconds and
milliseconds.  Sizes are plain byte counts with ``KIB``/``MIB`` helpers.
"""

from __future__ import annotations

# --- sizes -----------------------------------------------------------------

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

#: Database page size used by both engines (PostgreSQL default).
DB_PAGE_SIZE = 8 * KIB


def mib(nbytes: int | float) -> float:
    """Convert a byte count to mebibytes."""
    return nbytes / MIB


def as_bytes_mib(n_mib: float) -> int:
    """Convert mebibytes to a byte count."""
    return int(n_mib * MIB)


# --- time (integers, microseconds) ------------------------------------------

USEC = 1
MSEC = 1000 * USEC
SEC = 1000 * MSEC
MINUTE = 60 * SEC


def usec_from_sec(seconds: float) -> int:
    """Convert seconds to integer microseconds."""
    return int(round(seconds * SEC))


def sec_from_usec(usec: int) -> float:
    """Convert integer microseconds to (float) seconds."""
    return usec / SEC


def msec_from_usec(usec: int) -> float:
    """Convert integer microseconds to (float) milliseconds."""
    return usec / MSEC


def fmt_bytes(nbytes: int | float) -> str:
    """Human-readable byte count: ``fmt_bytes(3*MIB) == '3.0 MiB'``."""
    value = float(nbytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024.0
    raise AssertionError("unreachable")


def fmt_usec(usec: int) -> str:
    """Human-readable duration from integer microseconds."""
    if usec < MSEC:
        return f"{usec} us"
    if usec < SEC:
        return f"{usec / MSEC:.2f} ms"
    if usec < MINUTE:
        return f"{usec / SEC:.2f} s"
    return f"{usec / MINUTE:.2f} min"
