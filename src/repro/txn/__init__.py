"""Transactions: snapshot isolation semantics shared by both engines."""

from repro.txn.commitlog import CommitLog, TxnState
from repro.txn.ids import BOOTSTRAP_TXID, TxidAllocator
from repro.txn.locks import LockStats, LockTable
from repro.txn.manager import Transaction, TransactionManager, TxnPhase
from repro.txn.snapshot import Snapshot

__all__ = [
    "BOOTSTRAP_TXID",
    "CommitLog",
    "LockStats",
    "LockTable",
    "Snapshot",
    "Transaction",
    "TransactionManager",
    "TxidAllocator",
    "TxnPhase",
    "TxnState",
]
