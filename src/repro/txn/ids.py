"""Transaction id allocation.

Txids are monotonically increasing positive integers and double as the
*timestamps* of snapshot isolation: a version's creation timestamp is the
creating transaction's txid, and ordering between txids is ordering between
transaction start events (the "SIAS transactional time" the paper
distinguishes from wall-clock logical time).
"""

from __future__ import annotations

#: Txid 0 is reserved as "bootstrap" (initial data loading, visible to all).
BOOTSTRAP_TXID = 0


class TxidAllocator:
    """Hands out monotonically increasing transaction ids."""

    def __init__(self, start: int = 1) -> None:
        if start < 1:
            raise ValueError(f"txids start at 1, got {start}")
        self._next = start

    def allocate(self) -> int:
        """Return a fresh txid, strictly larger than all previous ones."""
        txid = self._next
        self._next += 1
        return txid

    def advance_to(self, floor: int) -> None:
        """Ratchet forward: every future txid will be strictly ``> floor``.

        Mirrors :meth:`repro.common.clock.SimClock.advance_to` — a no-op
        when the allocator is already past ``floor``, never moves
        backwards.  Skipped txids are simply never registered with the
        commit log, which reports unknown ids as not-committed; no
        version can ever carry one as its creation timestamp.  The cluster router uses
        this to pull a quiet shard's timestamp domain up to its peers'.
        """
        if floor + 1 > self._next:
            self._next = floor + 1

    @property
    def last_allocated(self) -> int:
        """The most recently handed-out txid (0 if none yet)."""
        return self._next - 1
