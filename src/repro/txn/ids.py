"""Transaction id allocation.

Txids are monotonically increasing positive integers and double as the
*timestamps* of snapshot isolation: a version's creation timestamp is the
creating transaction's txid, and ordering between txids is ordering between
transaction start events (the "SIAS transactional time" the paper
distinguishes from wall-clock logical time).
"""

from __future__ import annotations

#: Txid 0 is reserved as "bootstrap" (initial data loading, visible to all).
BOOTSTRAP_TXID = 0


class TxidAllocator:
    """Hands out monotonically increasing transaction ids."""

    def __init__(self, start: int = 1) -> None:
        if start < 1:
            raise ValueError(f"txids start at 1, got {start}")
        self._next = start

    def allocate(self) -> int:
        """Return a fresh txid, strictly larger than all previous ones."""
        txid = self._next
        self._next += 1
        return txid

    @property
    def last_allocated(self) -> int:
        """The most recently handed-out txid (0 if none yet)."""
        return self._next - 1
