"""Commit log (clog): the fate of every transaction id.

Visibility checks need to know whether a creation timestamp belongs to a
committed, aborted or still-running transaction — PostgreSQL keeps this in
``pg_xact``; here it is an in-memory map with the same three states.  The
bootstrap txid (initial load) is always committed.
"""

from __future__ import annotations

from enum import Enum

from repro.common.errors import TxnStateError
from repro.txn.ids import BOOTSTRAP_TXID


class TxnState(Enum):
    """Fate of a transaction id."""

    IN_PROGRESS = "in_progress"
    PREPARED = "prepared"
    COMMITTED = "committed"
    ABORTED = "aborted"


class CommitLog:
    """Tracks the state of every allocated transaction id."""

    def __init__(self) -> None:
        self._states: dict[int, TxnState] = {
            BOOTSTRAP_TXID: TxnState.COMMITTED}

    def register(self, txid: int) -> None:
        """Record a newly started transaction."""
        if txid in self._states:
            raise TxnStateError(f"txid {txid} already registered")
        self._states[txid] = TxnState.IN_PROGRESS

    def state_of(self, txid: int) -> TxnState:
        """Current state of ``txid`` (unknown ids raise)."""
        try:
            return self._states[txid]
        except KeyError:
            raise TxnStateError(f"unknown txid {txid}") from None

    def set_prepared(self, txid: int) -> None:
        """Transition IN_PROGRESS → PREPARED (two-phase commit phase 1).

        A PREPARED transaction is still *not committed* for visibility —
        ``is_committed`` stays False, so no snapshot can see its versions
        until the coordinator's decision lands.
        """
        current = self.state_of(txid)
        if current is not TxnState.IN_PROGRESS:
            raise TxnStateError(
                f"txid {txid} is {current.value}, cannot become prepared")
        self._states[txid] = TxnState.PREPARED

    def set_committed(self, txid: int) -> None:
        """Transition IN_PROGRESS or PREPARED → COMMITTED."""
        self._transition(txid, TxnState.COMMITTED)

    def set_aborted(self, txid: int) -> None:
        """Transition IN_PROGRESS or PREPARED → ABORTED."""
        self._transition(txid, TxnState.ABORTED)

    def _transition(self, txid: int, target: TxnState) -> None:
        current = self.state_of(txid)
        if current not in (TxnState.IN_PROGRESS, TxnState.PREPARED):
            raise TxnStateError(
                f"txid {txid} is {current.value}, cannot become "
                f"{target.value}")
        self._states[txid] = target

    def is_prepared(self, txid: int) -> bool:
        """True iff the transaction is prepared and awaiting its fate."""
        return self._states.get(txid) is TxnState.PREPARED

    def is_committed(self, txid: int) -> bool:
        """True iff the transaction committed."""
        return self._states.get(txid) is TxnState.COMMITTED

    def is_aborted(self, txid: int) -> bool:
        """True iff the transaction aborted."""
        return self._states.get(txid) is TxnState.ABORTED
