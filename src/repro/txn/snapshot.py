"""Snapshots and the SI visibility predicate.

A snapshot freezes, at transaction start, the set of concurrently running
transactions.  The visibility rule is the paper's Algorithm 1 criterion
re-expressed with explicit commit-state handling:

    ``visible(ts) ⇔ ts == own txid``
    ``          ∨ (ts ≤ own txid ∧ ts ∉ concurrent ∧ committed(ts))``

Because txids are allocated monotonically at start, ``ts ≤ own txid`` says
"that transaction started before me"; ``ts ∉ concurrent`` says "and it was
no longer running when I started"; ``committed(ts)`` filters aborted
transactions.  Both engines — SIAS-V and the SI baseline — evaluate exactly
this predicate, so any behavioural difference between them is physical, not
semantic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.txn.commitlog import CommitLog


@dataclass(frozen=True)
class Snapshot:
    """An immutable view definition taken at transaction start."""

    txid: int
    concurrent: frozenset[int] = field(default_factory=frozenset)

    def sees_ts(self, ts: int, clog: CommitLog) -> bool:
        """The SI visibility predicate over a creation timestamp."""
        if ts == self.txid:
            return True  # own writes are visible
        if ts > self.txid:
            return False  # started after me
        if ts in self.concurrent:
            return False  # still running when I started
        return clog.is_committed(ts)

    def overlaps(self, other: "Snapshot") -> bool:
        """Whether the two transactions ran concurrently."""
        return (other.txid in self.concurrent or
                self.txid in other.concurrent or
                other.txid == self.txid)
