"""Snapshots and the SI visibility predicate.

A snapshot freezes, at transaction start, the set of concurrently running
transactions.  The visibility rule is the paper's Algorithm 1 criterion
re-expressed with explicit commit-state handling:

    ``visible(ts) ⇔ ts == own txid``
    ``          ∨ (ts ≤ own txid ∧ ts ∉ concurrent ∧ committed(ts))``

Because txids are allocated monotonically at start, ``ts ≤ own txid`` says
"that transaction started before me"; ``ts ∉ concurrent`` says "and it was
no longer running when I started"; ``committed(ts)`` filters aborted
transactions.  Both engines — SIAS-V and the SI baseline — evaluate exactly
this predicate, so any behavioural difference between them is physical, not
semantic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.txn.commitlog import CommitLog


@dataclass(frozen=True)
class Snapshot:
    """An immutable view definition taken at transaction start."""

    txid: int
    concurrent: frozenset[int] = field(default_factory=frozenset)

    def sees_ts(self, ts: int, clog: CommitLog) -> bool:
        """The SI visibility predicate over a creation timestamp."""
        if ts == self.txid:
            return True  # own writes are visible
        if ts > self.txid:
            return False  # started after me
        if ts in self.concurrent:
            return False  # still running when I started
        return clog.is_committed(ts)

    def visibility_bitmap(self, ts_vector: "Iterable[int]", clog: CommitLog,
                          memo: dict[int, bool] | None = None) -> int:
        """Batch :meth:`sees_ts` over a creation-timestamp vector.

        Returns a bitmap with bit ``i`` set iff ``ts_vector[i]`` is
        visible — the page-at-a-time visibility kernel of the vectorized
        scan: one pass over a sealed page's timestamp mini-column instead
        of one predicate call per slot.

        ``memo`` caches the per-distinct-timestamp verdict and may be
        shared across every page of one scan.  That is sound for the
        snapshot's lifetime: ``ts == txid`` and ``ts > txid`` are decided
        without the commit log, and any other timestamp outside
        ``concurrent`` belongs to a transaction that finished before this
        snapshot was taken, so its commit-log state can no longer change.
        """
        if memo is None:
            memo = {}
        txid = self.txid
        concurrent = self.concurrent
        committed = clog.is_committed
        ts_vector = (ts_vector if isinstance(ts_vector, list)
                     else list(ts_vector))
        # settle the distinct timestamps first: pages are typically filled
        # by a handful of transactions, so the per-slot pass below usually
        # collapses to "all visible" / "none visible" without any loop
        distinct = set(ts_vector)
        for ts in distinct:
            if ts not in memo:
                memo[ts] = (ts == txid or
                            (ts <= txid and ts not in concurrent and
                             committed(ts)))
        if all(memo[ts] for ts in distinct):
            return (1 << len(ts_vector)) - 1
        if not any(memo[ts] for ts in distinct):
            return 0
        bitmap = 0
        bit = 1
        for ts in ts_vector:
            if memo[ts]:
                bitmap |= bit
            bit <<= 1
        return bitmap

    def overlaps(self, other: "Snapshot") -> bool:
        """Whether the two transactions ran concurrently."""
        return (other.txid in self.concurrent or
                self.txid in other.concurrent or
                other.txid == self.txid)
