"""Snapshots and the SI visibility predicate.

A snapshot freezes, at transaction start, the set of concurrently running
transactions.  The visibility rule is the paper's Algorithm 1 criterion
re-expressed with explicit commit-state handling:

    ``visible(ts) ⇔ ts == own txid``
    ``          ∨ (ts ≤ read_ts ∧ ts ∉ concurrent ∧ committed(ts))``

``read_ts`` is the snapshot's *read timestamp*.  For an ordinary local
transaction it equals the transaction's own txid (txids are allocated
monotonically at start, so ``ts ≤ txid`` says "that transaction started
before me") and the rule is exactly the classical one.  A snapshot may
instead be pinned to an *externally supplied* timestamp — the cluster
router hands every shard the same ``read_ts`` so a fan-out read observes
one cluster-wide snapshot.  Such a timestamp must lie at or below the
engine's closed-timestamp watermark (see
:meth:`repro.txn.manager.TransactionManager.closed_ts`), which guarantees
every transaction with ``txid ≤ read_ts`` has already reached its final
fate: the concurrent set is empty and the commit log's verdicts below
``read_ts`` are frozen.

Because ``concurrent`` only ever contains txids ≤ the snapshot-taker's
txid, both forms evaluate the same predicate; engines — SIAS-V and the
SI baseline — share it, so any behavioural difference between them is
physical, not semantic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.txn.commitlog import CommitLog


@dataclass(frozen=True)
class Snapshot:
    """An immutable view definition taken at transaction start.

    ``read_ts`` defaults to ``txid`` (a snapshot of "now" as of this
    transaction's start); a smaller value pins the snapshot to an older,
    closed timestamp.
    """

    txid: int
    concurrent: frozenset[int] = field(default_factory=frozenset)
    read_ts: int = -1

    def __post_init__(self) -> None:
        if self.read_ts < 0:
            object.__setattr__(self, "read_ts", self.txid)

    def sees_ts(self, ts: int, clog: CommitLog) -> bool:
        """The SI visibility predicate over a creation timestamp."""
        if ts == self.txid:
            return True  # own writes are visible
        if ts > self.read_ts:
            return False  # after my read timestamp
        if ts in self.concurrent:
            return False  # still running when I started
        return clog.is_committed(ts)

    def visibility_bitmap(self, ts_vector: "Iterable[int]", clog: CommitLog,
                          memo: dict[int, bool] | None = None) -> int:
        """Batch :meth:`sees_ts` over a creation-timestamp vector.

        Returns a bitmap with bit ``i`` set iff ``ts_vector[i]`` is
        visible — the page-at-a-time visibility kernel of the vectorized
        scan: one pass over a sealed page's timestamp mini-column instead
        of one predicate call per slot.

        ``memo`` caches the per-distinct-timestamp verdict and may be
        shared across every page of one scan.  That is sound for the
        snapshot's lifetime: ``ts == txid`` and ``ts > read_ts`` are
        decided without the commit log, and any other timestamp outside
        ``concurrent`` belongs to a transaction that finished before this
        snapshot was taken (or, for a pinned snapshot, before its closed
        read timestamp), so its commit-log state can no longer change.
        """
        if memo is None:
            memo = {}
        txid = self.txid
        read_ts = self.read_ts
        concurrent = self.concurrent
        committed = clog.is_committed
        ts_vector = (ts_vector if isinstance(ts_vector, list)
                     else list(ts_vector))
        # settle the distinct timestamps first: pages are typically filled
        # by a handful of transactions, so the per-slot pass below usually
        # collapses to "all visible" / "none visible" without any loop
        distinct = set(ts_vector)
        for ts in distinct:
            if ts not in memo:
                memo[ts] = (ts == txid or
                            (ts <= read_ts and ts not in concurrent and
                             committed(ts)))
        if all(memo[ts] for ts in distinct):
            return (1 << len(ts_vector)) - 1
        if not any(memo[ts] for ts in distinct):
            return 0
        bitmap = 0
        bit = 1
        for ts in ts_vector:
            if memo[ts]:
                bitmap |= bit
            bit <<= 1
        return bitmap

    def overlaps(self, other: "Snapshot") -> bool:
        """Whether the two transactions ran concurrently."""
        return (other.txid in self.concurrent or
                self.txid in other.concurrent or
                other.txid == self.txid)
