"""Transactional item locks implementing first-updater-wins.

SIAS-V serialises updates per data item: an update in progress holds an
exclusive transaction lock on the item, and a second updater either waits for
the holder or — if the holder commits a conflicting version the waiter cannot
see — aborts with a serialization error.  The simulated driver retries
aborted transactions, so raising immediately on conflict models the
"first-updater-wins, loser rolls back" outcome; a holder that already
finished releases its locks lazily here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import SerializationError, TxnStateError


@dataclass
class LockStats:
    """Lock table counters."""

    acquired: int = 0
    reentrant: int = 0
    conflicts: int = 0


@dataclass
class LockTable:
    """Exclusive per-item transaction locks.

    Items are identified by an opaque hashable key — the engines use
    ``(relation_id, vid)`` (SIAS-V) or ``(relation_id, root_tid)`` (SI).
    """

    _holders: dict[object, int] = field(default_factory=dict)
    _held_by_txn: dict[int, set[object]] = field(default_factory=dict)
    stats: LockStats = field(default_factory=LockStats)

    def acquire(self, key: object, txid: int) -> None:
        """Take the exclusive lock or raise :class:`SerializationError`."""
        holder = self._holders.get(key)
        if holder == txid:
            self.stats.reentrant += 1
            return
        if holder is not None:
            self.stats.conflicts += 1
            raise SerializationError(
                f"item {key!r} is locked by txn {holder}; "
                f"first-updater-wins aborts txn {txid}")
        self._holders[key] = txid
        self._held_by_txn.setdefault(txid, set()).add(key)
        self.stats.acquired += 1

    def holder_of(self, key: object) -> int | None:
        """Txid currently holding ``key`` (None if free)."""
        return self._holders.get(key)

    def holds(self, key: object, txid: int) -> bool:
        """Whether ``txid`` holds the lock on ``key``."""
        return self._holders.get(key) == txid

    def release_all(self, txid: int) -> int:
        """Release every lock of a finishing transaction; returns count."""
        keys = self._held_by_txn.pop(txid, set())
        for key in keys:
            if self._holders.get(key) != txid:
                raise TxnStateError(
                    f"lock table corrupt: {key!r} not held by {txid}")
            del self._holders[key]
        return len(keys)

    def held_count(self) -> int:
        """Number of currently held locks (across all transactions)."""
        return len(self._holders)
