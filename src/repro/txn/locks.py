"""Transactional item locks implementing first-updater-wins.

SIAS-V serialises updates per data item: an update in progress holds an
exclusive transaction lock on the item, and a second updater either waits for
the holder or — if the holder commits a conflicting version the waiter cannot
see — aborts with a serialization error.

Two wait disciplines, selected by :attr:`LockTable.wait_timeout_sec`:

* ``0.0`` (default) — conflicts raise :class:`SerializationError`
  immediately.  This models "first-updater-wins, loser rolls back" for
  single-threaded drivers (the simulated TPC-C driver retries aborted
  transactions), where a waiter could only ever deadlock itself.
* ``> 0`` — the second updater *blocks* until the holder finishes or the
  timeout expires.  On wake-up the caller re-validates visibility: if the
  holder committed a conflicting version, the engine raises the
  serialization error; if the holder aborted, the waiter proceeds.  The
  timeout bounds waits so worker threads cannot deadlock through lock
  cycles — a timed-out wait aborts the waiter (counted in
  ``stats.wait_timeouts``), exactly the fallback PostgreSQL's
  ``deadlock_timeout`` provides.

The multi-worker server enables waiting; a holder that already finished
releases its locks via :meth:`release_all`, which wakes every waiter.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.common.errors import SerializationError, TxnStateError


@dataclass
class LockStats:
    """Lock table counters."""

    acquired: int = 0
    reentrant: int = 0
    conflicts: int = 0
    waits: int = 0
    wait_timeouts: int = 0


@dataclass
class LockTable:
    """Exclusive per-item transaction locks.

    Items are identified by an opaque hashable key — the engines use
    ``(relation_id, vid)`` (SIAS-V) or ``(relation_id, root_tid)`` (SI).

    The uncontended path is lock-free: a claim is one GIL-atomic
    ``dict.setdefault`` (a test-and-set — exactly one thread receives its
    own txid back), and a release is per-key ``del``.  The condition
    variable is engaged only when a conflict actually blocks: waiters
    park on it, and a releaser notifies only when ``_waiters`` says
    someone is parked.  Waiters bump ``_waiters`` *before* re-testing the
    key, which closes the missed-wakeup race — a release that ran before
    the waiter's bump also freed the key before the waiter's re-test.
    """

    _holders: dict[object, int] = field(default_factory=dict)
    _held_by_txn: dict[int, set[object]] = field(default_factory=dict)
    stats: LockStats = field(default_factory=LockStats)
    #: > 0 enables bounded blocking waits on conflict (multi-worker mode);
    #: 0 keeps the immediate first-updater-wins abort.
    wait_timeout_sec: float = 0.0
    _cond: threading.Condition = field(default_factory=threading.Condition,
                                       repr=False, compare=False)
    #: acquirers currently parked on ``_cond`` (mutated under it); lets
    #: ``release_all`` skip the condition when nobody waits
    _waiters: int = field(default=0, repr=False, compare=False)

    def acquire(self, key: object, txid: int) -> None:
        """Take the exclusive lock on ``key`` for ``txid``.

        Raises :class:`SerializationError` if another transaction holds the
        lock and either waiting is disabled (``wait_timeout_sec == 0``) or
        the bounded wait expires before the holder releases.
        """
        held = self._held_by_txn.get(txid)
        if held is not None and key in held:
            self.stats.reentrant += 1
            return
        # Atomic test-and-set: exactly one thread gets its own txid back.
        holder = self._holders.setdefault(key, txid)
        if holder == txid:
            if held is None:
                held = self._held_by_txn[txid] = set()
            held.add(key)
            self.stats.acquired += 1
            return
        if self.wait_timeout_sec <= 0.0:
            self.stats.conflicts += 1
            raise SerializationError(
                f"item {key!r} is locked by txn {holder}; "
                f"first-updater-wins aborts txn {txid}")
        with self._cond:
            self.stats.waits += 1
            deadline = time.monotonic() + self.wait_timeout_sec
            self._waiters += 1
            try:
                while True:
                    holder = self._holders.setdefault(key, txid)
                    if holder == txid:
                        break
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        self.stats.wait_timeouts += 1
                        self.stats.conflicts += 1
                        raise SerializationError(
                            f"txn {txid} timed out after "
                            f"{self.wait_timeout_sec:.3f}s waiting for item "
                            f"{key!r} held by txn {holder}")
                    self._cond.wait(remaining)
            finally:
                self._waiters -= 1
        if held is None:
            held = self._held_by_txn[txid] = set()
        held.add(key)
        self.stats.acquired += 1

    def holder_of(self, key: object) -> int | None:
        """Txid currently holding ``key`` (None if free)."""
        return self._holders.get(key)

    def holds(self, key: object, txid: int) -> bool:
        """Whether ``txid`` holds the lock on ``key``."""
        return self._holders.get(key) == txid

    def release_all(self, txid: int) -> int:
        """Release every lock of a finishing transaction; returns count.

        Wakes all blocked acquirers so they re-check their keys (and
        re-validate visibility against whatever the releaser committed).
        """
        # Only the transaction's own thread ever adds entries for its
        # txid, so the pop (GIL-atomic) returning nothing means there is
        # nothing to release — read-only transactions pay one dict probe.
        keys = self._held_by_txn.pop(txid, None)
        if keys is None:
            return 0
        for key in keys:
            if self._holders.get(key) != txid:
                raise TxnStateError(
                    f"lock table corrupt: {key!r} not held by {txid}")
            del self._holders[key]
        if self._waiters:
            with self._cond:
                self._cond.notify_all()
        return len(keys)

    def held_count(self) -> int:
        """Number of currently held locks (across all transactions)."""
        return len(self._holders)

    def clear(self) -> None:
        """Drop every lock (crash recovery) but keep the configuration.

        Crash simulation must empty the table without discarding
        ``wait_timeout_sec`` — replacing the table with ``LockTable()``
        would silently demote a multi-worker server from bounded waits
        back to immediate first-updater-wins aborts.  Cumulative stats
        survive too (counters model monitoring state, not lock state).
        Parked waiters are woken so they re-check their keys.
        """
        self._holders.clear()
        self._held_by_txn.clear()
        if self._waiters:
            with self._cond:
                self._cond.notify_all()
